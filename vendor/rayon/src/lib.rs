//! Offline stand-in for the subset of the crates.io `rayon` API this
//! workspace uses.
//!
//! The container this repository builds in has no crates registry, so the
//! workspace vendors a minimal data-parallelism layer.  It is *really*
//! parallel, and since PR 3 it is also *persistent*: all work runs on the
//! process-wide worker pool of [`pool`], whose threads are spawned once and
//! parked between jobs, instead of paying a `std::thread::scope` spawn per
//! parallel call.  Work is split into contiguous chunks claimed dynamically
//! by workers; `collect` writes results straight into their final slots, so
//! item order is preserved and results are independent of scheduling.
//!
//! Supported surface: `par_iter()` on slices, `into_par_iter()` on
//! `Range<usize>`, the adapters `map` / `for_each` / `any` / `collect` /
//! `sum`, and [`current_num_threads`].  Parallel sources are random-access
//! ("indexed" in rayon terms), which covers every call site in this
//! repository.  Unlike upstream rayon, [`ParallelIterator::any`]
//! short-circuits: a hit raises a shared flag that later chunks observe
//! before (and periodically while) scanning.
//!
//! Lower-level chunked dispatch — used by the native machine backend to
//! run one context per chunk instead of one per item — is exposed as
//! [`pool::run`] (shared-counter chunk claiming) and [`pool::run_stealing`]
//! (pre-partitioned per-worker ranges with work-assisting steal-half
//! splits; identical chunk boundaries, different chunk→thread assignment).
//! [`pool::run_fused`] / [`pool::run_fused_stealing`] run several short
//! passes in one dispatch with a chunk-counting barrier between them, so a
//! multi-pass machine step pays the worker wakeup once.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

pub mod pool;

/// Number of worker threads a parallel operation will use at most.
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Below this many items a parallel operation just runs inline: dispatching
/// to the pool for tiny inputs costs more than it saves.
const INLINE_CUTOFF: usize = 2048;

/// How often a short-circuiting scan re-checks the shared "found" flag.
const ANY_POLL_MASK: usize = 0x1FF;

/// Chunk length for `len` items over `threads` threads: a few chunks per
/// thread for dynamic load balance, but never degenerate slivers.
fn chunk_len_for(len: usize, threads: usize) -> usize {
    len.div_ceil(threads * 4).max(INLINE_CUTOFF / 4)
}

use pool::SendPtr;

/// Runs `produce(i)` for `i in 0..len` across the pool, returning the
/// results in index order.  If a chunk panics, already-written values are
/// leaked (not dropped) when the panic is re-thrown — acceptable for this
/// stand-in, since panics inside parallel sections are programmer errors.
fn par_produce<T, P>(len: usize, produce: P) -> Vec<T>
where
    T: Send,
    P: Fn(usize) -> T + Sync,
{
    let threads = current_num_threads().min(len);
    if threads <= 1 || len < INLINE_CUTOFF {
        return (0..len).map(produce).collect();
    }
    let mut out: Vec<T> = Vec::with_capacity(len);
    let slots = SendPtr(out.as_mut_ptr());
    let slots = &slots;
    pool::run(len, chunk_len_for(len, threads), threads, |lo, hi| {
        for i in lo..hi {
            // Disjoint chunks write disjoint slots of the reserved buffer.
            unsafe { slots.0.add(i).write(produce(i)) };
        }
    });
    // Every chunk completed (pool::run is a barrier), so all slots are
    // initialized.  On a chunk panic `run` re-throws before we get here.
    unsafe { out.set_len(len) };
    out
}

/// Runs `body(i)` for `i in 0..len` across the pool, for side effects.
fn par_drive<P>(len: usize, body: P)
where
    P: Fn(usize) + Sync,
{
    let threads = current_num_threads().min(len);
    if threads <= 1 || len < INLINE_CUTOFF {
        (0..len).for_each(body);
        return;
    }
    pool::run(len, chunk_len_for(len, threads), threads, |lo, hi| {
        for i in lo..hi {
            body(i);
        }
    });
}

/// True iff `pred(i)` holds for some `i in 0..len`; short-circuits via a
/// shared flag that every chunk polls.
fn par_any<P>(len: usize, pred: P) -> bool
where
    P: Fn(usize) -> bool + Sync,
{
    let threads = current_num_threads().min(len);
    if threads <= 1 || len < INLINE_CUTOFF {
        return (0..len).any(pred);
    }
    let found = AtomicBool::new(false);
    pool::run(len, chunk_len_for(len, threads), threads, |lo, hi| {
        if found.load(Ordering::Relaxed) {
            return;
        }
        for i in lo..hi {
            if i & ANY_POLL_MASK == 0 && found.load(Ordering::Relaxed) {
                return;
            }
            if pred(i) {
                found.store(true, Ordering::Relaxed);
                return;
            }
        }
    });
    found.load(Ordering::Relaxed)
}

/// A random-access parallel iterator.
///
/// Unlike rayon's lazy splitter this is an eager, indexed design: a source
/// exposes `(len, get(i))` and every consumer fans the index space out over
/// the persistent pool.  `collect` returns items in index order.
pub trait ParallelIterator: Sized + Sync {
    /// The element type.
    type Item: Send;

    /// Number of items.
    fn pi_len(&self) -> usize;

    /// Produces the item at `index` (called from worker threads).
    fn pi_get(&self, index: usize) -> Self::Item;

    /// Maps every item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { inner: self, f }
    }

    /// Runs `f` on every item for its side effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        par_drive(self.pi_len(), |i| f(self.pi_get(i)));
    }

    /// True iff `f` holds for at least one item.  A hit stops the scan
    /// early: chunks check a shared flag before and periodically during
    /// their run (upstream rayon likewise short-circuits, without
    /// guaranteeing how many items are still visited).
    fn any<F>(self, f: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync,
    {
        par_any(self.pi_len(), |i| f(self.pi_get(i)))
    }

    /// Collects all items in index order.
    fn collect<C>(self) -> C
    where
        C: From<Vec<Self::Item>>,
    {
        C::from(par_produce(self.pi_len(), |i| self.pi_get(i)))
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        // Summed inline from an index-ordered buffer, so non-commutative
        // `Sum` impls (saturating, floating point) see a deterministic
        // order.
        par_produce(self.pi_len(), |i| self.pi_get(i))
            .into_iter()
            .sum()
    }
}

/// [`ParallelIterator::map`] adapter.
pub struct Map<P, F> {
    inner: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.inner.pi_len()
    }

    fn pi_get(&self, index: usize) -> R {
        (self.f)(self.inner.pi_get(index))
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeIter {
    start: usize,
    end: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn pi_len(&self) -> usize {
        self.end - self.start
    }

    fn pi_get(&self, index: usize) -> usize {
        self.start + index
    }
}

/// Parallel iterator over slice references.
pub struct SliceIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_get(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

/// Conversion of owned sources into parallel iterators.
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator;

    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator type.
    type Iter: ParallelIterator;

    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// The rayon prelude: everything a call site needs in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..10_000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_borrows() {
        let xs: Vec<u64> = (0..5000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[4999], 9998);
    }

    #[test]
    fn any_and_sum() {
        assert!((0..5000).into_par_iter().any(|i| i == 4999));
        assert!(!(0..5000).into_par_iter().any(|i| i == 5000));
        let s: usize = (0..5000).into_par_iter().sum();
        assert_eq!(s, 4999 * 5000 / 2);
    }

    #[test]
    fn any_short_circuits_on_an_early_hit() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let evaluated = AtomicUsize::new(0);
        let hit = (0..1 << 20).into_par_iter().any(|i| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            i == 0
        });
        assert!(hit);
        assert!(
            evaluated.load(Ordering::Relaxed) < 1 << 20,
            "a hit at index 0 must stop the scan early (evaluated {})",
            evaluated.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0..10_000).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn empty_sources_are_fine() {
        let out: Vec<usize> = (5..5).into_par_iter().collect();
        assert!(out.is_empty());
    }
}
