//! Offline stand-in for the subset of the crates.io `rayon` API this
//! workspace uses.
//!
//! The container this repository builds in has no crates registry, so the
//! workspace vendors a minimal data-parallelism layer.  It is *really*
//! parallel — work is split into contiguous chunks executed on
//! `std::thread::scope` threads, one per available core — and, like rayon,
//! `collect` preserves item order, so results are independent of scheduling.
//!
//! Supported surface: `par_iter()` on slices, `into_par_iter()` on
//! `Range<usize>`, the adapters `map` / `for_each` / `any` / `collect`, and
//! [`current_num_threads`].  Parallel sources are random-access ("indexed"
//! in rayon terms), which covers every call site in this repository.

use std::panic;
use std::thread;

/// Number of worker threads a parallel operation will use at most.
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Below this many items a parallel operation just runs inline: spawning
/// threads for tiny inputs costs more than it saves.
const INLINE_CUTOFF: usize = 2048;

/// Runs `produce(i)` for `i in 0..len` across threads, returning the results
/// in index order.
fn par_produce<T, P>(len: usize, produce: P) -> Vec<T>
where
    T: Send,
    P: Fn(usize) -> T + Sync,
{
    let threads = current_num_threads().min(len);
    if threads <= 1 || len < INLINE_CUTOFF {
        return (0..len).map(produce).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(threads);
    thread::scope(|s| {
        let produce = &produce;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(len);
                s.spawn(move || (lo..hi).map(produce).collect::<Vec<T>>())
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                Err(payload) => panic::resume_unwind(payload),
            }
        }
    });
    parts.into_iter().flatten().collect()
}

/// A random-access parallel iterator.
///
/// Unlike rayon's lazy splitter this is an eager, indexed design: a source
/// exposes `(len, get(i))` and every consumer fans the index space out over
/// threads.  `collect` returns items in index order.
pub trait ParallelIterator: Sized + Sync {
    /// The element type.
    type Item: Send;

    /// Number of items.
    fn pi_len(&self) -> usize;

    /// Produces the item at `index` (called from worker threads).
    fn pi_get(&self, index: usize) -> Self::Item;

    /// Maps every item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { inner: self, f }
    }

    /// Runs `f` on every item for its side effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = par_produce(self.pi_len(), |i| f(self.pi_get(i)));
    }

    /// True iff `f` holds for at least one item (all items are evaluated;
    /// rayon also gives no short-circuit guarantee across threads).
    fn any<F>(self, f: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync,
    {
        par_produce(self.pi_len(), |i| f(self.pi_get(i)))
            .into_iter()
            .any(|b| b)
    }

    /// Collects all items in index order.
    fn collect<C>(self) -> C
    where
        C: From<Vec<Self::Item>>,
    {
        C::from(par_produce(self.pi_len(), |i| self.pi_get(i)))
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        par_produce(self.pi_len(), |i| self.pi_get(i))
            .into_iter()
            .sum()
    }
}

/// [`ParallelIterator::map`] adapter.
pub struct Map<P, F> {
    inner: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.inner.pi_len()
    }

    fn pi_get(&self, index: usize) -> R {
        (self.f)(self.inner.pi_get(index))
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeIter {
    start: usize,
    end: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn pi_len(&self) -> usize {
        self.end - self.start
    }

    fn pi_get(&self, index: usize) -> usize {
        self.start + index
    }
}

/// Parallel iterator over slice references.
pub struct SliceIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_get(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

/// Conversion of owned sources into parallel iterators.
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator;

    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator type.
    type Iter: ParallelIterator;

    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// The rayon prelude: everything a call site needs in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..10_000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_borrows() {
        let xs: Vec<u64> = (0..5000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[4999], 9998);
    }

    #[test]
    fn any_and_sum() {
        assert!((0..5000).into_par_iter().any(|i| i == 4999));
        assert!(!(0..5000).into_par_iter().any(|i| i == 5000));
        let s: usize = (0..5000).into_par_iter().sum();
        assert_eq!(s, 4999 * 5000 / 2);
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0..10_000).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn empty_sources_are_fine() {
        let out: Vec<usize> = (5..5).into_par_iter().collect();
        assert!(out.is_empty());
    }
}
