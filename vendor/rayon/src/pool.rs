//! The persistent worker pool behind every parallel operation.
//!
//! The first version of this stand-in spawned fresh `std::thread::scope`
//! threads for every parallel call, which put a thread-creation syscall on
//! the hot path of every single machine step.  This module replaces that
//! with rayon's actual runtime shape: a process-wide set of worker threads
//! spawned once and parked on a condvar between jobs.  Dispatching a job is
//! a mutex lock plus a `notify_all`; workers and the caller then claim
//! contiguous chunks of the index space, so load balancing is dynamic but
//! results stay index-addressed (and therefore deterministic).
//!
//! Two chunk-claiming disciplines share the publish/complete machinery:
//!
//! * [`run`] — **chunked**: one shared counter, one `fetch_add` per chunk.
//!   Every idle participant contends on the same cache line, but the code
//!   path is minimal.
//! * [`run_stealing`] — **work-stealing** in the *work-assisting* style
//!   (one atomic split index per worker instead of a task deque): the chunk
//!   space is pre-partitioned into one contiguous range per participant,
//!   each range packed `(lo, hi)` into a single `AtomicU64`.  An owner pops
//!   chunks from the front of its own range with a CAS; a participant whose
//!   range drains *assists* on someone else's remaining iterations by
//!   CAS-splitting the victim's range in half and publishing the stolen
//!   upper half as its own.  No task objects, no deques, no allocation —
//!   the whole scheduler state is a fixed array of split indexes on the
//!   dispatching caller's stack.
//!
//! Chunk *boundaries* are a pure function of `(len, chunk_len)` under both
//! disciplines; only the chunk→thread assignment differs.  Any computation
//! whose writes are keyed by index is therefore bit-identical under either.
//!
//! [`run_fused`] / [`run_fused_stealing`] extend both disciplines to
//! **fused multi-pass jobs**: one dispatch runs `passes` short passes over
//! the same index space with a lightweight chunk-counting barrier between
//! them, so a k-pass machine step pays the parked-condvar wakeup once
//! instead of k times.  Chunk boundaries are computed once per fused group
//! and are identical in every pass (and identical to what k separate
//! dispatches would use); pass `p + 1` starts only after every chunk of
//! pass `p` completed, with release/acquire edges making pass-p writes
//! visible; and a panic in any pass poisons the group — remaining chunk
//! bodies are skipped while the group drains, then the payload is
//! re-thrown by the caller.
//!
//! Safety model: a dispatch publishes a lifetime-erased pointer to a
//! stack-allocated job record.  The pointer is only handed to workers under
//! the pool mutex while the job is published, and the dispatch does not
//! return (or unwind) until it has unpublished the job *and* observed every
//! active worker finish — so the record, and the borrowed closure inside
//! it, strictly outlive all worker access.  Worker panics are caught per
//! chunk and re-thrown on the calling thread.

use std::any::Any;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

/// Upper bound on pool workers: thread-count overrides above this are
/// clamped (oversubscription far past the core count stops being useful,
/// and the tests only need "more threads than cores" to exercise chunked
/// dispatch on small hosts).
pub const MAX_POOL_THREADS: usize = 64;

/// Upper bound on the passes of one fused dispatch ([`run_fused`]).  The
/// per-pass claim state (shared counters, stealing ranges) is preallocated
/// on the dispatching caller's stack, so this bound fixes that footprint;
/// the deepest fused machine step in the workspace (the exclusive-claim
/// protocol) uses 3.
pub const MAX_FUSED_PASSES: usize = 6;

/// Shares a raw pointer with pool chunks that access disjoint index
/// ranges.  The user must guarantee that concurrent accesses through it
/// are disjoint and that the pointee outlives the dispatch ([`run`] is a
/// barrier, so outliving the `run` call suffices).
pub struct SendPtr<T>(pub *mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Scheduler slots for a stealing dispatch: every pool worker plus the
/// dispatching caller can hold a range (the pool never exceeds
/// [`MAX_POOL_THREADS`] − 1 workers).
const STEAL_SLOTS: usize = MAX_POOL_THREADS;

/// Packs a chunk-index range `[lo, hi)` into one atomic word (`lo` in the
/// high half).  Chunk counts stay far below `2³²`: chunks are at least one
/// item and item counts are bounded by addressable memory cells.
#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

/// Inverse of [`pack`].
#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// How a job's chunks are handed to participants.
// The size difference is intentional: one Queue lives per dispatch, on the
// dispatching caller's stack, and boxing the stealing ranges would put an
// allocation on the step hot path — the thing this scheduler exists to
// avoid.
#[allow(clippy::large_enum_variant)]
enum Queue {
    /// One shared counter; claiming a chunk is one `fetch_add`.
    Shared {
        /// Next unclaimed chunk index.
        next: AtomicUsize,
        /// Total number of chunks.
        n_chunks: usize,
    },
    /// One packed `(lo, hi)` range of unclaimed chunks per participant
    /// slot.  Owners pop from the front of their own range; idle
    /// participants steal the upper half of a victim's remainder.
    Stealing {
        /// The per-slot split indexes.  Slots past the initial partition
        /// start empty and are filled by steals.
        ranges: [AtomicU64; STEAL_SLOTS],
        /// Next unassigned participant slot.
        slots: AtomicUsize,
        /// Slots the initial partition populated; together with `slots`
        /// this bounds the victim scan to slots that can hold work.
        n_slots: usize,
    },
    /// [`Queue::Shared`] for a fused job: one claim counter **per pass**.
    /// Counters are never reset — a laggard's stale `fetch_add` on an
    /// already-finished pass just over-claims past `n_chunks` and no-ops —
    /// so no reset can race with a late claimant.
    FusedShared {
        /// Next unclaimed chunk index, one counter per pass.
        next: [AtomicUsize; MAX_FUSED_PASSES],
        /// Total number of chunks (the same in every pass).
        n_chunks: usize,
        /// Number of passes in the fused group.
        passes: usize,
        /// The inter-pass barrier.
        barrier: FusedBarrier,
    },
    /// [`Queue::Stealing`] for a fused job: one full set of per-slot split
    /// ranges **per pass**, each pre-partitioned identically.  Per-pass
    /// state (instead of resetting one set between passes) makes stale CAS
    /// attempts by laggard thieves harmless: a thief only ever touches its
    /// own pass's ranges, which drain monotonically and are never reused.
    FusedStealing {
        /// Per-pass, per-slot split indexes.
        ranges: [[AtomicU64; STEAL_SLOTS]; MAX_FUSED_PASSES],
        /// Next unassigned participant slot, one counter per pass.
        slots: [AtomicUsize; MAX_FUSED_PASSES],
        /// Slots the initial partition populated (the same in every pass).
        n_slots: usize,
        /// Total number of chunks (the same in every pass).
        n_chunks: usize,
        /// Number of passes in the fused group.
        passes: usize,
        /// The inter-pass barrier.
        barrier: FusedBarrier,
    },
}

/// The inter-pass barrier of a fused job.
///
/// Participant membership is dynamic (workers join a published job whenever
/// they wake), so the barrier counts *chunks*, which are fixed: pass `p` is
/// complete when the cumulative completion count reaches
/// `(p + 1) · n_chunks`.  The last finisher of a pass publishes the next
/// pass index with a release store; waiters acquire-load it, which
/// (together with the `AcqRel` completion increments) makes every pass-p
/// write visible before any pass-p+1 chunk body runs.  This is the
/// sense-reversing-barrier idea with the sense generalized to a monotonic
/// pass counter — nothing is ever reset, so a slow participant can never
/// race a reuse.
struct FusedBarrier {
    /// Cumulative chunks completed, across all passes.
    completed: AtomicU64,
    /// The pass whose chunks may currently be claimed (`== passes` once the
    /// job is done).
    current_pass: AtomicU64,
    /// Set when any chunk body panicked: remaining bodies are skipped so
    /// the group drains quickly and the payload can be re-thrown.
    poisoned: AtomicBool,
}

impl FusedBarrier {
    fn new() -> Self {
        FusedBarrier {
            completed: AtomicU64::new(0),
            current_pass: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Counts one completed chunk of `pass`; the last chunk of a pass
    /// publishes the next one.
    fn finish_chunk(&self, n_chunks: usize, pass: usize) {
        let done = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
        if done == ((pass + 1) * n_chunks) as u64 {
            self.current_pass.store(pass as u64 + 1, Ordering::Release);
        }
    }

    /// Waits until the published pass advances past `pass` and returns the
    /// new one.  Spins briefly, then yields, then backs off to short timed
    /// sleeps: a parked-condvar handoff here would cost exactly the
    /// per-pass wakeup that fusion exists to avoid, and passes are short by
    /// construction — but a waiter with nothing to claim must not keep
    /// stealing the finisher's core on an oversubscribed host (a bare
    /// yield loop measurably slows the working thread there), so a long
    /// wait degrades to dozing rather than busy-yielding.
    fn wait_past(&self, pass: usize) -> usize {
        let mut spins = 0u32;
        let mut doze = 10u64;
        loop {
            let cur = self.current_pass.load(Ordering::Acquire) as usize;
            if cur > pass {
                return cur;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < 256 {
                thread::yield_now();
            } else {
                // Exponential doze, capped: chunk claiming is dynamic, so a
                // dozing waiter's would-be work is picked up by whoever is
                // awake and it cannot stall the group.
                thread::sleep(std::time::Duration::from_micros(doze));
                doze = (doze * 2).min(320);
            }
        }
    }
}

/// The chunk body of a job: plain jobs call `f(lo, hi)` once per chunk,
/// fused jobs call `f(pass, lo, hi)` once per (pass, chunk).  Lifetime-
/// erased; validity is guaranteed by the completion protocol.
#[derive(Clone, Copy)]
enum Task {
    /// Single-pass body.
    Plain(*const (dyn Fn(usize, usize) + Sync)),
    /// Multi-pass body.
    Fused(*const (dyn Fn(usize, usize, usize) + Sync)),
}

/// One published job: a lifetime-erased chunk runner plus claim/completion
/// bookkeeping.  Lives on the dispatching caller's stack for the duration
/// of the dispatch call.
struct JobCore {
    /// How participants claim chunks.
    queue: Queue,
    /// Items per chunk (the last chunk may be shorter).
    chunk_len: usize,
    /// Total number of items.
    len: usize,
    /// The chunk body (see [`Task`]).
    task: Task,
    /// First panic payload caught in a worker chunk, re-thrown by the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// What the pool mutex protects.
struct State {
    /// Monotonic dispatch counter, so a worker never re-enters a job it has
    /// already drained.
    epoch: u64,
    /// The currently published job, if any (dispatches are serialized).
    job: Option<JobRef>,
    /// Workers currently executing chunks of the published job.
    active: usize,
    /// Worker threads spawned so far.
    workers: usize,
}

/// Pointer to the published job, tagged with its dispatch epoch.
#[derive(Clone, Copy)]
struct JobRef {
    job: *const JobCore,
    epoch: u64,
}

// The raw pointer is only dereferenced while the completion protocol keeps
// the pointee alive; the pointee's shared fields are atomics and mutexes.
unsafe impl Send for JobRef {}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// Callers park here: for job completion, and for their turn to publish.
    done_cv: Condvar,
}

static POOL: OnceLock<&'static Shared> = OnceLock::new();

fn shared() -> &'static Shared {
    POOL.get_or_init(|| {
        Box::leak(Box::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                workers: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }))
    })
}

thread_local! {
    /// True on pool workers and on callers while they participate in a job:
    /// nested parallel calls from inside a chunk body run inline instead of
    /// deadlocking on the (serialized) dispatch slot.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Runs chunk `c` of `job`.  Panics from the chunk body are caught and
/// stashed in the job record.
fn run_chunk(job: &JobCore, c: usize) {
    let Task::Plain(task) = job.task else {
        unreachable!("plain drain on a fused job");
    };
    let task = unsafe { &*task };
    let lo = c * job.chunk_len;
    let hi = ((c + 1) * job.chunk_len).min(job.len);
    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| task(lo, hi))) {
        let mut slot = job.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// Runs chunk `c` of pass `pass` of a fused `job`.  A panic is caught,
/// stashed, and poisons the group: later chunk bodies are skipped (their
/// chunks still *count* as complete, so the barrier keeps advancing and
/// the dispatch drains instead of deadlocking).
fn run_fused_chunk(job: &JobCore, barrier: &FusedBarrier, pass: usize, c: usize) {
    if barrier.poisoned.load(Ordering::Relaxed) {
        return;
    }
    let Task::Fused(task) = job.task else {
        unreachable!("fused drain on a plain job");
    };
    let task = unsafe { &*task };
    let lo = c * job.chunk_len;
    let hi = ((c + 1) * job.chunk_len).min(job.len);
    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| task(pass, lo, hi))) {
        barrier.poisoned.store(true, Ordering::Relaxed);
        let mut slot = job.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// Claims and runs chunks of `job` until this participant finds none left
/// to claim (for fused jobs: until every pass has completed).
fn drain_chunks(job: &JobCore) {
    match &job.queue {
        Queue::Shared { next, n_chunks } => loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= *n_chunks {
                return;
            }
            run_chunk(job, c);
        },
        Queue::Stealing {
            ranges,
            slots,
            n_slots,
        } => drain_stealing(ranges, slots, *n_slots, |c| run_chunk(job, c)),
        Queue::FusedShared {
            next,
            n_chunks,
            passes,
            barrier,
        } => {
            // A participant may join late (workers wake at their own pace):
            // it starts at whatever pass is current, which is exactly the
            // set of chunks still claimable.
            let mut pass = barrier.current_pass.load(Ordering::Acquire) as usize;
            while pass < *passes {
                loop {
                    let c = next[pass].fetch_add(1, Ordering::Relaxed);
                    if c >= *n_chunks {
                        break;
                    }
                    run_fused_chunk(job, barrier, pass, c);
                    barrier.finish_chunk(*n_chunks, pass);
                }
                pass = barrier.wait_past(pass);
            }
        }
        Queue::FusedStealing {
            ranges,
            slots,
            n_slots,
            n_chunks,
            passes,
            barrier,
        } => {
            let mut pass = barrier.current_pass.load(Ordering::Acquire) as usize;
            while pass < *passes {
                drain_stealing(&ranges[pass], &slots[pass], *n_slots, |c| {
                    run_fused_chunk(job, barrier, pass, c);
                    barrier.finish_chunk(*n_chunks, pass);
                });
                pass = barrier.wait_past(pass);
            }
        }
    }
}

/// Steals the upper half of some other slot's remaining range.  A CAS
/// failure means the victim's range just changed — reload and retry on the
/// spot (lock-free: failure implies someone else made progress).  Returns
/// `None` after one full cycle with nothing left to steal; a range stolen
/// concurrently but not yet re-published is invisible here, which only
/// makes this participant retire early — the thief holding it still runs
/// every chunk before the dispatch completes.
///
/// Only the first `live` slots can hold work (the initial partition plus
/// every claimed participant slot), so the scan stops there instead of
/// walking all [`STEAL_SLOTS`] entries.
fn steal_half(ranges: &[AtomicU64; STEAL_SLOTS], me: usize, live: usize) -> Option<(u32, u32)> {
    for off in 1..=live {
        let v = (me + off) % live;
        if v == me {
            continue;
        }
        let mut cur = ranges[v].load(Ordering::Relaxed);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                break;
            }
            // The victim keeps the front half it is working towards; the
            // thief takes [mid, hi).  When one chunk remains, mid == lo and
            // the thief takes it whole — the victim has already popped the
            // chunk it is currently executing, so nothing is run twice.
            let mid = lo + (hi - lo) / 2;
            match ranges[v].compare_exchange_weak(
                cur,
                pack(lo, mid),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some((mid, hi)),
                Err(now) => cur = now,
            }
        }
    }
    None
}

/// The work-assisting participant loop: pop chunks off the front of the
/// own range; when it drains, steal half of a victim's remainder, publish
/// it as the own range (so further thieves can split it again), and keep
/// popping.  Retires when a full victim scan finds nothing stealable.
/// `run` receives each claimed chunk index (plain jobs run the chunk body
/// directly; fused jobs also count it towards the pass barrier).
fn drain_stealing(
    ranges: &[AtomicU64; STEAL_SLOTS],
    slots: &AtomicUsize,
    n_slots: usize,
    run: impl Fn(usize),
) {
    let slot = slots.fetch_add(1, Ordering::Relaxed);
    // Slots that may hold work: the initial partition plus every claimed
    // participant slot (a thief republishes stolen ranges into its own
    // slot).  Re-read per scan below, since later participants may claim
    // slots after this one starts.
    let live = |slots: &AtomicUsize| {
        (slots.load(Ordering::Relaxed))
            .clamp(n_slots, STEAL_SLOTS)
            .max(1)
    };
    if slot >= STEAL_SLOTS {
        // More participants than slots — unreachable while the pool caps
        // workers at STEAL_SLOTS − 1, but degrade gracefully: act as a
        // pure thief, draining each stolen range privately.
        while let Some((lo, hi)) = steal_half(ranges, STEAL_SLOTS, live(slots)) {
            for c in lo..hi {
                run(c as usize);
            }
        }
        return;
    }
    loop {
        // Pop the lowest unclaimed chunk of the own range.  The CAS races
        // only with thieves halving this range's tail; either side retries
        // on failure, and every transition preserves "the range holds
        // exactly the unclaimed chunks of this slot".
        let mut cur = ranges[slot].load(Ordering::Relaxed);
        let claimed = loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                break None;
            }
            match ranges[slot].compare_exchange_weak(
                cur,
                pack(lo + 1, hi),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break Some(lo),
                Err(now) => cur = now,
            }
        };
        match claimed {
            Some(c) => run(c as usize),
            None => match steal_half(ranges, slot, live(slots)) {
                // Publish the stolen range before draining it, so other
                // idle participants can assist on it in turn.
                Some((lo, hi)) => ranges[slot].store(pack(lo, hi), Ordering::Relaxed),
                None => return,
            },
        }
    }
}

fn worker_loop(shared: &'static Shared) {
    IN_POOL.with(|f| f.set(true));
    let mut seen_epoch = 0u64;
    let mut guard = shared.state.lock().unwrap();
    loop {
        if let Some(jref) = guard.job {
            if jref.epoch != seen_epoch {
                seen_epoch = jref.epoch;
                guard.active += 1;
                drop(guard);
                drain_chunks(unsafe { &*jref.job });
                guard = shared.state.lock().unwrap();
                guard.active -= 1;
                if guard.active == 0 {
                    shared.done_cv.notify_all();
                }
                continue;
            }
        }
        guard = shared.work_cv.wait(guard).unwrap();
    }
}

/// Unpublishes the job and waits out active workers — in `Drop`, so the job
/// record cannot leave the caller's stack early even if the caller's own
/// chunk panics.
struct CompletionGuard {
    shared: &'static Shared,
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        let mut guard = self.shared.state.lock().unwrap();
        // Unpublish first: a worker that has not yet observed the job must
        // never start it once we begin waiting.
        guard.job = None;
        while guard.active > 0 {
            guard = self.shared.done_cv.wait(guard).unwrap();
        }
        // Wake callers queued for the dispatch slot.
        self.shared.done_cv.notify_all();
    }
}

/// Restores the caller's reentrancy flag even on unwind.
struct FlagGuard;

impl Drop for FlagGuard {
    fn drop(&mut self) {
        IN_POOL.with(|f| f.set(false));
    }
}

/// Runs `f(lo, hi)` over `[0, len)` split into contiguous chunks of
/// `chunk_len` items, on up to `max_threads` threads (the caller
/// participates and counts as one).  Blocks until every chunk has finished.
///
/// Chunk boundaries are a pure function of `(len, chunk_len)`, and chunks
/// address disjoint index ranges, so any writes keyed by index are
/// scheduling-independent.  Runs inline when parallelism cannot help (one
/// thread, one chunk) or when called from inside another pool job.
pub fn run<F>(len: usize, chunk_len: usize, max_threads: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    dispatch(len, chunk_len, max_threads, false, f)
}

/// [`run`] with the work-stealing chunk discipline: identical chunk
/// boundaries and completion guarantees, but chunks are pre-partitioned
/// into one contiguous range per participating thread and idle threads
/// steal-half from the busiest survivors instead of contending on one
/// shared counter.  Pays off when per-chunk costs are skewed (one hot
/// range) or the shared counter itself becomes the bottleneck.
pub fn run_stealing<F>(len: usize, chunk_len: usize, max_threads: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    dispatch(len, chunk_len, max_threads, true, f)
}

/// Runs a **fused group** of `passes` passes over `[0, len)`: pass `p`
/// calls `f(p, lo, hi)` for every chunk, all passes share one pool
/// dispatch (one parked-condvar wakeup), and a chunk-counting barrier
/// separates the passes — pass `p + 1` starts only after every chunk of
/// pass `p` has completed, with the writes of pass `p` visible.  Chunk
/// boundaries are the same pure function of `(len, chunk_len)` as [`run`]'s
/// and are identical in every pass, so a fused group is observably
/// equivalent to `passes` consecutive [`run`] calls minus the per-pass
/// dispatch overhead.
///
/// A panic in any chunk body poisons the group — the remaining chunk
/// bodies are skipped while the group drains — and the first payload is
/// re-thrown here.  Runs all passes inline (in order) when parallelism
/// cannot help (one thread, one chunk) or when called from inside another
/// pool job.
///
/// # Panics
///
/// If `passes` exceeds [`MAX_FUSED_PASSES`].
pub fn run_fused<F>(len: usize, chunk_len: usize, max_threads: usize, passes: usize, f: F)
where
    F: Fn(usize, usize, usize) + Sync,
{
    dispatch_fused(len, chunk_len, max_threads, passes, false, f)
}

/// [`run_fused`] with the work-stealing chunk discipline of
/// [`run_stealing`]: every pass gets its own pre-partitioned per-slot
/// ranges (allocated up front for the whole group, so a laggard thief can
/// never race a range reuse), separated by the same inter-pass barrier.
///
/// # Panics
///
/// If `passes` exceeds [`MAX_FUSED_PASSES`].
pub fn run_fused_stealing<F>(len: usize, chunk_len: usize, max_threads: usize, passes: usize, f: F)
where
    F: Fn(usize, usize, usize) + Sync,
{
    dispatch_fused(len, chunk_len, max_threads, passes, true, f)
}

/// Initial stealing partition: `threads` contiguous chunk ranges of (near)
/// equal size; the remaining slots start empty and are populated by steals.
fn partition(n_chunks: usize, threads: usize) -> [AtomicU64; STEAL_SLOTS] {
    let per = n_chunks.div_ceil(threads);
    std::array::from_fn(|s| {
        let lo = (s * per).min(n_chunks);
        let hi = ((s + 1) * per).min(n_chunks);
        AtomicU64::new(if s < threads {
            pack(lo as u32, hi as u32)
        } else {
            0
        })
    })
}

fn dispatch<F>(len: usize, chunk_len: usize, max_threads: usize, stealing: bool, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    if len == 0 {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let n_chunks = len.div_ceil(chunk_len);
    let threads = max_threads.min(MAX_POOL_THREADS).min(n_chunks);
    if threads <= 1 || IN_POOL.with(|g| g.get()) {
        f(0, len);
        return;
    }

    // The stealing ranges pack chunk indexes into u32 halves; a dispatch
    // past that (> 4 G chunks) falls back to the shared counter, which
    // handles any usize — correctness over the scheduling nicety.
    let queue = if stealing && n_chunks <= u32::MAX as usize {
        // The whole scheduler state lives in this stack array.
        Queue::Stealing {
            ranges: partition(n_chunks, threads),
            slots: AtomicUsize::new(0),
            n_slots: threads,
        }
    } else {
        Queue::Shared {
            next: AtomicUsize::new(0),
            n_chunks,
        }
    };

    let job = JobCore {
        queue,
        chunk_len,
        len,
        // Lifetime erasure: the completion guard inside `execute` keeps `f`
        // (and this record) alive until no worker can reach them.
        task: Task::Plain(unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, usize) + Sync),
                *const (dyn Fn(usize, usize) + Sync),
            >(&f)
        }),
        panic: Mutex::new(None),
    };
    execute(&job, threads);
}

fn dispatch_fused<F>(
    len: usize,
    chunk_len: usize,
    max_threads: usize,
    passes: usize,
    stealing: bool,
    f: F,
) where
    F: Fn(usize, usize, usize) + Sync,
{
    assert!(
        passes <= MAX_FUSED_PASSES,
        "fused dispatch of {passes} passes exceeds MAX_FUSED_PASSES ({MAX_FUSED_PASSES})"
    );
    if len == 0 || passes == 0 {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let n_chunks = len.div_ceil(chunk_len);
    let threads = max_threads.min(MAX_POOL_THREADS).min(n_chunks);
    if threads <= 1 || IN_POOL.with(|g| g.get()) {
        // Inline: program order is the barrier.  A panic skips the
        // remaining passes and unwinds, like the pooled poisoned path.
        for pass in 0..passes {
            f(pass, 0, len);
        }
        return;
    }

    // Same u32-packing fallback as the plain dispatch.
    let queue = if stealing && n_chunks <= u32::MAX as usize {
        Queue::FusedStealing {
            ranges: std::array::from_fn(|_| partition(n_chunks, threads)),
            slots: std::array::from_fn(|_| AtomicUsize::new(0)),
            n_slots: threads,
            n_chunks,
            passes,
            barrier: FusedBarrier::new(),
        }
    } else {
        Queue::FusedShared {
            next: std::array::from_fn(|_| AtomicUsize::new(0)),
            n_chunks,
            passes,
            barrier: FusedBarrier::new(),
        }
    };

    let job = JobCore {
        queue,
        chunk_len,
        len,
        task: Task::Fused(unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, usize, usize) + Sync),
                *const (dyn Fn(usize, usize, usize) + Sync),
            >(&f)
        }),
        panic: Mutex::new(None),
    };
    execute(&job, threads);
}

/// Publishes `job`, participates in draining it, waits out the workers,
/// and re-throws any chunk panic — the shared tail of every pooled
/// dispatch.  For fused jobs the drain loop inside [`drain_chunks`] only
/// returns once every pass has completed, so the completion protocol is
/// identical for both job kinds.
fn execute(job: &JobCore, threads: usize) {
    let shared = shared();
    {
        let mut guard = shared.state.lock().unwrap();
        // Serialize dispatches: wait for the slot.
        while guard.job.is_some() {
            guard = shared.done_cv.wait(guard).unwrap();
        }
        // Top up the worker set to `threads - 1` helpers.
        while guard.workers < threads - 1 {
            guard.workers += 1;
            thread::Builder::new()
                .name(format!("qrqw-pool-{}", guard.workers))
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn pool worker");
        }
        guard.epoch += 1;
        guard.job = Some(JobRef {
            job,
            epoch: guard.epoch,
        });
        shared.work_cv.notify_all();
    }

    let completion = CompletionGuard { shared };
    {
        let _flag = FlagGuard;
        IN_POOL.with(|g| g.set(true));
        drain_chunks(job);
    }
    drop(completion);

    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        panic::resume_unwind(payload);
    }
}

/// Number of worker threads currently spawned (for tests/telemetry).
pub fn spawned_workers() -> usize {
    shared().state.lock().unwrap().workers
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 100_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run(n, 1024, 4, |lo, hi| {
            for h in &hits[lo..hi] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn oversubscribed_threads_spawn_workers_even_on_one_core() {
        run(10_000, 512, 4, |_lo, _hi| {});
        assert!(spawned_workers() >= 3);
    }

    #[test]
    fn chunk_boundaries_are_aligned_and_contiguous() {
        let seen = Mutex::new(Vec::new());
        run(10_000, 1 << 8, 4, |lo, hi| {
            assert_eq!(lo % (1 << 8), 0);
            seen.lock().unwrap().push((lo, hi));
        });
        let mut ranges = seen.into_inner().unwrap();
        ranges.sort_unstable();
        let mut expect = 0;
        for (lo, hi) in ranges {
            assert_eq!(lo, expect);
            expect = hi;
        }
        assert_eq!(expect, 10_000);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let caught = panic::catch_unwind(|| {
            run(50_000, 128, 4, |lo, _hi| {
                if lo >= 25_000 {
                    panic!("boom at {lo}");
                }
            });
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.starts_with("boom at"), "unexpected payload: {msg}");
    }

    #[test]
    fn nested_run_degrades_to_inline() {
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        run(8192, 1024, 4, |lo, hi| {
            outer.fetch_add(hi - lo, Ordering::Relaxed);
            run(10, 1, 4, |l, h| {
                inner.fetch_add(h - l, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 8192);
        assert_eq!(inner.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn back_to_back_jobs_reuse_the_pool() {
        // Prime the pool, then check that 50 further identical dispatches
        // spawn no additional workers: `run` only tops the pool up to
        // `threads - 1`, which the priming call already reached.
        run(4096, 256, 4, |_lo, _hi| {});
        let primed = spawned_workers();
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            run(4096, 256, 4, |lo, hi| {
                sum.fetch_add((lo..hi).sum::<usize>(), Ordering::Relaxed);
            });
            assert_eq!(
                sum.load(Ordering::Relaxed),
                4095 * 4096 / 2,
                "round {round}"
            );
        }
        // Concurrent tests may request more threads, but repeating *this*
        // job can at most leave the pool where some other request put it.
        assert!(spawned_workers() <= primed.max(MAX_POOL_THREADS - 1));
        assert!(primed >= 3);
    }

    #[test]
    fn concurrent_dispatchers_serialize_safely() {
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..20 {
                        let local = AtomicUsize::new(0);
                        run(5000, 500, 3, |lo, hi| {
                            local.fetch_add(hi - lo, Ordering::Relaxed);
                        });
                        assert_eq!(local.load(Ordering::Relaxed), 5000);
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn stealing_covers_every_index_exactly_once() {
        let n = 100_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run_stealing(n, 1024, 4, |lo, hi| {
            for h in &hits[lo..hi] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn stealing_chunk_boundaries_match_the_chunked_discipline() {
        // The determinism contract: chunk boundaries are a pure function of
        // (len, chunk_len), identical under both disciplines — only the
        // chunk→thread assignment may differ.
        let collect = |steal: bool| {
            let seen = Mutex::new(Vec::new());
            let body = |lo: usize, hi: usize| {
                seen.lock().unwrap().push((lo, hi));
            };
            if steal {
                run_stealing(100_000, 1 << 9, 5, body);
            } else {
                run(100_000, 1 << 9, 5, body);
            }
            let mut ranges = seen.into_inner().unwrap();
            ranges.sort_unstable();
            ranges
        };
        let stolen = collect(true);
        assert_eq!(stolen, collect(false));
        let mut expect = 0;
        for (lo, hi) in stolen {
            assert_eq!(lo, expect);
            assert_eq!(lo % (1 << 9), 0);
            expect = hi;
        }
        assert_eq!(expect, 100_000);
    }

    #[test]
    fn stealing_redistributes_a_skewed_range() {
        // All the work sits in the first slot's initial range.  With the
        // pre-partitioned ranges and no stealing the other threads would
        // retire instantly; the steal-half loop must let them run chunks
        // from the hot range (observable as > 1 distinct draining thread)
        // while still covering every index once.
        let n = 1 << 16;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let drainers = Mutex::new(std::collections::HashSet::new());
        run_stealing(n, 64, 8, |lo, hi| {
            drainers.lock().unwrap().insert(thread::current().id());
            for (i, hit) in hits.iter().enumerate().take(hi).skip(lo) {
                // Skew: early indices are ~1000× heavier.
                let spins = if i < n / 8 { 1000 } else { 1 };
                for s in 0..spins {
                    std::hint::black_box(s);
                }
                hit.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        // On any host this pool can run on, at least the caller plus one
        // worker participate in a 1024-chunk job.
        assert!(
            drainers.lock().unwrap().len() >= 2,
            "stealing dispatch must involve more than one thread"
        );
    }

    #[test]
    fn stealing_worker_panic_propagates_to_caller() {
        let caught = panic::catch_unwind(|| {
            run_stealing(50_000, 128, 4, |lo, _hi| {
                if lo >= 25_000 {
                    panic!("steal boom at {lo}");
                }
            });
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.starts_with("steal boom"), "unexpected payload: {msg}");
    }

    #[test]
    fn stealing_nested_inside_a_pool_job_degrades_to_inline() {
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        run(8192, 1024, 4, |lo, hi| {
            outer.fetch_add(hi - lo, Ordering::Relaxed);
            run_stealing(10, 1, 4, |l, h| {
                inner.fetch_add(h - l, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 8192);
        assert_eq!(inner.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn stealing_with_more_threads_than_chunks_still_covers_everything() {
        // 3 chunks, 8 requested threads: participants beyond the partition
        // start with empty ranges and must steal (or retire) cleanly.
        let total = AtomicUsize::new(0);
        run_stealing(3000, 1024, 8, |lo, hi| {
            total.fetch_add(hi - lo, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 3000);
    }

    #[test]
    fn steal_half_takes_the_upper_half_and_the_last_chunk_whole() {
        let ranges: [AtomicU64; STEAL_SLOTS] = std::array::from_fn(|_| AtomicU64::new(0));
        ranges[0].store(pack(2, 10), Ordering::Relaxed);
        // Victim keeps [2, 6), thief gets [6, 10).
        assert_eq!(steal_half(&ranges, 1, 2), Some((6, 10)));
        assert_eq!(unpack(ranges[0].load(Ordering::Relaxed)), (2, 6));
        ranges[0].store(pack(7, 8), Ordering::Relaxed);
        // A single remaining chunk is stolen whole.
        assert_eq!(steal_half(&ranges, 1, 2), Some((7, 8)));
        assert_eq!(unpack(ranges[0].load(Ordering::Relaxed)), (7, 7));
        assert_eq!(steal_half(&ranges, 1, 2), None, "nothing left to steal");
        // A live bound below a populated slot's index hides it — the bound
        // must always cover the initial partition (drain_stealing clamps).
        ranges[3].store(pack(0, 4), Ordering::Relaxed);
        assert_eq!(steal_half(&ranges, 1, 4), Some((2, 4)));
    }

    #[test]
    fn fused_passes_cover_every_index_once_per_pass() {
        let n = 60_000;
        let passes = 3;
        let hits: Vec<AtomicUsize> = (0..n * passes).map(|_| AtomicUsize::new(0)).collect();
        run_fused(n, 512, 4, passes, |pass, lo, hi| {
            for h in &hits[pass * n + lo..pass * n + hi] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn fused_stealing_passes_cover_every_index_once_per_pass() {
        let n = 60_000;
        let passes = 3;
        let hits: Vec<AtomicUsize> = (0..n * passes).map(|_| AtomicUsize::new(0)).collect();
        run_fused_stealing(n, 512, 4, passes, |pass, lo, hi| {
            for h in &hits[pass * n + lo..pass * n + hi] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn fused_barrier_makes_earlier_pass_writes_visible() {
        // Pass 1 sums what pass 0 wrote with relaxed stores; the inter-pass
        // barrier must make every element visible, under both disciplines.
        let n = 100_000;
        let cells: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let sum = AtomicU64::new(0);
        for steal in [false, true] {
            sum.store(0, Ordering::Relaxed);
            cells.iter().for_each(|c| c.store(0, Ordering::Relaxed));
            let body = |pass: usize, lo: usize, hi: usize| {
                if pass == 0 {
                    for c in &cells[lo..hi] {
                        c.store(1, Ordering::Relaxed);
                    }
                } else {
                    let local: u64 = cells[lo..hi]
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .sum();
                    sum.fetch_add(local, Ordering::Relaxed);
                }
            };
            if steal {
                run_fused_stealing(n, 256, 8, 2, body);
            } else {
                run_fused(n, 256, 8, 2, body);
            }
            assert_eq!(sum.load(Ordering::Relaxed), n as u64, "steal={steal}");
        }
    }

    #[test]
    fn fused_chunk_boundaries_match_the_unfused_dispatch_in_every_pass() {
        // The determinism contract extended to fusion: every pass of a
        // fused group sees exactly the boundaries a plain dispatch of the
        // same (len, chunk_len) would produce.
        let unfused = {
            let seen = Mutex::new(Vec::new());
            run(100_000, 1 << 9, 5, |lo, hi| {
                seen.lock().unwrap().push((lo, hi));
            });
            let mut ranges = seen.into_inner().unwrap();
            ranges.sort_unstable();
            ranges
        };
        for steal in [false, true] {
            let seen = Mutex::new(vec![Vec::new(); 3]);
            let body = |pass: usize, lo: usize, hi: usize| {
                seen.lock().unwrap()[pass].push((lo, hi));
            };
            if steal {
                run_fused_stealing(100_000, 1 << 9, 5, 3, body);
            } else {
                run_fused(100_000, 1 << 9, 5, 3, body);
            }
            for (pass, mut ranges) in seen.into_inner().unwrap().into_iter().enumerate() {
                ranges.sort_unstable();
                assert_eq!(ranges, unfused, "steal={steal} pass={pass}");
            }
        }
    }

    #[test]
    fn fused_panic_poisons_the_group_and_propagates() {
        // A panic in the middle pass: the final pass's bodies are skipped
        // (the poison flag is published by the same release/acquire edge
        // that orders the passes), the group drains without deadlocking,
        // and the payload reaches the caller.
        let ran_after = AtomicUsize::new(0);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            run_fused(50_000, 128, 4, 3, |pass, lo, _hi| match pass {
                1 if lo == 0 => panic!("fused boom"),
                2 => {
                    ran_after.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().unwrap();
        assert!(msg.contains("fused boom"), "unexpected payload: {msg}");
        assert_eq!(
            ran_after.load(Ordering::Relaxed),
            0,
            "pass bodies after the poison must be skipped"
        );
    }

    #[test]
    fn fused_stealing_panic_propagates() {
        let caught = panic::catch_unwind(|| {
            run_fused_stealing(50_000, 128, 4, 2, |pass, lo, _hi| {
                if pass == 1 && lo >= 25_000 {
                    panic!("fused steal boom at {lo}");
                }
            });
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.starts_with("fused steal boom"), "unexpected: {msg}");
    }

    #[test]
    fn fused_nested_inside_a_pool_job_degrades_to_inline() {
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        run(8192, 1024, 4, |lo, hi| {
            outer.fetch_add(hi - lo, Ordering::Relaxed);
            run_fused(10, 1, 4, 2, |_pass, l, h| {
                inner.fetch_add(h - l, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 8192);
        assert_eq!(inner.load(Ordering::Relaxed), 2 * 80);
    }

    #[test]
    fn fused_with_zero_passes_or_zero_len_is_a_no_op() {
        let hits = AtomicUsize::new(0);
        run_fused(10_000, 64, 4, 0, |_, _, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        run_fused(0, 64, 4, 3, |_, _, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    #[should_panic(expected = "MAX_FUSED_PASSES")]
    fn fused_with_too_many_passes_is_rejected() {
        run_fused(10_000, 64, 2, MAX_FUSED_PASSES + 1, |_, _, _| {});
    }

    #[test]
    fn back_to_back_fused_groups_stay_correct() {
        for steal in [false, true] {
            for round in 0..50 {
                let sum = AtomicU64::new(0);
                let body = |pass: usize, lo: usize, hi: usize| {
                    sum.fetch_add(((hi - lo) * (pass + 1)) as u64, Ordering::Relaxed);
                };
                if steal {
                    run_fused_stealing(8192, 256, 4, 3, body);
                } else {
                    run_fused(8192, 256, 4, 3, body);
                }
                assert_eq!(
                    sum.load(Ordering::Relaxed),
                    8192 * 6,
                    "steal={steal} round={round}"
                );
            }
        }
    }

    #[test]
    fn early_exit_flag_skips_remaining_chunks() {
        // A cooperative cancel flag: late chunks observe it and return
        // immediately, so the pool supports short-circuiting scans.
        let evaluated = AtomicUsize::new(0);
        let found = AtomicBool::new(false);
        run(1 << 20, 1024, 4, |lo, hi| {
            if found.load(Ordering::Relaxed) {
                return;
            }
            for i in lo..hi {
                evaluated.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    found.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        assert!(found.load(Ordering::Relaxed));
        assert!(
            evaluated.load(Ordering::Relaxed) < 1 << 20,
            "a first-chunk hit must not scan the whole range"
        );
    }
}
