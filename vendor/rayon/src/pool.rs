//! The persistent worker pool behind every parallel operation.
//!
//! The first version of this stand-in spawned fresh `std::thread::scope`
//! threads for every parallel call, which put a thread-creation syscall on
//! the hot path of every single machine step.  This module replaces that
//! with rayon's actual runtime shape: a process-wide set of worker threads
//! spawned once and parked on a condvar between jobs.  Dispatching a job is
//! a mutex lock plus a `notify_all`; workers and the caller then race to
//! claim contiguous chunks of the index space with one `fetch_add` per
//! chunk, so load balancing is dynamic but results stay index-addressed
//! (and therefore deterministic).
//!
//! Safety model: a [`run`] call publishes a lifetime-erased pointer to a
//! stack-allocated job record.  The pointer is only handed to workers under
//! the pool mutex while the job is published, and [`run`] does not return
//! (or unwind) until it has unpublished the job *and* observed every active
//! worker finish — so the record, and the borrowed closure inside it,
//! strictly outlive all worker access.  Worker panics are caught per chunk
//! and re-thrown on the calling thread.

use std::any::Any;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

/// Upper bound on pool workers: thread-count overrides above this are
/// clamped (oversubscription far past the core count stops being useful,
/// and the tests only need "more threads than cores" to exercise chunked
/// dispatch on small hosts).
pub const MAX_POOL_THREADS: usize = 64;

/// Shares a raw pointer with pool chunks that access disjoint index
/// ranges.  The user must guarantee that concurrent accesses through it
/// are disjoint and that the pointee outlives the dispatch ([`run`] is a
/// barrier, so outliving the `run` call suffices).
pub struct SendPtr<T>(pub *mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// One published job: a lifetime-erased chunk runner plus claim/completion
/// bookkeeping.  Lives on the dispatching caller's stack for the duration
/// of the [`run`] call.
struct JobCore {
    /// Next unclaimed chunk index (`fetch_add` to claim).
    next: AtomicUsize,
    /// Total number of chunks.
    n_chunks: usize,
    /// Items per chunk (the last chunk may be shorter).
    chunk_len: usize,
    /// Total number of items.
    len: usize,
    /// The chunk body, called as `task(lo, hi)` for each claimed chunk.
    /// Lifetime-erased; validity is guaranteed by the completion protocol.
    task: *const (dyn Fn(usize, usize) + Sync),
    /// First panic payload caught in a worker chunk, re-thrown by the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// What the pool mutex protects.
struct State {
    /// Monotonic dispatch counter, so a worker never re-enters a job it has
    /// already drained.
    epoch: u64,
    /// The currently published job, if any (dispatches are serialized).
    job: Option<JobRef>,
    /// Workers currently executing chunks of the published job.
    active: usize,
    /// Worker threads spawned so far.
    workers: usize,
}

/// Pointer to the published job, tagged with its dispatch epoch.
#[derive(Clone, Copy)]
struct JobRef {
    job: *const JobCore,
    epoch: u64,
}

// The raw pointer is only dereferenced while the completion protocol keeps
// the pointee alive; the pointee's shared fields are atomics and mutexes.
unsafe impl Send for JobRef {}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// Callers park here: for job completion, and for their turn to publish.
    done_cv: Condvar,
}

static POOL: OnceLock<&'static Shared> = OnceLock::new();

fn shared() -> &'static Shared {
    POOL.get_or_init(|| {
        Box::leak(Box::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                workers: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }))
    })
}

thread_local! {
    /// True on pool workers and on callers while they participate in a job:
    /// nested parallel calls from inside a chunk body run inline instead of
    /// deadlocking on the (serialized) dispatch slot.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Claims and runs chunks of `job` until none remain.  Panics from the
/// chunk body are caught and stashed in the job record.
fn drain_chunks(job: &JobCore) {
    let task = unsafe { &*job.task };
    loop {
        let c = job.next.fetch_add(1, Ordering::Relaxed);
        if c >= job.n_chunks {
            return;
        }
        let lo = c * job.chunk_len;
        let hi = ((c + 1) * job.chunk_len).min(job.len);
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| task(lo, hi))) {
            let mut slot = job.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }
}

fn worker_loop(shared: &'static Shared) {
    IN_POOL.with(|f| f.set(true));
    let mut seen_epoch = 0u64;
    let mut guard = shared.state.lock().unwrap();
    loop {
        if let Some(jref) = guard.job {
            if jref.epoch != seen_epoch {
                seen_epoch = jref.epoch;
                guard.active += 1;
                drop(guard);
                drain_chunks(unsafe { &*jref.job });
                guard = shared.state.lock().unwrap();
                guard.active -= 1;
                if guard.active == 0 {
                    shared.done_cv.notify_all();
                }
                continue;
            }
        }
        guard = shared.work_cv.wait(guard).unwrap();
    }
}

/// Unpublishes the job and waits out active workers — in `Drop`, so the job
/// record cannot leave the caller's stack early even if the caller's own
/// chunk panics.
struct CompletionGuard {
    shared: &'static Shared,
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        let mut guard = self.shared.state.lock().unwrap();
        // Unpublish first: a worker that has not yet observed the job must
        // never start it once we begin waiting.
        guard.job = None;
        while guard.active > 0 {
            guard = self.shared.done_cv.wait(guard).unwrap();
        }
        // Wake callers queued for the dispatch slot.
        self.shared.done_cv.notify_all();
    }
}

/// Restores the caller's reentrancy flag even on unwind.
struct FlagGuard;

impl Drop for FlagGuard {
    fn drop(&mut self) {
        IN_POOL.with(|f| f.set(false));
    }
}

/// Runs `f(lo, hi)` over `[0, len)` split into contiguous chunks of
/// `chunk_len` items, on up to `max_threads` threads (the caller
/// participates and counts as one).  Blocks until every chunk has finished.
///
/// Chunk boundaries are a pure function of `(len, chunk_len)`, and chunks
/// address disjoint index ranges, so any writes keyed by index are
/// scheduling-independent.  Runs inline when parallelism cannot help (one
/// thread, one chunk) or when called from inside another pool job.
pub fn run<F>(len: usize, chunk_len: usize, max_threads: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    if len == 0 {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let n_chunks = len.div_ceil(chunk_len);
    let threads = max_threads.min(MAX_POOL_THREADS).min(n_chunks);
    if threads <= 1 || IN_POOL.with(|g| g.get()) {
        f(0, len);
        return;
    }

    let shared = shared();
    let job = JobCore {
        next: AtomicUsize::new(0),
        n_chunks,
        chunk_len,
        len,
        // Lifetime erasure: the completion guard below keeps `f` (and this
        // record) alive until no worker can reach them.
        task: unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, usize) + Sync),
                *const (dyn Fn(usize, usize) + Sync),
            >(&f)
        },
        panic: Mutex::new(None),
    };

    {
        let mut guard = shared.state.lock().unwrap();
        // Serialize dispatches: wait for the slot.
        while guard.job.is_some() {
            guard = shared.done_cv.wait(guard).unwrap();
        }
        // Top up the worker set to `threads - 1` helpers.
        while guard.workers < threads - 1 {
            guard.workers += 1;
            thread::Builder::new()
                .name(format!("qrqw-pool-{}", guard.workers))
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn pool worker");
        }
        guard.epoch += 1;
        guard.job = Some(JobRef {
            job: &job,
            epoch: guard.epoch,
        });
        shared.work_cv.notify_all();
    }

    let completion = CompletionGuard { shared };
    {
        let _flag = FlagGuard;
        IN_POOL.with(|g| g.set(true));
        drain_chunks(&job);
    }
    drop(completion);

    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        panic::resume_unwind(payload);
    }
}

/// Number of worker threads currently spawned (for tests/telemetry).
pub fn spawned_workers() -> usize {
    shared().state.lock().unwrap().workers
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 100_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run(n, 1024, 4, |lo, hi| {
            for h in &hits[lo..hi] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn oversubscribed_threads_spawn_workers_even_on_one_core() {
        run(10_000, 512, 4, |_lo, _hi| {});
        assert!(spawned_workers() >= 3);
    }

    #[test]
    fn chunk_boundaries_are_aligned_and_contiguous() {
        let seen = Mutex::new(Vec::new());
        run(10_000, 1 << 8, 4, |lo, hi| {
            assert_eq!(lo % (1 << 8), 0);
            seen.lock().unwrap().push((lo, hi));
        });
        let mut ranges = seen.into_inner().unwrap();
        ranges.sort_unstable();
        let mut expect = 0;
        for (lo, hi) in ranges {
            assert_eq!(lo, expect);
            expect = hi;
        }
        assert_eq!(expect, 10_000);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let caught = panic::catch_unwind(|| {
            run(50_000, 128, 4, |lo, _hi| {
                if lo >= 25_000 {
                    panic!("boom at {lo}");
                }
            });
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.starts_with("boom at"), "unexpected payload: {msg}");
    }

    #[test]
    fn nested_run_degrades_to_inline() {
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        run(8192, 1024, 4, |lo, hi| {
            outer.fetch_add(hi - lo, Ordering::Relaxed);
            run(10, 1, 4, |l, h| {
                inner.fetch_add(h - l, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 8192);
        assert_eq!(inner.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn back_to_back_jobs_reuse_the_pool() {
        // Prime the pool, then check that 50 further identical dispatches
        // spawn no additional workers: `run` only tops the pool up to
        // `threads - 1`, which the priming call already reached.
        run(4096, 256, 4, |_lo, _hi| {});
        let primed = spawned_workers();
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            run(4096, 256, 4, |lo, hi| {
                sum.fetch_add((lo..hi).sum::<usize>(), Ordering::Relaxed);
            });
            assert_eq!(
                sum.load(Ordering::Relaxed),
                4095 * 4096 / 2,
                "round {round}"
            );
        }
        // Concurrent tests may request more threads, but repeating *this*
        // job can at most leave the pool where some other request put it.
        assert!(spawned_workers() <= primed.max(MAX_POOL_THREADS - 1));
        assert!(primed >= 3);
    }

    #[test]
    fn concurrent_dispatchers_serialize_safely() {
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..20 {
                        let local = AtomicUsize::new(0);
                        run(5000, 500, 3, |lo, hi| {
                            local.fetch_add(hi - lo, Ordering::Relaxed);
                        });
                        assert_eq!(local.load(Ordering::Relaxed), 5000);
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn early_exit_flag_skips_remaining_chunks() {
        // A cooperative cancel flag: late chunks observe it and return
        // immediately, so the pool supports short-circuiting scans.
        let evaluated = AtomicUsize::new(0);
        let found = AtomicBool::new(false);
        run(1 << 20, 1024, 4, |lo, hi| {
            if found.load(Ordering::Relaxed) {
                return;
            }
            for i in lo..hi {
                evaluated.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    found.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        assert!(found.load(Ordering::Relaxed));
        assert!(
            evaluated.load(Ordering::Relaxed) < 1 << 20,
            "a first-chunk hit must not scan the whole range"
        );
    }
}
