//! Offline stand-in for the subset of the crates.io `rand` 0.8 API that this
//! workspace uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`] over integer ranges.
//!
//! The container this repository builds in has no access to a crates
//! registry, so the workspace vendors the few generic facilities it needs.
//! `SmallRng` is a faithful xoshiro256++ (the same generator family the real
//! `rand` 0.8 uses on 64-bit targets), seeded through SplitMix64, so streams
//! are high quality and fully deterministic per seed.

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Unbiased rejection sampling (Lemire): draw 64 bits, take the
                // widening product's high word; retry in the biased low zone.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start + ((m >> 64) as u64) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<i32> for core::ops::Range<i32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        let off = (0..span).sample_single(rng);
        (self.start as i64 + off as i64) as i32
    }
}

impl SampleRange<i64> for core::ops::Range<i64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end as i128 - self.start as i128) as u64;
        let off = (0..span).sample_single(rng);
        (self.start as i128 + off as i128) as i64
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++ seeded
    /// through SplitMix64 (matching the real `rand` 0.8 `SmallRng` family on
    /// 64-bit platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range appear"
        );
    }

    #[test]
    fn signed_and_float_sampling() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let v: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: u64 = rng.gen_range(5..5);
    }
}
