//! Offline stand-in for the subset of the crates.io `criterion` API that the
//! workspace's benches use: benchmark groups, `bench_function` with
//! `Bencher::iter`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark does a
//! warm-up call followed by `sample_size` timed iterations and prints the
//! mean and minimum wall-clock time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier, which criterion provides
/// under the same name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark performs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark (`id` may be a [`BenchmarkId`] or a plain string,
    /// as in real criterion).
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().0, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<44} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().unwrap();
    println!(
        "{label:<44} mean {:>10.3} ms   min {:>10.3} ms   ({} samples)",
        mean.as_secs_f64() * 1e3,
        min.as_secs_f64() * 1e3,
        b.samples.len()
    );
}

/// Handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` after one warm-up call.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A benchmark label with a parameter, rendered as `name/param`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates `name/param`.
    pub fn new<S: Into<String>, P: Display>(name: S, param: P) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert_eq!(runs, 4, "one warm-up plus three samples");
    }
}
