//! Property-based tests (proptest) over the core invariants of the
//! primitives and algorithms.

use proptest::prelude::*;
use qrqw_suite::algos::{
    cycle_representation, is_cyclic, is_permutation, multiple_compaction,
    random_cyclic_permutation_fast, random_permutation_qrqw, sample_sort_qrqw, sort_uniform_keys,
    QrqwHashTable,
};
use qrqw_suite::prims::{
    bitonic_sort, compact_erew, prefix_sums_inclusive, radix_sort_packed, unpack_key,
    unpack_payload,
};
use qrqw_suite::sim::{CostModel, Pram, EMPTY};
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prefix_sums_match_sequential_scan(xs in prop::collection::vec(0u64..1000, 1..300)) {
        let mut pram = Pram::new(xs.len());
        pram.memory_mut().load(0, &xs);
        let total = prefix_sums_inclusive(&mut pram, 0, xs.len());
        let mut acc = 0u64;
        let expect: Vec<u64> = xs.iter().map(|&x| { acc += x; acc }).collect();
        prop_assert_eq!(pram.memory().dump(0, xs.len()), expect);
        prop_assert_eq!(total, xs.iter().sum::<u64>());
        prop_assert_eq!(pram.trace().violations(CostModel::Erew), 0);
    }

    #[test]
    fn bitonic_sorts_any_input(xs in prop::collection::vec(0u64..1_000_000, 0..400)) {
        let mut pram = Pram::new(xs.len().max(1));
        pram.memory_mut().load(0, &xs);
        bitonic_sort(&mut pram, 0, xs.len());
        let mut expect = xs.clone();
        expect.sort_unstable();
        prop_assert_eq!(pram.memory().dump(0, xs.len()), expect);
    }

    #[test]
    fn radix_sort_is_a_stable_sort(pairs in prop::collection::vec((0u64..500, 0u64..10_000), 1..300)) {
        let words: Vec<u64> = pairs.iter().map(|&(k, p)| (k << 32) | p).collect();
        let mut pram = Pram::new(words.len());
        let packed: Vec<u64> = pairs.iter().enumerate().map(|(i, &(k, _))| qrqw_suite::prims::pack(k, i as u64)).collect();
        pram.memory_mut().load(0, &packed);
        radix_sort_packed(&mut pram, 0, packed.len(), 16);
        let out: Vec<(u64, u64)> = pram.memory().dump(0, packed.len()).into_iter()
            .map(|w| (unpack_key(w), unpack_payload(w))).collect();
        // sorted by key, and ties keep original order (stability)
        prop_assert!(out.windows(2).all(|w| w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1)));
        let _ = words;
    }

    #[test]
    fn compaction_preserves_the_multiset(mask in prop::collection::vec(any::<bool>(), 1..300)) {
        let n = mask.len();
        let mut pram = Pram::new(2 * n);
        let mut expect = Vec::new();
        for (i, &keep) in mask.iter().enumerate() {
            if keep {
                pram.memory_mut().poke(i, i as u64 + 10);
                expect.push(i as u64 + 10);
            }
        }
        let count = compact_erew(&mut pram, 0, n, n);
        prop_assert_eq!(count as usize, expect.len());
        prop_assert_eq!(pram.memory().dump(n, expect.len()), expect);
    }

    #[test]
    fn random_permutation_is_always_a_permutation(n in 1usize..600, seed in 0u64..50) {
        let mut pram = Pram::with_seed(4, seed);
        let out = random_permutation_qrqw(&mut pram, n);
        prop_assert!(is_permutation(&out.order));
    }

    #[test]
    fn cyclic_permutation_is_one_cycle(n in 2usize..400, seed in 0u64..30) {
        let mut pram = Pram::with_seed(4, seed);
        let out = random_cyclic_permutation_fast(&mut pram, n);
        prop_assert!(is_permutation(&out.successor));
        prop_assert!(is_cyclic(&out.successor));
        prop_assert_eq!(cycle_representation(&out.successor).len(), 1);
    }

    #[test]
    fn multiple_compaction_places_items_in_their_subarrays(
        labels in prop::collection::vec(0u64..20, 1..400)
    ) {
        let mut counts = vec![0u64; 20];
        for &l in &labels { counts[l as usize] += 1; }
        let mut pram = Pram::with_seed(4, 17);
        let r = multiple_compaction(&mut pram, &labels, &counts);
        prop_assert!(!r.failed);
        let mut seen = HashSet::new();
        for (item, &pos) in r.positions.iter().enumerate() {
            prop_assert!(pos != usize::MAX);
            prop_assert!(seen.insert(pos));
            let label = labels[item] as usize;
            let lo = r.layout.b_base + r.layout.subarray_offset[label];
            prop_assert!(pos >= lo && pos < lo + r.layout.subarray_len[label]);
        }
    }

    #[test]
    fn sorts_agree_with_std(keys in prop::collection::vec(0u64..(1 << 31), 1..500)) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        let mut a = Pram::with_seed(4, 3);
        prop_assert_eq!(sort_uniform_keys(&mut a, &keys), expect.clone());
        let mut b = Pram::with_seed(4, 4);
        prop_assert_eq!(sample_sort_qrqw(&mut b, &keys), expect);
    }

    #[test]
    fn hash_table_answers_membership_exactly(
        keys in prop::collection::hash_set(1u64..1_000_000, 1..200),
        probes in prop::collection::vec(1u64..1_000_000, 1..200)
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut pram = Pram::with_seed(4, 23);
        let table = QrqwHashTable::build(&mut pram, &keys);
        let set: HashSet<u64> = keys.iter().copied().collect();
        let answers = table.lookup_batch(&mut pram, &probes);
        for (q, a) in probes.iter().zip(answers) {
            prop_assert_eq!(a, set.contains(q));
        }
    }

    #[test]
    fn empty_cells_never_leak_into_compacted_output(
        vals in prop::collection::vec(prop::option::of(0u64..100), 1..200)
    ) {
        let n = vals.len();
        let mut pram = Pram::new(2 * n);
        for (i, v) in vals.iter().enumerate() {
            if let Some(x) = v {
                pram.memory_mut().poke(i, *x);
            }
        }
        let count = compact_erew(&mut pram, 0, n, n);
        let out = pram.memory().dump(n, count as usize);
        prop_assert!(out.iter().all(|&v| v != EMPTY));
        prop_assert_eq!(count as usize, vals.iter().filter(|v| v.is_some()).count());
    }
}
