//! Randomized property tests over the core invariants of the primitives and
//! algorithms.
//!
//! The build container has no crates registry, so instead of `proptest`
//! these use seeded `SmallRng` case generation: every property is exercised
//! over a couple dozen random inputs per run, deterministically per seed.

use qrqw_bench::workload::{KeyDist, KeySampler};
use qrqw_suite::algos::{
    cycle_representation, integer_sort_crqw, is_cyclic, is_permutation, multiple_compaction,
    random_cyclic_permutation_fast, random_permutation_qrqw, sample_sort_crqw, sample_sort_qrqw,
    sort_uniform_keys, QrqwHashTable,
};
use qrqw_suite::prims::{
    bitonic_sort, compact_erew, pack, prefix_sums_inclusive, radix_sort_packed,
    stable_sort_small_range, unpack_key, unpack_payload,
};
use qrqw_suite::sim::{CostModel, Machine, Pram, EMPTY};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

const CASES: u64 = 24;

fn rng_for(case: u64, salt: u64) -> SmallRng {
    SmallRng::seed_from_u64(case.wrapping_mul(0x9E37_79B9) ^ salt)
}

#[test]
fn prefix_sums_match_sequential_scan() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 1);
        let len = rng.gen_range(1..300usize);
        let xs: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1000u64)).collect();
        let mut pram = Pram::new(xs.len());
        pram.memory_mut().load(0, &xs);
        let total = prefix_sums_inclusive(&mut pram, 0, xs.len());
        let mut acc = 0u64;
        let expect: Vec<u64> = xs
            .iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect();
        assert_eq!(pram.memory().dump(0, xs.len()), expect);
        assert_eq!(total, xs.iter().sum::<u64>());
        assert_eq!(pram.trace().violations(CostModel::Erew), 0);
    }
}

#[test]
fn bitonic_sorts_any_input() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 2);
        let len = rng.gen_range(0..400usize);
        let xs: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1_000_000u64)).collect();
        let mut pram = Pram::new(xs.len().max(1));
        pram.memory_mut().load(0, &xs);
        bitonic_sort(&mut pram, 0, xs.len());
        let mut expect = xs.clone();
        expect.sort_unstable();
        assert_eq!(pram.memory().dump(0, xs.len()), expect);
    }
}

#[test]
fn radix_sort_is_a_stable_sort() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 3);
        let len = rng.gen_range(1..300usize);
        let keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0..500u64)).collect();
        let mut pram = Pram::new(len);
        let packed: Vec<u64> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| pack(k, i as u64))
            .collect();
        pram.memory_mut().load(0, &packed);
        radix_sort_packed(&mut pram, 0, packed.len(), 16);
        let out: Vec<(u64, u64)> = pram
            .memory()
            .dump(0, packed.len())
            .into_iter()
            .map(|w| (unpack_key(w), unpack_payload(w)))
            .collect();
        // sorted by key, ties keep original order (stability)
        assert!(out
            .windows(2)
            .all(|w| w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1)));
    }
}

#[test]
fn compaction_preserves_the_multiset() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 4);
        let n = rng.gen_range(1..300usize);
        let mask: Vec<bool> = (0..n).map(|_| rng.gen_range(0..2u32) == 1).collect();
        let mut pram = Pram::new(2 * n);
        let mut expect = Vec::new();
        for (i, &keep) in mask.iter().enumerate() {
            if keep {
                pram.memory_mut().poke(i, i as u64 + 10);
                expect.push(i as u64 + 10);
            }
        }
        let count = compact_erew(&mut pram, 0, n, n);
        assert_eq!(count as usize, expect.len());
        assert_eq!(pram.memory().dump(n, expect.len()), expect);
        // empty cells never leak into the compacted output
        assert!(pram
            .memory()
            .dump(n, count as usize)
            .iter()
            .all(|&v| v != EMPTY));
    }
}

#[test]
fn random_permutation_is_always_a_permutation() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 5);
        let n = rng.gen_range(1..600usize);
        let seed = rng.gen_range(0..50u64);
        let mut pram = Pram::with_seed(4, seed);
        let out = random_permutation_qrqw(&mut pram, n);
        assert!(is_permutation(&out.order), "n={n} seed={seed}");
    }
}

#[test]
fn cyclic_permutation_is_one_cycle() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 6);
        let n = rng.gen_range(2..400usize);
        let seed = rng.gen_range(0..30u64);
        let mut pram = Pram::with_seed(4, seed);
        let out = random_cyclic_permutation_fast(&mut pram, n);
        assert!(is_permutation(&out.successor));
        assert!(is_cyclic(&out.successor));
        assert_eq!(cycle_representation(&out.successor).len(), 1);
    }
}

#[test]
fn multiple_compaction_places_items_in_their_subarrays() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 7);
        let len = rng.gen_range(1..400usize);
        let labels: Vec<u64> = (0..len).map(|_| rng.gen_range(0..20u64)).collect();
        let mut counts = vec![0u64; 20];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        let mut pram = Pram::with_seed(4, 17);
        let r = multiple_compaction(&mut pram, &labels, &counts);
        assert!(!r.failed);
        let mut seen = HashSet::new();
        for (item, &pos) in r.positions.iter().enumerate() {
            assert!(pos != usize::MAX);
            assert!(seen.insert(pos));
            let label = labels[item] as usize;
            let lo = r.layout.b_base + r.layout.subarray_offset[label];
            assert!(pos >= lo && pos < lo + r.layout.subarray_len[label]);
        }
    }
}

#[test]
fn sorts_agree_with_std() {
    for case in 0..8 {
        let mut rng = rng_for(case, 8);
        let len = rng.gen_range(1..500usize);
        let keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0..(1u64 << 31))).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        let mut a = Pram::with_seed(4, 3);
        assert_eq!(sort_uniform_keys(&mut a, &keys), expect.clone());
        let mut b = Pram::with_seed(4, 4);
        assert_eq!(sample_sort_qrqw(&mut b, &keys), expect);
    }
}

/// The boundary-heavy size sweep the ported-sort properties run over:
/// degenerate inputs, the 63/64 power-of-two straddle, and a real load.
const SIZE_SWEEP: [usize; 6] = [0, 1, 2, 63, 64, 1000];

fn sweep_keys(n: usize, seed: u64, range: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..range.max(1))).collect()
}

/// Sortedness + multiset preservation: the output is exactly the std-sorted
/// input (which implies both properties at once).
fn assert_sorts_multiset(got: &[u64], input: &[u64], label: &str, n: usize, seed: u64) {
    let mut expect = input.to_vec();
    expect.sort_unstable();
    assert_eq!(got, expect, "{label} wrong (n={n}, seed={seed})");
}

#[test]
fn ported_sorts_preserve_multiset_across_size_sweep() {
    for n in SIZE_SWEEP {
        for seed in [1u64, 2, 3] {
            let keys = sweep_keys(n, seed ^ 0xABCD, 1 << 31);

            let mut m = Pram::with_seed(4, seed);
            let got = sample_sort_qrqw(&mut m, &keys);
            assert_sorts_multiset(&got, &keys, "sample_sort_qrqw", n, seed);

            let mut m = Pram::with_seed(4, seed);
            let got = sample_sort_crqw(&mut m, &keys);
            assert_sorts_multiset(&got, &keys, "sample_sort_crqw", n, seed);

            let mut m = Pram::with_seed(4, seed);
            let got = sort_uniform_keys(&mut m, &keys);
            assert_sorts_multiset(&got, &keys, "sort_uniform_keys", n, seed);

            let max_key = (n as u64).max(16);
            let small: Vec<u64> = keys.iter().map(|&k| k % max_key).collect();
            let mut m = Pram::with_seed(4, seed);
            let got = integer_sort_crqw(&mut m, &small, max_key);
            assert_sorts_multiset(&got, &small, "integer_sort_crqw", n, seed);
        }
    }
}

#[test]
fn stable_small_range_sort_preserves_multiset_and_stability_across_sweep() {
    for n in SIZE_SWEEP {
        for seed in [1u64, 2, 3] {
            let keys = sweep_keys(n, seed ^ 0x51AB, 21);
            let mut m = Pram::with_seed(4, seed);
            let base = Machine::alloc(&mut m, n.max(1));
            let words: Vec<u64> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| pack(k, i as u64))
                .collect();
            Machine::load(&mut m, base, &words);
            stable_sort_small_range(&mut m, base, n, 21);
            let out: Vec<(u64, u64)> = Machine::dump(&m, base, n)
                .into_iter()
                .map(|w| (unpack_key(w), unpack_payload(w)))
                .collect();
            let mut expect: Vec<(u64, u64)> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, i as u64))
                .collect();
            expect.sort_by_key(|&(k, _)| k); // std stable sort
            assert_eq!(out, expect, "stable sort diverged (n={n}, seed={seed})");
        }
    }
}

#[test]
fn hash_lookups_find_exactly_the_inserted_keys_across_sweep() {
    for n in SIZE_SWEEP {
        for seed in [1u64, 2, 3] {
            let keys: Vec<u64> = {
                // distinct keys below 2^31 - 1, in a seed-deterministic
                // order (HashSet iteration order is per-process random and
                // the build is sensitive to key order, so sort).
                let mut set = HashSet::new();
                let mut rng = SmallRng::seed_from_u64(seed ^ 0x6A5);
                while set.len() < n {
                    set.insert(rng.gen_range(1..(1u64 << 31) - 1));
                }
                let mut v: Vec<u64> = set.into_iter().collect();
                v.sort_unstable();
                v
            };
            let probes: Vec<u64> = (0..200u64).map(|i| i * 37 + 5).collect();
            let mut m = Pram::with_seed(4, seed);
            let table = QrqwHashTable::build(&mut m, &keys);
            let set: HashSet<u64> = keys.iter().copied().collect();
            assert!(
                table.lookup_batch(&mut m, &keys).iter().all(|&h| h),
                "an inserted key was not found (n={n}, seed={seed})"
            );
            let answers = table.lookup_batch(&mut m, &probes);
            for (q, a) in probes.iter().zip(answers) {
                assert_eq!(a, set.contains(q), "probe {q} wrong (n={n}, seed={seed})");
            }
        }
    }
}

#[test]
fn hash_table_answers_membership_exactly() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 9);
        let n_keys = rng.gen_range(1..200usize);
        let keys: Vec<u64> = {
            let mut set = HashSet::new();
            while set.len() < n_keys {
                set.insert(rng.gen_range(1..1_000_000u64));
            }
            set.into_iter().collect()
        };
        let probes: Vec<u64> = (0..rng.gen_range(1..200usize))
            .map(|_| rng.gen_range(1..1_000_000u64))
            .collect();
        let mut pram = Pram::with_seed(4, 23);
        let table = QrqwHashTable::build(&mut pram, &keys);
        let set: HashSet<u64> = keys.iter().copied().collect();
        let answers = table.lookup_batch(&mut pram, &probes);
        for (q, a) in probes.iter().zip(answers) {
            assert_eq!(a, set.contains(q));
        }
    }
}

// ---------------------------------------------------------------------------
// Key-sampler properties (qrqw_bench::workload)
// ---------------------------------------------------------------------------

/// Edge keyspaces: singleton, pair, one-below and exactly a power of two.
const EDGE_KEYSPACES: [usize; 4] = [1, 2, 63, 64];

fn skewed_dists() -> [KeyDist; 4] {
    [
        KeyDist::Zipf(0.5),
        KeyDist::Zipf(1.0),
        KeyDist::Zipf(1.5),
        KeyDist::PowerLaw,
    ]
}

#[test]
fn sampler_cdfs_are_monotone_and_reach_one() {
    for n in EDGE_KEYSPACES.into_iter().chain([1000]) {
        for dist in skewed_dists() {
            let s = KeySampler::new(dist, n);
            let cdf = s.cdf();
            assert_eq!(cdf.len(), n, "{dist:?} n={n}: one CDF entry per rank");
            assert!(cdf[0] > 0.0, "{dist:?} n={n}: head weight must be positive");
            for (i, w) in cdf.windows(2).enumerate() {
                assert!(
                    w[1] >= w[0],
                    "{dist:?} n={n}: CDF decreases at rank {i}: {} -> {}",
                    w[0],
                    w[1]
                );
            }
            assert!(
                (cdf[n - 1] - 1.0).abs() < 1e-9,
                "{dist:?} n={n}: CDF must end at 1, got {}",
                cdf[n - 1]
            );
        }
    }
}

#[test]
fn empirical_hot_key_mass_matches_the_analytic_weight() {
    // The hottest key's empirical frequency over many draws must sit within
    // a few standard errors of its analytic CDF weight.  200k draws put the
    // standard error under 1e-3 for every tested head weight, so a 0.01
    // absolute tolerance is ~10 sigma.
    const DRAWS: usize = 200_000;
    let n = 256;
    for dist in skewed_dists() {
        let s = KeySampler::new(dist, n);
        let analytic = s.cdf()[0];
        let mut rng = SmallRng::seed_from_u64(77);
        let hits = (0..DRAWS).filter(|_| s.sample(&mut rng) == 0).count();
        let empirical = hits as f64 / DRAWS as f64;
        assert!(
            (empirical - analytic).abs() < 0.01,
            "{dist:?}: hot-key mass {empirical} vs analytic {analytic}"
        );
    }
    // The power-law head weight is documented in closed form.
    let s = KeySampler::new(KeyDist::PowerLaw, n);
    let closed_form = (1.0 / n as f64).powf(0.25);
    assert!(
        (s.cdf()[0] - closed_form).abs() < 1e-12,
        "power-law cdf[0] {} must equal (1/n)^(1/4) = {closed_form}",
        s.cdf()[0]
    );
}

#[test]
fn samplers_are_deterministic_per_seed() {
    let dists = [
        KeyDist::Uniform,
        KeyDist::Zipf(1.2),
        KeyDist::PowerLaw,
        KeyDist::AllSame,
        KeyDist::Adversarial,
    ];
    for dist in dists {
        let s1 = KeySampler::new(dist, 512);
        let s2 = KeySampler::new(dist, 512);
        let mut r1 = SmallRng::seed_from_u64(41);
        let mut r2 = SmallRng::seed_from_u64(41);
        let a: Vec<u64> = (0..512).map(|_| s1.sample(&mut r1)).collect();
        let b: Vec<u64> = (0..512).map(|_| s2.sample(&mut r2)).collect();
        assert_eq!(a, b, "{dist:?}: same seed must replay the same stream");
        if dist != KeyDist::AllSame {
            let mut r3 = SmallRng::seed_from_u64(42);
            let c: Vec<u64> = (0..512).map(|_| s1.sample(&mut r3)).collect();
            assert_ne!(a, c, "{dist:?}: different seeds must diverge");
        }
    }
}

#[test]
fn samplers_respect_edge_keyspaces() {
    for n in EDGE_KEYSPACES {
        for dist in [
            KeyDist::Uniform,
            KeyDist::Zipf(1.0),
            KeyDist::PowerLaw,
            KeyDist::AllSame,
        ] {
            let s = KeySampler::new(dist, n);
            let mut rng = SmallRng::seed_from_u64(n as u64 ^ 0xD1);
            for _ in 0..256 {
                let k = s.sample(&mut rng);
                assert!(k < n as u64, "{dist:?} n={n}: drew out-of-range key {k}");
                if n == 1 || dist == KeyDist::AllSame {
                    assert_eq!(k, 0, "{dist:?} n={n}: singleton keyspace must draw 0");
                }
            }
        }
        // The adversary draws from its sieved pool, not [0, n): the pool
        // shrinks with the keyspace and every draw stays inside it.
        let s = KeySampler::new(KeyDist::Adversarial, n);
        assert_eq!(s.pool().len(), n.min(16));
        let pool: HashSet<u64> = s.pool().iter().copied().collect();
        let mut rng = SmallRng::seed_from_u64(n as u64 ^ 0xD2);
        for _ in 0..256 {
            assert!(pool.contains(&s.sample(&mut rng)));
        }
    }
}
