//! Cross-backend parity for every registered churn scenario.
//!
//! The scenario driver (`qrqw_bench::scenario`) promises that one churn
//! trace — skewed or adversarial keys, mixed insert/delete/lookup epochs,
//! live table state carried throughout — produces **bit-identical**
//! observables on every backend at every thread count: the end-state
//! digest (sorted live keys + raw counter region), the synchronous step
//! count, the claim counters, and the per-epoch contention totals.  This
//! is the `parity_suite!` contract extended from one-shot algorithms to
//! stateful multi-epoch workloads, and it is what entitles `perf_report
//! --scenario` to arm the sim-vs-native drift guard on every cell.

use qrqw_bench::scenario::{Scenario, ScenarioRun};
use qrqw_bench::Backend;

const N: usize = 128;
const SEED: u64 = 21;

fn reference(scenario: &Scenario) -> ScenarioRun {
    let run = scenario.run(Backend::Sim, N, SEED);
    assert!(run.valid, "{} invalid on the simulator", scenario.name);
    run
}

fn assert_matches_reference(want: &ScenarioRun, got: &ScenarioRun, label: &str) {
    assert!(got.valid, "{label}: run invalid");
    assert_eq!(
        got.outcome.digest, want.outcome.digest,
        "{label}: digest diverged"
    );
    assert_eq!(
        got.report.steps, want.report.steps,
        "{label}: step count diverged"
    );
    assert_eq!(
        got.report.claim_attempts, want.report.claim_attempts,
        "{label}: claim attempts diverged"
    );
    assert_eq!(
        got.report.contended_claims, want.report.contended_claims,
        "{label}: contention total diverged"
    );
    assert_eq!(
        got.outcome.epoch_contention, want.outcome.epoch_contention,
        "{label}: per-epoch contention diverged"
    );
    assert_eq!(
        got.outcome.hot_fraction.to_bits(),
        want.outcome.hot_fraction.to_bits(),
        "{label}: measured skew diverged"
    );
}

#[test]
fn every_registered_scenario_is_bit_identical_across_all_backends_and_threads() {
    for scenario in Scenario::registry() {
        let want = reference(&scenario);
        for backend in [Backend::Native, Backend::NativeSteal, Backend::Bsp] {
            match backend {
                Backend::Bsp => {
                    let got = scenario.run_bsp(N, SEED, None);
                    assert_matches_reference(&want, &got, &format!("{}/bsp", scenario.name));
                }
                _ => {
                    let schedule = if backend == Backend::NativeSteal {
                        qrqw_exec::Schedule::Stealing
                    } else {
                        qrqw_exec::Schedule::Chunked
                    };
                    for threads in [1usize, 2, 5] {
                        let got = scenario.run_native_with(N, SEED, Some(threads), schedule);
                        assert_eq!(got.backend, backend.name());
                        assert_matches_reference(
                            &want,
                            &got,
                            &format!("{}/{}/t{}", scenario.name, backend.name(), threads),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn delete_reinsert_digest_regression_pins_tombstone_behavior() {
    // A delete-only-then-reinsert cycle at 1:1:0 churn: every epoch flips
    // roughly half the keyspace, so tombstone writes and purge rebuilds
    // dominate.  The digest must still be bit-identical everywhere, and
    // the key set must match the host model exactly (pinned implicitly by
    // `valid`, which cross-checks live_keys against the model).
    let scenario = Scenario::parse("uniform/1:1:0/8").expect("spec parses");
    let want = reference(&scenario);
    assert!(
        want.report.claim_attempts > 0,
        "churn must actually exercise claims"
    );
    for threads in [1usize, 2, 5] {
        let chunked =
            scenario.run_native_with(N, SEED, Some(threads), qrqw_exec::Schedule::Chunked);
        assert_matches_reference(&want, &chunked, &format!("native/t{threads}"));
        let stealing =
            scenario.run_native_with(N, SEED, Some(threads), qrqw_exec::Schedule::Stealing);
        assert_matches_reference(&want, &stealing, &format!("native-steal/t{threads}"));
    }
    let bsp = scenario.run_bsp(N, SEED, None);
    assert_matches_reference(&want, &bsp, "bsp");
}

#[test]
fn scenario_contention_orders_by_skew_on_the_simulator() {
    // The whole point of the axis: more skew, more collision per claim.
    // The right measure is the claim-collision *rate* (contended claims
    // over claim attempts): skew shrinks the distinct-key batches (fewer
    // attempts) while concentrating them on shared probe chains (more
    // collisions).  At n=256, seed 5 this reads uniform ≈ 1.4%,
    // zipf ≈ 4.6%, adversarial ≈ 42%.
    let rate = |name: &str| {
        let run = Scenario::parse(name).unwrap().run(Backend::Sim, 256, 5);
        assert!(run.valid);
        run.report.contended_claims as f64 / (run.report.claim_attempts as f64).max(1.0)
    };
    let uniform = rate("uniform-churn");
    let zipf = rate("zipf-hot");
    let adversarial = rate("adversarial-collide");
    assert!(
        zipf > uniform,
        "zipf collision rate {zipf} must exceed uniform {uniform}"
    );
    assert!(
        adversarial > zipf,
        "adversarial collision rate {adversarial} must exceed zipf {zipf}"
    );

    // The degenerate all-same-key scenario is maximal *skew* but nets
    // every epoch's churn down to (at most) one touched key — near-zero
    // claim traffic is the correct, pinned behavior, and the measured
    // hot fraction records the skew instead.
    let run = Scenario::parse("all-same-key")
        .unwrap()
        .run(Backend::Sim, 256, 5);
    assert!(run.valid);
    assert!((run.outcome.hot_fraction - 1.0).abs() < 1e-12);
    assert!(run.report.claim_attempts <= run.outcome.epoch_contention.len() as u64);
}
