//! Cross-backend parity and determinism tests for the `Machine` API.
//!
//! The backend contract (see `qrqw_sim::machine`) promises that both
//! backends draw identical per-`(seed, step, proc)` random streams and that
//! exclusive claims resolve deterministically.  Algorithms built only on
//! those facilities — the random-permutation dart throwers, the cyclic
//! permutations, and every deterministic routine (list ranking, the stable
//! sorts, Fetch&Add emulation) — must therefore produce *bit-identical*
//! outputs on the simulator and the native machine, not merely outputs that
//! are both valid.  Occupy-mode claims hand cells to an arbitrary CAS
//! winner, so occupy-based algorithms (linear compaction, load balancing,
//! multiple compaction, hashing builds, the sample/integer/distributive
//! sorts' placement phases) are checked for semantic validity on both
//! backends instead — for the sorts that still means the *output* is
//! bit-identical, because a multiset has one sorted order.

use qrqw_suite::algos::{
    emulate_fetch_add_step, integer_sort_crqw, is_cyclic, is_permutation, load_balance_erew,
    load_balance_qrqw, multiple_compaction, random_cyclic_permutation_efficient,
    random_cyclic_permutation_fast, random_permutation_dart_scan, random_permutation_qrqw,
    random_permutation_sorting_erew, sample_sort_crqw, sample_sort_qrqw, sort_uniform_keys,
    QrqwHashTable,
};
use qrqw_suite::exec::NativeMachine;
use qrqw_suite::prims::listrank::NIL;
use qrqw_suite::prims::{linear_compaction, list_rank, pack, radix_sort_packed, unpack_key};
use qrqw_suite::sim::{ClaimMode, Machine, Pram, EMPTY};
use std::collections::HashSet;

/// Deterministic distinct keys below `2^31 − 1` — the same generator the
/// `backend_bench` registry validators use, so the parity tests and the
/// harness exercise identical workloads.
fn scattered_keys(n: usize, offset: usize) -> Vec<u64> {
    qrqw_bench::Algorithm::scattered_keys(n, offset)
}

#[test]
fn all_three_permutation_algorithms_match_across_backends() {
    for n in [1usize, 2, 77, 500] {
        for seed in [0u64, 7, 41] {
            let mut sim = Pram::with_seed(16, seed);
            let mut native = NativeMachine::with_seed(16, seed);
            let a = random_permutation_qrqw(&mut sim, n);
            let b = random_permutation_qrqw(&mut native, n);
            assert!(is_permutation(&a.order));
            assert_eq!(
                a.order, b.order,
                "qrqw dart thrower diverged (n={n}, seed={seed})"
            );
            assert_eq!(a.rounds, b.rounds);

            let mut sim = Pram::with_seed(16, seed);
            let mut native = NativeMachine::with_seed(16, seed);
            let a = random_permutation_dart_scan(&mut sim, n);
            let b = random_permutation_dart_scan(&mut native, n);
            assert!(is_permutation(&a.order));
            assert_eq!(a.order, b.order, "dart+scan diverged (n={n}, seed={seed})");

            let mut sim = Pram::with_seed(16, seed);
            let mut native = NativeMachine::with_seed(16, seed);
            let a = random_permutation_sorting_erew(&mut sim, n);
            let b = random_permutation_sorting_erew(&mut native, n);
            assert!(is_permutation(&a.order));
            assert_eq!(
                a.order, b.order,
                "sorting baseline diverged (n={n}, seed={seed})"
            );
        }
    }
}

#[test]
fn contended_claim_counts_agree_across_backends() {
    // Exclusive-claim contention is deterministic, so the simulator's
    // collision count and the native CAS-failure count must be equal.
    let n = 2048usize;
    let mut sim = Pram::with_seed(16, 3);
    let mut native = NativeMachine::with_seed(16, 3);
    let _ = random_permutation_qrqw(&mut sim, n);
    let _ = random_permutation_qrqw(&mut native, n);
    let rs = sim.cost_report();
    let rn = native.cost_report();
    assert_eq!(rs.claim_attempts, rn.claim_attempts);
    assert_eq!(rs.contended_claims, rn.contended_claims);
    assert_eq!(rs.steps, rn.steps, "step counters must advance in lockstep");
}

#[test]
fn qrqw_dart_sees_less_contention_than_scan_variant_natively() {
    // The paper's core empirical effect, observed on the native backend:
    // throwing into geometrically shrinking *fresh* subarrays (≥ 2·active
    // cells) collides less than re-throwing into the same n-cell arena.
    let n = 16_384;
    let mut qrqw = NativeMachine::with_seed(16, 7);
    let _ = random_permutation_qrqw(&mut qrqw, n);
    let mut scan = NativeMachine::with_seed(16, 7);
    let _ = random_permutation_dart_scan(&mut scan, n);
    let q = qrqw.cost_report().contended_claims;
    let s = scan.cost_report().contended_claims;
    assert!(
        q < s,
        "larger fresh subarrays must reduce claim contention ({q} vs {s})"
    );
}

#[test]
fn native_permutation_is_seed_stable() {
    // Exclusive claims make the native run deterministic: same seed, same
    // permutation, run after run, regardless of thread scheduling.
    for n in [256usize, 3000] {
        let run = |seed: u64| {
            let mut m = NativeMachine::with_seed(16, seed);
            random_permutation_qrqw(&mut m, n).order
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}

#[test]
fn linear_compaction_is_valid_on_both_backends() {
    // Occupy-mode arbitration is backend-defined, so the placements may
    // differ — but on either backend every item must land injectively.
    let n = 1024usize;
    let k = n / 2;
    let check = |placements: &[(usize, usize)]| {
        assert_eq!(placements.len(), k);
        let sources: HashSet<usize> = placements.iter().map(|&(s, _)| s).collect();
        assert_eq!(sources, (0..n).step_by(2).collect::<HashSet<_>>());
        let dests: HashSet<usize> = placements.iter().map(|&(_, d)| d).collect();
        assert_eq!(dests.len(), k, "destinations must be distinct");
    };

    let mut sim = Pram::with_seed(16, 11);
    let src = Machine::alloc(&mut sim, n);
    for i in (0..n).step_by(2) {
        Machine::poke(&mut sim, src + i, i as u64 + 1);
    }
    let dst = Machine::alloc(&mut sim, 4 * k);
    check(&linear_compaction(&mut sim, src, n, dst, 4 * k).placements);

    let mut native = NativeMachine::with_seed(16, 11);
    let src = native.alloc(n);
    for i in (0..n).step_by(2) {
        native.poke(src + i, i as u64 + 1);
    }
    let dst = native.alloc(4 * k);
    check(&linear_compaction(&mut native, src, n, dst, 4 * k).placements);
}

#[test]
fn load_balancing_is_valid_on_both_backends() {
    let n = 512usize;
    let loads: Vec<u64> = (0..n)
        .map(|i| if i % 64 == 0 { 128 } else { (i % 2) as u64 })
        .collect();
    let total: u64 = loads.iter().sum();
    let bound = 64 * (1 + total / n as u64);

    let mut sim = Pram::with_seed(16, 4);
    let rs = load_balance_qrqw(&mut sim, &loads);
    assert!(rs.covers_exactly(&loads));
    assert!(rs.max_final_load <= bound, "sim load {}", rs.max_final_load);

    let mut native = NativeMachine::with_seed(16, 4);
    let rn = load_balance_qrqw(&mut native, &loads);
    assert!(rn.covers_exactly(&loads));
    assert!(
        rn.max_final_load <= bound,
        "native load {}",
        rn.max_final_load
    );

    let mut native = NativeMachine::with_seed(16, 5);
    let re = load_balance_erew(&mut native, &loads);
    assert!(re.covers_exactly(&loads));
}

#[test]
fn exclusive_claims_agree_cell_by_cell() {
    // Direct trait-level parity: same attempts, same outcome, same memory.
    let attempts: Vec<(u64, usize)> = (0..200u64)
        .map(|i| (i + 1, (i as usize * 7) % 64))
        .collect();
    let mut sim = Pram::with_seed(16, 0);
    let mut native = NativeMachine::with_seed(16, 0);
    let a = Machine::claim(&mut sim, &attempts, ClaimMode::Exclusive);
    let b = native.claim(&attempts, ClaimMode::Exclusive);
    assert_eq!(a, b);
    for addr in 0..64 {
        assert_eq!(Machine::peek(&sim, addr), native.peek(addr), "cell {addr}");
    }
    // contested cells really are restored on both
    assert!((0..64).any(|addr| native.peek(addr) == EMPTY));
}

#[test]
fn cyclic_permutations_match_bit_for_bit_across_backends() {
    // Both cyclic generators place items with *exclusive* claims and link
    // successors deterministically, so sim and native must agree exactly —
    // including the round count and the step/claim counters.
    for n in [2usize, 5, 120, 700] {
        for seed in [0u64, 9, 23] {
            let mut sim = Pram::with_seed(16, seed);
            let mut native = NativeMachine::with_seed(16, seed);
            let a = random_cyclic_permutation_fast(&mut sim, n);
            let b = random_cyclic_permutation_fast(&mut native, n);
            assert!(is_permutation(&a.successor) && is_cyclic(&a.successor));
            assert_eq!(
                a.successor, b.successor,
                "fast diverged (n={n}, seed={seed})"
            );
            assert_eq!(a.rounds, b.rounds);
            let (rs, rn) = (sim.cost_report(), native.cost_report());
            assert_eq!(rs.steps, rn.steps, "step counters out of lockstep");
            assert_eq!(rs.claim_attempts, rn.claim_attempts);
            assert_eq!(rs.contended_claims, rn.contended_claims);

            let mut sim = Pram::with_seed(16, seed);
            let mut native = NativeMachine::with_seed(16, seed);
            let a = random_cyclic_permutation_efficient(&mut sim, n);
            let b = random_cyclic_permutation_efficient(&mut native, n);
            assert!(is_cyclic(&a.successor));
            assert_eq!(
                a.successor, b.successor,
                "efficient diverged (n={n}, seed={seed})"
            );
            assert_eq!(sim.cost_report().steps, native.cost_report().steps);
        }
    }
}

#[test]
fn hashing_answers_membership_exactly_on_both_backends() {
    // The build uses occupy-mode block claims, so the two backends may lay
    // the table out differently — each backend is therefore checked
    // independently against the membership predicate (all inserted keys
    // found, all probes rejected); with the same machine seed both builds
    // draw the same hash functions.
    for (n, seed) in [(40usize, 3u64), (300, 7), (900, 1)] {
        let keys = scattered_keys(n, 0);
        let probes = scattered_keys(n, n);

        let mut sim = Pram::with_seed(16, seed);
        let table = QrqwHashTable::build(&mut sim, &keys);
        assert!(table.lookup_batch(&mut sim, &keys).iter().all(|&h| h));
        assert!(table.lookup_batch(&mut sim, &probes).iter().all(|&h| !h));

        let mut native = NativeMachine::with_seed(16, seed);
        let table = QrqwHashTable::build(&mut native, &keys);
        assert!(table.lookup_batch(&mut native, &keys).iter().all(|&h| h));
        assert!(table.lookup_batch(&mut native, &probes).iter().all(|&h| !h));
    }
}

#[test]
fn multiple_compaction_is_valid_on_both_backends() {
    // Occupy-mode dart throwing: placements are backend-defined, so check
    // the semantic contract on each backend — every item in a private cell
    // of its own label's subarray.
    let n = 900usize;
    let num_labels = 24usize;
    let labels: Vec<u64> = (0..n)
        .map(|i| {
            if i % 3 == 0 {
                0
            } else {
                (i % num_labels) as u64
            }
        })
        .collect();
    let mut counts = vec![0u64; num_labels];
    for &l in &labels {
        counts[l as usize] += 1;
    }

    fn check(res: &qrqw_suite::algos::McResult, labels: &[u64], backend: &str) {
        assert!(!res.failed, "{backend}: run reported failure");
        let mut seen = HashSet::new();
        for (item, &pos) in res.positions.iter().enumerate() {
            assert_ne!(pos, usize::MAX, "{backend}: item {item} unplaced");
            assert!(seen.insert(pos), "{backend}: position {pos} reused");
            let label = labels[item] as usize;
            let lo = res.layout.b_base + res.layout.subarray_offset[label];
            let hi = lo + res.layout.subarray_len[label];
            assert!(
                pos >= lo && pos < hi,
                "{backend}: item {item} outside its subarray"
            );
        }
    }

    let mut sim = Pram::with_seed(16, 5);
    check(
        &multiple_compaction(&mut sim, &labels, &counts),
        &labels,
        "sim",
    );
    let mut native = NativeMachine::with_seed(16, 5);
    check(
        &multiple_compaction(&mut native, &labels, &counts),
        &labels,
        "native",
    );
}

#[test]
fn ported_sorts_produce_identical_sorted_output_on_both_backends() {
    // The placement phases use occupy claims, but a multiset has exactly one
    // sorted order, so the *outputs* must be bit-identical across backends
    // (and equal to the std reference).
    let n = 1200usize;
    let keys = scattered_keys(n, 0);
    let mut expect = keys.clone();
    expect.sort_unstable();

    let mut sim = Pram::with_seed(16, 2);
    let mut native = NativeMachine::with_seed(16, 2);
    assert_eq!(sample_sort_qrqw(&mut sim, &keys), expect);
    assert_eq!(sample_sort_qrqw(&mut native, &keys), expect);

    let mut sim = Pram::with_seed(16, 3);
    let mut native = NativeMachine::with_seed(16, 3);
    assert_eq!(sample_sort_crqw(&mut sim, &keys), expect);
    assert_eq!(sample_sort_crqw(&mut native, &keys), expect);

    let mut sim = Pram::with_seed(16, 4);
    let mut native = NativeMachine::with_seed(16, 4);
    assert_eq!(sort_uniform_keys(&mut sim, &keys), expect);
    assert_eq!(sort_uniform_keys(&mut native, &keys), expect);

    let max_key = (n as u64) * 8;
    let small: Vec<u64> = keys.iter().map(|&k| k % max_key).collect();
    let mut expect_small = small.clone();
    expect_small.sort_unstable();
    let mut sim = Pram::with_seed(16, 5);
    let mut native = NativeMachine::with_seed(16, 5);
    assert_eq!(integer_sort_crqw(&mut sim, &small, max_key), expect_small);
    assert_eq!(
        integer_sort_crqw(&mut native, &small, max_key),
        expect_small
    );
}

#[test]
fn stable_radix_sort_matches_bit_for_bit_across_backends() {
    // Fully deterministic primitive: identical memory images afterwards.
    let n = 700usize;
    let words: Vec<u64> = (0..n as u64).map(|i| pack((i * 131) % 257, i)).collect();

    let mut sim = Pram::with_seed(16, 0);
    let base = Machine::alloc(&mut sim, n);
    Machine::load(&mut sim, base, &words);
    radix_sort_packed(&mut sim, base, n, 16);
    let a = Machine::dump(&sim, base, n);

    let mut native = NativeMachine::with_seed(16, 0);
    let base = native.alloc(n);
    native.load(base, &words);
    radix_sort_packed(&mut native, base, n, 16);
    let b = native.dump(base, n);

    assert_eq!(a, b);
    // ...and both are the stable sort of the input.
    let mut expect = words;
    expect.sort_by_key(|&w| unpack_key(w));
    assert_eq!(a, expect);
    assert_eq!(sim.steps_executed(), Machine::steps_executed(&native));
}

#[test]
fn list_rank_matches_bit_for_bit_across_backends() {
    let n = 513usize;
    // One chain visiting nodes in a scrambled order.
    let order: Vec<usize> = {
        let mut v: Vec<usize> = (0..n).collect();
        for i in 1..n {
            v.swap(i, (i * 7919) % (i + 1));
        }
        v
    };
    let mut succ = vec![NIL; n];
    for w in order.windows(2) {
        succ[w[0]] = w[1] as u64;
    }

    let mut sim = Pram::with_seed(16, 0);
    let sb = Machine::alloc(&mut sim, n);
    let rb = Machine::alloc(&mut sim, n);
    Machine::load(&mut sim, sb, &succ);
    list_rank(&mut sim, sb, n, rb);
    let a = Machine::dump(&sim, rb, n);

    let mut native = NativeMachine::with_seed(16, 0);
    let sb = native.alloc(n);
    let rb = native.alloc(n);
    native.load(sb, &succ);
    list_rank(&mut native, sb, n, rb);
    let b = native.dump(rb, n);

    assert_eq!(a, b);
    for (j, &node) in order.iter().enumerate() {
        assert_eq!(a[node], (n - 1 - j) as u64);
    }
}

#[test]
fn fetch_add_returns_identical_old_values_across_backends() {
    // The reduction serialises requests through a deterministic stable sort,
    // so even the per-request old values must agree exactly.
    let requests: Vec<(usize, u64)> = (0..200)
        .map(|i| ((i * i) % 13, (i % 7) as u64 + 1))
        .collect();

    let mut sim = Pram::with_seed(64, 1);
    let a = emulate_fetch_add_step(&mut sim, &requests);
    let mut native = NativeMachine::with_seed(64, 1);
    let b = emulate_fetch_add_step(&mut native, &requests);
    assert_eq!(a, b);
    for addr in 0..13 {
        assert_eq!(Machine::peek(&sim, addr), native.peek(addr), "cell {addr}");
    }
    assert_eq!(sim.cost_report().steps, native.cost_report().steps);
}

#[test]
fn forced_las_vegas_fallback_is_bit_identical_across_backends() {
    // Regression test for the sequential-step primitive: an adversarial
    // seed drives the QRQW dart thrower into its sequential clean-up at a
    // tiny n (every dart of every round collides).  Before `seq_step`, the
    // clean-up ran as a 1-processor parallel step whose snapshot reads
    // diverged from a native thread's fresh reads; now both backends must
    // walk the identical path and emit the identical permutation.
    let n = 4usize;
    let seed = (0..3000u64)
        .find(|&seed| {
            let mut pram = Pram::with_seed(16, seed);
            random_permutation_qrqw(&mut pram, n).fallback_used
        })
        .expect(
            "an adversarial seed below 3000 forces the fallback (2974 did at the time of writing)",
        );

    let mut sim = Pram::with_seed(16, seed);
    let mut native = NativeMachine::with_seed(16, seed);
    let a = random_permutation_qrqw(&mut sim, n);
    let b = random_permutation_qrqw(&mut native, n);
    assert!(
        a.fallback_used && b.fallback_used,
        "both must take the clean-up path"
    );
    assert!(is_permutation(&a.order));
    assert_eq!(a.order, b.order, "fallback output diverged (seed={seed})");
    assert_eq!(sim.cost_report().steps, native.cost_report().steps);
}

#[test]
fn seq_step_sees_same_step_writes_on_both_backends() {
    // The primitive's contract, exercised through the trait on both
    // backends: read-after-own-write returns the fresh value, the step
    // index advances by one, and the random stream matches processor 0's.
    fn drive<M: Machine>(m: &mut M) -> (u64, u64, usize) {
        let base = m.alloc(4);
        let observed = m.seq_step(|ctx| {
            ctx.write(base, 1);
            let v = ctx.read(base);
            ctx.write(base + 1, v + 1);
            ctx.read(base + 1)
        });
        let draw = m.seq_step(|ctx| ctx.random_index(1 << 20));
        (observed, m.steps_executed(), draw)
    }
    let mut sim = Pram::with_seed(16, 44);
    let mut native = NativeMachine::with_seed(16, 44);
    let a = drive(&mut sim);
    let b = drive(&mut native);
    assert_eq!(a.0, 2, "sim seq_step must see its own writes");
    assert_eq!(a, b);
}

#[test]
fn native_scan_and_global_or_match_simulator() {
    let vals: Vec<u64> = (0..10_000u64).map(|i| (i * i) % 5).collect();
    let mut sim = Pram::with_seed(16, 0);
    let mut native = NativeMachine::with_seed(16, 0);
    Machine::ensure_memory(&mut sim, vals.len());
    native.ensure_memory(vals.len());
    Machine::load(&mut sim, 0, &vals);
    native.load(0, &vals);
    assert_eq!(
        Machine::scan_step(&mut sim, 0, vals.len()),
        native.scan_step(0, vals.len())
    );
    assert_eq!(
        Machine::dump(&sim, 0, vals.len()),
        native.dump(0, vals.len())
    );
    assert_eq!(
        Machine::global_or_step(&mut sim, 0, vals.len()),
        native.global_or_step(0, vals.len())
    );
}
