//! Cross-backend parity and determinism tests for the `Machine` API.
//!
//! The backend contract (see `qrqw_sim::machine`) promises that both
//! backends draw identical per-`(seed, step, proc)` random streams and that
//! exclusive claims resolve deterministically.  For algorithms built only on
//! those facilities — the random-permutation dart throwers — the simulator
//! and the native machine must therefore produce *bit-identical* outputs,
//! not merely outputs that are both valid.  Occupy-mode claims hand cells to
//! an arbitrary CAS winner, so occupy-based algorithms (linear compaction,
//! load balancing) are checked for semantic validity on both backends
//! instead.

use qrqw_suite::algos::{
    is_permutation, load_balance_erew, load_balance_qrqw, random_permutation_dart_scan,
    random_permutation_qrqw, random_permutation_sorting_erew,
};
use qrqw_suite::exec::NativeMachine;
use qrqw_suite::prims::linear_compaction;
use qrqw_suite::sim::{ClaimMode, Machine, Pram, EMPTY};
use std::collections::HashSet;

#[test]
fn all_three_permutation_algorithms_match_across_backends() {
    for n in [1usize, 2, 77, 500] {
        for seed in [0u64, 7, 41] {
            let mut sim = Pram::with_seed(16, seed);
            let mut native = NativeMachine::with_seed(16, seed);
            let a = random_permutation_qrqw(&mut sim, n);
            let b = random_permutation_qrqw(&mut native, n);
            assert!(is_permutation(&a.order));
            assert_eq!(
                a.order, b.order,
                "qrqw dart thrower diverged (n={n}, seed={seed})"
            );
            assert_eq!(a.rounds, b.rounds);

            let mut sim = Pram::with_seed(16, seed);
            let mut native = NativeMachine::with_seed(16, seed);
            let a = random_permutation_dart_scan(&mut sim, n);
            let b = random_permutation_dart_scan(&mut native, n);
            assert!(is_permutation(&a.order));
            assert_eq!(a.order, b.order, "dart+scan diverged (n={n}, seed={seed})");

            let mut sim = Pram::with_seed(16, seed);
            let mut native = NativeMachine::with_seed(16, seed);
            let a = random_permutation_sorting_erew(&mut sim, n);
            let b = random_permutation_sorting_erew(&mut native, n);
            assert!(is_permutation(&a.order));
            assert_eq!(
                a.order, b.order,
                "sorting baseline diverged (n={n}, seed={seed})"
            );
        }
    }
}

#[test]
fn contended_claim_counts_agree_across_backends() {
    // Exclusive-claim contention is deterministic, so the simulator's
    // collision count and the native CAS-failure count must be equal.
    let n = 2048usize;
    let mut sim = Pram::with_seed(16, 3);
    let mut native = NativeMachine::with_seed(16, 3);
    let _ = random_permutation_qrqw(&mut sim, n);
    let _ = random_permutation_qrqw(&mut native, n);
    let rs = sim.cost_report();
    let rn = native.cost_report();
    assert_eq!(rs.claim_attempts, rn.claim_attempts);
    assert_eq!(rs.contended_claims, rn.contended_claims);
    assert_eq!(rs.steps, rn.steps, "step counters must advance in lockstep");
}

#[test]
fn qrqw_dart_sees_less_contention_than_scan_variant_natively() {
    // The paper's core empirical effect, observed on the native backend:
    // throwing into geometrically shrinking *fresh* subarrays (≥ 2·active
    // cells) collides less than re-throwing into the same n-cell arena.
    let n = 16_384;
    let mut qrqw = NativeMachine::with_seed(16, 7);
    let _ = random_permutation_qrqw(&mut qrqw, n);
    let mut scan = NativeMachine::with_seed(16, 7);
    let _ = random_permutation_dart_scan(&mut scan, n);
    let q = qrqw.cost_report().contended_claims;
    let s = scan.cost_report().contended_claims;
    assert!(
        q < s,
        "larger fresh subarrays must reduce claim contention ({q} vs {s})"
    );
}

#[test]
fn native_permutation_is_seed_stable() {
    // Exclusive claims make the native run deterministic: same seed, same
    // permutation, run after run, regardless of thread scheduling.
    for n in [256usize, 3000] {
        let run = |seed: u64| {
            let mut m = NativeMachine::with_seed(16, seed);
            random_permutation_qrqw(&mut m, n).order
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}

#[test]
fn linear_compaction_is_valid_on_both_backends() {
    // Occupy-mode arbitration is backend-defined, so the placements may
    // differ — but on either backend every item must land injectively.
    let n = 1024usize;
    let k = n / 2;
    let check = |placements: &[(usize, usize)]| {
        assert_eq!(placements.len(), k);
        let sources: HashSet<usize> = placements.iter().map(|&(s, _)| s).collect();
        assert_eq!(sources, (0..n).step_by(2).collect::<HashSet<_>>());
        let dests: HashSet<usize> = placements.iter().map(|&(_, d)| d).collect();
        assert_eq!(dests.len(), k, "destinations must be distinct");
    };

    let mut sim = Pram::with_seed(16, 11);
    let src = Machine::alloc(&mut sim, n);
    for i in (0..n).step_by(2) {
        Machine::poke(&mut sim, src + i, i as u64 + 1);
    }
    let dst = Machine::alloc(&mut sim, 4 * k);
    check(&linear_compaction(&mut sim, src, n, dst, 4 * k).placements);

    let mut native = NativeMachine::with_seed(16, 11);
    let src = native.alloc(n);
    for i in (0..n).step_by(2) {
        native.poke(src + i, i as u64 + 1);
    }
    let dst = native.alloc(4 * k);
    check(&linear_compaction(&mut native, src, n, dst, 4 * k).placements);
}

#[test]
fn load_balancing_is_valid_on_both_backends() {
    let n = 512usize;
    let loads: Vec<u64> = (0..n)
        .map(|i| if i % 64 == 0 { 128 } else { (i % 2) as u64 })
        .collect();
    let total: u64 = loads.iter().sum();
    let bound = 64 * (1 + total / n as u64);

    let mut sim = Pram::with_seed(16, 4);
    let rs = load_balance_qrqw(&mut sim, &loads);
    assert!(rs.covers_exactly(&loads));
    assert!(rs.max_final_load <= bound, "sim load {}", rs.max_final_load);

    let mut native = NativeMachine::with_seed(16, 4);
    let rn = load_balance_qrqw(&mut native, &loads);
    assert!(rn.covers_exactly(&loads));
    assert!(
        rn.max_final_load <= bound,
        "native load {}",
        rn.max_final_load
    );

    let mut native = NativeMachine::with_seed(16, 5);
    let re = load_balance_erew(&mut native, &loads);
    assert!(re.covers_exactly(&loads));
}

#[test]
fn exclusive_claims_agree_cell_by_cell() {
    // Direct trait-level parity: same attempts, same outcome, same memory.
    let attempts: Vec<(u64, usize)> = (0..200u64)
        .map(|i| (i + 1, (i as usize * 7) % 64))
        .collect();
    let mut sim = Pram::with_seed(16, 0);
    let mut native = NativeMachine::with_seed(16, 0);
    let a = Machine::claim(&mut sim, &attempts, ClaimMode::Exclusive);
    let b = native.claim(&attempts, ClaimMode::Exclusive);
    assert_eq!(a, b);
    for addr in 0..64 {
        assert_eq!(Machine::peek(&sim, addr), native.peek(addr), "cell {addr}");
    }
    // contested cells really are restored on both
    assert!((0..64).any(|addr| native.peek(addr) == EMPTY));
}

#[test]
fn native_scan_and_global_or_match_simulator() {
    let vals: Vec<u64> = (0..10_000u64).map(|i| (i * i) % 5).collect();
    let mut sim = Pram::with_seed(16, 0);
    let mut native = NativeMachine::with_seed(16, 0);
    Machine::ensure_memory(&mut sim, vals.len());
    native.ensure_memory(vals.len());
    Machine::load(&mut sim, 0, &vals);
    native.load(0, &vals);
    assert_eq!(
        Machine::scan_step(&mut sim, 0, vals.len()),
        native.scan_step(0, vals.len())
    );
    assert_eq!(
        Machine::dump(&sim, 0, vals.len()),
        native.dump(0, vals.len())
    );
    assert_eq!(
        Machine::global_or_step(&mut sim, 0, vals.len()),
        native.global_or_step(0, vals.len())
    );
}
