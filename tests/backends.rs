//! Cross-backend parity and determinism tests for the `Machine` API.
//!
//! The backend contract (see `qrqw_sim::machine`) promises that every
//! backend draws identical per-`(seed, step, proc)` random streams and that
//! exclusive claims resolve deterministically, so algorithms built only on
//! those facilities must produce *bit-identical* outputs everywhere, while
//! occupy-based algorithms promise semantic validity.  Those two test
//! patterns live as generic functions in `tests/common/parity.rs`; this
//! file instantiates the whole battery once per backend — the simulator
//! (self-parity: the suite's reference is the simulator itself), the native
//! machine under both chunk schedules (chunked and work-stealing), and the
//! batch-message BSP machine.  Adding a backend is one `parity_suite!`
//! line plus its name in [`PARITY_SUITE_BACKENDS`].

mod common;

use common::parity::parity_suite;

/// Backends the parity suite is instantiated for below.  The drift-guard
/// test pins this list to `qrqw_bench::Backend::ALL`, so registering a
/// backend in the bench registry without giving it a `parity_suite!`
/// instantiation fails the build.
pub const PARITY_SUITE_BACKENDS: &[&str] = &["sim", "native", "native-steal", "bsp"];

parity_suite!(sim, qrqw_suite::sim::Pram);
parity_suite!(native, qrqw_suite::exec::NativeMachine);
parity_suite!(native_steal, qrqw_suite::exec::StealingMachine);
parity_suite!(bsp, qrqw_suite::bsp::BspMachine);

#[test]
fn parity_suite_covers_every_registered_backend() {
    let registered: Vec<&str> = qrqw_bench::Backend::ALL.iter().map(|b| b.name()).collect();
    assert_eq!(
        PARITY_SUITE_BACKENDS, registered,
        "backend registry and parity-suite instantiations drifted apart — \
         add a parity_suite!(name, MachineType) line for the new backend"
    );
}

#[test]
fn contention_totals_agree_across_all_backends() {
    // Exclusive-claim contention is deterministic, and occupy totals are
    // too (each contested cell has exactly one winner), so every backend's
    // counters must coincide for the same seed even where the occupy
    // winners differ.
    use qrqw_suite::algos::random_permutation_qrqw;
    use qrqw_suite::sim::Machine;

    fn totals<M: Machine>() -> (u64, u64, u64) {
        let mut m = M::with_seed(16, 3);
        let _ = random_permutation_qrqw(&mut m, 2048);
        let r = m.cost_report();
        (r.claim_attempts, r.contended_claims, r.steps)
    }

    let sim = totals::<qrqw_suite::sim::Pram>();
    assert_eq!(
        sim,
        totals::<qrqw_suite::exec::NativeMachine>(),
        "sim vs native counters diverged"
    );
    assert_eq!(
        sim,
        totals::<qrqw_suite::exec::StealingMachine>(),
        "sim vs native-steal counters diverged"
    );
    assert_eq!(
        sim,
        totals::<qrqw_suite::bsp::BspMachine>(),
        "sim vs bsp counters diverged"
    );
}
