//! The backend-generic parity harness.
//!
//! PR 2/PR 3 established a two-pattern recipe for validating a `Machine`
//! backend, originally hand-instantiated for the native machine in
//! `tests/backends.rs`:
//!
//! 1. **Bit-identical output** for every algorithm built only on the
//!    deterministic facilities of the backend contract — shared
//!    per-`(seed, step, proc)` random streams, lockstep step counters, and
//!    deterministic *exclusive* claims: the three random permutations, both
//!    cyclic permutations, list ranking, the stable/radix sorts and
//!    Fetch&Add emulation must match the simulator reference exactly.
//! 2. **Semantic validity** for algorithms that race through *occupy*-mode
//!    claims, whose winner is backend-defined: linear compaction, load
//!    balancing, multiple compaction, hashing builds, and the sorts'
//!    placement phases are checked against their semantic contract on the
//!    backend itself (for the sorts the *output* is still bit-identical —
//!    a multiset has one sorted order).
//!
//! This module is those two patterns as generic functions over
//! `M: Machine`, plus the [`parity_suite!`] macro that instantiates the
//! whole battery as one `#[test]` per pattern for a named backend.  Adding
//! a backend is one `parity_suite!(name, MachineType)` line (plus its entry
//! in the instantiation list the drift-guard test checks).

use std::collections::HashSet;

use qrqw_suite::algos::{
    emulate_fetch_add_step, is_cyclic, is_permutation, load_balance_erew, load_balance_qrqw,
    multiple_compaction, random_cyclic_permutation_efficient, random_cyclic_permutation_fast,
    random_permutation_dart_scan, random_permutation_qrqw, random_permutation_sorting_erew,
    sample_sort_crqw, sample_sort_qrqw, sort_uniform_keys, McResult, QrqwHashTable,
};
use qrqw_suite::prims::listrank::NIL;
use qrqw_suite::prims::{linear_compaction, list_rank, pack, radix_sort_packed, unpack_key};
use qrqw_suite::sim::{ClaimMode, Machine, Pram, EMPTY};

/// Deterministic distinct keys below `2^31 − 1` — the same generator the
/// `backend_bench` registry validators use, so the parity tests and the
/// harness exercise identical workloads.
pub fn scattered_keys(n: usize, offset: usize) -> Vec<u64> {
    qrqw_bench::Algorithm::scattered_keys(n, offset)
}

// ---------------------------------------------------------------------------
// Pattern 1: bit-identical output against the simulator reference.
// ---------------------------------------------------------------------------

/// All three §5 random-permutation algorithms produce the simulator's exact
/// output on the backend under test, over a size/seed sweep.
pub fn permutations_match_the_reference<M: Machine>() {
    for n in [1usize, 2, 77, 500] {
        for seed in [0u64, 7, 41] {
            let mut reference = Pram::with_seed(16, seed);
            let mut m = M::with_seed(16, seed);
            let a = random_permutation_qrqw(&mut reference, n);
            let b = random_permutation_qrqw(&mut m, n);
            assert!(is_permutation(&a.order));
            assert_eq!(
                a.order, b.order,
                "qrqw dart thrower diverged (n={n}, seed={seed})"
            );
            assert_eq!(a.rounds, b.rounds);

            let mut reference = Pram::with_seed(16, seed);
            let mut m = M::with_seed(16, seed);
            let a = random_permutation_dart_scan(&mut reference, n);
            let b = random_permutation_dart_scan(&mut m, n);
            assert!(is_permutation(&a.order));
            assert_eq!(a.order, b.order, "dart+scan diverged (n={n}, seed={seed})");

            let mut reference = Pram::with_seed(16, seed);
            let mut m = M::with_seed(16, seed);
            let a = random_permutation_sorting_erew(&mut reference, n);
            let b = random_permutation_sorting_erew(&mut m, n);
            assert!(is_permutation(&a.order));
            assert_eq!(
                a.order, b.order,
                "sorting baseline diverged (n={n}, seed={seed})"
            );
        }
    }
}

/// Both cyclic-permutation generators (exclusive claims + deterministic
/// linking) match the reference bit for bit, including the round count and
/// the step/claim counters.
pub fn cyclic_permutations_match_the_reference<M: Machine>() {
    for n in [2usize, 5, 120, 700] {
        for seed in [0u64, 9, 23] {
            let mut reference = Pram::with_seed(16, seed);
            let mut m = M::with_seed(16, seed);
            let a = random_cyclic_permutation_fast(&mut reference, n);
            let b = random_cyclic_permutation_fast(&mut m, n);
            assert!(is_permutation(&a.successor) && is_cyclic(&a.successor));
            assert_eq!(
                a.successor, b.successor,
                "fast diverged (n={n}, seed={seed})"
            );
            assert_eq!(a.rounds, b.rounds);
            let (rs, rm) = (reference.cost_report(), m.cost_report());
            assert_eq!(rs.steps, rm.steps, "step counters out of lockstep");
            assert_eq!(rs.claim_attempts, rm.claim_attempts);
            assert_eq!(rs.contended_claims, rm.contended_claims);

            let mut reference = Pram::with_seed(16, seed);
            let mut m = M::with_seed(16, seed);
            let a = random_cyclic_permutation_efficient(&mut reference, n);
            let b = random_cyclic_permutation_efficient(&mut m, n);
            assert!(is_cyclic(&a.successor));
            assert_eq!(
                a.successor, b.successor,
                "efficient diverged (n={n}, seed={seed})"
            );
            assert_eq!(reference.cost_report().steps, m.cost_report().steps);
        }
    }
}

/// The fully deterministic primitives — stable packed radix sort, list
/// ranking, Fetch&Add emulation — leave identical memory images on the
/// backend under test and the reference.
pub fn deterministic_prims_match_the_reference<M: Machine>() {
    // Stable radix sort of packed (key, value) words.
    let n = 700usize;
    let words: Vec<u64> = (0..n as u64).map(|i| pack((i * 131) % 257, i)).collect();
    let mut reference = Pram::with_seed(16, 0);
    let base = reference.alloc(n);
    Machine::load(&mut reference, base, &words);
    radix_sort_packed(&mut reference, base, n, 16);
    let a = Machine::dump(&reference, base, n);

    let mut m = M::with_seed(16, 0);
    let base = m.alloc(n);
    m.load(base, &words);
    radix_sort_packed(&mut m, base, n, 16);
    let b = m.dump(base, n);

    assert_eq!(a, b, "radix sort diverged");
    let mut expect = words;
    expect.sort_by_key(|&w| unpack_key(w));
    assert_eq!(a, expect, "radix sort is not the stable sort of the input");
    assert_eq!(reference.steps_executed(), m.steps_executed());

    // List ranking over a scrambled chain.
    let n = 513usize;
    let order: Vec<usize> = {
        let mut v: Vec<usize> = (0..n).collect();
        for i in 1..n {
            v.swap(i, (i * 7919) % (i + 1));
        }
        v
    };
    let mut succ = vec![NIL; n];
    for w in order.windows(2) {
        succ[w[0]] = w[1] as u64;
    }
    let mut reference = Pram::with_seed(16, 0);
    let sb = reference.alloc(n);
    let rb = reference.alloc(n);
    Machine::load(&mut reference, sb, &succ);
    list_rank(&mut reference, sb, n, rb);
    let a = Machine::dump(&reference, rb, n);

    let mut m = M::with_seed(16, 0);
    let sb = m.alloc(n);
    let rb = m.alloc(n);
    m.load(sb, &succ);
    list_rank(&mut m, sb, n, rb);
    let b = m.dump(rb, n);

    assert_eq!(a, b, "list ranking diverged");
    for (j, &node) in order.iter().enumerate() {
        assert_eq!(a[node], (n - 1 - j) as u64);
    }

    // One emulated Fetch&Add step: the deterministic stable-sort reduction
    // makes even the per-request old values exact.
    let requests: Vec<(usize, u64)> = (0..200)
        .map(|i| ((i * i) % 13, (i % 7) as u64 + 1))
        .collect();
    let mut reference = Pram::with_seed(64, 1);
    let a = emulate_fetch_add_step(&mut reference, &requests);
    let mut m = M::with_seed(64, 1);
    let b = emulate_fetch_add_step(&mut m, &requests);
    assert_eq!(a, b, "fetch&add old values diverged");
    for addr in 0..13 {
        assert_eq!(Machine::peek(&reference, addr), m.peek(addr), "cell {addr}");
    }
    assert_eq!(reference.cost_report().steps, m.cost_report().steps);
}

/// An adversarial seed forces the QRQW dart thrower into its sequential
/// Las-Vegas clean-up at tiny `n`; the backend must walk the identical
/// `seq_step` path and emit the identical permutation.
pub fn forced_las_vegas_fallback_matches_the_reference<M: Machine>() {
    let n = 4usize;
    let seed = (0..3000u64)
        .find(|&seed| {
            let mut pram = Pram::with_seed(16, seed);
            random_permutation_qrqw(&mut pram, n).fallback_used
        })
        .expect(
            "an adversarial seed below 3000 forces the fallback (2974 did at the time of writing)",
        );

    let mut reference = Pram::with_seed(16, seed);
    let mut m = M::with_seed(16, seed);
    let a = random_permutation_qrqw(&mut reference, n);
    let b = random_permutation_qrqw(&mut m, n);
    assert!(
        a.fallback_used && b.fallback_used,
        "both must take the clean-up path"
    );
    assert!(is_permutation(&a.order));
    assert_eq!(a.order, b.order, "fallback output diverged (seed={seed})");
    assert_eq!(reference.cost_report().steps, m.cost_report().steps);
}

/// Exclusive-claim contention is deterministic, so the backend's contention
/// measure must equal the simulator's collision count — and the paper's
/// core §5 effect (fresh geometric subarrays collide less than re-throwing
/// into one arena) must show up in it.
pub fn claim_counters_are_in_lockstep_with_the_reference<M: Machine>() {
    let n = 2048usize;
    let mut reference = Pram::with_seed(16, 3);
    let mut m = M::with_seed(16, 3);
    let _ = random_permutation_qrqw(&mut reference, n);
    let _ = random_permutation_qrqw(&mut m, n);
    let rs = reference.cost_report();
    let rm = m.cost_report();
    assert_eq!(rs.claim_attempts, rm.claim_attempts);
    assert_eq!(rs.contended_claims, rm.contended_claims);
    assert_eq!(rs.steps, rm.steps, "step counters must advance in lockstep");

    let mut scan = M::with_seed(16, 3);
    let _ = random_permutation_dart_scan(&mut scan, n);
    let q = rm.contended_claims;
    let s = scan.cost_report().contended_claims;
    assert!(
        q < s,
        "larger fresh subarrays must reduce claim contention ({q} vs {s})"
    );
}

/// Direct trait-level parity: the same exclusive-claim attempts produce the
/// same outcomes and the same memory image as the reference.
pub fn exclusive_claims_agree_cell_by_cell<M: Machine>() {
    let attempts: Vec<(u64, usize)> = (0..200u64)
        .map(|i| (i + 1, (i as usize * 7) % 64))
        .collect();
    let mut reference = Pram::with_seed(16, 0);
    let mut m = M::with_seed(16, 0);
    let a = Machine::claim(&mut reference, &attempts, ClaimMode::Exclusive);
    let b = m.claim(&attempts, ClaimMode::Exclusive);
    assert_eq!(a, b);
    for addr in 0..64 {
        assert_eq!(Machine::peek(&reference, addr), m.peek(addr), "cell {addr}");
    }
    // contested cells really are restored
    assert!((0..64).any(|addr| m.peek(addr) == EMPTY));
}

/// The sequential-step contract: read-after-own-write returns the fresh
/// value, the step index advances by one, and the random stream matches
/// processor 0's.
pub fn seq_step_sees_same_step_writes<M: Machine>() {
    fn drive<M: Machine>(m: &mut M) -> (u64, u64, usize) {
        let base = m.alloc(4);
        let observed = m.seq_step(|ctx| {
            ctx.write(base, 1);
            let v = ctx.read(base);
            ctx.write(base + 1, v + 1);
            ctx.read(base + 1)
        });
        let draw = m.seq_step(|ctx| ctx.random_index(1 << 20));
        (observed, m.steps_executed(), draw)
    }
    let mut reference = Pram::with_seed(16, 44);
    let mut m = M::with_seed(16, 44);
    let a = drive(&mut reference);
    let b = drive(&mut m);
    assert_eq!(a.0, 2, "seq_step must see its own writes");
    assert_eq!(a, b);
}

/// The built-in scan and global-OR primitives return the reference's
/// results and leave the same memory behind.
pub fn scan_and_global_or_match_the_reference<M: Machine>() {
    let vals: Vec<u64> = (0..10_000u64).map(|i| (i * i) % 5).collect();
    let mut reference = Pram::with_seed(16, 0);
    let mut m = M::with_seed(16, 0);
    Machine::ensure_memory(&mut reference, vals.len());
    m.ensure_memory(vals.len());
    Machine::load(&mut reference, 0, &vals);
    m.load(0, &vals);
    assert_eq!(
        Machine::scan_step(&mut reference, 0, vals.len()),
        m.scan_step(0, vals.len())
    );
    assert_eq!(
        Machine::dump(&reference, 0, vals.len()),
        m.dump(0, vals.len())
    );
    assert_eq!(
        Machine::global_or_step(&mut reference, 0, vals.len()),
        m.global_or_step(0, vals.len())
    );
}

/// Same seed, same output, run after run — and different seeds differ.
pub fn outputs_are_seed_stable<M: Machine>() {
    for n in [256usize, 3000] {
        let run = |seed: u64| {
            let mut m = M::with_seed(16, seed);
            random_permutation_qrqw(&mut m, n).order
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}

// ---------------------------------------------------------------------------
// Pattern 2: semantic validity for the occupy-claim algorithms.
// ---------------------------------------------------------------------------

/// Linear compaction places every item injectively, whatever occupy-claim
/// arbitration the backend uses.
pub fn linear_compaction_is_valid<M: Machine>() {
    let n = 1024usize;
    let k = n / 2;
    let mut m = M::with_seed(16, 11);
    let src = m.alloc(n);
    for i in (0..n).step_by(2) {
        m.poke(src + i, i as u64 + 1);
    }
    let dst = m.alloc(4 * k);
    let placements = linear_compaction(&mut m, src, n, dst, 4 * k).placements;
    assert_eq!(placements.len(), k);
    let sources: HashSet<usize> = placements.iter().map(|&(s, _)| s).collect();
    assert_eq!(sources, (0..n).step_by(2).collect::<HashSet<_>>());
    let dests: HashSet<usize> = placements.iter().map(|&(_, d)| d).collect();
    assert_eq!(dests.len(), k, "destinations must be distinct");
}

/// Load balancing covers the load vector exactly and respects the §3 final
/// load bound, on both the QRQW and EREW routes.
pub fn load_balancing_is_valid<M: Machine>() {
    let n = 512usize;
    let loads: Vec<u64> = (0..n)
        .map(|i| if i % 64 == 0 { 128 } else { (i % 2) as u64 })
        .collect();
    let total: u64 = loads.iter().sum();
    let bound = 64 * (1 + total / n as u64);

    let mut m = M::with_seed(16, 4);
    let r = load_balance_qrqw(&mut m, &loads);
    assert!(r.covers_exactly(&loads));
    assert!(r.max_final_load <= bound, "final load {}", r.max_final_load);

    let mut m = M::with_seed(16, 5);
    let r = load_balance_erew(&mut m, &loads);
    assert!(r.covers_exactly(&loads));
}

/// Multiple compaction puts every item in a private cell of its own
/// label's subarray.
pub fn multiple_compaction_is_valid<M: Machine>() {
    let n = 900usize;
    let num_labels = 24usize;
    let labels: Vec<u64> = (0..n)
        .map(|i| {
            if i % 3 == 0 {
                0
            } else {
                (i % num_labels) as u64
            }
        })
        .collect();
    let mut counts = vec![0u64; num_labels];
    for &l in &labels {
        counts[l as usize] += 1;
    }

    fn check(res: &McResult, labels: &[u64]) {
        assert!(!res.failed, "run reported failure");
        let mut seen = HashSet::new();
        for (item, &pos) in res.positions.iter().enumerate() {
            assert_ne!(pos, usize::MAX, "item {item} unplaced");
            assert!(seen.insert(pos), "position {pos} reused");
            let label = labels[item] as usize;
            let lo = res.layout.b_base + res.layout.subarray_offset[label];
            let hi = lo + res.layout.subarray_len[label];
            assert!(pos >= lo && pos < hi, "item {item} outside its subarray");
        }
    }

    let mut m = M::with_seed(16, 5);
    check(&multiple_compaction(&mut m, &labels, &counts), &labels);
}

/// The hash table answers membership exactly: every inserted key found,
/// every probe rejected.
pub fn hashing_answers_membership_exactly<M: Machine>() {
    for (n, seed) in [(40usize, 3u64), (300, 7), (900, 1)] {
        let keys = scattered_keys(n, 0);
        let probes = scattered_keys(n, n);
        let mut m = M::with_seed(16, seed);
        let table = QrqwHashTable::build(&mut m, &keys);
        assert!(table.lookup_batch(&mut m, &keys).iter().all(|&h| h));
        assert!(table.lookup_batch(&mut m, &probes).iter().all(|&h| !h));
    }
}

/// The §7 sorts' placement phases race through occupy claims, but a
/// multiset has exactly one sorted order, so the outputs must equal the
/// std-sort reference bit for bit.
pub fn sorts_produce_the_one_sorted_output<M: Machine>() {
    let n = 1200usize;
    let keys = scattered_keys(n, 0);
    let mut expect = keys.clone();
    expect.sort_unstable();

    let mut m = M::with_seed(16, 2);
    assert_eq!(sample_sort_qrqw(&mut m, &keys), expect, "sample-sort-qrqw");
    let mut m = M::with_seed(16, 3);
    assert_eq!(sample_sort_crqw(&mut m, &keys), expect, "sample-sort-crqw");
    let mut m = M::with_seed(16, 4);
    assert_eq!(
        sort_uniform_keys(&mut m, &keys),
        expect,
        "distributive sort"
    );

    let max_key = (n as u64) * 8;
    let small: Vec<u64> = keys.iter().map(|&k| k % max_key).collect();
    let mut expect_small = small.clone();
    expect_small.sort_unstable();
    let mut m = M::with_seed(16, 5);
    assert_eq!(
        qrqw_suite::algos::integer_sort_crqw(&mut m, &small, max_key),
        expect_small,
        "integer sort"
    );
}

/// Instantiates the whole parity battery for one backend: one `#[test]`
/// per pattern function, in a module named after the backend.  The first
/// test pins the instantiation to the drift-guard list at the crate root
/// (`PARITY_SUITE_BACKENDS`), so a backend registered in `qrqw-bench`
/// without a `parity_suite!` line fails the build.
macro_rules! parity_suite {
    ($backend:ident, $machine:ty) => {
        mod $backend {
            use qrqw_suite::sim::Machine;

            #[test]
            fn suite_instantiation_is_recorded_for_the_drift_guard() {
                let m = <$machine as Machine>::with_seed(1, 0);
                assert!(
                    crate::PARITY_SUITE_BACKENDS.contains(&m.backend()),
                    "backend {:?} runs a parity suite but is missing from PARITY_SUITE_BACKENDS",
                    m.backend()
                );
            }

            #[test]
            fn permutations_match_the_reference() {
                crate::common::parity::permutations_match_the_reference::<$machine>();
            }

            #[test]
            fn cyclic_permutations_match_the_reference() {
                crate::common::parity::cyclic_permutations_match_the_reference::<$machine>();
            }

            #[test]
            fn deterministic_prims_match_the_reference() {
                crate::common::parity::deterministic_prims_match_the_reference::<$machine>();
            }

            #[test]
            fn forced_las_vegas_fallback_matches_the_reference() {
                crate::common::parity::forced_las_vegas_fallback_matches_the_reference::<$machine>();
            }

            #[test]
            fn claim_counters_are_in_lockstep_with_the_reference() {
                crate::common::parity::claim_counters_are_in_lockstep_with_the_reference::<$machine>(
                );
            }

            #[test]
            fn exclusive_claims_agree_cell_by_cell() {
                crate::common::parity::exclusive_claims_agree_cell_by_cell::<$machine>();
            }

            #[test]
            fn seq_step_sees_same_step_writes() {
                crate::common::parity::seq_step_sees_same_step_writes::<$machine>();
            }

            #[test]
            fn scan_and_global_or_match_the_reference() {
                crate::common::parity::scan_and_global_or_match_the_reference::<$machine>();
            }

            #[test]
            fn outputs_are_seed_stable() {
                crate::common::parity::outputs_are_seed_stable::<$machine>();
            }

            #[test]
            fn linear_compaction_is_valid() {
                crate::common::parity::linear_compaction_is_valid::<$machine>();
            }

            #[test]
            fn load_balancing_is_valid() {
                crate::common::parity::load_balancing_is_valid::<$machine>();
            }

            #[test]
            fn multiple_compaction_is_valid() {
                crate::common::parity::multiple_compaction_is_valid::<$machine>();
            }

            #[test]
            fn hashing_answers_membership_exactly() {
                crate::common::parity::hashing_answers_membership_exactly::<$machine>();
            }

            #[test]
            fn sorts_produce_the_one_sorted_output() {
                crate::common::parity::sorts_produce_the_one_sorted_output::<$machine>();
            }
        }
    };
}
pub(crate) use parity_suite;
