//! Shared helpers for the integration-test crates that declare
//! `mod common;` — currently the backend-generic parity harness.

pub mod parity;
