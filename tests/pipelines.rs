//! Cross-crate integration tests: whole algorithm pipelines exercised
//! through the public APIs of `qrqw-sim`, `qrqw-prims`, `qrqw-core` and
//! `qrqw-exec`, the way a downstream user would call them.

use qrqw_suite::algos::{
    emulate_fetch_add_step, integer_sort_crqw, is_cyclic, is_permutation, multiple_compaction,
    random_cyclic_permutation_efficient, random_permutation_dart_scan, random_permutation_qrqw,
    random_permutation_sorting_erew, sample_sort_crqw, sample_sort_qrqw, sort_uniform_keys,
    QrqwHashTable,
};
use qrqw_suite::sim::{CostModel, Pram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn table_one_shape_random_permutation_beats_sorting_baseline() {
    let n = 4096usize;
    let mut qrqw = Pram::with_seed(16, 1);
    let out = random_permutation_qrqw(&mut qrqw, n);
    assert!(is_permutation(&out.order));
    let mut erew = Pram::with_seed(16, 1);
    let _ = random_permutation_sorting_erew(&mut erew, n);

    // Work-optimality: dart throwing is linear work, the sorting baseline is
    // Θ(n lg² n).
    assert!(qrqw.trace().work() * 2 < erew.trace().work());
    assert!(qrqw.trace().work() <= 100 * n as u64);
    // Time: the QRQW algorithm is faster under the contention-charging
    // metrics (the Table II effect).
    assert!(
        qrqw.trace().time(CostModel::SimdQrqw) < erew.trace().time(CostModel::SimdQrqw),
        "qrqw {} vs erew {}",
        qrqw.trace().time(CostModel::SimdQrqw),
        erew.trace().time(CostModel::SimdQrqw)
    );
}

#[test]
fn table_two_ordering_holds_in_the_simulator() {
    let n = 2048usize;
    let times_of = |f: &dyn Fn(&mut Pram, usize) -> qrqw_suite::algos::PermutationOutcome| {
        let mut p = Pram::with_seed(16, 3);
        let _ = f(&mut p, n);
        (
            p.trace().time(CostModel::SimdQrqw),
            p.trace().time(CostModel::ScanSimdQrqw),
        )
    };
    let (sort_simd, sort_scan) = times_of(&|p, n| random_permutation_sorting_erew(p, n));
    let (scan_simd, scan_scan) = times_of(&|p, n| random_permutation_dart_scan(p, n));
    let (qrqw_simd, _) = times_of(&|p, n| random_permutation_qrqw(p, n));
    // The qrqw dart thrower wins under the plain SIMD-QRQW metric (the
    // paper's best predictor of the MasPar measurements)...
    assert!(
        qrqw_simd < sort_simd,
        "qrqw dart ({qrqw_simd}) must beat the sorting baseline ({sort_simd})"
    );
    assert!(
        qrqw_simd < scan_simd,
        "qrqw dart ({qrqw_simd}) must beat dart+scan ({scan_simd})"
    );
    // ...and dart-throwing-with-scans beats the sorting baseline once the
    // machine's scans are charged unit time (the scan-SIMD-QRQW metric),
    // which is how it wins its Table II column on the real MP-1.
    assert!(
        scan_scan < sort_scan,
        "dart+scan ({scan_scan}) must beat the sorting baseline ({sort_scan}) under the scan metric"
    );
}

#[test]
fn native_and_simulated_permutations_are_identical() {
    use qrqw_suite::exec::NativeMachine;
    use qrqw_suite::sim::Machine;
    for n in [64usize, 1000] {
        let mut native = NativeMachine::with_seed(16, 9);
        let nat = random_permutation_qrqw(&mut native, n);
        assert!(is_permutation(&nat.order));
        let mut pram = Pram::with_seed(16, 9);
        let sim = random_permutation_qrqw(&mut pram, n);
        assert!(is_permutation(&sim.order));
        // One algorithm source + shared (seed, step, proc) random streams +
        // deterministic exclusive claims ⇒ bit-identical output.
        assert_eq!(nat.order, sim.order);
    }
}

#[test]
fn integer_sort_feeds_fetch_add_emulation() {
    // The paper's pipeline: integer sorting underlies the Fetch&Add PRAM
    // emulation (Theorem 7.6).  Run both against the same PRAM.
    let mut pram = Pram::with_seed(64, 4);
    let mut rng = SmallRng::seed_from_u64(8);
    let keys: Vec<u64> = (0..2000).map(|_| rng.gen_range(0..8000)).collect();
    let sorted = integer_sort_crqw(&mut pram, &keys, 8000);
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));

    let reqs: Vec<(usize, u64)> = (0..512).map(|i| (i % 7, (i % 5 + 1) as u64)).collect();
    let olds = emulate_fetch_add_step(&mut pram, &reqs);
    assert_eq!(olds.len(), reqs.len());
    let mut totals = [0u64; 7];
    for &(a, v) in &reqs {
        totals[a] += v;
    }
    for (a, &total) in totals.iter().enumerate() {
        assert_eq!(pram.memory().peek(a), total);
    }
}

#[test]
fn sorting_pipelines_agree_with_each_other() {
    let mut rng = SmallRng::seed_from_u64(5);
    let keys: Vec<u64> = (0..3000).map(|_| rng.gen_range(0..(1u64 << 31))).collect();
    let mut expect = keys.clone();
    expect.sort_unstable();

    let mut a = Pram::with_seed(16, 1);
    assert_eq!(sort_uniform_keys(&mut a, &keys), expect);
    let mut b = Pram::with_seed(16, 2);
    assert_eq!(sample_sort_qrqw(&mut b, &keys), expect);
    let mut c = Pram::with_seed(16, 3);
    assert_eq!(sample_sort_crqw(&mut c, &keys), expect);

    // Integer sorting expects a polylog-bounded key range; give it one.
    let small_keys: Vec<u64> = keys.iter().map(|&k| k % 20_000).collect();
    let mut small_expect = small_keys.clone();
    small_expect.sort_unstable();
    let mut d = Pram::with_seed(16, 4);
    assert_eq!(integer_sort_crqw(&mut d, &small_keys, 20_000), small_expect);
}

#[test]
fn hashing_over_multiple_compaction_output() {
    // Build a hash table over keys that were first routed through multiple
    // compaction, mirroring how the sorting algorithms compose the pieces.
    let n = 1500usize;
    let mut rng = SmallRng::seed_from_u64(6);
    let keys: Vec<u64> = (0..n as u64).map(|i| i * 2 + 1).collect();
    let labels: Vec<u64> = (0..n).map(|_| rng.gen_range(0..32u64)).collect();
    let mut counts = vec![0u64; 32];
    for &l in &labels {
        counts[l as usize] += 1;
    }
    let mut pram = Pram::with_seed(16, 7);
    let mc = multiple_compaction(&mut pram, &labels, &counts);
    assert!(!mc.failed);
    let table = QrqwHashTable::build(&mut pram, &keys);
    let hits = table.lookup_batch(&mut pram, &keys);
    assert!(hits.iter().all(|&h| h));
    let misses = table.lookup_batch(&mut pram, &[0, 2, 4, 6]);
    assert!(misses.iter().all(|&h| !h));
}

#[test]
fn cyclic_permutation_composed_with_fetch_add_ranks() {
    let n = 700usize;
    let mut pram = Pram::with_seed(16, 11);
    let cyc = random_cyclic_permutation_efficient(&mut pram, n);
    assert!(is_cyclic(&cyc.successor));
    // Use Fetch&Add to rank the cycle: walking the cycle and fetch-adding a
    // shared counter gives every element a distinct rank.
    let reqs: Vec<(usize, u64)> = (0..n).map(|_| (0usize, 1)).collect();
    let ranks = emulate_fetch_add_step(&mut pram, &reqs);
    let mut sorted = ranks.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..n as u64).collect::<Vec<_>>());
}

#[test]
fn brent_and_bsp_costs_are_consistent_across_an_algorithm_run() {
    let n = 2048usize;
    let mut pram = Pram::with_seed(16, 13);
    let _ = random_permutation_qrqw(&mut pram, n);
    let t = pram.trace().time(CostModel::Qrqw);
    let w = pram.trace().work();
    // Theorem 2.3: p-processor time is work/p + time.
    assert_eq!(
        pram.trace().brent_time(64, CostModel::Qrqw),
        w.div_ceil(64) + t
    );
    // Theorem 1.1: BSP emulation is t·lg p.
    assert_eq!(pram.trace().bsp_time(1024, CostModel::Qrqw), t * 10);
}
