//! Skew-adversarial chunked-vs-stealing regression.
//!
//! Work stealing exists for exactly one workload shape: a pass whose cost
//! is wildly uneven across the index space, so a fixed chunk→thread
//! assignment parks most workers behind one grinding range.  That shape is
//! also where a scheduler bug would show: a stolen chunk run twice, a
//! dropped range, contention bookkeeping folded in the wrong order.  These
//! tests build maximally skewed instances — *all* claim contention landing
//! inside the first chunk (chunks are at least 512 items, so indices
//! 0..512 always share one chunk), and a `par_map` whose first chunk is
//! ~1000× heavier than the rest — and require the work-stealing executor
//! to be bit-identical to chunked dispatch and to the simulator in every
//! observable: outputs, memory images, step counters and contention
//! totals, at 1/2/5/default threads.
//!
//! This is the determinism contract of `ARCHITECTURE.md` pinned at the
//! point of maximum imbalance; the uniform-workload sweeps live in
//! `tests/determinism.rs`.

use qrqw_suite::exec::{NativeMachine, Schedule, StealingMachine, StepPool};
use qrqw_suite::sim::{ClaimMode, Machine, MachineProc, Pram};

/// The thread counts every skew test sweeps (mirrors
/// `tests/determinism.rs`): sequential, smallest chunked, odd
/// oversubscribed, process default.
const THREAD_COUNTS: [Option<usize>; 4] = [Some(1), Some(2), Some(5), None];

fn native_with(threads: Option<usize>, schedule: Schedule, seed: u64) -> NativeMachine {
    let pool = match threads {
        Some(t) => StepPool::with_threads(t),
        None => StepPool::from_env(),
    };
    NativeMachine::with_pool(16, seed, pool.with_schedule(schedule))
}

/// Claim attempts whose collisions all land in the first chunk: attempts
/// 0..512 fight over a single cell (512-way contention), every later
/// attempt claims a private cell (zero contention).  Under chunked *and*
/// stealing dispatch the first chunk carries all the claim-protocol work.
fn skewed_attempts(k: usize) -> Vec<(u64, usize)> {
    (0..k)
        .map(|i| (i as u64 + 1, if i < 512 { 0 } else { i }))
        .collect()
}

#[test]
fn skewed_exclusive_claims_are_bit_identical_across_schedules() {
    let k = 40_960usize;
    let attempts = skewed_attempts(k);

    // The simulator reference: outcome, memory image, counters.
    let mut sim = Pram::with_seed(16, 0);
    let reference = Machine::claim(&mut sim, &attempts, ClaimMode::Exclusive);
    let ref_image = Machine::dump(&sim, 0, k);
    let ref_report = sim.cost_report();
    // Sanity: the instance really is maximally skewed — 512 contenders on
    // cell 0 all fail, everyone else succeeds.
    assert!(reference[..512].iter().all(|&ok| !ok));
    assert!(reference[512..].iter().all(|&ok| ok));
    assert_eq!(ref_report.contended_claims, 512);

    for threads in THREAD_COUNTS {
        for schedule in Schedule::ALL {
            let mut m = native_with(threads, schedule, 0);
            let ok = m.claim(&attempts, ClaimMode::Exclusive);
            assert_eq!(
                ok, reference,
                "outcomes diverged ({schedule:?}, threads {threads:?})"
            );
            assert_eq!(
                Machine::dump(&m, 0, k),
                ref_image,
                "memory image diverged ({schedule:?}, threads {threads:?})"
            );
            let r = m.cost_report();
            assert_eq!(
                (r.claim_attempts, r.contended_claims, r.steps),
                (
                    ref_report.claim_attempts,
                    ref_report.contended_claims,
                    ref_report.steps
                ),
                "counters diverged ({schedule:?}, threads {threads:?})"
            );
        }
    }
}

#[test]
fn skewed_occupy_claims_keep_totals_and_one_winner_across_schedules() {
    // Occupy winners are backend-defined, but the *totals* are not: the
    // contested cell has exactly one winner, so failures = 511 whatever
    // thread got there first — even when the hot cell sits in a range that
    // was stolen mid-pass.
    let k = 40_960usize;
    let attempts = skewed_attempts(k);
    for threads in THREAD_COUNTS {
        for schedule in Schedule::ALL {
            let mut m = native_with(threads, schedule, 0);
            let ok = m.claim(&attempts, ClaimMode::Occupy);
            assert_eq!(
                ok[..512].iter().filter(|&&b| b).count(),
                1,
                "exactly one contender may win cell 0 ({schedule:?}, threads {threads:?})"
            );
            assert!(ok[512..].iter().all(|&b| b));
            let r = m.cost_report();
            assert_eq!(
                (r.claim_attempts, r.contended_claims),
                (k as u64, 511),
                "occupy totals diverged ({schedule:?}, threads {threads:?})"
            );
            let winner = ok[..512].iter().position(|&b| b).unwrap();
            assert_eq!(Machine::peek(&m, 0), attempts[winner].0);
        }
    }
}

#[test]
fn skewed_compute_pass_is_bit_identical_across_schedules() {
    // A par_map whose first chunk costs ~1000× the rest: the stealing
    // executor redistributes it across threads, and the outputs (values
    // *and* RNG draws, which would expose any proc-id / chunk-id mixup)
    // must not notice.
    let procs = 40_960usize;
    let body = |p: usize, ctx: &mut dyn MachineProc| {
        let spins = if p < 512 { 1000u64 } else { 1 };
        let mut acc = p as u64;
        for s in 0..spins {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(s);
        }
        ctx.write(p % 64, acc);
        (acc, ctx.random_index(1 << 30))
    };

    let mut sim = Pram::with_seed(64, 9);
    let reference = Machine::par_map(&mut sim, procs, body);

    for threads in THREAD_COUNTS {
        for schedule in Schedule::ALL {
            let mut m = native_with(threads, schedule, 9);
            m.ensure_memory(64);
            let out = m.par_map(procs, body);
            assert_eq!(
                out, reference,
                "par_map outputs diverged ({schedule:?}, threads {threads:?})"
            );
        }
    }
}

#[test]
fn hot_splitter_style_algorithm_is_identical_under_maximum_skew() {
    // End to end through a registry algorithm driven by dart-throwing
    // claims (the sample-sort-crqw "hot splitters" motivation, scaled
    // down): chunked and stealing runs of the same seed must produce the
    // same permutation and counters at every thread count.
    use qrqw_suite::algos::random_permutation_qrqw;
    let n = 6000usize;
    let mut sim = Pram::with_seed(16, 23);
    let reference = random_permutation_qrqw(&mut sim, n).order;
    for threads in THREAD_COUNTS {
        let mut chunked = native_with(threads, Schedule::Chunked, 23);
        let mut stealing = native_with(threads, Schedule::Stealing, 23);
        let a = random_permutation_qrqw(&mut chunked, n).order;
        let b = random_permutation_qrqw(&mut stealing, n).order;
        assert_eq!(a, b, "threads {threads:?}");
        assert_eq!(a, reference, "threads {threads:?}");
        assert_eq!(
            chunked.contention().failures(),
            stealing.contention().failures()
        );
    }
}

#[test]
fn stealing_machine_wrapper_equals_schedule_built_native_machine() {
    // The registry's `native-steal` entry goes through `StealingMachine`;
    // the builder route goes through `with_schedule`.  Both must be the
    // same machine.
    let attempts = skewed_attempts(20_000);
    let mut wrapper = StealingMachine::with_threads(16, 5, 4);
    let mut built = NativeMachine::with_pool(
        16,
        5,
        StepPool::with_threads(4).with_schedule(Schedule::Stealing),
    );
    assert_eq!(wrapper.backend(), built.backend());
    let a = wrapper.claim(&attempts, ClaimMode::Exclusive);
    let b = built.claim(&attempts, ClaimMode::Exclusive);
    assert_eq!(a, b);
    assert_eq!(
        wrapper.cost_report().contended_claims,
        built.cost_report().contended_claims
    );
    assert_eq!(
        Machine::dump(&wrapper, 0, 1024),
        Machine::dump(&built, 0, 1024)
    );
}
