//! Theorem 1.1 conformance: the BSP backend's *measured* emulation never
//! exceeds what the cost model *charged* for the same execution.
//!
//! Theorem 1.1 is the paper's portability claim — a QRQW PRAM step whose
//! maximum contention is `k` costs a BSP-style emulation only an additive
//! `k` (the realized per-cell message queues drain one message per cycle),
//! so a whole algorithm of QRQW time `t` emulates in `O(t · lg p)` on
//! `p/lg p` components.  The simulator charges that by formula; the
//! `BspMachine` routes real message batches and measures their queues.
//! These tests run every registry variant on both machines with the same
//! seed (the router's processor-order arbitration makes the two runs the
//! same trajectory) and assert, step for step:
//!
//! * the realized max queue never exceeds the contention the simulator's
//!   trace charged for that step (measured ≤ charged), and
//! * the accumulated measured cost lands exactly on the simulator's QRQW
//!   time and therefore under the `t · ⌈lg p⌉` predicted bound.

use qrqw_bench::Algorithm;
use qrqw_suite::bsp::BspMachine;
use qrqw_suite::sim::{bsp_emulation_time, CostModel, Machine, Pram};

/// Runs one registry variant on both machines and returns
/// `(sim, bsp)` after the run, so each assertion site can interrogate the
/// trace and the measured profile.
fn run_pair(algo: Algorithm, n: usize, seed: u64) -> (Pram, BspMachine) {
    let mut sim = Pram::with_seed(16, seed);
    let (sim_valid, _) = algo.run_on(&mut sim, n);
    let mut bsp = BspMachine::with_seed(16, seed);
    let (bsp_valid, _) = algo.run_on(&mut bsp, n);
    assert!(sim_valid, "{} invalid on sim at n={n}", algo.name());
    assert!(bsp_valid, "{} invalid on bsp at n={n}", algo.name());
    (sim, bsp)
}

#[test]
fn measured_per_step_contention_never_exceeds_the_charged_contention() {
    for n in [64usize, 257] {
        for algo in Algorithm::ALL {
            let (sim, bsp) = run_pair(algo, n, 11);
            let charged = sim.trace().contention_profile();
            let measured = bsp.queue_profile();
            assert_eq!(
                measured.len(),
                charged.len(),
                "{}: step counts diverged at n={n}",
                algo.name()
            );
            for (i, (&q, &k)) in measured.iter().zip(&charged).enumerate() {
                assert!(
                    q <= k,
                    "{}: step {i} realized queue {q} > charged contention {k} (n={n})",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn measured_total_cost_equals_the_charged_qrqw_time_and_respects_the_bound() {
    // The conformance is tight, not just one-sided: the router's combining
    // makes the realized queue coincide with the Definition 2.1 contention,
    // so the measured emulation cost must land *exactly* on the simulator's
    // QRQW time — and hence a factor ⌈lg p⌉ under the Theorem 1.1 bound.
    for algo in Algorithm::ALL {
        let (sim, bsp) = run_pair(algo, 257, 11);
        let t_qrqw = sim.trace().time(CostModel::Qrqw);
        let cost = bsp.cost_report().bsp.expect("bsp cost section");
        assert_eq!(
            cost.measured_cost,
            t_qrqw,
            "{}: measured emulation cost diverged from the charged QRQW time",
            algo.name()
        );
        assert_eq!(
            cost.predicted_cost,
            bsp_emulation_time(t_qrqw, cost.components),
            "{}: predicted bound must be the Theorem 1.1 formula",
            algo.name()
        );
        assert!(
            cost.measured_cost <= cost.predicted_cost,
            "{}: measured {} exceeded the predicted bound {}",
            algo.name(),
            cost.measured_cost,
            cost.predicted_cost
        );
    }
}

#[test]
fn claim_and_step_counters_stay_in_lockstep_with_the_simulator() {
    // The emulation must not skip or add protocol steps: step indices and
    // claim counters agree for every variant, occupy-based ones included
    // (the router's lowest-id arbitration is the simulator's).
    for algo in Algorithm::ALL {
        let (sim, bsp) = run_pair(algo, 128, 7);
        let (rs, rb) = (sim.cost_report(), bsp.cost_report());
        assert_eq!(rs.steps, rb.steps, "{}: steps diverged", algo.name());
        assert_eq!(
            rs.claim_attempts,
            rb.claim_attempts,
            "{}: claim attempts diverged",
            algo.name()
        );
        assert_eq!(
            rs.contended_claims,
            rb.contended_claims,
            "{}: contended claims diverged",
            algo.name()
        );
    }
}

#[test]
fn the_additive_claim_shows_up_in_the_profile_of_a_contended_step() {
    // Direct illustration of "additive in k": a single step in which k
    // processors write one cell is measured as one queue of length k — not
    // k supersteps, not a k-fold message blow-up.
    let k = 500usize;
    let mut bsp = BspMachine::with_seed(16, 0);
    bsp.ensure_memory(8);
    bsp.par_for(k, |p, ctx| ctx.write(0, p as u64));
    assert_eq!(bsp.queue_profile(), &[k as u64]);
    let cost = bsp.cost_report().bsp.unwrap();
    assert_eq!(cost.measured_cost, k as u64, "one step costs max(m, k) = k");
    assert_eq!(
        cost.messages, k as u64,
        "k writers send exactly k messages — the queue is additive, \
         not multiplicative"
    );
    assert_eq!(cost.supersteps, 1);
}

#[test]
fn skewed_churn_scenarios_stay_measured_below_charged() {
    // Theorem 1.1 conformance must not be a uniform-input artifact: the
    // skewed and adversarial churn scenarios concentrate claims on shared
    // probe chains, which is exactly where a router bug would let a
    // realized queue outrun the charged contention.  Same contract as the
    // registry variants, step for step, plus digest parity between the
    // two machines.
    for spec in ["zipf-hot", "power-law-churn", "adversarial-collide"] {
        let scenario = qrqw_bench::scenario::Scenario::parse(spec).expect(spec);
        let mut sim = Pram::with_seed(16, 31);
        let want = scenario.run_churn(&mut sim, 96, 31);
        assert!(want.valid, "{spec} invalid on sim");
        let mut bsp = BspMachine::with_seed(16, 31);
        let got = scenario.run_churn(&mut bsp, 96, 31);
        assert!(got.valid, "{spec} invalid on bsp");
        assert_eq!(got.digest, want.digest, "{spec}: digest diverged");

        let charged = sim.trace().contention_profile();
        let measured = bsp.queue_profile();
        assert_eq!(
            measured.len(),
            charged.len(),
            "{spec}: step counts diverged"
        );
        for (i, (&q, &k)) in measured.iter().zip(&charged).enumerate() {
            assert!(
                q <= k,
                "{spec}: step {i} realized queue {q} > charged contention {k}"
            );
        }
        let t_qrqw = sim.trace().time(CostModel::Qrqw);
        let cost = bsp.cost_report().bsp.expect("bsp cost section");
        assert_eq!(
            cost.measured_cost, t_qrqw,
            "{spec}: measured emulation cost diverged from the charged QRQW time"
        );
        assert!(
            cost.measured_cost <= cost.predicted_cost,
            "{spec}: measured {} exceeded the predicted bound {}",
            cost.measured_cost,
            cost.predicted_cost
        );
    }
}
