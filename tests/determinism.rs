//! Thread-count invariance for the native (both schedules) and BSP
//! backends.
//!
//! All pooled machines dispatch every step as contiguous chunks, and the
//! chunk layout changes with the thread count (builder override or
//! `QRQW_THREADS`) while the chunk→thread assignment changes with the
//! schedule (`QRQW_SCHEDULE` / `Schedule::Stealing`).  The backend
//! contract says both must be *unobservable*: per-`(seed, step, proc)` RNG
//! streams and deterministic exclusive-claim outcomes do not depend on
//! which thread computed which index — and for the BSP machine, neither
//! may the order in which chunk buffers hand their messages to the router.
//! These tests pin that down by running every deterministic/
//! exclusive-claim registry algorithm at several thread counts — including
//! oversubscribed ones, so chunked pool dispatch is exercised even on a
//! single-core host — and requiring bit-identical outputs (plus, for BSP,
//! identical measured queue profiles), with the simulator as the
//! reference.  The chunked-vs-stealing comparison at *matched* thread
//! counts lives here too; the skew-adversarial instances are in
//! `tests/schedule_skew.rs`.

use qrqw_suite::algos::{
    emulate_fetch_add_step, random_cyclic_permutation_efficient, random_cyclic_permutation_fast,
    random_permutation_dart_scan, random_permutation_qrqw, random_permutation_sorting_erew,
    sample_sort_qrqw, sort_uniform_keys,
};
use qrqw_suite::bsp::BspMachine;
use qrqw_suite::exec::{NativeMachine, Schedule, StealingMachine, StepPool};
use qrqw_suite::prims::{list_rank, pack, radix_sort_packed, unpack_key};
use qrqw_suite::sim::{ClaimMode, CostModel, Machine, Pram, EMPTY};

/// The thread counts every invariance test sweeps: sequential, the
/// smallest genuinely chunked count, an odd oversubscribed count, and the
/// process default (`QRQW_THREADS` / host parallelism).
const THREAD_COUNTS: [Option<usize>; 4] = [Some(1), Some(2), Some(5), None];

/// Machines that can be built with an explicit thread count — the hook the
/// generic thread-sweep helper needs.  A new pooled backend joins the
/// sweeps with one impl plus a thin `*_invariant_under_threads` wrapper.
trait ThreadSweepMachine: Machine {
    fn with_thread_count(seed: u64, threads: Option<usize>) -> Self;
}

impl ThreadSweepMachine for NativeMachine {
    fn with_thread_count(seed: u64, threads: Option<usize>) -> Self {
        match threads {
            Some(t) => NativeMachine::with_threads(16, seed, t),
            None => Machine::with_seed(16, seed),
        }
    }
}

impl ThreadSweepMachine for BspMachine {
    fn with_thread_count(seed: u64, threads: Option<usize>) -> Self {
        match threads {
            Some(t) => BspMachine::with_threads(16, seed, t),
            None => Machine::with_seed(16, seed),
        }
    }
}

impl ThreadSweepMachine for StealingMachine {
    fn with_thread_count(seed: u64, threads: Option<usize>) -> Self {
        match threads {
            Some(t) => StealingMachine::with_threads(16, seed, t),
            None => Machine::with_seed(16, seed),
        }
    }
}

/// Runs `f` on a fresh machine at every thread count and asserts all runs
/// return the same value; returns that value.
fn sweep_invariant<M, T, F>(seed: u64, label: &str, f: F) -> T
where
    M: ThreadSweepMachine,
    T: PartialEq + std::fmt::Debug,
    F: Fn(&mut M) -> T,
{
    let mut baseline: Option<T> = None;
    for threads in THREAD_COUNTS {
        let mut m = M::with_thread_count(seed, threads);
        let out = f(&mut m);
        match &baseline {
            None => baseline = Some(out),
            Some(b) => assert_eq!(
                &out, b,
                "{label}: output changed at thread count {threads:?} (seed {seed})"
            ),
        }
    }
    baseline.unwrap()
}

/// [`sweep_invariant`] pinned to the native backend, so call sites keep
/// closure-parameter inference.
fn invariant_under_threads<T, F>(seed: u64, label: &str, f: F) -> T
where
    T: PartialEq + std::fmt::Debug,
    F: Fn(&mut NativeMachine) -> T,
{
    sweep_invariant::<NativeMachine, T, F>(seed, label, f)
}

#[test]
fn permutations_are_bit_identical_at_every_thread_count() {
    for (n, seed) in [(3000usize, 7u64), (777, 41)] {
        let native = invariant_under_threads(seed, "permutation-qrqw", |m| {
            random_permutation_qrqw(m, n).order
        });
        let mut sim = Pram::with_seed(16, seed);
        assert_eq!(
            native,
            random_permutation_qrqw(&mut sim, n).order,
            "native must agree with the simulator reference"
        );

        let native = invariant_under_threads(seed, "permutation-dart-scan", |m| {
            random_permutation_dart_scan(m, n).order
        });
        let mut sim = Pram::with_seed(16, seed);
        assert_eq!(native, random_permutation_dart_scan(&mut sim, n).order);

        let native = invariant_under_threads(seed, "permutation-sorting-erew", |m| {
            random_permutation_sorting_erew(m, n).order
        });
        let mut sim = Pram::with_seed(16, seed);
        assert_eq!(native, random_permutation_sorting_erew(&mut sim, n).order);
    }
}

#[test]
fn cyclic_permutations_are_bit_identical_at_every_thread_count() {
    let n = 2048usize;
    for seed in [3u64, 19] {
        let fast = invariant_under_threads(seed, "cyclic-fast", |m| {
            random_cyclic_permutation_fast(m, n).successor
        });
        let mut sim = Pram::with_seed(16, seed);
        assert_eq!(fast, random_cyclic_permutation_fast(&mut sim, n).successor);

        let eff = invariant_under_threads(seed, "cyclic-efficient", |m| {
            random_cyclic_permutation_efficient(m, n).successor
        });
        let mut sim = Pram::with_seed(16, seed);
        assert_eq!(
            eff,
            random_cyclic_permutation_efficient(&mut sim, n).successor
        );
    }
}

#[test]
fn deterministic_prims_are_bit_identical_at_every_thread_count() {
    // List ranking over a pseudo-random chain.
    let n = 4000usize;
    let mut order: Vec<usize> = (0..n).collect();
    for i in 1..n {
        order.swap(i, (i * 48271) % (i + 1));
    }
    let mut succ = vec![EMPTY; n];
    for w in order.windows(2) {
        succ[w[0]] = w[1] as u64;
    }
    let ranks = invariant_under_threads(0, "list-rank", |m| {
        let succ_base = m.alloc(n);
        let rank_base = m.alloc(n);
        m.load(succ_base, &succ);
        list_rank(m, succ_base, n, rank_base);
        m.dump(rank_base, n)
    });
    assert_eq!(ranks.len(), n);

    // Stable packed radix sort: key/value pairs with duplicate keys, so
    // stability is visible in the output order.
    let pairs: Vec<u64> = (0..n)
        .map(|i| pack(((i * 37) % 64) as u64, i as u64))
        .collect();
    let sorted = invariant_under_threads(0, "radix-sort-packed", |m| {
        let base = m.alloc(n);
        m.load(base, &pairs);
        radix_sort_packed(m, base, n, 6);
        m.dump(base, n)
    });
    assert!(sorted
        .windows(2)
        .all(|w| unpack_key(w[0]) <= unpack_key(w[1])));

    // One emulated Fetch&Add step over a hot address set.
    let requests: Vec<(usize, u64)> = (0..n).map(|i| (i % 97, 1 + (i % 3) as u64)).collect();
    invariant_under_threads(5, "fetch-add", |m| emulate_fetch_add_step(m, &requests));
}

#[test]
fn sorts_are_bit_identical_at_every_thread_count() {
    let keys = qrqw_bench::Algorithm::scattered_keys(3000, 0);
    let mut expect = keys.clone();
    expect.sort_unstable();
    let got = invariant_under_threads(2, "sample-sort-qrqw", |m| sample_sort_qrqw(m, &keys));
    assert_eq!(got, expect);
    let got = invariant_under_threads(2, "distributive-sort", |m| sort_uniform_keys(m, &keys));
    assert_eq!(got, expect);
}

#[test]
fn contention_totals_are_invariant_across_thread_counts() {
    // Exclusive-claim contention is fully deterministic; occupy-mode totals
    // are too (each contested cell has exactly one winner), even though the
    // winner's identity is not.  The observed counters must not depend on
    // chunking.
    let n = 8192usize;
    let (attempts, failures, steps) = invariant_under_threads(11, "contention-totals", |m| {
        let _ = random_permutation_qrqw(m, n);
        let report = m.cost_report();
        (report.claim_attempts, report.contended_claims, report.steps)
    });
    let mut sim = Pram::with_seed(16, 11);
    let _ = random_permutation_qrqw(&mut sim, n);
    let rs = sim.cost_report();
    assert_eq!(
        (attempts, failures, steps),
        (rs.claim_attempts, rs.contended_claims, rs.steps),
        "native contention totals must match the simulator's collision counts"
    );
}

#[test]
fn scan_and_global_or_are_invariant_across_thread_counts() {
    let n = 50_000usize;
    let vals: Vec<u64> = (0..n as u64).map(|i| i % 11).collect();
    let reference = invariant_under_threads(0, "scan-step", |m| {
        m.ensure_memory(n);
        m.load(0, &vals);
        let total = m.scan_step(0, n);
        (total, m.dump(0, n))
    });
    assert_eq!(reference.0, vals.iter().sum::<u64>());

    invariant_under_threads(0, "global-or", |m| {
        m.ensure_memory(n);
        let empty = m.global_or_step(0, n);
        m.poke(n - 1, 3);
        let hit_last = m.global_or_step(0, n);
        m.poke(n - 1, 0);
        m.poke(0, 5);
        let hit_first = m.global_or_step(0, n);
        assert!(!empty && hit_last && hit_first);
        (empty, hit_last, hit_first)
    });
}

/// [`sweep_invariant`] pinned to the BSP backend, so call sites keep
/// closure-parameter inference.
fn bsp_invariant_under_threads<T, F>(seed: u64, label: &str, f: F) -> T
where
    T: PartialEq + std::fmt::Debug,
    F: Fn(&mut BspMachine) -> T,
{
    sweep_invariant::<BspMachine, T, F>(seed, label, f)
}

#[test]
fn bsp_outputs_are_bit_identical_at_every_thread_count() {
    for (n, seed) in [(3000usize, 7u64), (777, 41)] {
        let bsp = bsp_invariant_under_threads(seed, "bsp permutation-qrqw", |m| {
            random_permutation_qrqw(m, n).order
        });
        let mut sim = Pram::with_seed(16, seed);
        assert_eq!(
            bsp,
            random_permutation_qrqw(&mut sim, n).order,
            "bsp must agree with the simulator reference"
        );
    }
    let keys = qrqw_bench::Algorithm::scattered_keys(3000, 0);
    let mut expect = keys.clone();
    expect.sort_unstable();
    let got =
        bsp_invariant_under_threads(2, "bsp sample-sort-qrqw", |m| sample_sort_qrqw(m, &keys));
    assert_eq!(got, expect);
}

#[test]
fn bsp_contention_totals_and_measured_profile_are_thread_count_invariant() {
    // The realized queues are a *measurement* of the routed traffic, so
    // they must not depend on how the compute phase was chunked — neither
    // the per-step profile nor any aggregate of the BSP cost section.
    let n = 8192usize;
    let (attempts, failures, steps, profile, bsp_cost) =
        bsp_invariant_under_threads(11, "bsp contention-totals", |m| {
            let _ = random_permutation_qrqw(m, n);
            let report = m.cost_report();
            (
                report.claim_attempts,
                report.contended_claims,
                report.steps,
                m.queue_profile().to_vec(),
                report.bsp.unwrap(),
            )
        });
    let mut sim = Pram::with_seed(16, 11);
    let _ = random_permutation_qrqw(&mut sim, n);
    let rs = sim.cost_report();
    assert_eq!(
        (attempts, failures, steps),
        (rs.claim_attempts, rs.contended_claims, rs.steps),
        "bsp contention totals must match the simulator's collision counts"
    );
    assert_eq!(profile.len() as u64, steps);
    assert_eq!(
        bsp_cost.measured_cost,
        sim.trace().time(CostModel::Qrqw),
        "the measured emulation cost must equal the simulator's exact QRQW time"
    );
}

#[test]
fn bsp_routing_order_never_affects_results() {
    // A raw step with heavy deliberate collisions: 6000 processors write
    // into 97 cells and read from 13.  Different thread counts hand the
    // router its message buffers in different chunkings and orders; the
    // delivered memory image, the realized queue profile, and the message
    // totals must all be identical — and the image must equal the
    // simulator's, whose write arbitration (lowest processor id) the
    // router's processor-order batches realize.
    let procs = 6000usize;
    let body = |p: usize, ctx: &mut dyn qrqw_suite::sim::MachineProc| {
        let v = ctx.read(p % 13);
        let v = if v == EMPTY { 0 } else { v };
        ctx.write(100 + p % 97, p as u64 + v);
    };
    let (image, profile, messages) = bsp_invariant_under_threads(0, "bsp routing-order", |m| {
        m.ensure_memory(256);
        m.par_for(procs, body);
        (
            m.dump(0, 256),
            m.queue_profile().to_vec(),
            m.cost_report().bsp.unwrap().messages,
        )
    });
    let mut sim = Pram::with_seed(256, 0);
    Machine::ensure_memory(&mut sim, 256);
    Machine::par_for(&mut sim, procs, body);
    assert_eq!(image, Machine::dump(&sim, 0, 256));
    // 6000 write messages + 6000 reads (request + reply)
    assert_eq!(messages, 6000 + 2 * 6000);
    // realized queues: ⌈6000/13⌉ readers on cell 0 beats ⌈6000/97⌉ writers
    assert_eq!(profile, vec![6000u64.div_ceil(13)]);
    assert_eq!(
        sim.trace().step_stats()[0].max_read_contention,
        6000u64.div_ceil(13),
        "the realized queue is exactly the contention the simulator charged"
    );
}

/// [`sweep_invariant`] pinned to the work-stealing native backend, so call
/// sites keep closure-parameter inference.
fn steal_invariant_under_threads<T, F>(seed: u64, label: &str, f: F) -> T
where
    T: PartialEq + std::fmt::Debug,
    F: Fn(&mut StealingMachine) -> T,
{
    sweep_invariant::<StealingMachine, T, F>(seed, label, f)
}

#[test]
fn stealing_outputs_are_bit_identical_at_every_thread_count() {
    // The stealing sweep and the chunked sweep of the same seed must agree
    // with each other (and with the simulator) at 1/2/5/default threads —
    // the chunk→thread assignment is the only thing the schedule changes.
    for (n, seed) in [(3000usize, 7u64), (777, 41)] {
        let stealing = steal_invariant_under_threads(seed, "steal permutation-qrqw", |m| {
            random_permutation_qrqw(m, n).order
        });
        let chunked = invariant_under_threads(seed, "permutation-qrqw", |m| {
            random_permutation_qrqw(m, n).order
        });
        assert_eq!(stealing, chunked, "chunked vs stealing diverged");
        let mut sim = Pram::with_seed(16, seed);
        assert_eq!(
            stealing,
            random_permutation_qrqw(&mut sim, n).order,
            "stealing must agree with the simulator reference"
        );

        let stealing = steal_invariant_under_threads(seed, "steal cyclic-fast", |m| {
            random_cyclic_permutation_fast(m, n).successor
        });
        let mut sim = Pram::with_seed(16, seed);
        assert_eq!(
            stealing,
            random_cyclic_permutation_fast(&mut sim, n).successor
        );
    }
    let keys = qrqw_bench::Algorithm::scattered_keys(3000, 0);
    let mut expect = keys.clone();
    expect.sort_unstable();
    let got =
        steal_invariant_under_threads(2, "steal sample-sort-qrqw", |m| sample_sort_qrqw(m, &keys));
    assert_eq!(got, expect);
    let got = steal_invariant_under_threads(2, "steal distributive-sort", |m| {
        sort_uniform_keys(m, &keys)
    });
    assert_eq!(got, expect);
}

#[test]
fn stealing_contention_totals_match_chunked_and_the_simulator() {
    let n = 8192usize;
    let stealing = steal_invariant_under_threads(11, "steal contention-totals", |m| {
        let _ = random_permutation_qrqw(m, n);
        let report = m.cost_report();
        (report.claim_attempts, report.contended_claims, report.steps)
    });
    let chunked = invariant_under_threads(11, "contention-totals", |m| {
        let _ = random_permutation_qrqw(m, n);
        let report = m.cost_report();
        (report.claim_attempts, report.contended_claims, report.steps)
    });
    assert_eq!(stealing, chunked, "chunked vs stealing counters diverged");
    let mut sim = Pram::with_seed(16, 11);
    let _ = random_permutation_qrqw(&mut sim, n);
    let rs = sim.cost_report();
    assert_eq!(
        stealing,
        (rs.claim_attempts, rs.contended_claims, rs.steps),
        "stealing contention totals must match the simulator's collision counts"
    );
}

/// Probe used by [`qrqw_threads_env_var_controls_the_default_thread_count`]:
/// when re-executed in a child process with `QRQW_THREADS` set, it checks
/// that machine construction honours a valid value and **panics loudly** on
/// an invalid one — a mistyped override must never silently benchmark the
/// wrong configuration.  Without the variable it trivially passes, so a
/// normal run is unaffected.
#[test]
fn helper_qrqw_threads_env_probe() {
    let Ok(spec) = std::env::var("QRQW_THREADS") else {
        return;
    };
    match spec.trim().parse::<usize>() {
        Ok(want) if want > 0 => {
            assert_eq!(
                NativeMachine::with_seed(16, 0).threads(),
                want,
                "QRQW_THREADS={spec} must set the thread count"
            );
        }
        _ => {
            let result = std::panic::catch_unwind(|| NativeMachine::with_seed(16, 0).threads());
            let payload = result.expect_err(&format!(
                "invalid QRQW_THREADS={spec} must make construction panic"
            ));
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            assert!(
                msg.contains("QRQW_THREADS"),
                "the panic must name the offending variable, got: {msg}"
            );
        }
    }
    // The explicit-thread-count builder never consults QRQW_THREADS, so it
    // works even when the variable holds garbage.
    assert_eq!(
        NativeMachine::with_threads(16, 0, 7).threads(),
        7,
        "the builder must override the environment"
    );
}

#[test]
fn qrqw_threads_env_var_controls_the_default_thread_count() {
    // Mutating the environment in-process (`std::env::set_var`) races with
    // `getenv` calls from concurrently running tests, which is documented
    // undefined behavior on POSIX — so the probe runs in a child process
    // whose environment is set before it starts.
    let exe = std::env::current_exe().expect("test binary path");
    for spec in ["3", "not-a-number"] {
        let output = std::process::Command::new(&exe)
            .args(["--exact", "helper_qrqw_threads_env_probe"])
            .env("QRQW_THREADS", spec)
            .output()
            .expect("re-exec test binary");
        assert!(
            output.status.success(),
            "env probe failed for QRQW_THREADS={spec}:\n{}\n{}",
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}

/// Probe used by [`qrqw_schedule_env_var_controls_the_default_schedule`]:
/// when re-executed in a child process with `QRQW_SCHEDULE` set, it checks
/// that machine construction honours a valid value and **panics loudly** on
/// an invalid one (the same policy as `QRQW_THREADS` — no silent fallback
/// to chunked).  Without the variable it trivially passes, so a normal run
/// is unaffected.
#[test]
fn helper_qrqw_schedule_env_probe() {
    let Ok(spec) = std::env::var("QRQW_SCHEDULE") else {
        return;
    };
    match Schedule::parse(spec.trim()) {
        Some(want) => {
            let m = NativeMachine::with_seed(16, 0);
            assert_eq!(
                m.schedule(),
                want,
                "QRQW_SCHEDULE={spec} must set the schedule"
            );
            let expect_backend = match want {
                Schedule::Chunked => "native",
                Schedule::Stealing => "native-steal",
            };
            assert_eq!(m.backend(), expect_backend);
            // The builder must override the environment in both directions.
            assert_eq!(
                NativeMachine::with_schedule(16, 0, Schedule::Stealing).schedule(),
                Schedule::Stealing
            );
            assert_eq!(
                NativeMachine::with_schedule(16, 0, Schedule::Chunked).schedule(),
                Schedule::Chunked
            );
            assert_eq!(StealingMachine::with_seed(16, 0).backend(), "native-steal");
        }
        None => {
            // Loud rejection: every env-consulting construction — including
            // the builders, which still read the variable for the pool's
            // defaults — must panic and name the variable.
            fn build_default() {
                let _ = NativeMachine::with_seed(16, 0);
            }
            fn build_with_schedule() {
                let _ = NativeMachine::with_schedule(16, 0, Schedule::Stealing);
            }
            fn build_stealing() {
                let _ = StealingMachine::with_seed(16, 0);
            }
            for build in [build_default as fn(), build_with_schedule, build_stealing] {
                let payload = std::panic::catch_unwind(build).expect_err(&format!(
                    "invalid QRQW_SCHEDULE={spec} must make construction panic"
                ));
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_default();
                assert!(
                    msg.contains("QRQW_SCHEDULE"),
                    "the panic must name the offending variable, got: {msg}"
                );
            }
        }
    }
}

#[test]
fn qrqw_schedule_env_var_controls_the_default_schedule() {
    // Same child-process pattern as the QRQW_THREADS test above, for the
    // same POSIX `setenv` reason.
    let exe = std::env::current_exe().expect("test binary path");
    for spec in ["stealing", "chunked", "not-a-schedule"] {
        let output = std::process::Command::new(&exe)
            .args(["--exact", "helper_qrqw_schedule_env_probe"])
            .env("QRQW_SCHEDULE", spec)
            .output()
            .expect("re-exec test binary");
        assert!(
            output.status.success(),
            "env probe failed for QRQW_SCHEDULE={spec}:\n{}\n{}",
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}

/// Probe used by [`qrqw_fuse_env_var_controls_fused_dispatch`]: with
/// `QRQW_FUSE` set, checks that pool construction honours a valid toggle
/// and panics loudly on garbage.
#[test]
fn helper_qrqw_fuse_env_probe() {
    let Ok(spec) = std::env::var("QRQW_FUSE") else {
        return;
    };
    match spec.trim() {
        "1" | "on" => assert!(StepPool::from_env().fused()),
        "0" | "off" => assert!(!StepPool::from_env().fused()),
        _ => {
            let payload = std::panic::catch_unwind(|| StepPool::from_env().fused())
                .expect_err(&format!("invalid QRQW_FUSE={spec} must panic"));
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            assert!(
                msg.contains("QRQW_FUSE"),
                "the panic must name the offending variable, got: {msg}"
            );
        }
    }
}

#[test]
fn qrqw_fuse_env_var_controls_fused_dispatch() {
    let exe = std::env::current_exe().expect("test binary path");
    for spec in ["1", "0", "on", "off", "sometimes"] {
        let output = std::process::Command::new(&exe)
            .args(["--exact", "helper_qrqw_fuse_env_probe"])
            .env("QRQW_FUSE", spec)
            .output()
            .expect("re-exec test binary");
        assert!(
            output.status.success(),
            "env probe failed for QRQW_FUSE={spec}:\n{}\n{}",
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}

/// Builds a native machine with every (threads, schedule, fused)
/// combination the fusion sweep exercises.
fn fused_sweep_machine(
    seed: u64,
    threads: usize,
    schedule: Schedule,
    fused: bool,
) -> NativeMachine {
    NativeMachine::with_pool(
        16,
        seed,
        StepPool::with_threads(threads)
            .with_schedule(schedule)
            .with_fused(fused),
    )
}

#[test]
fn fused_and_unfused_dispatch_agree_with_the_simulator_on_claim_heavy_work() {
    // The tentpole's contract: fusing the claim protocol's passes into one
    // pool dispatch changes nothing observable — outputs, CostReport step
    // counts, and contention totals stay bit-identical to the simulator's
    // charge across threads × schedules × fusion.
    let n = 8192usize;
    let seed = 11u64;
    let mut sim = Pram::with_seed(16, seed);
    let sim_order = random_permutation_qrqw(&mut sim, n).order;
    let rs = sim.cost_report();
    for threads in [1usize, 2, 5] {
        for schedule in [Schedule::Chunked, Schedule::Stealing] {
            for fused in [true, false] {
                let label = format!("threads={threads} {schedule:?} fused={fused}");
                let mut m = fused_sweep_machine(seed, threads, schedule, fused);
                let order = random_permutation_qrqw(&mut m, n).order;
                assert_eq!(order, sim_order, "{label}: outputs diverged");
                let report = m.cost_report();
                assert_eq!(report.steps, rs.steps, "{label}: step counts diverged");
                assert_eq!(
                    (report.claim_attempts, report.contended_claims),
                    (rs.claim_attempts, rs.contended_claims),
                    "{label}: contention totals diverged"
                );
            }
        }
    }
}

#[test]
fn occupy_claims_pick_the_lowest_claimant_on_every_schedule_and_thread_count() {
    // Occupy arbitration is pinned, not "whichever thread wins the CAS":
    // the lowest live claimant index takes the cell on every backend.  A
    // race-decided winner changes retry trajectories — and therefore step
    // counts and contention totals — between schedules, which is exactly
    // the stealing-vs-sim drift this test regresses.
    //
    // 6000 claimants over 97 cells: heavy multi-way contention, well past
    // the inline cutoff so the parallel claim path actually runs.
    let attempts: Vec<(u64, usize)> = (0..6000usize)
        .map(|j| (j as u64 + 7, (j * 31) % 97))
        .collect();
    let mut sim = Pram::with_seed(16, 3);
    let sim_won = sim.claim(&attempts, ClaimMode::Occupy);
    let sim_report = sim.cost_report();
    // On a fresh machine every claimant is live, so the winner of each
    // cell is exactly its first claimant in index order.
    let mut seen = std::collections::HashSet::new();
    for (j, &(_, addr)) in attempts.iter().enumerate() {
        assert_eq!(sim_won[j], seen.insert(addr), "sim winner at claimant {j}");
    }
    for threads in [1usize, 2, 5] {
        for schedule in [Schedule::Chunked, Schedule::Stealing] {
            for fused in [true, false] {
                let label = format!("threads={threads} {schedule:?} fused={fused}");
                let mut m = fused_sweep_machine(3, threads, schedule, fused);
                let won = m.claim(&attempts, ClaimMode::Occupy);
                assert_eq!(won, sim_won, "{label}: occupy winners diverged");
                let report = m.cost_report();
                assert_eq!(
                    (report.steps, report.claim_attempts, report.contended_claims),
                    (
                        sim_report.steps,
                        sim_report.claim_attempts,
                        sim_report.contended_claims
                    ),
                    "{label}: claim accounting diverged"
                );
                // Each contested cell keeps the winning claimant's tag.
                for (j, &(tag, addr)) in attempts.iter().enumerate() {
                    if won[j] {
                        assert_eq!(m.peek(addr), tag, "{label}: cell {addr}");
                    }
                }
            }
        }
    }
}

#[test]
fn fused_and_unfused_dispatch_agree_on_scan_and_compact() {
    // scan_step and compact_step take the fused 3-pass route; both must be
    // bit-identical to the unfused two-dispatch route and charge the same
    // step counts, including the raw-destination compact case that falls
    // back to the unfused route when the destination would need growth.
    let n = 60_000usize;
    let vals: Vec<u64> = (0..n as u64).map(|i| (i * 31) % 13).collect();
    let sparse: Vec<u64> = (0..n as u64)
        .map(|i| if i % 3 == 0 { i + 1 } else { EMPTY })
        .collect();
    // (scan total, scanned cells, kept count, compacted cells, steps).
    type ScanCompactTrace = (u64, Vec<u64>, u64, Vec<u64>, u64);
    let mut reference: Option<ScanCompactTrace> = None;
    for threads in [1usize, 2, 5] {
        for schedule in [Schedule::Chunked, Schedule::Stealing] {
            for fused in [true, false] {
                let label = format!("threads={threads} {schedule:?} fused={fused}");
                let mut m = fused_sweep_machine(0, threads, schedule, fused);
                let base = m.alloc(n);
                let dst = m.alloc(n);
                m.load(base, &vals);
                let total = m.scan_step(base, n);
                let scanned = m.dump(base, n);
                m.load(base, &sparse);
                let kept = m.compact_step(base, n, dst);
                let compacted = m.dump(dst, kept as usize);
                let out = (total, scanned, kept, compacted, m.steps_executed());
                match &reference {
                    None => reference = Some(out),
                    Some(r) => assert_eq!(&out, r, "{label}: scan/compact diverged"),
                }
            }
        }
    }
    let (total, _, kept, compacted, _) = reference.unwrap();
    assert_eq!(total, vals.iter().sum::<u64>());
    assert_eq!(kept as usize, n.div_ceil(3));
    assert!(compacted.iter().zip(0..).all(|(&v, i)| v == 3 * i + 1));
}
