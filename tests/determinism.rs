//! Thread-count invariance for the native backend.
//!
//! The pooled native machine dispatches every step as contiguous chunks,
//! and the chunk layout changes with the thread count (builder override or
//! `QRQW_THREADS`).  The backend contract says the layout must be
//! *unobservable*: per-`(seed, step, proc)` RNG streams and deterministic
//! exclusive-claim outcomes do not depend on which thread computed which
//! index.  These tests pin that down by running every
//! deterministic/exclusive-claim registry algorithm at several thread
//! counts — including oversubscribed ones, so chunked pool dispatch is
//! exercised even on a single-core host — and requiring bit-identical
//! outputs, plus agreement with the simulator as the reference.

use qrqw_suite::algos::{
    emulate_fetch_add_step, random_cyclic_permutation_efficient, random_cyclic_permutation_fast,
    random_permutation_dart_scan, random_permutation_qrqw, random_permutation_sorting_erew,
    sample_sort_qrqw, sort_uniform_keys,
};
use qrqw_suite::exec::NativeMachine;
use qrqw_suite::prims::{list_rank, pack, radix_sort_packed, unpack_key};
use qrqw_suite::sim::{Machine, Pram, EMPTY};

/// The thread counts every invariance test sweeps: sequential, the
/// smallest genuinely chunked count, an odd oversubscribed count, and the
/// process default (`QRQW_THREADS` / host parallelism).
const THREAD_COUNTS: [Option<usize>; 4] = [Some(1), Some(2), Some(5), None];

fn machine(seed: u64, threads: Option<usize>) -> NativeMachine {
    match threads {
        Some(t) => NativeMachine::with_threads(16, seed, t),
        None => NativeMachine::with_seed(16, seed),
    }
}

/// Runs `f` on a fresh native machine at every thread count and asserts
/// all runs return the same value; returns that value.
fn invariant_under_threads<T, F>(seed: u64, label: &str, f: F) -> T
where
    T: PartialEq + std::fmt::Debug,
    F: Fn(&mut NativeMachine) -> T,
{
    let mut baseline: Option<T> = None;
    for threads in THREAD_COUNTS {
        let mut m = machine(seed, threads);
        let out = f(&mut m);
        match &baseline {
            None => baseline = Some(out),
            Some(b) => assert_eq!(
                &out, b,
                "{label}: output changed at thread count {threads:?} (seed {seed})"
            ),
        }
    }
    baseline.unwrap()
}

#[test]
fn permutations_are_bit_identical_at_every_thread_count() {
    for (n, seed) in [(3000usize, 7u64), (777, 41)] {
        let native = invariant_under_threads(seed, "permutation-qrqw", |m| {
            random_permutation_qrqw(m, n).order
        });
        let mut sim = Pram::with_seed(16, seed);
        assert_eq!(
            native,
            random_permutation_qrqw(&mut sim, n).order,
            "native must agree with the simulator reference"
        );

        let native = invariant_under_threads(seed, "permutation-dart-scan", |m| {
            random_permutation_dart_scan(m, n).order
        });
        let mut sim = Pram::with_seed(16, seed);
        assert_eq!(native, random_permutation_dart_scan(&mut sim, n).order);

        let native = invariant_under_threads(seed, "permutation-sorting-erew", |m| {
            random_permutation_sorting_erew(m, n).order
        });
        let mut sim = Pram::with_seed(16, seed);
        assert_eq!(native, random_permutation_sorting_erew(&mut sim, n).order);
    }
}

#[test]
fn cyclic_permutations_are_bit_identical_at_every_thread_count() {
    let n = 2048usize;
    for seed in [3u64, 19] {
        let fast = invariant_under_threads(seed, "cyclic-fast", |m| {
            random_cyclic_permutation_fast(m, n).successor
        });
        let mut sim = Pram::with_seed(16, seed);
        assert_eq!(fast, random_cyclic_permutation_fast(&mut sim, n).successor);

        let eff = invariant_under_threads(seed, "cyclic-efficient", |m| {
            random_cyclic_permutation_efficient(m, n).successor
        });
        let mut sim = Pram::with_seed(16, seed);
        assert_eq!(
            eff,
            random_cyclic_permutation_efficient(&mut sim, n).successor
        );
    }
}

#[test]
fn deterministic_prims_are_bit_identical_at_every_thread_count() {
    // List ranking over a pseudo-random chain.
    let n = 4000usize;
    let mut order: Vec<usize> = (0..n).collect();
    for i in 1..n {
        order.swap(i, (i * 48271) % (i + 1));
    }
    let mut succ = vec![EMPTY; n];
    for w in order.windows(2) {
        succ[w[0]] = w[1] as u64;
    }
    let ranks = invariant_under_threads(0, "list-rank", |m| {
        let succ_base = m.alloc(n);
        let rank_base = m.alloc(n);
        m.load(succ_base, &succ);
        list_rank(m, succ_base, n, rank_base);
        m.dump(rank_base, n)
    });
    assert_eq!(ranks.len(), n);

    // Stable packed radix sort: key/value pairs with duplicate keys, so
    // stability is visible in the output order.
    let pairs: Vec<u64> = (0..n)
        .map(|i| pack(((i * 37) % 64) as u64, i as u64))
        .collect();
    let sorted = invariant_under_threads(0, "radix-sort-packed", |m| {
        let base = m.alloc(n);
        m.load(base, &pairs);
        radix_sort_packed(m, base, n, 6);
        m.dump(base, n)
    });
    assert!(sorted
        .windows(2)
        .all(|w| unpack_key(w[0]) <= unpack_key(w[1])));

    // One emulated Fetch&Add step over a hot address set.
    let requests: Vec<(usize, u64)> = (0..n).map(|i| (i % 97, 1 + (i % 3) as u64)).collect();
    invariant_under_threads(5, "fetch-add", |m| emulate_fetch_add_step(m, &requests));
}

#[test]
fn sorts_are_bit_identical_at_every_thread_count() {
    let keys = qrqw_bench::Algorithm::scattered_keys(3000, 0);
    let mut expect = keys.clone();
    expect.sort_unstable();
    let got = invariant_under_threads(2, "sample-sort-qrqw", |m| sample_sort_qrqw(m, &keys));
    assert_eq!(got, expect);
    let got = invariant_under_threads(2, "distributive-sort", |m| sort_uniform_keys(m, &keys));
    assert_eq!(got, expect);
}

#[test]
fn contention_totals_are_invariant_across_thread_counts() {
    // Exclusive-claim contention is fully deterministic; occupy-mode totals
    // are too (each contested cell has exactly one winner), even though the
    // winner's identity is not.  The observed counters must not depend on
    // chunking.
    let n = 8192usize;
    let (attempts, failures, steps) = invariant_under_threads(11, "contention-totals", |m| {
        let _ = random_permutation_qrqw(m, n);
        let report = m.cost_report();
        (report.claim_attempts, report.contended_claims, report.steps)
    });
    let mut sim = Pram::with_seed(16, 11);
    let _ = random_permutation_qrqw(&mut sim, n);
    let rs = sim.cost_report();
    assert_eq!(
        (attempts, failures, steps),
        (rs.claim_attempts, rs.contended_claims, rs.steps),
        "native contention totals must match the simulator's collision counts"
    );
}

#[test]
fn scan_and_global_or_are_invariant_across_thread_counts() {
    let n = 50_000usize;
    let vals: Vec<u64> = (0..n as u64).map(|i| i % 11).collect();
    let reference = invariant_under_threads(0, "scan-step", |m| {
        m.ensure_memory(n);
        m.load(0, &vals);
        let total = m.scan_step(0, n);
        (total, m.dump(0, n))
    });
    assert_eq!(reference.0, vals.iter().sum::<u64>());

    invariant_under_threads(0, "global-or", |m| {
        m.ensure_memory(n);
        let empty = m.global_or_step(0, n);
        m.poke(n - 1, 3);
        let hit_last = m.global_or_step(0, n);
        m.poke(n - 1, 0);
        m.poke(0, 5);
        let hit_first = m.global_or_step(0, n);
        assert!(!empty && hit_last && hit_first);
        (empty, hit_last, hit_first)
    });
}

/// Probe used by [`qrqw_threads_env_var_controls_the_default_thread_count`]:
/// when re-executed in a child process with `QRQW_THREADS` set, it checks
/// that machine construction honours (or safely ignores) the variable.
/// Without the variable it trivially passes, so a normal run is unaffected.
#[test]
fn helper_qrqw_threads_env_probe() {
    let Ok(spec) = std::env::var("QRQW_THREADS") else {
        return;
    };
    let threads = NativeMachine::with_seed(16, 0).threads();
    match spec.trim().parse::<usize>() {
        Ok(want) if want > 0 => assert_eq!(
            threads, want,
            "QRQW_THREADS={spec} must set the thread count"
        ),
        _ => assert!(
            threads >= 1,
            "unparseable QRQW_THREADS={spec} must fall back to host parallelism"
        ),
    }
    assert_eq!(
        NativeMachine::with_threads(16, 0, 7).threads(),
        7,
        "the builder must override the environment"
    );
}

#[test]
fn qrqw_threads_env_var_controls_the_default_thread_count() {
    // Mutating the environment in-process (`std::env::set_var`) races with
    // `getenv` calls from concurrently running tests, which is documented
    // undefined behavior on POSIX — so the probe runs in a child process
    // whose environment is set before it starts.
    let exe = std::env::current_exe().expect("test binary path");
    for spec in ["3", "not-a-number"] {
        let output = std::process::Command::new(&exe)
            .args(["--exact", "helper_qrqw_threads_env_probe"])
            .env("QRQW_THREADS", spec)
            .output()
            .expect("re-exec test binary");
        assert!(
            output.status.success(),
            "env probe failed for QRQW_THREADS={spec}:\n{}\n{}",
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
