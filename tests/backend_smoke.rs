//! Registry/backend drift guard: every [`Algorithm::ALL`] variant must run
//! and validate once on *every* [`Backend::ALL`] backend at small problem
//! sizes — both lists are enumerated programmatically, so adding a variant
//! without porting it, porting one without registering it, or registering
//! a backend that breaks any single variant fails this build with the
//! offending (variant, backend) pair in the message.
//!
//! This is the tier-1 twin of the CI `backend_bench` smoke step; the
//! companion guard in `tests/backends.rs`
//! (`parity_suite_covers_every_registered_backend`) additionally fails the
//! build when a registered backend lacks a parity-suite instantiation.

use qrqw_bench::{Algorithm, Backend};

#[test]
fn every_registry_variant_runs_and_validates_on_every_backend() {
    for n in [64usize, 257] {
        for algo in Algorithm::ALL {
            for backend in Backend::ALL {
                let run = algo.run(backend, n, 11);
                assert!(
                    run.valid,
                    "{} produced an invalid output on {} at n={n}",
                    algo.name(),
                    backend.name()
                );
                assert_eq!(run.backend, backend.name());
            }
        }
    }
}

#[test]
fn registry_names_are_stable_and_parse_round_trips() {
    for algo in Algorithm::ALL {
        assert_eq!(Algorithm::parse(algo.name()), Some(algo), "{}", algo.name());
    }
    for backend in Backend::ALL {
        assert_eq!(
            Backend::parse(backend.name()),
            Some(backend),
            "{}",
            backend.name()
        );
    }
    assert!(
        Algorithm::ALL.len() >= 13,
        "the port promised ≥ 13 variants"
    );
    assert!(
        Backend::ALL.len() >= 3,
        "sim, native and bsp must stay registered"
    );
}

#[test]
fn exclusive_claim_algorithms_report_identical_cost_counters_on_every_backend() {
    // For the claim-deterministic variants all backends must agree not
    // just on output but on the step and claim counters the harness
    // prints — enumerated over Backend::ALL so a fourth backend is
    // covered the moment it is registered.
    for algo in [
        Algorithm::PermutationQrqw,
        Algorithm::PermutationDartScan,
        Algorithm::CyclicFast,
        Algorithm::CyclicEfficient,
        Algorithm::ListRank,
        Algorithm::FetchAdd,
    ] {
        let reference = algo.run(Backend::Sim, 200, 7);
        assert!(reference.valid, "{}", algo.name());
        for backend in Backend::ALL {
            let run = algo.run(backend, 200, 7);
            assert!(run.valid, "{} on {}", algo.name(), backend.name());
            assert_eq!(
                reference.report.steps,
                run.report.steps,
                "{} on {}: step counters out of lockstep",
                algo.name(),
                backend.name()
            );
            assert_eq!(
                reference.report.claim_attempts,
                run.report.claim_attempts,
                "{} on {}: claim counters diverged",
                algo.name(),
                backend.name()
            );
            assert_eq!(
                reference.report.contended_claims,
                run.report.contended_claims,
                "{} on {}: contention counters diverged",
                algo.name(),
                backend.name()
            );
        }
    }
}

#[test]
fn only_the_bsp_backend_fills_the_bsp_cost_section() {
    for backend in Backend::ALL {
        let run = Algorithm::ListRank.run(backend, 64, 1);
        assert_eq!(
            run.report.bsp.is_some(),
            backend == Backend::Bsp,
            "{} report has the wrong BSP-section shape",
            backend.name()
        );
    }
}
