//! Registry/backend drift guard: every [`Algorithm::ALL`] variant must run
//! and validate once on *both* backends at small problem sizes.
//!
//! This is the tier-1 twin of the CI `backend_bench` smoke step: adding an
//! algorithm to the registry without porting it (or porting one without
//! registering it in a runnable state) fails this build immediately, and a
//! backend regression that breaks any single variant is pinned to its name.

use qrqw_bench::{Algorithm, Backend};

#[test]
fn every_registry_variant_runs_and_validates_on_both_backends() {
    for n in [64usize, 257] {
        for algo in Algorithm::ALL {
            for backend in Backend::ALL {
                let run = algo.run(backend, n, 11);
                assert!(
                    run.valid,
                    "{} produced an invalid output on {} at n={n}",
                    algo.name(),
                    backend.name()
                );
                assert_eq!(run.backend, backend.name());
            }
        }
    }
}

#[test]
fn registry_names_are_stable_and_parse_round_trips() {
    for algo in Algorithm::ALL {
        assert_eq!(Algorithm::parse(algo.name()), Some(algo), "{}", algo.name());
    }
    assert!(
        Algorithm::ALL.len() >= 13,
        "the port promised ≥ 13 variants"
    );
}

#[test]
fn exclusive_claim_algorithms_report_identical_cost_counters_across_backends() {
    // For the claim-deterministic variants the two backends must agree not
    // just on output but on the step and claim counters the harness prints.
    for algo in [
        Algorithm::PermutationQrqw,
        Algorithm::PermutationDartScan,
        Algorithm::CyclicFast,
        Algorithm::CyclicEfficient,
        Algorithm::ListRank,
        Algorithm::FetchAdd,
    ] {
        let sim = algo.run(Backend::Sim, 200, 7);
        let native = algo.run(Backend::Native, 200, 7);
        assert!(sim.valid && native.valid, "{}", algo.name());
        assert_eq!(
            sim.report.steps,
            native.report.steps,
            "{}: step counters out of lockstep",
            algo.name()
        );
        assert_eq!(
            sim.report.claim_attempts,
            native.report.claim_attempts,
            "{}: claim counters diverged",
            algo.name()
        );
        assert_eq!(
            sim.report.contended_claims,
            native.report.contended_claims,
            "{}: contention counters diverged",
            algo.name()
        );
    }
}
