//! Umbrella crate for the QRQW PRAM reproduction workspace.
//!
//! Re-exports the four library crates so the examples and integration tests
//! (and downstream users who just want everything) can depend on a single
//! package:
//!
//! * [`sim`] — the QRQW PRAM simulator, the cost models, and the
//!   [`sim::Machine`] backend trait,
//! * [`prims`] — parallel primitives (prefix sums, broadcasting, claiming,
//!   compaction, list ranking, integer/bitonic sorts), generic over the
//!   backend,
//! * [`algos`] — the paper's algorithms and their baselines, every one
//!   generic over [`sim::Machine`]: load balancing, multiple compaction,
//!   random (cyclic) permutation, hashing, the three sorts, Fetch&Add
//!   emulation, the fat-tree,
//! * [`exec`] — the native rayon/atomics backend ([`exec::NativeMachine`])
//!   for wall-clock Table II runs,
//! * [`bsp`] — the batch-message BSP backend ([`bsp::BspMachine`]) that
//!   measures the Theorem 1.1 emulation instead of formula-charging it.

pub use qrqw_bsp as bsp;
pub use qrqw_core as algos;
pub use qrqw_exec as exec;
pub use qrqw_prims as prims;
pub use qrqw_sim as sim;
