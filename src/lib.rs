//! Umbrella crate for the QRQW PRAM reproduction workspace.
//!
//! Re-exports the four library crates so the examples and integration tests
//! (and downstream users who just want everything) can depend on a single
//! package:
//!
//! * [`sim`] — the QRQW PRAM simulator and cost models,
//! * [`prims`] — parallel primitives (prefix sums, broadcasting, claiming,
//!   compaction, sorting networks),
//! * [`algos`] — the paper's algorithms and their baselines,
//! * [`exec`] — the native rayon/atomics executor for the Table II
//!   experiment.

pub use qrqw_core as algos;
pub use qrqw_exec as exec;
pub use qrqw_prims as prims;
pub use qrqw_sim as sim;
