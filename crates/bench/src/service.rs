//! Load generation and reporting for the `qrqw-serve` service layer.
//!
//! This module is the shared engine of the `service_bench` (interactive
//! load generator) and `service_report` (committed `BENCH_service.json`
//! sweep) binaries: it spawns a [`Server`], drives it with N concurrent
//! closed-loop client threads (optionally rate-paced, optionally with a
//! pipelining window so large batch caps can actually fill), folds every
//! client's latency histogram and reply bookkeeping together, validates
//! the final [`StateDigest`] against interleaving-invariant invariants,
//! and renders one [`Json`] summary per run through the same writer
//! `perf_report` uses.
//!
//! # The validator
//!
//! Client interleaving through the submission queue is nondeterministic,
//! so the validator checks exactly the properties that hold for *every*
//! interleaving (the service's trace-determinism makes them exact):
//!
//! * the machine hash table holds exactly the keys whose acknowledged
//!   `Inserted(true)` replies outnumber their acknowledged `Removed(true)`
//!   replies — by trace-determinism those acks strictly alternate per key,
//!   so the counts differ by 0 (absent) or 1 (present);
//! * the counter region sums to the total of acknowledged deltas;
//! * `next_seq` equals the number of acknowledged submits, and the
//!   pending-task count equals submits minus successful steals.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qrqw_serve::{
    BatchPolicy, Histogram, Reply, Request, Server, ServiceConfig, ServiceError, ServiceStats,
    StateDigest, Ticket,
};
use qrqw_sim::EMPTY;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::report::Json;

/// Which request mix the generator produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceWorkload {
    /// Hash-set traffic: 40% insert, 40% lookup, 20% contains.
    Hash,
    /// Counter traffic: 80% fetch-add (delta 1–15), 20% read.
    Counter,
    /// Task-pool traffic: 55% submit, 45% steal.
    Task,
    /// Hash churn: 40% insert, 20% delete, 40% lookup over the same
    /// keyspace — sustained presence turnover, exercising tombstones and
    /// growth-time purges.  Not part of [`ServiceWorkload::ALL`], so the
    /// committed `BENCH_service.json` sweep's shape is unchanged.
    Churn,
    /// Uniform mix of hash/counter/task.
    Mix,
}

impl ServiceWorkload {
    /// The sweep set of the committed report (the mix is a smoke-only
    /// convenience, not a reported workload).
    pub const ALL: [ServiceWorkload; 3] = [
        ServiceWorkload::Hash,
        ServiceWorkload::Counter,
        ServiceWorkload::Task,
    ];

    /// Short name.
    pub fn name(self) -> &'static str {
        match self {
            ServiceWorkload::Hash => "hash",
            ServiceWorkload::Counter => "counter",
            ServiceWorkload::Task => "task",
            ServiceWorkload::Churn => "churn",
            ServiceWorkload::Mix => "mix",
        }
    }

    /// Parses a workload name.
    pub fn parse(s: &str) -> Option<ServiceWorkload> {
        match s {
            "hash" => Some(ServiceWorkload::Hash),
            "counter" => Some(ServiceWorkload::Counter),
            "task" => Some(ServiceWorkload::Task),
            "churn" => Some(ServiceWorkload::Churn),
            "mix" => Some(ServiceWorkload::Mix),
            _ => None,
        }
    }
}

pub use crate::workload::{KeyDist, KeySampler};

/// One load-generation run's shape.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client submits.
    pub requests_per_client: usize,
    /// Outstanding requests a client keeps in flight (1 = strict
    /// closed-loop; larger windows let big batch caps fill up).
    pub window: usize,
    /// Target aggregate submission rate in requests/second (0 = as fast
    /// as possible).
    pub rate: f64,
    /// Request mix.
    pub workload: ServiceWorkload,
    /// Key distribution.
    pub key_dist: KeyDist,
    /// Distinct keys / counters / payload values the generator draws from.
    pub keyspace: usize,
    /// Generator seed (each client derives its own stream from it).
    pub seed: u64,
}

/// Folded client-side bookkeeping of one run.
#[derive(Debug, Default)]
struct ClientOutcome {
    inserted: Vec<u64>,
    removed: Vec<u64>,
    delta_sum: u64,
    submits: u64,
    steals: u64,
    completed: u64,
    errors: u64,
    served: u64,
    shed: u64,
    failed: u64,
    hist: Histogram,
}

impl ClientOutcome {
    fn absorb(&mut self, other: ClientOutcome) {
        self.inserted.extend(other.inserted);
        self.removed.extend(other.removed);
        self.delta_sum += other.delta_sum;
        self.submits += other.submits;
        self.steals += other.steals;
        self.completed += other.completed;
        self.errors += other.errors;
        self.served += other.served;
        self.shed += other.shed;
        self.failed += other.failed;
        self.hist.merge(&other.hist);
    }

    fn settle(&mut self, request: Request, submitted: Instant, ticket: Ticket) {
        let response = ticket.wait();
        self.hist.record_duration(submitted.elapsed());
        self.completed += 1;
        // Availability triage: a reply is *served*; an admission-side
        // refusal (queue bound, deadline, shutdown races, dead batcher) is
        // *shed* — loud, bounded, and by design; anything else is a
        // *failed* request (bad input, injected error, rolled-back panic).
        match &response {
            Ok(_) => self.served += 1,
            Err(
                ServiceError::Overloaded
                | ServiceError::DeadlineExceeded
                | ServiceError::ShuttingDown
                | ServiceError::ServerGone,
            ) => self.shed += 1,
            Err(_) => self.failed += 1,
        }
        match (request, response) {
            (Request::HashInsert { key }, Ok(Reply::Inserted(true))) => self.inserted.push(key),
            (Request::HashDelete { key }, Ok(Reply::Removed(true))) => self.removed.push(key),
            (Request::CounterAdd { delta, .. }, Ok(Reply::Counter(_))) => {
                self.delta_sum += delta;
            }
            (Request::TaskSubmit { .. }, Ok(Reply::TaskQueued(_))) => self.submits += 1,
            (Request::TaskSteal, Ok(Reply::TaskStolen(Some(_)))) => self.steals += 1,
            (_, Ok(_)) => {}
            (_, Err(_)) => self.errors += 1,
        }
    }
}

pub(crate) fn generate(
    workload: ServiceWorkload,
    sampler: &KeySampler,
    num_counters: usize,
    rng: &mut SmallRng,
) -> Request {
    let workload = match workload {
        ServiceWorkload::Mix => {
            ServiceWorkload::ALL[rng.gen_range(0..ServiceWorkload::ALL.len() as u64) as usize]
        }
        w => w,
    };
    match workload {
        ServiceWorkload::Hash => {
            let key = sampler.sample(rng);
            match rng.gen_range(0..10u64) {
                0..=3 => Request::HashInsert { key },
                4..=7 => Request::HashLookup { key },
                _ => Request::HashContains { key },
            }
        }
        ServiceWorkload::Churn => {
            let key = sampler.sample(rng);
            match rng.gen_range(0..10u64) {
                0..=3 => Request::HashInsert { key },
                4..=5 => Request::HashDelete { key },
                _ => Request::HashLookup { key },
            }
        }
        ServiceWorkload::Counter => {
            let counter = (sampler.sample(rng) % num_counters.max(1) as u64) as usize;
            if rng.gen_range(0..5u64) == 0 {
                Request::CounterRead { counter }
            } else {
                Request::CounterAdd {
                    counter,
                    delta: rng.gen_range(1..16u64),
                }
            }
        }
        ServiceWorkload::Task => {
            if rng.gen_range(0..20u64) < 11 {
                Request::TaskSubmit {
                    payload: sampler.sample(rng),
                }
            } else {
                Request::TaskSteal
            }
        }
        ServiceWorkload::Mix => unreachable!("resolved above"),
    }
}

/// Everything one measured run produced, ready for reporting.
#[derive(Debug)]
pub struct RunSummary {
    /// Workload name.
    pub workload: &'static str,
    /// Key-distribution name.
    pub key_dist: &'static str,
    /// Batch cap the server ran under.
    pub batch_max: usize,
    /// Client threads.
    pub clients: usize,
    /// Requests completed (every submitted request resolves).
    pub completed: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Requests that got a real reply (availability numerator).
    pub served: u64,
    /// Requests refused at the admission edge (queue bound, deadline,
    /// shutdown race, dead batcher) — loud, bounded shedding by design.
    pub shed: u64,
    /// Requests that reached application and failed (bad input, injected
    /// error, rolled-back panic).
    pub failed: u64,
    /// Wall time of the whole run (first submit to last response).
    pub wall: Duration,
    /// Folded submit→response latency histogram (nanoseconds).
    pub latency: Histogram,
    /// The server's cumulative stats.
    pub stats: ServiceStats,
    /// Validator findings (empty = clean).
    pub validation_errors: Vec<String>,
}

impl RunSummary {
    /// Sustained throughput over the run's wall time.
    pub fn req_per_s(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(f64::EPSILON)
    }

    /// True when the validator found nothing.
    pub fn valid(&self) -> bool {
        self.validation_errors.is_empty()
    }

    /// The run as one `BENCH_service.json` entry.
    pub fn to_json(&self) -> Json {
        // None (an empty run recorded no latencies) renders as JSON null
        // via the non-finite float rule, never as a fabricated 0.
        let us = |q: f64| {
            Json::float(
                self.latency
                    .value_at_quantile(q)
                    .map_or(f64::NAN, |v| v as f64 / 1e3),
                3,
            )
        };
        Json::obj(vec![
            ("workload", Json::str(self.workload)),
            ("key_dist", Json::str(self.key_dist)),
            ("batch_max", Json::Int(self.batch_max as u64)),
            ("clients", Json::Int(self.clients as u64)),
            ("requests", Json::Int(self.completed)),
            ("errors", Json::Int(self.errors)),
            ("served", Json::Int(self.served)),
            ("shed", Json::Int(self.shed)),
            ("failed", Json::Int(self.failed)),
            ("wall_ms", Json::float(self.wall.as_secs_f64() * 1e3, 3)),
            ("req_per_s", Json::float(self.req_per_s(), 1)),
            ("p50_us", us(0.50)),
            ("p99_us", us(0.99)),
            ("p999_us", us(0.999)),
            ("mean_us", Json::float(self.latency.mean() / 1e3, 3)),
            ("batches", Json::Int(self.stats.batches)),
            ("mean_batch", Json::float(self.stats.mean_batch(), 2)),
            ("max_batch", Json::Int(self.stats.max_batch)),
            ("steps", Json::Int(self.stats.steps)),
            ("claim_attempts", Json::Int(self.stats.claim_attempts)),
            ("contended_claims", Json::Int(self.stats.contended_claims)),
            (
                "contention_per_batch",
                Json::float(self.stats.contention_per_batch(), 3),
            ),
            ("panicked_batches", Json::Int(self.stats.panicked_batches)),
            ("valid", Json::Bool(self.valid())),
        ])
    }

    /// One human-readable summary line.
    pub fn print_row(&self) {
        println!(
            "{:<8} {:<8} batch_max {:<6} {:>9.0} req/s  p50 {:>8.1}us  p99 {:>8.1}us  \
             p999 {:>8.1}us  mean batch {:>7.1}  contention/batch {:>7.2}  valid={}",
            self.workload,
            self.key_dist,
            self.batch_max,
            self.req_per_s(),
            self.latency
                .value_at_quantile(0.50)
                .map_or(f64::NAN, |v| v as f64 / 1e3),
            self.latency
                .value_at_quantile(0.99)
                .map_or(f64::NAN, |v| v as f64 / 1e3),
            self.latency
                .value_at_quantile(0.999)
                .map_or(f64::NAN, |v| v as f64 / 1e3),
            self.stats.mean_batch(),
            self.stats.contention_per_batch(),
            self.valid(),
        );
    }
}

/// Checks the final digest against the run's acknowledged replies (see the
/// module docs for why exactly these properties are interleaving-proof).
fn validate_digest(digest: &StateDigest, agg: &ClientOutcome) -> Vec<String> {
    let mut errors = Vec::new();
    // Per-key presence accounting.  Trace-determinism makes acknowledged
    // `Inserted(true)` / `Removed(true)` replies for one key strictly
    // alternate (starting with an insert), so for every key the acked
    // insert count either equals the acked remove count (key absent) or
    // exceeds it by exactly one (key present) — under *any* client
    // interleaving.  With no deletes in the trace this degenerates to the
    // old uniqueness check: at most one `Inserted(true)` per key.
    let mut flips: std::collections::BTreeMap<u64, (u64, u64)> = std::collections::BTreeMap::new();
    for &k in &agg.inserted {
        flips.entry(k).or_default().0 += 1;
    }
    for &k in &agg.removed {
        flips.entry(k).or_default().1 += 1;
    }
    let mut expect_present: Vec<u64> = Vec::new();
    for (&k, &(ins, rem)) in &flips {
        if rem > ins || ins > rem + 1 {
            errors.push(format!(
                "key {k}: {ins} acked inserts vs {rem} acked removes cannot alternate"
            ));
        } else if ins == rem + 1 {
            expect_present.push(k);
        }
    }
    if digest.hash_keys != expect_present {
        errors.push(format!(
            "hash table holds {} keys but acked insert/remove flips leave {}",
            digest.hash_keys.len(),
            expect_present.len()
        ));
    }
    let counter_sum: u64 = digest.counters.iter().filter(|&&v| v != EMPTY).sum();
    if counter_sum != agg.delta_sum {
        errors.push(format!(
            "counters sum to {counter_sum} but clients were acknowledged {} of delta",
            agg.delta_sum
        ));
    }
    if digest.next_seq != agg.submits {
        errors.push(format!(
            "next task seq is {} but {} submits were acknowledged",
            digest.next_seq, agg.submits
        ));
    }
    let expect_pending = agg.submits.saturating_sub(agg.steals);
    if digest.pending_tasks.len() as u64 != expect_pending {
        errors.push(format!(
            "{} tasks pending but submits-steals = {expect_pending}",
            digest.pending_tasks.len()
        ));
    }
    errors
}

/// Spawns a server, drives it with `spec`'s client fleet, shuts it down,
/// validates the final state, and returns the folded summary.
pub fn run_service_load(
    config: ServiceConfig,
    policy: BatchPolicy,
    threads: Option<usize>,
    spec: &LoadSpec,
) -> RunSummary {
    let server = match threads {
        Some(t) => Server::spawn_with_pool(config, policy, qrqw_exec::StepPool::with_threads(t)),
        None => Server::spawn(config, policy),
    };
    let sampler = Arc::new(KeySampler::new(spec.key_dist, spec.keyspace));
    let window = spec.window.max(1);
    let per_client_interval = if spec.rate > 0.0 {
        Duration::from_secs_f64(spec.clients.max(1) as f64 / spec.rate)
    } else {
        Duration::ZERO
    };
    let started = Instant::now();
    let workers: Vec<_> = (0..spec.clients.max(1))
        .map(|client| {
            let handle = server.handle();
            let sampler = Arc::clone(&sampler);
            let spec = *spec;
            let num_counters = config.num_counters;
            std::thread::spawn(move || {
                let mut rng =
                    SmallRng::seed_from_u64(spec.seed ^ (client as u64).wrapping_mul(0x9E37));
                let mut outcome = ClientOutcome::default();
                let mut inflight: VecDeque<(Request, Instant, Ticket)> = VecDeque::new();
                let client_started = Instant::now();
                for i in 0..spec.requests_per_client {
                    if !per_client_interval.is_zero() {
                        let due = client_started + per_client_interval * i as u32;
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                    }
                    let request = generate(spec.workload, &sampler, num_counters, &mut rng);
                    inflight.push_back((request, Instant::now(), handle.submit(request)));
                    if inflight.len() >= window {
                        let (req, at, ticket) = inflight.pop_front().unwrap();
                        outcome.settle(req, at, ticket);
                    }
                }
                for (req, at, ticket) in inflight {
                    outcome.settle(req, at, ticket);
                }
                outcome
            })
        })
        .collect();
    let mut agg = ClientOutcome::default();
    for worker in workers {
        agg.absorb(worker.join().expect("client thread panicked"));
    }
    let wall = started.elapsed();
    let (state, stats) = server.shutdown();
    let validation_errors = validate_digest(&state.digest(), &agg);
    RunSummary {
        workload: spec.workload.name(),
        key_dist: spec.key_dist.name(),
        batch_max: policy.max_batch,
        clients: spec.clients.max(1),
        completed: agg.completed,
        errors: agg.errors,
        served: agg.served,
        shed: agg.shed,
        failed: agg.failed,
        wall,
        latency: agg.hist,
        stats,
        validation_errors,
    }
}

/// Assembles the top-level `BENCH_service.json` document from a sweep of
/// run summaries (shared by `service_report` and the schema round-trip
/// test).
pub fn service_report_json(
    generated_by: &str,
    seed: u64,
    threads: usize,
    runs: &[RunSummary],
) -> Json {
    let all_valid = runs.iter().all(|r| r.valid() && r.errors == 0);
    Json::obj(vec![
        ("generated_by", Json::str(generated_by)),
        ("seed", Json::Int(seed)),
        ("threads", Json::Int(threads as u64)),
        ("host_cores", Json::Int(rayon::current_num_threads() as u64)),
        ("all_valid", Json::Bool(all_valid)),
        (
            "runs",
            Json::Arr(runs.iter().map(RunSummary::to_json).collect()),
        ),
    ])
}
