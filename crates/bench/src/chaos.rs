//! Deterministic chaos harness for the fault-tolerant service layer.
//!
//! This module is the engine of the `chaos_bench` binary (committed
//! `BENCH_chaos.json`): it drives a live [`Server`] with a **single**
//! submitter thread (so submission order — the thing trace determinism is
//! defined over — is itself deterministic) while a seeded [`FaultPlan`]
//! sprinkles injected panics, injected errors, and submitter stalls into
//! the request stream, then checks the recovery machinery end to end:
//!
//! * **no wedged tickets** — every submission resolves within a generous
//!   timeout, even though batches panicked along the way;
//! * **exact poison isolation** — precisely the injected-panic positions
//!   are answered [`ServiceError::RequestPanicked`] and
//!   `stats.isolated_panics` agrees;
//! * **recovery parity** — replaying only the *applied* requests (every
//!   response that was not shed or rolled back) oneshot on a fresh
//!   [`ServiceState`] reproduces the served response sequence and a
//!   bit-identical [`StateDigest`](qrqw_serve::StateDigest) — a faulty
//!   request is indistinguishable
//!   from one never submitted.
//!
//! Alongside the validators it measures what fault tolerance costs:
//! goodput (served requests per second), shed/failed counts, per-batch
//! snapshot overhead, and mean recovery (rollback + bisection replay)
//! latency per panicked batch.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use qrqw_exec::StepPool;
use qrqw_serve::{
    BatchPolicy, Fault, Histogram, Request, Response, Server, ServiceConfig, ServiceError,
    ServiceState, ServiceStats,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::report::Json;
use crate::service::{generate, KeyDist, KeySampler, ServiceWorkload};

/// Environment variable overriding [`FaultPlan::panic_per_10k`].
pub const FAULT_PANIC_ENV: &str = "QRQW_FAULT_PANIC";

/// Environment variable overriding [`FaultPlan::error_per_10k`].
pub const FAULT_ERROR_ENV: &str = "QRQW_FAULT_ERROR";

/// Environment variable overriding [`FaultPlan::delay_per_10k`].
pub const FAULT_DELAY_ENV: &str = "QRQW_FAULT_DELAY";

/// Environment variable overriding [`FaultPlan::seed`].
pub const FAULT_SEED_ENV: &str = "QRQW_FAULT_SEED";

/// How long a ticket may take before the harness declares it wedged.  Far
/// beyond any legitimate batch latency; a wait this long means a lost
/// completion, which is exactly the bug class the exit guard exists to
/// kill.
const WEDGE: Duration = Duration::from_secs(30);

/// A seeded fault-injection plan: per-10,000-request rates for each fault
/// kind, drawn independently per submission from one RNG stream, so a plan
/// plus a workload seed is a fully reproducible chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Injected [`Fault::Panic`] requests per 10,000 submissions.
    pub panic_per_10k: u32,
    /// Injected [`Fault::Error`] requests per 10,000 submissions.
    pub error_per_10k: u32,
    /// Submitter stalls per 10,000 submissions (jitters batch boundaries,
    /// which trace determinism says must not matter).
    pub delay_per_10k: u32,
    /// Length of one submitter stall.
    pub delay: Duration,
    /// Seed of the fault stream (independent of the workload seed).
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            panic_per_10k: 0,
            error_per_10k: 0,
            delay_per_10k: 0,
            delay: Duration::from_micros(200),
            seed: 0xFA17,
        }
    }
}

impl FaultPlan {
    /// True when the plan injects nothing (the fault-free baseline row).
    pub fn is_quiet(&self) -> bool {
        self.panic_per_10k == 0 && self.error_per_10k == 0 && self.delay_per_10k == 0
    }

    /// Resolves the plan from the environment: `QRQW_FAULT_PANIC`,
    /// `QRQW_FAULT_ERROR`, `QRQW_FAULT_DELAY` (each a per-10,000 rate) and
    /// `QRQW_FAULT_SEED`, falling back to `self`'s values when unset.
    ///
    /// # Panics
    ///
    /// If any variable is set but unparseable, or a rate exceeds 10,000 —
    /// a typo'd rate silently clamped would make a chaos run look much
    /// healthier than it was.
    pub fn from_env(self) -> Self {
        match self.from_env_values(
            std::env::var(FAULT_PANIC_ENV).ok().as_deref(),
            std::env::var(FAULT_ERROR_ENV).ok().as_deref(),
            std::env::var(FAULT_DELAY_ENV).ok().as_deref(),
            std::env::var(FAULT_SEED_ENV).ok().as_deref(),
        ) {
            Ok(plan) => plan,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// The value-level core of [`FaultPlan::from_env`], testable without
    /// process-global environment state.
    pub fn from_env_values(
        mut self,
        panic: Option<&str>,
        error: Option<&str>,
        delay: Option<&str>,
        seed: Option<&str>,
    ) -> Result<Self, String> {
        let rate = |name: &str, raw: Option<&str>, into: &mut u32| -> Result<(), String> {
            if let Some(raw) = raw {
                let v: u32 = raw.trim().parse().map_err(|_| {
                    format!("invalid {name}={raw:?}: expected a fault rate per 10,000 requests")
                })?;
                if v > 10_000 {
                    return Err(format!(
                        "invalid {name}={v}: a per-10,000 rate cannot exceed 10000"
                    ));
                }
                *into = v;
            }
            Ok(())
        };
        rate(FAULT_PANIC_ENV, panic, &mut self.panic_per_10k)?;
        rate(FAULT_ERROR_ENV, error, &mut self.error_per_10k)?;
        rate(FAULT_DELAY_ENV, delay, &mut self.delay_per_10k)?;
        if let Some(raw) = seed {
            self.seed = raw.trim().parse().map_err(|_| {
                format!("invalid {FAULT_SEED_ENV}={raw:?}: expected an unsigned integer seed")
            })?;
        }
        Ok(self)
    }
}

/// Shape of one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// Request mix of the non-fault traffic.
    pub workload: ServiceWorkload,
    /// Total submissions (faults included).
    pub requests: usize,
    /// Pipelining window the single submitter keeps in flight.
    pub window: usize,
    /// Keyspace of the generated traffic.
    pub keyspace: usize,
    /// Workload-generator seed.
    pub seed: u64,
}

/// Everything one chaos run produced.
#[derive(Debug)]
pub struct ChaosSummary {
    /// Workload name.
    pub workload: &'static str,
    /// The plan that drove the run.
    pub plan: FaultPlan,
    /// Batch cap the server ran under.
    pub batch_max: usize,
    /// Total submissions.
    pub requests: u64,
    /// Requests that got a real reply.
    pub served: u64,
    /// Requests refused at the admission edge.
    pub shed: u64,
    /// Requests that reached application and failed (injected errors,
    /// isolated panics).
    pub failed: u64,
    /// Tickets that did not resolve within the wedge timeout (must be 0).
    pub wedged: u64,
    /// `Fault::Panic` requests the plan injected.
    pub injected_panics: u64,
    /// Submitter stalls the plan injected.
    pub injected_delays: u64,
    /// Wall time, first submit to last response.
    pub wall: Duration,
    /// Submit→response latencies (nanoseconds).
    pub latency: Histogram,
    /// The server's cumulative stats.
    pub stats: ServiceStats,
    /// Validator findings (empty = clean).
    pub validation_errors: Vec<String>,
}

impl ChaosSummary {
    /// Served requests per second of wall time — throughput net of
    /// shedding and faults, the availability headline.
    pub fn goodput_per_s(&self) -> f64 {
        self.served as f64 / self.wall.as_secs_f64().max(f64::EPSILON)
    }

    /// True when every validator passed.
    pub fn valid(&self) -> bool {
        self.validation_errors.is_empty()
    }

    /// The run as one `BENCH_chaos.json` entry.
    pub fn to_json(&self) -> Json {
        let us = |d: Duration| Json::float(d.as_secs_f64() * 1e6, 3);
        Json::obj(vec![
            ("workload", Json::str(self.workload)),
            ("panic_per_10k", Json::Int(self.plan.panic_per_10k as u64)),
            ("error_per_10k", Json::Int(self.plan.error_per_10k as u64)),
            ("delay_per_10k", Json::Int(self.plan.delay_per_10k as u64)),
            ("batch_max", Json::Int(self.batch_max as u64)),
            ("requests", Json::Int(self.requests)),
            ("served", Json::Int(self.served)),
            ("shed", Json::Int(self.shed)),
            ("failed", Json::Int(self.failed)),
            ("wedged", Json::Int(self.wedged)),
            ("injected_panics", Json::Int(self.injected_panics)),
            ("isolated_panics", Json::Int(self.stats.isolated_panics)),
            ("panicked_batches", Json::Int(self.stats.panicked_batches)),
            ("batches", Json::Int(self.stats.batches)),
            ("snapshots", Json::Int(self.stats.snapshots)),
            ("snapshot_us_per_batch", us(self.stats.mean_snapshot())),
            ("mean_recovery_us", us(self.stats.mean_recovery())),
            ("goodput_per_s", Json::float(self.goodput_per_s(), 1)),
            (
                // None (no completed request recorded a latency) renders
                // as JSON null via the non-finite float rule.
                "p99_us",
                Json::float(
                    self.latency
                        .value_at_quantile(0.99)
                        .map_or(f64::NAN, |v| v as f64 / 1e3),
                    3,
                ),
            ),
            ("wall_ms", Json::float(self.wall.as_secs_f64() * 1e3, 3)),
            ("valid", Json::Bool(self.valid())),
        ])
    }

    /// One human-readable summary line.
    pub fn print_row(&self) {
        println!(
            "{:<8} panic {:>4}/10k  {:>9.0} goodput/s  served {:<6} shed {:<4} failed {:<5} \
             wedged {:<2} recovery {:>8.1}us  snapshot {:>7.1}us/batch  valid={}",
            self.workload,
            self.plan.panic_per_10k,
            self.goodput_per_s(),
            self.served,
            self.shed,
            self.failed,
            self.wedged,
            self.stats.mean_recovery().as_secs_f64() * 1e6,
            self.stats.mean_snapshot().as_secs_f64() * 1e6,
            self.valid(),
        );
    }
}

/// What the fault stream decided for one submission slot.
enum Slot {
    Normal,
    Panic,
    Error,
    Delay,
}

fn draw(plan: &FaultPlan, rng: &mut SmallRng) -> Slot {
    let roll = rng.gen_range(0..10_000u64) as u32;
    if roll < plan.panic_per_10k {
        Slot::Panic
    } else if roll < plan.panic_per_10k + plan.error_per_10k {
        Slot::Error
    } else if roll < plan.panic_per_10k + plan.error_per_10k + plan.delay_per_10k {
        Slot::Delay
    } else {
        Slot::Normal
    }
}

/// Was this response produced by *applying* the request (as opposed to
/// shedding it or rolling it back)?  Applied responses — including injected
/// errors and invalid-input rejections, which are deterministic parts of
/// the trace — are what the oneshot replay must reproduce.
fn was_applied(response: &Response) -> bool {
    !matches!(
        response,
        Err(ServiceError::RequestPanicked
            | ServiceError::Overloaded
            | ServiceError::DeadlineExceeded
            | ServiceError::ServerGone
            | ServiceError::ShuttingDown)
    )
}

/// Drives one chaos run and validates it (see the module docs for the
/// three validated properties).
pub fn run_chaos(
    config: ServiceConfig,
    policy: BatchPolicy,
    threads: usize,
    plan: FaultPlan,
    spec: &ChaosSpec,
) -> ChaosSummary {
    let server = Server::spawn_with_pool(config, policy, StepPool::with_threads(threads));
    let handle = server.handle();
    let sampler = KeySampler::new(KeyDist::Zipf(1.0), spec.keyspace);
    let mut workload_rng = SmallRng::seed_from_u64(spec.seed);
    let mut fault_rng = SmallRng::seed_from_u64(plan.seed);
    let window = spec.window.max(1);

    let mut requests: Vec<Request> = Vec::with_capacity(spec.requests);
    let mut responses: Vec<Option<Response>> = Vec::with_capacity(spec.requests);
    let mut latency = Histogram::default();
    let mut wedged = 0u64;
    let mut injected_panics = 0u64;
    let mut injected_delays = 0u64;
    let mut inflight: VecDeque<(usize, Instant, qrqw_serve::Ticket)> = VecDeque::new();
    responses.resize_with(spec.requests, || None);

    let mut settle = |idx: usize,
                      at: Instant,
                      ticket: qrqw_serve::Ticket,
                      responses: &mut Vec<Option<Response>>,
                      wedged: &mut u64| {
        match ticket.wait_timeout(WEDGE) {
            Some(resp) => {
                latency.record_duration(at.elapsed());
                responses[idx] = Some(resp);
            }
            None => *wedged += 1,
        }
    };

    let started = Instant::now();
    for i in 0..spec.requests {
        let request = match draw(&plan, &mut fault_rng) {
            Slot::Panic => {
                injected_panics += 1;
                Request::Fault(Fault::Panic)
            }
            Slot::Error => Request::Fault(Fault::Error),
            Slot::Delay => {
                injected_delays += 1;
                std::thread::sleep(plan.delay);
                generate(
                    spec.workload,
                    &sampler,
                    config.num_counters,
                    &mut workload_rng,
                )
            }
            Slot::Normal => generate(
                spec.workload,
                &sampler,
                config.num_counters,
                &mut workload_rng,
            ),
        };
        requests.push(request);
        inflight.push_back((i, Instant::now(), handle.submit(request)));
        if inflight.len() >= window {
            let (idx, at, ticket) = inflight.pop_front().unwrap();
            settle(idx, at, ticket, &mut responses, &mut wedged);
        }
    }
    for (idx, at, ticket) in inflight {
        settle(idx, at, ticket, &mut responses, &mut wedged);
    }
    let wall = started.elapsed();
    let (state, stats) = server.shutdown();

    // --- Validators -----------------------------------------------------
    let mut errors = Vec::new();
    if wedged > 0 {
        errors.push(format!("{wedged} tickets never resolved (wedge timeout)"));
    }
    let mut served = 0u64;
    let mut shed = 0u64;
    let mut failed = 0u64;
    let mut applied = Vec::with_capacity(spec.requests);
    let mut applied_responses = Vec::with_capacity(spec.requests);
    for (i, (request, response)) in requests.iter().zip(&responses).enumerate() {
        let Some(response) = response else { continue };
        match response {
            Ok(_) => served += 1,
            Err(
                ServiceError::Overloaded
                | ServiceError::DeadlineExceeded
                | ServiceError::ShuttingDown
                | ServiceError::ServerGone,
            ) => shed += 1,
            Err(_) => failed += 1,
        }
        let is_panic_request = *request == Request::Fault(Fault::Panic);
        let is_panic_reply = *response == Err(ServiceError::RequestPanicked);
        if is_panic_request && !is_panic_reply {
            errors.push(format!(
                "injected panic at position {i} was answered {response:?}, \
                 not RequestPanicked"
            ));
        }
        if is_panic_reply && !is_panic_request {
            errors.push(format!(
                "innocent request at position {i} ({request:?}) was answered RequestPanicked"
            ));
        }
        if was_applied(response) {
            applied.push(*request);
            applied_responses.push(*response);
        }
    }
    if stats.isolated_panics != injected_panics {
        errors.push(format!(
            "{} panics were injected but {} were isolated",
            injected_panics, stats.isolated_panics
        ));
    }
    // Recovery parity: the applied subset, replayed oneshot, must
    // reproduce both the served replies and the machine state bit for bit.
    let mut reference = ServiceState::with_pool(config, StepPool::with_threads(threads));
    let (want_responses, _) = reference.apply_batch(&applied);
    if want_responses != applied_responses {
        let diverged = want_responses
            .iter()
            .zip(&applied_responses)
            .position(|(a, b)| a != b);
        errors.push(format!(
            "served replies diverge from the oneshot replay of the applied \
             subset (first divergence at applied index {diverged:?})"
        ));
    }
    if reference.digest() != state.digest() {
        errors
            .push("final digest differs from the oneshot replay of the applied subset".to_string());
    }

    ChaosSummary {
        workload: spec.workload.name(),
        plan,
        batch_max: policy.max_batch,
        requests: spec.requests as u64,
        served,
        shed,
        failed,
        wedged,
        injected_panics,
        injected_delays,
        wall,
        latency,
        stats,
        validation_errors: errors,
    }
}

/// Assembles the top-level `BENCH_chaos.json` document from a sweep of
/// chaos summaries (shared by `chaos_bench` and the schema test).
pub fn chaos_report_json(
    generated_by: &str,
    seed: u64,
    threads: usize,
    runs: &[ChaosSummary],
) -> Json {
    let all_valid = runs.iter().all(ChaosSummary::valid);
    Json::obj(vec![
        ("generated_by", Json::str(generated_by)),
        ("seed", Json::Int(seed)),
        ("threads", Json::Int(threads as u64)),
        ("host_cores", Json::Int(rayon::current_num_threads() as u64)),
        ("all_valid", Json::Bool(all_valid)),
        (
            "runs",
            Json::Arr(runs.iter().map(ChaosSummary::to_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_env_values_resolve_or_reject_loudly() {
        let base = FaultPlan::default();
        assert_eq!(base.from_env_values(None, None, None, None), Ok(base));
        let plan = base
            .from_env_values(Some(" 25 "), Some("100"), Some("4"), Some("99"))
            .unwrap();
        assert_eq!(plan.panic_per_10k, 25);
        assert_eq!(plan.error_per_10k, 100);
        assert_eq!(plan.delay_per_10k, 4);
        assert_eq!(plan.seed, 99);
        assert!(!plan.is_quiet());
        let err = base
            .from_env_values(Some("10001"), None, None, None)
            .unwrap_err();
        assert!(err.contains("QRQW_FAULT_PANIC"), "unhelpful error: {err}");
        let err = base
            .from_env_values(None, Some("lots"), None, None)
            .unwrap_err();
        assert!(err.contains("QRQW_FAULT_ERROR"), "unhelpful error: {err}");
        let err = base
            .from_env_values(None, None, None, Some("x"))
            .unwrap_err();
        assert!(err.contains("QRQW_FAULT_SEED"), "unhelpful error: {err}");
    }

    #[test]
    fn a_quiet_plan_validates_and_serves_everything() {
        let summary = run_chaos(
            ServiceConfig {
                seed: 5,
                num_counters: 8,
                task_procs: 4,
                hash_capacity: 64,
            },
            BatchPolicy::with_max_batch(16).linger(Duration::from_micros(50)),
            2,
            FaultPlan::default(),
            &ChaosSpec {
                workload: ServiceWorkload::Mix,
                requests: 200,
                window: 16,
                keyspace: 64,
                seed: 5,
            },
        );
        assert!(summary.valid(), "{:?}", summary.validation_errors);
        assert_eq!(summary.served, 200);
        assert_eq!(summary.wedged, 0);
        assert_eq!(summary.stats.panicked_batches, 0);
    }

    #[test]
    fn a_hostile_plan_still_validates_with_exact_isolation() {
        let plan = FaultPlan {
            panic_per_10k: 500,
            error_per_10k: 200,
            delay_per_10k: 0,
            ..FaultPlan::default()
        };
        let summary = run_chaos(
            ServiceConfig {
                seed: 9,
                num_counters: 8,
                task_procs: 4,
                hash_capacity: 64,
            },
            BatchPolicy::with_max_batch(32).linger(Duration::from_micros(50)),
            2,
            plan,
            &ChaosSpec {
                workload: ServiceWorkload::Hash,
                requests: 400,
                window: 32,
                keyspace: 64,
                seed: 9,
            },
        );
        assert!(summary.valid(), "{:?}", summary.validation_errors);
        assert!(summary.injected_panics > 0, "the plan must actually fire");
        assert_eq!(summary.stats.isolated_panics, summary.injected_panics);
        assert_eq!(
            summary.served + summary.failed,
            summary.requests,
            "nothing is shed without admission bounds"
        );
    }

    #[test]
    fn chaos_json_entry_round_trips() {
        let summary = run_chaos(
            ServiceConfig {
                seed: 3,
                num_counters: 4,
                task_procs: 4,
                hash_capacity: 64,
            },
            BatchPolicy::with_max_batch(8).linger(Duration::from_micros(50)),
            1,
            FaultPlan {
                panic_per_10k: 300,
                ..FaultPlan::default()
            },
            &ChaosSpec {
                workload: ServiceWorkload::Counter,
                requests: 120,
                window: 8,
                keyspace: 32,
                seed: 3,
            },
        );
        let doc = chaos_report_json("test", 3, 1, &[summary]);
        let back = Json::parse(&doc.render()).expect("chaos report must parse");
        assert_eq!(back, doc);
    }
}
