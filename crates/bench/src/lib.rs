//! # qrqw-bench — harnesses that regenerate the paper's tables and figures
//!
//! Binaries (run with `cargo run -p qrqw-bench --release --bin <name>`):
//!
//! * `table1`  — Table I: QRQW algorithms vs. the best EREW algorithms for
//!   random permutation, multiple compaction, sorting from U(0,1), hashing
//!   and load balancing, measured on the PRAM simulator.
//! * `table2`  — Table II: wall-clock comparison of the three
//!   random-permutation implementations (sorting-based, dart-throwing with
//!   scans, QRQW dart throwing) at n = 16,384 and n = 1,024, plus the
//!   model-predicted ordering from the simulator (the §5.2 asymptotic
//!   analysis paragraph).
//! * `figure1` — Figure 1: cyclic vs. non-cyclic permutations and their
//!   cycle representations.
//! * `ablation` — design-choice sweeps: dart-throwing subarray size,
//!   fat-tree vs. concurrent binary search, linear-compaction output slack.
//!
//! Criterion benches (`cargo bench -p qrqw-bench`) time the same workloads.

#![warn(missing_docs)]

use qrqw_sim::{CostModel, Pram, TraceSummary};

/// Problem sizes used by the Table I sweep.
pub const TABLE1_SIZES: [usize; 4] = [1 << 10, 1 << 12, 1 << 14, 1 << 16];

/// One measured row of a table: an algorithm name plus the trace summary of
/// a single simulated run.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Algorithm / configuration label.
    pub label: String,
    /// Input size the run used.
    pub n: usize,
    /// Trace summary of the run.
    pub summary: TraceSummary,
}

impl MeasuredRow {
    /// Runs `f` on a fresh PRAM with the given seed and records its trace.
    pub fn measure(label: &str, n: usize, seed: u64, f: impl FnOnce(&mut Pram)) -> MeasuredRow {
        let mut pram = Pram::with_seed(16, seed);
        f(&mut pram);
        MeasuredRow {
            label: label.to_string(),
            n,
            summary: pram.trace().summary(),
        }
    }

    /// Formats the row for the table harnesses.
    pub fn format(&self) -> String {
        format!(
            "{:<34} n={:<7} t_qrqw={:<6} t_crqw={:<6} t_erew={:<6} t_crcw={:<6} work={:<9} max_cont={:<5} erew_viol={}",
            self.label,
            self.n,
            self.summary.time_qrqw,
            self.summary.time_crqw,
            self.summary.time_erew,
            self.summary.time_crcw,
            self.summary.work,
            self.summary.max_contention,
            self.summary.erew_violations
        )
    }

    /// The time of this run under `model`.
    pub fn time(&self, model: CostModel) -> u64 {
        match model {
            CostModel::Erew | CostModel::Crew => self.summary.time_erew,
            CostModel::Qrqw => self.summary.time_qrqw,
            CostModel::Crqw => self.summary.time_crqw,
            CostModel::Crcw => self.summary.time_crcw,
            CostModel::SimdQrqw => self.summary.time_simd_qrqw,
            CostModel::ScanSimdQrqw => self.summary.time_scan_simd_qrqw,
        }
    }
}

/// Prints a titled block of measured rows.
pub fn print_rows(title: &str, rows: &[MeasuredRow]) {
    println!("\n=== {title} ===");
    for r in rows {
        println!("{}", r.format());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_captures_a_trace() {
        let row = MeasuredRow::measure("noop-ish", 8, 1, |pram| {
            pram.step(|s| s.par_for(0..8, |p, ctx| ctx.write(p, 1)));
        });
        assert_eq!(row.summary.steps, 1);
        assert_eq!(row.summary.work, 8);
        assert!(row.format().contains("n=8"));
        assert_eq!(row.time(CostModel::Qrqw), 1);
    }
}
