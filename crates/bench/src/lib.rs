//! # qrqw-bench — harnesses that regenerate the paper's tables and figures
//!
//! Binaries (run with `cargo run -p qrqw-bench --release --bin <name>`):
//!
//! * `table1`  — Table I: QRQW algorithms vs. the best EREW algorithms for
//!   random permutation, multiple compaction, sorting from U(0,1), hashing
//!   and load balancing, measured on the PRAM simulator.
//! * `table2`  — Table II: wall-clock comparison of the three
//!   random-permutation implementations (sorting-based, dart-throwing with
//!   scans, QRQW dart throwing) at n = 16,384 and n = 1,024, plus the
//!   model-predicted ordering from the simulator (the §5.2 asymptotic
//!   analysis paragraph).
//! * `figure1` — Figure 1: cyclic vs. non-cyclic permutations and their
//!   cycle representations.
//! * `ablation` — design-choice sweeps: dart-throwing subarray size,
//!   fat-tree vs. concurrent binary search, linear-compaction output slack.
//! * `chaos_bench` — seeded fault-injection sweep of the `qrqw-serve`
//!   layer (committed `BENCH_chaos.json`): goodput, shed rate, snapshot
//!   overhead and recovery latency vs. fault rate, with digest-parity and
//!   no-wedged-ticket validators (see [`chaos`]).
//!
//! Criterion benches (`cargo bench -p qrqw-bench`) time the same workloads.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

use qrqw_bsp::BspMachine;
use qrqw_core::hashing::HASH_PRIME;
use qrqw_core::{
    emulate_fetch_add_step, integer_sort_crqw, is_cyclic, is_permutation, load_balance_erew,
    load_balance_qrqw, multiple_compaction, random_cyclic_permutation_efficient,
    random_cyclic_permutation_fast, random_permutation_dart_scan, random_permutation_qrqw,
    random_permutation_sorting_erew, sample_sort_crqw, sample_sort_qrqw, sort_uniform_keys,
    QrqwHashTable,
};
use qrqw_exec::NativeMachine;
use qrqw_prims::{linear_compaction, list_rank};
use qrqw_sim::{CostModel, CostReport, Machine, Pram, TraceSummary, EMPTY};

pub mod chaos;
pub mod report;
pub mod scenario;
pub mod service;
pub mod workload;

/// Which [`Machine`] backend a harness run executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The exact-cost QRQW PRAM simulator ([`Pram`]).
    Sim,
    /// The native rayon/atomics machine ([`NativeMachine`]) with its
    /// default chunk schedule (chunked unless `QRQW_SCHEDULE` overrides).
    Native,
    /// The native machine pinned to work-stealing chunk dispatch
    /// ([`qrqw_exec::StealingMachine`]) — bit-identical to [`Backend::Native`] in
    /// every observable; only wall-clock under skew differs.
    NativeSteal,
    /// The batch-message BSP machine ([`BspMachine`]) measuring the
    /// Theorem 1.1 emulation.
    Bsp,
}

impl Backend {
    /// Every backend, simulator first.
    pub const ALL: [Backend; 4] = [
        Backend::Sim,
        Backend::Native,
        Backend::NativeSteal,
        Backend::Bsp,
    ];

    /// Short name (`"sim"` / `"native"` / `"native-steal"` / `"bsp"`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Native => "native",
            Backend::NativeSteal => "native-steal",
            Backend::Bsp => "bsp",
        }
    }

    /// Parses a backend name.
    pub fn parse(s: &str) -> Option<Backend> {
        Backend::ALL.into_iter().find(|b| b.name() == s)
    }

    /// Parses a backend *set* specification: a comma-separated list of
    /// backend names, `all`, or the historical `both` (= all backends).
    pub fn parse_set(spec: &str) -> Option<Vec<Backend>> {
        if spec == "all" || spec == "both" {
            return Some(Backend::ALL.to_vec());
        }
        spec.split(',')
            .map(|s| Backend::parse(s.trim()))
            .collect::<Option<Vec<_>>>()
            .filter(|v| !v.is_empty())
    }
}

/// An algorithm ported to the [`Machine`] backend API, runnable (and timed)
/// on any backend from this one entry point.
///
/// ```
/// use qrqw_bench::{Algorithm, Backend};
///
/// // Parse a registry name, run it on a backend, check its validator.
/// let algo = Algorithm::parse("permutation-qrqw").unwrap();
/// let sim = algo.run(Backend::Sim, 256, 1);
/// assert!(sim.valid);
///
/// // The same seed on the native work-stealing backend is the same
/// // trajectory: lockstep step counters, identical contention totals.
/// let steal = algo.run(Backend::NativeSteal, 256, 1);
/// assert!(steal.valid);
/// assert_eq!(sim.report.steps, steal.report.steps);
/// assert_eq!(sim.report.contended_claims, steal.report.contended_claims);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// §5.1.1 QRQW dart-throwing random permutation (Theorem 5.1).
    PermutationQrqw,
    /// §5.2 dart throwing with per-round compaction scans.
    PermutationDartScan,
    /// §5.2 sorting-based EREW baseline (bitonic system sort).
    PermutationSortingErew,
    /// §4 low-contention linear compaction (half-full input array).
    LinearCompaction,
    /// §3 QRQW load balancing on a skewed load vector.
    LoadBalanceQrqw,
    /// §3 EREW prefix-sums load-balancing baseline.
    LoadBalanceErew,
    /// §4 multiple compaction (mixed heavy + light instance, Theorem 4.1).
    MultipleCompaction,
    /// §6 hash-table construction plus `n` positive and `n` negative
    /// membership lookups (Theorem 6.1).
    Hashing,
    /// §5.1.2 fast random cyclic permutation (Theorem 5.2).
    CyclicFast,
    /// §5.1.3 work-optimal random cyclic permutation (Theorem 5.3).
    CyclicEfficient,
    /// §7.2 sample sort with fat-tree labelling (QRQW Algorithm A).
    SampleSortQrqw,
    /// §7.2 sample sort with concurrent-read binary-search labelling.
    SampleSortCrqw,
    /// §7.3 CRQW integer sorting (Theorem 7.4).
    IntegerSort,
    /// §7.1 distributive sorting of U(0,1) keys (Theorem 7.1).
    DistributiveSort,
    /// §7.3 one emulated Fetch&Add step over a hot address set (Lemma 7.5).
    FetchAdd,
    /// §3 pointer-jumping list ranking over one n-node chain.
    ListRank,
}

impl Algorithm {
    /// Every ported algorithm.
    pub const ALL: [Algorithm; 16] = [
        Algorithm::PermutationQrqw,
        Algorithm::PermutationDartScan,
        Algorithm::PermutationSortingErew,
        Algorithm::LinearCompaction,
        Algorithm::LoadBalanceQrqw,
        Algorithm::LoadBalanceErew,
        Algorithm::MultipleCompaction,
        Algorithm::Hashing,
        Algorithm::CyclicFast,
        Algorithm::CyclicEfficient,
        Algorithm::SampleSortQrqw,
        Algorithm::SampleSortCrqw,
        Algorithm::IntegerSort,
        Algorithm::DistributiveSort,
        Algorithm::FetchAdd,
        Algorithm::ListRank,
    ];

    /// Stable kebab-case name (also accepted by [`Algorithm::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::PermutationQrqw => "permutation-qrqw",
            Algorithm::PermutationDartScan => "permutation-dart-scan",
            Algorithm::PermutationSortingErew => "permutation-sorting-erew",
            Algorithm::LinearCompaction => "linear-compaction",
            Algorithm::LoadBalanceQrqw => "load-balance-qrqw",
            Algorithm::LoadBalanceErew => "load-balance-erew",
            Algorithm::MultipleCompaction => "multiple-compaction",
            Algorithm::Hashing => "hashing",
            Algorithm::CyclicFast => "cyclic-fast",
            Algorithm::CyclicEfficient => "cyclic-efficient",
            Algorithm::SampleSortQrqw => "sample-sort-qrqw",
            Algorithm::SampleSortCrqw => "sample-sort-crqw",
            Algorithm::IntegerSort => "integer-sort",
            Algorithm::DistributiveSort => "distributive-sort",
            Algorithm::FetchAdd => "fetch-add",
            Algorithm::ListRank => "list-rank",
        }
    }

    /// Parses an algorithm name as printed by [`Algorithm::name`].
    pub fn parse(s: &str) -> Option<Algorithm> {
        Algorithm::ALL.into_iter().find(|a| a.name() == s)
    }

    /// The deterministic skewed load vector the load-balancing runs use
    /// (a few heavy processors, a sparse tail).
    pub fn skewed_loads(n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| if i % 64 == 0 { 64 } else { (i % 2) as u64 })
            .collect()
    }

    /// Deterministic scattered keys below [`HASH_PRIME`]: the multiplicative
    /// map `i ↦ (i+1)·MULT mod (2³¹−1)` is injective (the modulus is prime),
    /// so the keys are distinct — what the hashing and sorting workloads
    /// need without host-side RNG state.
    pub fn scattered_keys(n: usize, offset: usize) -> Vec<u64> {
        const MULT: u64 = 0x5DEE_CE66;
        (0..n)
            .map(|i| ((i + offset) as u64 + 1) * MULT % HASH_PRIME)
            .collect()
    }

    /// Runs this algorithm at problem size `n` on an already-constructed
    /// machine, returning whether the output validated and the wall-clock
    /// time of the algorithm itself (input setup and output validation are
    /// excluded, matching how the MasPar experiment timed its kernels).
    pub fn run_on<M: Machine>(self, m: &mut M, n: usize) -> (bool, Duration) {
        match self {
            Algorithm::PermutationQrqw => {
                let start = Instant::now();
                let out = random_permutation_qrqw(m, n);
                let elapsed = start.elapsed();
                (is_permutation(&out.order), elapsed)
            }
            Algorithm::PermutationDartScan => {
                let start = Instant::now();
                let out = random_permutation_dart_scan(m, n);
                let elapsed = start.elapsed();
                (is_permutation(&out.order), elapsed)
            }
            Algorithm::PermutationSortingErew => {
                let start = Instant::now();
                let out = random_permutation_sorting_erew(m, n);
                let elapsed = start.elapsed();
                (is_permutation(&out.order), elapsed)
            }
            Algorithm::LinearCompaction => {
                let src = m.alloc(n.max(1));
                let k = n / 2;
                for i in 0..k {
                    m.poke(src + 2 * i, i as u64 + 1);
                }
                let dst = m.alloc((4 * k).max(4));
                let start = Instant::now();
                let out = linear_compaction(m, src, n, dst, (4 * k).max(4));
                let elapsed = start.elapsed();
                let mut dests: Vec<usize> = out.placements.iter().map(|&(_, d)| d).collect();
                dests.sort_unstable();
                dests.dedup();
                (out.placements.len() == k && dests.len() == k, elapsed)
            }
            Algorithm::LoadBalanceQrqw => {
                let loads = Algorithm::skewed_loads(n);
                let total: u64 = loads.iter().sum();
                let start = Instant::now();
                let res = load_balance_qrqw(m, &loads);
                let elapsed = start.elapsed();
                let valid = res.covers_exactly(&loads)
                    && (n == 0 || res.max_final_load <= 64 * (1 + total / n as u64));
                (valid, elapsed)
            }
            Algorithm::LoadBalanceErew => {
                let loads = Algorithm::skewed_loads(n);
                let start = Instant::now();
                let res = load_balance_erew(m, &loads);
                let elapsed = start.elapsed();
                (res.covers_exactly(&loads), elapsed)
            }
            Algorithm::MultipleCompaction => {
                // Mixed instance: one heavy label plus a spread of light ones.
                let num_labels = (n / 32).clamp(2, 64);
                let labels: Vec<u64> = (0..n)
                    .map(|i| {
                        if i % 3 == 0 {
                            0
                        } else {
                            (i % num_labels) as u64
                        }
                    })
                    .collect();
                let mut counts = vec![0u64; num_labels];
                for &l in &labels {
                    counts[l as usize] += 1;
                }
                let start = Instant::now();
                let res = multiple_compaction(m, &labels, &counts);
                let elapsed = start.elapsed();
                let mut dests: Vec<usize> = res.positions.clone();
                dests.sort_unstable();
                dests.dedup();
                let in_subarray = res.positions.iter().enumerate().all(|(item, &pos)| {
                    let label = labels[item] as usize;
                    let lo = res.layout.b_base + res.layout.subarray_offset[label];
                    pos >= lo && pos < lo + res.layout.subarray_len[label]
                });
                (!res.failed && dests.len() == n && in_subarray, elapsed)
            }
            Algorithm::Hashing => {
                let keys = Algorithm::scattered_keys(n, 0);
                let probes = Algorithm::scattered_keys(n, n);
                let start = Instant::now();
                let table = QrqwHashTable::build(m, &keys);
                let hits = table.lookup_batch(m, &keys);
                let misses = table.lookup_batch(m, &probes);
                let elapsed = start.elapsed();
                let valid =
                    hits.len() == n && hits.iter().all(|&h| h) && misses.iter().all(|&h| !h);
                (valid, elapsed)
            }
            Algorithm::CyclicFast => {
                let start = Instant::now();
                let out = random_cyclic_permutation_fast(m, n);
                let elapsed = start.elapsed();
                (
                    is_permutation(&out.successor) && is_cyclic(&out.successor),
                    elapsed,
                )
            }
            Algorithm::CyclicEfficient => {
                let start = Instant::now();
                let out = random_cyclic_permutation_efficient(m, n);
                let elapsed = start.elapsed();
                (
                    is_permutation(&out.successor) && is_cyclic(&out.successor),
                    elapsed,
                )
            }
            Algorithm::SampleSortQrqw => {
                let keys = Algorithm::scattered_keys(n, 0);
                let start = Instant::now();
                let got = sample_sort_qrqw(m, &keys);
                let elapsed = start.elapsed();
                let mut expect = keys;
                expect.sort_unstable();
                (got == expect, elapsed)
            }
            Algorithm::SampleSortCrqw => {
                let keys = Algorithm::scattered_keys(n, 0);
                let start = Instant::now();
                let got = sample_sort_crqw(m, &keys);
                let elapsed = start.elapsed();
                let mut expect = keys;
                expect.sort_unstable();
                (got == expect, elapsed)
            }
            Algorithm::IntegerSort => {
                let max_key = (n as u64 * 16).max(16);
                let keys: Vec<u64> = Algorithm::scattered_keys(n, 0)
                    .into_iter()
                    .map(|k| k % max_key)
                    .collect();
                let start = Instant::now();
                let got = integer_sort_crqw(m, &keys, max_key);
                let elapsed = start.elapsed();
                let mut expect = keys;
                expect.sort_unstable();
                (got == expect, elapsed)
            }
            Algorithm::DistributiveSort => {
                let keys = Algorithm::scattered_keys(n, 0);
                let start = Instant::now();
                let got = sort_uniform_keys(m, &keys);
                let elapsed = start.elapsed();
                let mut expect = keys;
                expect.sort_unstable();
                (got == expect, elapsed)
            }
            Algorithm::FetchAdd => {
                // Unit increments over a hot set of n/8 counters: the old
                // values seen at each address must be exactly 0..count.
                let num_addrs = (n / 8).max(1);
                let requests: Vec<(usize, u64)> = (0..n).map(|i| (i % num_addrs, 1)).collect();
                let start = Instant::now();
                let olds = emulate_fetch_add_step(m, &requests);
                let elapsed = start.elapsed();
                let mut per_addr: Vec<Vec<u64>> = vec![Vec::new(); num_addrs];
                for (i, &(a, _)) in requests.iter().enumerate() {
                    per_addr[a].push(olds[i]);
                }
                let valid = per_addr.iter().enumerate().all(|(a, seen)| {
                    let mut seen = seen.clone();
                    seen.sort_unstable();
                    seen == (0..seen.len() as u64).collect::<Vec<u64>>()
                        && m.peek(a) == seen.len() as u64
                });
                (valid, elapsed)
            }
            Algorithm::ListRank => {
                // One chain 0 → 1 → … → n−1; rank of node i must be n−1−i.
                let succ_base = m.alloc(n.max(1));
                let rank_base = m.alloc(n.max(1));
                let succ: Vec<u64> = (0..n)
                    .map(|i| if i + 1 < n { i as u64 + 1 } else { EMPTY })
                    .collect();
                m.load(succ_base, &succ);
                let start = Instant::now();
                list_rank(m, succ_base, n, rank_base);
                let elapsed = start.elapsed();
                let ranks = m.dump(rank_base, n);
                let valid = ranks
                    .iter()
                    .enumerate()
                    .all(|(i, &r)| r == (n - 1 - i) as u64);
                (valid, elapsed)
            }
        }
    }

    /// Creates a fresh machine of the requested backend, runs this algorithm
    /// on it, and reports timing, validity and the backend's cost report.
    pub fn run(self, backend: Backend, n: usize, seed: u64) -> BackendRun {
        match backend {
            Backend::Sim => {
                let mut m = Pram::with_seed(16, seed);
                let (valid, elapsed) = self.run_on(&mut m, n);
                self.package(backend, n, seed, valid, elapsed, m.cost_report())
            }
            Backend::Native => self.run_native(n, seed, None),
            Backend::NativeSteal => self.run_native_steal(n, seed, None),
            Backend::Bsp => self.run_bsp(n, seed, None),
        }
    }

    /// Runs this algorithm on a fresh [`NativeMachine`], optionally with an
    /// explicit thread count (otherwise `QRQW_THREADS` / host parallelism,
    /// as [`qrqw_sim::Machine::with_seed`] resolves it).  The chunk
    /// schedule follows `QRQW_SCHEDULE` (default chunked); use
    /// [`Algorithm::run_native_steal`] to force work-stealing.
    pub fn run_native(self, n: usize, seed: u64, threads: Option<usize>) -> BackendRun {
        let mut m = match threads {
            Some(t) => NativeMachine::with_threads(16, seed, t),
            None => NativeMachine::with_seed(16, seed),
        };
        let (valid, elapsed) = self.run_on(&mut m, n);
        self.package(Backend::Native, n, seed, valid, elapsed, m.cost_report())
    }

    /// Runs this algorithm with work-stealing chunk dispatch regardless of
    /// `QRQW_SCHEDULE` (the machine behind [`Backend::NativeSteal`];
    /// equivalent to a [`qrqw_exec::StealingMachine`] — pinned by the
    /// wrapper-equals-builder test in `tests/schedule_skew.rs`), optionally
    /// with an explicit thread count.
    pub fn run_native_steal(self, n: usize, seed: u64, threads: Option<usize>) -> BackendRun {
        self.run_native_with(n, seed, threads, qrqw_exec::Schedule::Stealing)
    }

    /// Runs this algorithm on a fresh native machine with an *explicit*
    /// chunk schedule, ignoring `QRQW_SCHEDULE` entirely.  This is what a
    /// scheduler-comparison harness must use: with the env-following
    /// [`Algorithm::run_native`], `QRQW_SCHEDULE=stealing` would silently
    /// turn a chunked-vs-stealing comparison into stealing-vs-stealing.
    pub fn run_native_with(
        self,
        n: usize,
        seed: u64,
        threads: Option<usize>,
        schedule: qrqw_exec::Schedule,
    ) -> BackendRun {
        let pool = match threads {
            Some(t) => qrqw_exec::StepPool::with_threads(t),
            None => qrqw_exec::StepPool::from_env(),
        }
        .with_schedule(schedule);
        self.run_native_pool(n, seed, pool)
    }

    /// Runs this algorithm on a fresh native machine built around an
    /// explicit, fully-configured [`qrqw_exec::StepPool`] — thread count,
    /// chunk schedule *and* fused-dispatch toggle all come from the pool.
    /// This is the entry point for fused-vs-unfused A/B harnesses
    /// (`perf_report --fuse-compare`), where the env-following
    /// constructors would let `QRQW_FUSE` silently collapse both arms onto
    /// one path.
    pub fn run_native_pool(self, n: usize, seed: u64, pool: qrqw_exec::StepPool) -> BackendRun {
        let mut m = NativeMachine::with_pool(16, seed, pool);
        let (valid, elapsed) = self.run_on(&mut m, n);
        // The machine's schedule decides its backend identity; parse its
        // own reported name instead of keeping a second mapping here.
        let backend = Backend::parse(m.backend())
            .expect("every native backend name is registered in Backend::ALL");
        self.package(backend, n, seed, valid, elapsed, m.cost_report())
    }

    /// Runs this algorithm on a fresh [`BspMachine`], optionally with an
    /// explicit compute-phase thread count (components come from
    /// `QRQW_BSP_COMPONENTS` / the crate default either way).
    pub fn run_bsp(self, n: usize, seed: u64, threads: Option<usize>) -> BackendRun {
        let mut m = match threads {
            Some(t) => BspMachine::with_threads(16, seed, t),
            None => BspMachine::with_seed(16, seed),
        };
        let (valid, elapsed) = self.run_on(&mut m, n);
        self.package(Backend::Bsp, n, seed, valid, elapsed, m.cost_report())
    }

    fn package(
        self,
        backend: Backend,
        n: usize,
        seed: u64,
        valid: bool,
        elapsed: Duration,
        report: CostReport,
    ) -> BackendRun {
        BackendRun {
            algorithm: self.name(),
            backend: backend.name(),
            n,
            seed,
            valid,
            elapsed,
            report,
        }
    }
}

/// One algorithm execution on one backend: the unified record the Table II
/// harness (and any future sweep) prints.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// [`Algorithm::name`] of the run.
    pub algorithm: &'static str,
    /// [`Backend::name`] of the run.
    pub backend: &'static str,
    /// Problem size.
    pub n: usize,
    /// Machine seed.
    pub seed: u64,
    /// Whether the output validated (permutation check, coverage check, …).
    pub valid: bool,
    /// Wall-clock time of the algorithm run itself.
    pub elapsed: Duration,
    /// The backend's own cost report.
    pub report: CostReport,
}

impl BackendRun {
    /// Formats the run as one harness row.
    pub fn format(&self) -> String {
        format!(
            "{:<26} {:<7} n={:<7} {:>9.3} ms  valid={} {}",
            self.algorithm,
            self.backend,
            self.n,
            self.elapsed.as_secs_f64() * 1e3,
            self.valid,
            self.report,
        )
    }
}

/// Problem sizes used by the Table I sweep.
pub const TABLE1_SIZES: [usize; 4] = [1 << 10, 1 << 12, 1 << 14, 1 << 16];

/// One measured row of a table: an algorithm name plus the trace summary of
/// a single simulated run.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Algorithm / configuration label.
    pub label: String,
    /// Input size the run used.
    pub n: usize,
    /// Trace summary of the run.
    pub summary: TraceSummary,
}

impl MeasuredRow {
    /// Runs `f` on a fresh PRAM with the given seed and records its trace.
    pub fn measure(label: &str, n: usize, seed: u64, f: impl FnOnce(&mut Pram)) -> MeasuredRow {
        let mut pram = Pram::with_seed(16, seed);
        f(&mut pram);
        MeasuredRow {
            label: label.to_string(),
            n,
            summary: pram.trace().summary(),
        }
    }

    /// Formats the row for the table harnesses.
    pub fn format(&self) -> String {
        format!(
            "{:<34} n={:<7} t_qrqw={:<6} t_crqw={:<6} t_erew={:<6} t_crcw={:<6} work={:<9} max_cont={:<5} erew_viol={}",
            self.label,
            self.n,
            self.summary.time_qrqw,
            self.summary.time_crqw,
            self.summary.time_erew,
            self.summary.time_crcw,
            self.summary.work,
            self.summary.max_contention,
            self.summary.erew_violations
        )
    }

    /// The time of this run under `model`.
    pub fn time(&self, model: CostModel) -> u64 {
        match model {
            CostModel::Erew | CostModel::Crew => self.summary.time_erew,
            CostModel::Qrqw => self.summary.time_qrqw,
            CostModel::Crqw => self.summary.time_crqw,
            CostModel::Crcw => self.summary.time_crcw,
            CostModel::SimdQrqw => self.summary.time_simd_qrqw,
            CostModel::ScanSimdQrqw => self.summary.time_scan_simd_qrqw,
        }
    }
}

/// Prints a titled block of measured rows.
pub fn print_rows(title: &str, rows: &[MeasuredRow]) {
    println!("\n=== {title} ===");
    for r in rows {
        println!("{}", r.format());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_runs_on_every_backend() {
        for algo in Algorithm::ALL {
            for backend in Backend::ALL {
                let run = algo.run(backend, 128, 5);
                assert!(run.valid, "{} failed on {}", algo.name(), backend.name());
                assert!(run.format().contains(backend.name()));
            }
        }
    }

    #[test]
    fn name_round_trips_through_parse() {
        for algo in Algorithm::ALL {
            assert_eq!(Algorithm::parse(algo.name()), Some(algo));
        }
        for backend in Backend::ALL {
            assert_eq!(Backend::parse(backend.name()), Some(backend));
        }
        assert_eq!(Algorithm::parse("nope"), None);
        assert_eq!(Backend::parse("nope"), None);
    }

    #[test]
    fn backend_sets_parse_names_all_and_the_historical_both() {
        assert_eq!(Backend::parse_set("all"), Some(Backend::ALL.to_vec()));
        assert_eq!(Backend::parse_set("both"), Some(Backend::ALL.to_vec()));
        assert_eq!(
            Backend::parse_set("bsp,sim"),
            Some(vec![Backend::Bsp, Backend::Sim])
        );
        assert_eq!(Backend::parse_set("nope"), None);
        assert_eq!(Backend::parse_set(""), None);
    }

    #[test]
    fn bsp_runs_carry_measured_and_predicted_costs() {
        let run = Algorithm::PermutationQrqw.run(Backend::Bsp, 256, 3);
        assert!(run.valid);
        let bsp = run.report.bsp.expect("bsp run must fill the BSP section");
        assert!(bsp.measured_cost > 0);
        assert!(
            bsp.measured_cost <= bsp.predicted_cost,
            "measured {} exceeded the Theorem 1.1 bound {}",
            bsp.measured_cost,
            bsp.predicted_cost
        );
        // The sim and bsp runs of one seed are the same trajectory, so the
        // claim counters must agree exactly.
        let sim = Algorithm::PermutationQrqw.run(Backend::Sim, 256, 3);
        assert_eq!(run.report.claim_attempts, sim.report.claim_attempts);
        assert_eq!(run.report.contended_claims, sim.report.contended_claims);
        assert_eq!(run.report.steps, sim.report.steps);
    }

    #[test]
    fn measure_captures_a_trace() {
        let row = MeasuredRow::measure("noop-ish", 8, 1, |pram| {
            pram.step(|s| s.par_for(0..8, |p, ctx| ctx.write(p, 1)));
        });
        assert_eq!(row.summary.steps, 1);
        assert_eq!(row.summary.work, 8);
        assert!(row.format().contains("n=8"));
        assert_eq!(row.time(CostModel::Qrqw), 1);
    }
}
