//! # qrqw-bench — harnesses that regenerate the paper's tables and figures
//!
//! Binaries (run with `cargo run -p qrqw-bench --release --bin <name>`):
//!
//! * `table1`  — Table I: QRQW algorithms vs. the best EREW algorithms for
//!   random permutation, multiple compaction, sorting from U(0,1), hashing
//!   and load balancing, measured on the PRAM simulator.
//! * `table2`  — Table II: wall-clock comparison of the three
//!   random-permutation implementations (sorting-based, dart-throwing with
//!   scans, QRQW dart throwing) at n = 16,384 and n = 1,024, plus the
//!   model-predicted ordering from the simulator (the §5.2 asymptotic
//!   analysis paragraph).
//! * `figure1` — Figure 1: cyclic vs. non-cyclic permutations and their
//!   cycle representations.
//! * `ablation` — design-choice sweeps: dart-throwing subarray size,
//!   fat-tree vs. concurrent binary search, linear-compaction output slack.
//!
//! Criterion benches (`cargo bench -p qrqw-bench`) time the same workloads.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

use qrqw_core::{
    is_permutation, load_balance_erew, load_balance_qrqw, random_permutation_dart_scan,
    random_permutation_qrqw, random_permutation_sorting_erew,
};
use qrqw_exec::NativeMachine;
use qrqw_prims::linear_compaction;
use qrqw_sim::{CostModel, CostReport, Machine, Pram, TraceSummary};

/// Which [`Machine`] backend a harness run executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The exact-cost QRQW PRAM simulator ([`Pram`]).
    Sim,
    /// The native rayon/atomics machine ([`NativeMachine`]).
    Native,
}

impl Backend {
    /// Both backends, simulator first.
    pub const ALL: [Backend; 2] = [Backend::Sim, Backend::Native];

    /// Short name (`"sim"` / `"native"`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Native => "native",
        }
    }

    /// Parses a backend name.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "sim" => Some(Backend::Sim),
            "native" => Some(Backend::Native),
            _ => None,
        }
    }
}

/// An algorithm ported to the [`Machine`] backend API, runnable (and timed)
/// on either backend from this one entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// §5.1.1 QRQW dart-throwing random permutation (Theorem 5.1).
    PermutationQrqw,
    /// §5.2 dart throwing with per-round compaction scans.
    PermutationDartScan,
    /// §5.2 sorting-based EREW baseline (bitonic system sort).
    PermutationSortingErew,
    /// §4 low-contention linear compaction (half-full input array).
    LinearCompaction,
    /// §3 QRQW load balancing on a skewed load vector.
    LoadBalanceQrqw,
    /// §3 EREW prefix-sums load-balancing baseline.
    LoadBalanceErew,
}

impl Algorithm {
    /// Every ported algorithm.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::PermutationQrqw,
        Algorithm::PermutationDartScan,
        Algorithm::PermutationSortingErew,
        Algorithm::LinearCompaction,
        Algorithm::LoadBalanceQrqw,
        Algorithm::LoadBalanceErew,
    ];

    /// Stable kebab-case name (also accepted by [`Algorithm::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::PermutationQrqw => "permutation-qrqw",
            Algorithm::PermutationDartScan => "permutation-dart-scan",
            Algorithm::PermutationSortingErew => "permutation-sorting-erew",
            Algorithm::LinearCompaction => "linear-compaction",
            Algorithm::LoadBalanceQrqw => "load-balance-qrqw",
            Algorithm::LoadBalanceErew => "load-balance-erew",
        }
    }

    /// Parses an algorithm name as printed by [`Algorithm::name`].
    pub fn parse(s: &str) -> Option<Algorithm> {
        Algorithm::ALL.into_iter().find(|a| a.name() == s)
    }

    /// The deterministic skewed load vector the load-balancing runs use
    /// (a few heavy processors, a sparse tail).
    pub fn skewed_loads(n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| if i % 64 == 0 { 64 } else { (i % 2) as u64 })
            .collect()
    }

    /// Runs this algorithm at problem size `n` on an already-constructed
    /// machine, returning whether the output validated and the wall-clock
    /// time of the algorithm itself (input setup and output validation are
    /// excluded, matching how the MasPar experiment timed its kernels).
    pub fn run_on<M: Machine>(self, m: &mut M, n: usize) -> (bool, Duration) {
        match self {
            Algorithm::PermutationQrqw => {
                let start = Instant::now();
                let out = random_permutation_qrqw(m, n);
                let elapsed = start.elapsed();
                (is_permutation(&out.order), elapsed)
            }
            Algorithm::PermutationDartScan => {
                let start = Instant::now();
                let out = random_permutation_dart_scan(m, n);
                let elapsed = start.elapsed();
                (is_permutation(&out.order), elapsed)
            }
            Algorithm::PermutationSortingErew => {
                let start = Instant::now();
                let out = random_permutation_sorting_erew(m, n);
                let elapsed = start.elapsed();
                (is_permutation(&out.order), elapsed)
            }
            Algorithm::LinearCompaction => {
                let src = m.alloc(n.max(1));
                let k = n / 2;
                for i in 0..k {
                    m.poke(src + 2 * i, i as u64 + 1);
                }
                let dst = m.alloc((4 * k).max(4));
                let start = Instant::now();
                let out = linear_compaction(m, src, n, dst, (4 * k).max(4));
                let elapsed = start.elapsed();
                let mut dests: Vec<usize> = out.placements.iter().map(|&(_, d)| d).collect();
                dests.sort_unstable();
                dests.dedup();
                (out.placements.len() == k && dests.len() == k, elapsed)
            }
            Algorithm::LoadBalanceQrqw => {
                let loads = Algorithm::skewed_loads(n);
                let total: u64 = loads.iter().sum();
                let start = Instant::now();
                let res = load_balance_qrqw(m, &loads);
                let elapsed = start.elapsed();
                let valid = res.covers_exactly(&loads)
                    && (n == 0 || res.max_final_load <= 64 * (1 + total / n as u64));
                (valid, elapsed)
            }
            Algorithm::LoadBalanceErew => {
                let loads = Algorithm::skewed_loads(n);
                let start = Instant::now();
                let res = load_balance_erew(m, &loads);
                let elapsed = start.elapsed();
                (res.covers_exactly(&loads), elapsed)
            }
        }
    }

    /// Creates a fresh machine of the requested backend, runs this algorithm
    /// on it, and reports timing, validity and the backend's cost report.
    pub fn run(self, backend: Backend, n: usize, seed: u64) -> BackendRun {
        let (valid, elapsed, report) = match backend {
            Backend::Sim => {
                let mut m = Pram::with_seed(16, seed);
                let (valid, elapsed) = self.run_on(&mut m, n);
                (valid, elapsed, m.cost_report())
            }
            Backend::Native => {
                let mut m = NativeMachine::with_seed(16, seed);
                let (valid, elapsed) = self.run_on(&mut m, n);
                (valid, elapsed, m.cost_report())
            }
        };
        BackendRun {
            algorithm: self.name(),
            backend: backend.name(),
            n,
            seed,
            valid,
            elapsed,
            report,
        }
    }
}

/// One algorithm execution on one backend: the unified record the Table II
/// harness (and any future sweep) prints.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// [`Algorithm::name`] of the run.
    pub algorithm: &'static str,
    /// [`Backend::name`] of the run.
    pub backend: &'static str,
    /// Problem size.
    pub n: usize,
    /// Machine seed.
    pub seed: u64,
    /// Whether the output validated (permutation check, coverage check, …).
    pub valid: bool,
    /// Wall-clock time of the algorithm run itself.
    pub elapsed: Duration,
    /// The backend's own cost report.
    pub report: CostReport,
}

impl BackendRun {
    /// Formats the run as one harness row.
    pub fn format(&self) -> String {
        format!(
            "{:<26} {:<7} n={:<7} {:>9.3} ms  valid={} {}",
            self.algorithm,
            self.backend,
            self.n,
            self.elapsed.as_secs_f64() * 1e3,
            self.valid,
            self.report,
        )
    }
}

/// Problem sizes used by the Table I sweep.
pub const TABLE1_SIZES: [usize; 4] = [1 << 10, 1 << 12, 1 << 14, 1 << 16];

/// One measured row of a table: an algorithm name plus the trace summary of
/// a single simulated run.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Algorithm / configuration label.
    pub label: String,
    /// Input size the run used.
    pub n: usize,
    /// Trace summary of the run.
    pub summary: TraceSummary,
}

impl MeasuredRow {
    /// Runs `f` on a fresh PRAM with the given seed and records its trace.
    pub fn measure(label: &str, n: usize, seed: u64, f: impl FnOnce(&mut Pram)) -> MeasuredRow {
        let mut pram = Pram::with_seed(16, seed);
        f(&mut pram);
        MeasuredRow {
            label: label.to_string(),
            n,
            summary: pram.trace().summary(),
        }
    }

    /// Formats the row for the table harnesses.
    pub fn format(&self) -> String {
        format!(
            "{:<34} n={:<7} t_qrqw={:<6} t_crqw={:<6} t_erew={:<6} t_crcw={:<6} work={:<9} max_cont={:<5} erew_viol={}",
            self.label,
            self.n,
            self.summary.time_qrqw,
            self.summary.time_crqw,
            self.summary.time_erew,
            self.summary.time_crcw,
            self.summary.work,
            self.summary.max_contention,
            self.summary.erew_violations
        )
    }

    /// The time of this run under `model`.
    pub fn time(&self, model: CostModel) -> u64 {
        match model {
            CostModel::Erew | CostModel::Crew => self.summary.time_erew,
            CostModel::Qrqw => self.summary.time_qrqw,
            CostModel::Crqw => self.summary.time_crqw,
            CostModel::Crcw => self.summary.time_crcw,
            CostModel::SimdQrqw => self.summary.time_simd_qrqw,
            CostModel::ScanSimdQrqw => self.summary.time_scan_simd_qrqw,
        }
    }
}

/// Prints a titled block of measured rows.
pub fn print_rows(title: &str, rows: &[MeasuredRow]) {
    println!("\n=== {title} ===");
    for r in rows {
        println!("{}", r.format());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_runs_on_both_backends() {
        for algo in Algorithm::ALL {
            for backend in Backend::ALL {
                let run = algo.run(backend, 128, 5);
                assert!(run.valid, "{} failed on {}", algo.name(), backend.name());
                assert!(run.format().contains(backend.name()));
            }
        }
    }

    #[test]
    fn name_round_trips_through_parse() {
        for algo in Algorithm::ALL {
            assert_eq!(Algorithm::parse(algo.name()), Some(algo));
        }
        for backend in Backend::ALL {
            assert_eq!(Backend::parse(backend.name()), Some(backend));
        }
        assert_eq!(Algorithm::parse("nope"), None);
    }

    #[test]
    fn measure_captures_a_trace() {
        let row = MeasuredRow::measure("noop-ish", 8, 1, |pram| {
            pram.step(|s| s.par_for(0..8, |p, ctx| ctx.write(p, 1)));
        });
        assert_eq!(row.summary.steps, 1);
        assert_eq!(row.summary.work, 8);
        assert!(row.format().contains("n=8"));
        assert_eq!(row.time(CostModel::Qrqw), 1);
    }
}
