//! Key distributions and samplers shared by every workload generator.
//!
//! The service harness (`service.rs`), the chaos harness (`chaos.rs`) and
//! the scenario subsystem (`scenario.rs`) all draw keys from the same
//! [`KeySampler`], so "zipf" means exactly one thing across the whole
//! bench crate.  Skew is the point: QRQW contention charging is only
//! interesting when the key stream concentrates — uniform input (the only
//! regime the paper's Table II measures) is the *low*-contention case, and
//! these distributions open the rest of the axis up to the crafted
//! worst case.
//!
//! Distribution names parse **loudly**: an unknown name is an error
//! carrying the valid vocabulary, never a silent default — the same
//! contract as `QRQW_SCHEDULE`/`QRQW_FUSE`/`QRQW_THREADS` parsing.

use qrqw_core::hashing::HASH_PRIME;
use qrqw_core::open_table::probe_home;
use rand::rngs::SmallRng;
use rand::Rng;

/// Key distribution of generated traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over the keyspace: the paper's Table II regime, and the
    /// low-contention baseline.
    Uniform,
    /// Zipf with exponent `s` over the keyspace: rank-`i` key has weight
    /// `1/(i+1)^s`, so a few hot keys absorb most of the traffic — the
    /// skewed regime the QRQW model charges for.  `"zipf"` parses as
    /// `s = 1`; `"zipf:1.5"` parameterizes the exponent.
    Zipf(f64),
    /// Discrete power-law with CDF `F(k) = ((k+1)/n)^(1/4)`: even heavier
    /// head than Zipf(1) — the single hottest key carries an analytic
    /// `(1/n)^(1/4)` of all traffic.
    PowerLaw,
    /// Every request uses key 0: maximum possible contention, the
    /// degenerate adversary.
    AllSame,
    /// Crafted-collision adversary: a small pool of keys sieved so that
    /// they share the same [`probe_home`] cell (at the reference capacity
    /// of 1024), forcing every insert batch into colliding probe chains
    /// regardless of how the traffic is spread.
    Adversarial,
}

impl KeyDist {
    /// Parses a distribution name.  Unknown names are an error carrying
    /// the valid vocabulary — never a silent default.
    pub fn parse(s: &str) -> Result<KeyDist, String> {
        match s {
            "uniform" => Ok(KeyDist::Uniform),
            "zipf" => Ok(KeyDist::Zipf(1.0)),
            "power-law" => Ok(KeyDist::PowerLaw),
            "all-same" | "all-same-key" => Ok(KeyDist::AllSame),
            "adversarial" => Ok(KeyDist::Adversarial),
            other => {
                if let Some(exp) = other.strip_prefix("zipf:") {
                    let s: f64 = exp.parse().map_err(|_| {
                        format!("invalid zipf exponent {exp:?} (want a positive number)")
                    })?;
                    if !s.is_finite() || s <= 0.0 {
                        return Err(format!(
                            "invalid zipf exponent {exp:?} (want a finite number > 0)"
                        ));
                    }
                    Ok(KeyDist::Zipf(s))
                } else {
                    Err(format!(
                        "unknown key distribution {other:?} \
                         (valid: uniform, zipf, zipf:<s>, power-law, all-same, adversarial)"
                    ))
                }
            }
        }
    }

    /// Short family name (stable across exponents, so JSON schemas keyed
    /// on it stay comparable).
    pub fn name(self) -> &'static str {
        match self {
            KeyDist::Uniform => "uniform",
            KeyDist::Zipf(_) => "zipf",
            KeyDist::PowerLaw => "power-law",
            KeyDist::AllSame => "all-same",
            KeyDist::Adversarial => "adversarial",
        }
    }

    /// Full label including parameters (round-trips through [`parse`]).
    ///
    /// [`parse`]: KeyDist::parse
    pub fn label(self) -> String {
        match self {
            KeyDist::Zipf(s) => format!("zipf:{s}"),
            d => d.name().to_string(),
        }
    }
}

/// Reference table capacity the [`KeyDist::Adversarial`] pool collides at.
const ADVERSARIAL_CAP: usize = 1024;

/// Precomputed sampler over `[0, n)` for a [`KeyDist`].
pub struct KeySampler {
    /// CDF over ranks; empty for distributions that don't need one.
    cdf: Vec<f64>,
    /// Explicit key pool ([`KeyDist::Adversarial`] only; ranks map through
    /// it instead of being keys themselves).
    pool: Vec<u64>,
    n: u64,
}

impl KeySampler {
    /// Builds the sampler for `dist` over the keyspace `[0, n)` (`n` is
    /// clamped to at least 1).
    pub fn new(dist: KeyDist, n: usize) -> Self {
        let n = n.max(1);
        let mut pool = Vec::new();
        let cdf = match dist {
            KeyDist::Uniform | KeyDist::AllSame => Vec::new(),
            KeyDist::Zipf(s) => {
                let mut cdf = Vec::with_capacity(n);
                let mut acc = 0.0;
                for i in 0..n {
                    acc += 1.0 / ((i + 1) as f64).powf(s);
                    cdf.push(acc);
                }
                let total = acc;
                for v in &mut cdf {
                    *v /= total;
                }
                cdf
            }
            KeyDist::PowerLaw => {
                let gamma = 0.25;
                (0..n)
                    .map(|k| (((k + 1) as f64) / n as f64).powf(gamma))
                    .collect()
            }
            KeyDist::Adversarial => {
                // Sieve keys whose first probe cell collides at the
                // reference capacity; a pool of min(16, n) is enough to
                // keep every insert batch on one probe chain.
                let want = n.min(16);
                let mut k = 0u64;
                while pool.len() < want {
                    if probe_home(k, ADVERSARIAL_CAP) == 0 {
                        pool.push(k);
                    }
                    k += 1;
                    assert!(k < HASH_PRIME, "adversarial sieve exhausted the field");
                }
                Vec::new()
            }
        };
        let all_same = dist == KeyDist::AllSame;
        KeySampler {
            cdf,
            pool,
            n: if all_same { 1 } else { n as u64 },
        }
    }

    /// Draws one key.  Deterministic given the rng stream: the sampler
    /// itself holds no mutable state.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        if !self.pool.is_empty() {
            return self.pool[rng.gen_range(0..self.pool.len() as u64) as usize];
        }
        if self.cdf.is_empty() {
            if self.n == 1 {
                return 0;
            }
            return rng.gen_range(0..self.n);
        }
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1) as u64
    }

    /// The rank CDF, for the property tests (empty when the distribution
    /// needs none: uniform, all-same, adversarial).
    pub fn cdf(&self) -> &[f64] {
        &self.cdf
    }

    /// The explicit key pool of the adversarial distribution (empty
    /// otherwise).
    pub fn pool(&self) -> &[u64] {
        &self.pool
    }

    /// Size of the keyspace the sampler draws ranks from.
    pub fn keyspace(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn parse_round_trips_and_rejects_loudly() {
        for name in [
            "uniform",
            "zipf",
            "zipf:1.5",
            "power-law",
            "all-same",
            "adversarial",
        ] {
            let d = KeyDist::parse(name).expect(name);
            assert_eq!(KeyDist::parse(&d.label()), Ok(d), "label round-trip {name}");
        }
        assert_eq!(KeyDist::parse("all-same-key"), Ok(KeyDist::AllSame));
        for bad in [
            "", "zipfian", "zipf:", "zipf:nan", "zipf:-1", "zipf:0", "Uniform",
        ] {
            let err = KeyDist::parse(bad).expect_err(bad);
            assert!(
                err.contains("invalid") || err.contains("unknown"),
                "error for {bad:?} must be loud: {err}"
            );
        }
    }

    #[test]
    fn adversarial_pool_collides_on_the_home_cell() {
        let s = KeySampler::new(KeyDist::Adversarial, 4096);
        assert_eq!(s.pool().len(), 16);
        for &k in s.pool() {
            assert_eq!(probe_home(k, ADVERSARIAL_CAP), 0);
            assert!(k < HASH_PRIME);
        }
    }

    #[test]
    fn all_same_always_draws_zero() {
        let s = KeySampler::new(KeyDist::AllSame, 4096);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(s.sample(&mut rng), 0);
        }
    }
}
