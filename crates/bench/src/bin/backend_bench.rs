//! One entry point to run and time *any* `Machine`-ported algorithm on
//! *either* backend.
//!
//! Usage:
//!
//! ```text
//! cargo run -p qrqw-bench --release --bin backend_bench                 # full sweep
//! cargo run -p qrqw-bench --release --bin backend_bench -- \
//!     [algorithm] [backend] [n] [reps] [seed]
//! ```
//!
//! `algorithm` is one of the names printed by the sweep (e.g.
//! `permutation-qrqw`, `linear-compaction`, `load-balance-qrqw`) or `all`;
//! `backend` is a backend name (`sim`, `native`, `native-steal`, `bsp`), a
//! comma-separated list, or `all` (aka the historical `both`).  The plain
//! `native` backend additionally honours `QRQW_SCHEDULE=stealing`;
//! `native-steal` is pinned to work-stealing dispatch regardless.

use qrqw_bench::{Algorithm, Backend, BackendRun};

fn run_cell(algo: Algorithm, backend: Backend, n: usize, reps: u64, seed: u64) {
    let mut last: Option<BackendRun> = None;
    let mut total_ms = 0.0;
    for r in 0..reps {
        let run = algo.run(backend, n, seed + r);
        assert!(
            run.valid,
            "{} produced an invalid output on {}",
            algo.name(),
            backend.name()
        );
        total_ms += run.elapsed.as_secs_f64() * 1e3;
        last = Some(run);
    }
    let last = last.expect("at least one repetition");
    println!(
        "{:<26} {:<7} n={:<7} avg {:>9.3} ms over {reps} reps   {}",
        last.algorithm,
        last.backend,
        n,
        total_ms / reps as f64,
        last.report
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let algo_arg = args.first().map(String::as_str).unwrap_or("all");
    let backend_arg = args.get(1).map(String::as_str).unwrap_or("both");
    let n: usize = args.get(2).map(|s| s.parse().expect("n")).unwrap_or(4096);
    let reps: u64 = args.get(3).map(|s| s.parse().expect("reps")).unwrap_or(5);
    let seed: u64 = args.get(4).map(|s| s.parse().expect("seed")).unwrap_or(1);

    let algos: Vec<Algorithm> = if algo_arg == "all" {
        Algorithm::ALL.to_vec()
    } else {
        vec![Algorithm::parse(algo_arg).unwrap_or_else(|| {
            eprintln!("unknown algorithm `{algo_arg}`; known:");
            for a in Algorithm::ALL {
                eprintln!("  {}", a.name());
            }
            std::process::exit(2);
        })]
    };
    let backends: Vec<Backend> = Backend::parse_set(backend_arg).unwrap_or_else(|| {
        eprintln!(
            "unknown backend set `{backend_arg}` \
             (sim | native | native-steal | bsp | name,name | all)"
        );
        std::process::exit(2);
    });

    println!("machine-backend bench: n={n}, {reps} reps, seed {seed}\n");
    for algo in &algos {
        for backend in &backends {
            run_cell(*algo, *backend, n, reps, seed);
        }
    }
}
