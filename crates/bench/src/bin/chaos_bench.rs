//! `chaos_bench` — the committed `BENCH_chaos.json` fault-injection sweep.
//!
//! Drives the fault-tolerant serving layer with a single deterministic
//! submitter under seeded [`FaultPlan`]s, sweeping the panic-injection
//! rate over {0, 25, 100, 400} per 10,000 requests (plus a constant trickle
//! of injected errors) for each service workload, and records what fault
//! tolerance costs: goodput, shed/failed counts, per-batch snapshot
//! overhead, and mean rollback-plus-bisection recovery latency.  Every run
//! is validated — no wedged tickets, exact poison isolation, and digest
//! parity against a fault-free oneshot replay of the applied requests —
//! and `"all_valid"` gates CI.
//!
//! Usage:
//!
//! ```text
//! cargo run -p qrqw-bench --release --bin chaos_bench               # full sweep
//! cargo run -p qrqw-bench --release --bin chaos_bench -- \
//!     [--requests N] [--window N] [--batch-max N] \
//!     [--panic-rates 0,25,100,400] [--workloads hash,counter,task] \
//!     [--threads T] [--seed S] [--smoke] [--json-out BENCH_chaos.json]
//! ```
//!
//! `--smoke` runs a small fixed matrix and writes no file — it exists for
//! CI, exiting nonzero if any validator fails.  The fault rates can also be
//! overridden through `QRQW_FAULT_PANIC` / `QRQW_FAULT_ERROR` /
//! `QRQW_FAULT_DELAY` / `QRQW_FAULT_SEED` (see [`FaultPlan::from_env`]).

use std::time::Duration;

use qrqw_bench::chaos::{chaos_report_json, run_chaos, ChaosSpec, FaultPlan};
use qrqw_bench::report::write_json_file;
use qrqw_bench::service::ServiceWorkload;
use qrqw_serve::{BatchPolicy, ServiceConfig};

struct Cli {
    requests: usize,
    window: usize,
    batch_max: usize,
    panic_rates: Vec<u32>,
    workloads: Vec<ServiceWorkload>,
    threads: Option<usize>,
    seed: u64,
    smoke: bool,
    out: String,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: chaos_bench [--requests N] [--window N] [--batch-max N] \
         [--panic-rates N,N] [--workloads hash,counter,task] [--threads T] \
         [--seed S] [--smoke] [--json-out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        requests: 3000,
        window: 64,
        batch_max: 64,
        panic_rates: vec![0, 25, 100, 400],
        workloads: ServiceWorkload::ALL.to_vec(),
        threads: None,
        seed: 1,
        smoke: false,
        out: "BENCH_chaos.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--requests" => {
                cli.requests = value().parse().unwrap_or_else(|_| usage("bad --requests"))
            }
            "--window" => cli.window = value().parse().unwrap_or_else(|_| usage("bad --window")),
            "--batch-max" => {
                cli.batch_max = value().parse().unwrap_or_else(|_| usage("bad --batch-max"))
            }
            "--panic-rates" => {
                cli.panic_rates = value()
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| usage(&format!("bad panic rate {s:?}")))
                    })
                    .collect();
            }
            "--workloads" => {
                cli.workloads = value()
                    .split(',')
                    .map(|s| {
                        ServiceWorkload::parse(s.trim())
                            .unwrap_or_else(|| usage(&format!("unknown workload {s:?}")))
                    })
                    .collect();
            }
            "--threads" => {
                cli.threads = Some(value().parse().unwrap_or_else(|_| usage("bad --threads")))
            }
            "--seed" => cli.seed = value().parse().unwrap_or_else(|_| usage("bad --seed")),
            "--smoke" => cli.smoke = true,
            "--json-out" | "--out" => cli.out = value(),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if cli.panic_rates.is_empty() || cli.workloads.is_empty() {
        usage("need at least one panic rate and one workload");
    }
    cli
}

fn main() {
    let cli = parse_args();
    // Injected panics are caught and rolled back by the batcher, but the
    // process-global panic hook would still print a message (and possibly
    // a backtrace) for every one — hundreds of lines of expected noise in
    // a chaos sweep.  Silence the hook for the batcher thread only; a
    // genuine batcher bug still surfaces through the validators.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if std::thread::current().name() != Some("qrqw-serve-batcher") {
            default_hook(info);
        }
    }));
    let threads = cli
        .threads
        .unwrap_or_else(|| qrqw_exec::StepPool::from_env().threads());
    let requests = if cli.smoke {
        cli.requests.min(400)
    } else {
        cli.requests
    };
    println!(
        "chaos_bench: {} requests, window {}, batch_max {}, panic rates {:?}/10k, \
         workloads {:?}, seed {}, threads {}{}",
        requests,
        cli.window,
        cli.batch_max,
        cli.panic_rates,
        cli.workloads.iter().map(|w| w.name()).collect::<Vec<_>>(),
        cli.seed,
        threads,
        if cli.smoke { " [smoke]" } else { "" },
    );
    let mut runs = Vec::new();
    for &panic_per_10k in &cli.panic_rates {
        for &workload in &cli.workloads {
            // A constant trickle of injected errors and stalls rides along
            // (they are cheap faults; panics are the expensive dimension).
            let plan = FaultPlan {
                panic_per_10k,
                error_per_10k: 25,
                delay_per_10k: if cli.smoke { 0 } else { 5 },
                delay: Duration::from_micros(200),
                seed: cli.seed ^ 0xFA17,
            }
            .from_env();
            let spec = ChaosSpec {
                workload,
                requests,
                window: cli.window,
                keyspace: 512,
                seed: cli.seed,
            };
            let policy =
                BatchPolicy::with_max_batch(cli.batch_max).linger(Duration::from_micros(100));
            let config = ServiceConfig {
                seed: cli.seed,
                ..ServiceConfig::default()
            };
            let summary = run_chaos(config, policy, threads, plan, &spec);
            summary.print_row();
            for finding in &summary.validation_errors {
                eprintln!("chaos_bench: validator: {finding}");
            }
            runs.push(summary);
        }
    }
    let all_valid = runs.iter().all(|r| r.valid());
    if !cli.smoke {
        let doc = chaos_report_json("chaos_bench", cli.seed, threads, &runs);
        write_json_file(&cli.out, &doc);
        println!("wrote {}", cli.out);
    }
    if !all_valid {
        eprintln!("chaos_bench: at least one run failed validation");
        std::process::exit(1);
    }
    let wedged: u64 = runs.iter().map(|r| r.wedged).sum();
    assert_eq!(wedged, 0, "wedged tickets slipped past the validators");
}
