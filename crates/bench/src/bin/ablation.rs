//! Ablation studies for the design choices the paper calls out:
//!
//! 1. the binary-search **fat-tree** vs. a plain concurrent binary search
//!    (Section 7.2 — the fat-tree's reason to exist),
//! 2. the **output-array slack** of linear compaction / dart throwing
//!    (Sections 4 and 5.1.2 — "using larger arrays reduces collision sets"),
//! 3. the fast vs. work-optimal **cyclic permutation** algorithms
//!    (Theorem 5.2 vs. Theorem 5.3 — time/processor trade-off).

use qrqw_core::{random_cyclic_permutation_efficient, random_cyclic_permutation_fast, FatTree};
use qrqw_prims::linear_compaction;
use qrqw_sim::{CostModel, Pram};

fn main() {
    println!("Ablation 1 — fat-tree search vs concurrent binary search (n keys, 63 splitters)");
    println!(
        "{:<10} {:>18} {:>18} {:>14} {:>14}",
        "n", "fat-tree max cont", "concurrent max cont", "fat-tree qrqw", "concurrent qrqw"
    );
    for &n in &[1usize << 10, 1 << 12, 1 << 14] {
        let splitters: Vec<u64> = (1..64).map(|i| i * 1000).collect();
        let keys: Vec<u64> = (0..n as u64).map(|i| (i * 977) % 64_000).collect();

        let mut a = Pram::with_seed(4, 1);
        let tree = FatTree::build(&mut a, &splitters, n);
        let _ = a.take_trace();
        let _ = tree.search_batch(&mut a, &keys);
        let (fc, ft) = (a.trace().max_contention(), a.trace().time(CostModel::Qrqw));

        let mut b = Pram::with_seed(4, 1);
        let tree = FatTree::build(&mut b, &splitters, n);
        let _ = b.take_trace();
        let _ = tree.search_batch_concurrent(&mut b, &keys);
        let (cc, ct) = (b.trace().max_contention(), b.trace().time(CostModel::Qrqw));
        println!("{n:<10} {fc:>18} {cc:>18} {ft:>14} {ct:>14}");
    }

    println!(
        "\nAblation 2 — linear-compaction output slack (k = 2048 items out of n = 8192 cells)"
    );
    println!(
        "{:<16} {:>10} {:>14} {:>12}",
        "output size", "rounds", "max contention", "qrqw time"
    );
    let n = 8192usize;
    let k = 2048usize;
    for factor in [4usize, 8, 16] {
        let mut pram = Pram::with_seed(n, 9);
        for i in 0..k {
            pram.memory_mut().poke(i * (n / k), i as u64 + 1);
        }
        let dst = pram.alloc(factor * k);
        let out = linear_compaction(&mut pram, 0, n, dst, factor * k);
        assert_eq!(out.placements.len(), k);
        println!(
            "{:<16} {:>10} {:>14} {:>12}",
            format!("{factor}k"),
            out.rounds,
            pram.trace().max_contention(),
            pram.trace().time(CostModel::Qrqw)
        );
    }

    println!(
        "\nAblation 3 — cyclic permutation: fast (Thm 5.2) vs work-optimal (Thm 5.3), n = 4096"
    );
    println!(
        "{:<18} {:>12} {:>12} {:>14}",
        "algorithm", "qrqw time", "work", "max contention"
    );
    let n = 4096usize;
    let mut a = Pram::with_seed(4, 5);
    let _ = random_cyclic_permutation_fast(&mut a, n);
    println!(
        "{:<18} {:>12} {:>12} {:>14}",
        "fast",
        a.trace().time(CostModel::Qrqw),
        a.trace().work(),
        a.trace().max_contention()
    );
    let mut b = Pram::with_seed(4, 5);
    let _ = random_cyclic_permutation_efficient(&mut b, n);
    println!(
        "{:<18} {:>12} {:>12} {:>14}",
        "work-optimal",
        b.trace().time(CostModel::Qrqw),
        b.trace().work(),
        b.trace().max_contention()
    );
}
