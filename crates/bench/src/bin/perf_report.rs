//! `perf_report` — records the native-vs-simulator performance trajectory.
//!
//! Runs every registry algorithm (or a chosen subset) on both backends at a
//! set of problem sizes, prints one row per (algorithm, n), and writes a
//! machine-readable JSON report so the repository's perf history is a
//! committed artifact (`BENCH_native.json`) instead of folklore.
//!
//! Usage:
//!
//! ```text
//! cargo run -p qrqw-bench --release --bin perf_report            # full sweep
//! cargo run -p qrqw-bench --release --bin perf_report -- \
//!     [--sizes 65536,1048576] [--algos all|name,name] [--seed 1] \
//!     [--threads N] [--sim-cap N] [--out BENCH_native.json]
//! ```
//!
//! * `--threads` forces the native thread count (otherwise `QRQW_THREADS` /
//!   host parallelism decides);
//! * `--sim-cap` skips simulator runs above that size (the simulator is
//!   O(work) per step; CI smoke runs use a small cap), recorded as
//!   `"sim": null` in the JSON;
//! * the exit code is non-zero if **any** run fails its validator, so CI
//!   can use a small run as a cross-backend smoke check.
//!
//! JSON shape (one object per (algorithm, n) in `"runs"`):
//!
//! ```text
//! {"algorithm": "permutation-qrqw", "n": 1048576,
//!  "native": {"wall_ms": …, "steps": …, "claim_attempts": …,
//!             "contended_claims": …, "valid": true},
//!  "sim":    {… same fields, plus "work", "max_contention", "time_qrqw"},
//!  "sim_over_native": 68.9}
//! ```

use std::io::Write as _;

use qrqw_bench::{Algorithm, Backend, BackendRun};

struct Config {
    sizes: Vec<usize>,
    algos: Vec<Algorithm>,
    seed: u64,
    threads: Option<usize>,
    sim_cap: usize,
    out: String,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: perf_report [--sizes N,N] [--algos all|name,name] [--seed S] \
         [--threads T] [--sim-cap N] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config {
        sizes: vec![1 << 16, 1 << 20],
        algos: Algorithm::ALL.to_vec(),
        seed: 1,
        threads: None,
        sim_cap: usize::MAX,
        out: "BENCH_native.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--sizes" => {
                cfg.sizes = value()
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| usage(&format!("bad size {s:?}")))
                    })
                    .collect();
            }
            "--algos" => {
                let spec = value();
                if spec != "all" {
                    cfg.algos = spec
                        .split(',')
                        .map(|s| {
                            Algorithm::parse(s.trim())
                                .unwrap_or_else(|| usage(&format!("unknown algorithm {s:?}")))
                        })
                        .collect();
                }
            }
            "--seed" => cfg.seed = value().parse().unwrap_or_else(|_| usage("bad --seed")),
            "--threads" => {
                cfg.threads = Some(value().parse().unwrap_or_else(|_| usage("bad --threads")))
            }
            "--sim-cap" => cfg.sim_cap = value().parse().unwrap_or_else(|_| usage("bad --sim-cap")),
            "--out" => cfg.out = value(),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if cfg.sizes.is_empty() || cfg.algos.is_empty() {
        usage("need at least one size and one algorithm");
    }
    cfg
}

fn json_run(run: &BackendRun) -> String {
    let mut fields = vec![
        format!("\"wall_ms\": {:.3}", run.elapsed.as_secs_f64() * 1e3),
        format!("\"steps\": {}", run.report.steps),
        format!("\"claim_attempts\": {}", run.report.claim_attempts),
        format!("\"contended_claims\": {}", run.report.contended_claims),
        format!("\"valid\": {}", run.valid),
    ];
    if let Some(work) = run.report.work {
        fields.push(format!("\"work\": {work}"));
    }
    if let Some(mc) = run.report.max_contention {
        fields.push(format!("\"max_contention\": {mc}"));
    }
    if let Some(t) = run.report.time_qrqw {
        fields.push(format!("\"time_qrqw\": {t}"));
    }
    format!("{{{}}}", fields.join(", "))
}

fn main() {
    let cfg = parse_args();
    let threads_used = cfg.threads.unwrap_or_else(|| {
        qrqw_exec::StepPool::from_env().threads() // same resolution the machine uses
    });
    println!(
        "perf_report: sizes {:?}, {} algorithms, seed {}, native threads {} (host cores {}), sim cap {}",
        cfg.sizes,
        cfg.algos.len(),
        cfg.seed,
        threads_used,
        rayon::current_num_threads(),
        if cfg.sim_cap == usize::MAX {
            "none".to_string()
        } else {
            cfg.sim_cap.to_string()
        },
    );

    let mut entries: Vec<String> = Vec::new();
    let mut all_valid = true;
    for &n in &cfg.sizes {
        for &algo in &cfg.algos {
            // Simulator first, matching `backend_bench` ordering: both
            // machines then allocate against a warmed process heap rather
            // than only the second one.
            let sim = (n <= cfg.sim_cap).then(|| algo.run(Backend::Sim, n, cfg.seed));
            let native = algo.run_native(n, cfg.seed, cfg.threads);
            all_valid &= native.valid;
            let ratio = sim
                .as_ref()
                .map(|s| s.elapsed.as_secs_f64() / native.elapsed.as_secs_f64().max(f64::EPSILON));
            let (sim_ms, ratio_str, sim_json) = match &sim {
                Some(s) => {
                    all_valid &= s.valid;
                    (
                        format!("{:>10.3}", s.elapsed.as_secs_f64() * 1e3),
                        format!("{:>8.1}x", ratio.unwrap()),
                        json_run(s),
                    )
                }
                None => (
                    format!("{:>10}", "-"),
                    format!("{:>9}", "-"),
                    "null".to_string(),
                ),
            };
            println!(
                "{:<26} n={:<8} native {:>9.3} ms  sim {} ms  sim/native {}  valid={}",
                algo.name(),
                n,
                native.elapsed.as_secs_f64() * 1e3,
                sim_ms,
                ratio_str,
                native.valid && sim.as_ref().is_none_or(|s| s.valid),
            );
            let ratio_json = ratio.map_or("null".to_string(), |r| format!("{r:.2}"));
            entries.push(format!(
                "    {{\"algorithm\": \"{}\", \"n\": {}, \"native\": {}, \"sim\": {}, \"sim_over_native\": {}}}",
                algo.name(),
                n,
                json_run(&native),
                sim_json,
                ratio_json,
            ));
        }
    }

    let json = format!(
        "{{\n  \"generated_by\": \"perf_report\",\n  \"seed\": {},\n  \"threads\": {},\n  \
         \"host_cores\": {},\n  \"sizes\": {:?},\n  \"all_valid\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        cfg.seed,
        threads_used,
        rayon::current_num_threads(),
        cfg.sizes,
        all_valid,
        entries.join(",\n"),
    );
    let mut file = std::fs::File::create(&cfg.out)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", cfg.out));
    file.write_all(json.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", cfg.out));
    println!("wrote {}", cfg.out);

    if !all_valid {
        eprintln!("perf_report: at least one run failed its validator");
        std::process::exit(1);
    }
}
