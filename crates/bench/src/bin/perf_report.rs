//! `perf_report` — records the cross-backend performance trajectory.
//!
//! Runs every registry algorithm (or a chosen subset) on the selected
//! backends at a set of problem sizes, prints one row per (algorithm, n),
//! and writes a machine-readable JSON report so the repository's perf
//! history is a committed artifact (`BENCH_native.json`) instead of
//! folklore.  For the BSP backend the row and the JSON carry the *measured*
//! Theorem 1.1 emulation cost next to the formula-predicted bound.
//!
//! Usage:
//!
//! ```text
//! cargo run -p qrqw-bench --release --bin perf_report            # full sweep
//! cargo run -p qrqw-bench --release --bin perf_report -- \
//!     [--backend sim,native,native-steal,bsp|all] [--schedule chunked,stealing|all] \
//!     [--sizes 65536,1048576] [--algos all|name,name] [--seed 1] [--threads N] \
//!     [--sim-cap N] [--bsp-cap N] [--fuse-compare] [--out BENCH_native.json] [--append]
//! cargo run -p qrqw-bench --release --bin perf_report -- \
//!     --scenario all [--backend …] [--sizes 4096] [--out BENCH_workloads.json]
//! ```
//!
//! * `--backend` (alias `--backends`) selects which backends run
//!   (default: all);
//! * `--scenario` (alias `--scenarios`) switches the sweep axis from
//!   algorithms to churn **scenarios** (`qrqw_bench::scenario`): each cell
//!   runs the multi-epoch churn driver (hash table with deletes, fetch&add,
//!   load balancing, live state carried across epochs) for one scenario on
//!   one backend, recording contention vs. skew.  Accepts registry names,
//!   `all`, or inline `<dist>/<i>:<d>:<l>/<epochs>` specs.  The simulator
//!   reference runs for every (scenario, n) regardless of `--backend` and
//!   the step-drift guard is armed on **every** native/BSP cell (steps,
//!   contention totals, per-epoch contention, end-state digest).  Defaults
//!   change to `--sizes 4096` and `--out BENCH_workloads.json`;
//!   `--algos`, `--append` and `--fuse-compare` are usage errors here;
//! * `--schedule` (alias `--schedules`) selects which *native* schedules
//!   run, mirroring `--backend`: `chunked` keeps only the `native` column,
//!   `stealing` only `native-steal`, `chunked,stealing` / `all` both —
//!   so one invocation compares the two scheduler configurations and the
//!   JSON carries their ratio, instead of two invocations plus hand-diffing;
//! * `--threads` forces the native/BSP thread count (otherwise
//!   `QRQW_THREADS` / host parallelism decides);
//! * `--sim-cap` / `--bsp-cap` skip simulator / BSP runs above that size
//!   (both are O(work)-per-step machines; the BSP cap defaults to 2¹⁷),
//!   recorded as `"sim": null` / `"bsp": null` in the JSON;
//! * `--append` merges this invocation into an existing `--out` file
//!   instead of overwriting it: a new run replaces the old run with the
//!   same (algorithm, n), other old runs are kept, and the header's
//!   `sizes` / `backends` become the union (with `all_valid` the AND of
//!   old and new).  That is what makes a huge-n sweep affordable on a
//!   small box — the expensive sizes are added column by column across
//!   invocations, and the committed artifact stays one file;
//! * `--fuse-compare` additionally times each native column with fused
//!   multi-pass dispatch disabled (`StepPool::with_fused(false)`), pinning
//!   the main columns to the fused path regardless of `QRQW_FUSE`; the row
//!   and the JSON then carry `native_unfused_wall_ms` /
//!   `native_steal_unfused_wall_ms` and the `fused_speedup_*` ratios
//!   (> 1 ⇒ fusion won).  Every A/B arm is timed best-of-3 with the arms
//!   interleaved — the runs are bit-identical, so the minimum wall
//!   isolates dispatch cost from host scheduler jitter, and interleaving
//!   keeps slow host drift from biasing one arm;
//! * whenever the simulator and a native column both ran, the **step-drift
//!   guard** requires the native machine's executed step count and
//!   contention total to equal the simulator's charge exactly — any drift
//!   marks the run invalid (non-zero exit), because it means the native
//!   hot path stopped executing the charged QRQW trajectory;
//! * the exit code is non-zero if **any** run fails its validator — for
//!   BSP runs that includes the Theorem 1.1 conformance check
//!   `measured_cost ≤ the simulator's independently traced QRQW time`,
//!   armed whenever the simulator ran the same configuration (pass
//!   `--backend bsp,sim` to a smoke run to arm it; the machine's own
//!   `predicted_cost` is `measured_cost · ⌈lg p⌉` by construction and is
//!   reported for the table, not used as a gate) — so CI can use a small
//!   run as a cross-backend smoke check.
//!
//! JSON shape (one object per (algorithm, n) in `"runs"`):
//!
//! ```text
//! {"algorithm": "permutation-qrqw", "n": 1048576,
//!  "native": {"wall_ms": …, "steps": …, "claim_attempts": …,
//!             "contended_claims": …, "valid": true},
//!  "native_steal": {… same fields, work-stealing schedule},
//!  "sim":    {… same fields, plus "work", "max_contention", "time_qrqw"},
//!  "bsp":    {… same fields, plus "supersteps", "messages", "max_queue",
//!             "max_h_relation", "measured_cost", "predicted_cost",
//!             "components"},
//!  "sim_over_native": 68.9, "chunked_over_stealing": 1.04}
//! ```
//!
//! `chunked_over_stealing` > 1 means the work-stealing schedule was
//! faster on that run.

use qrqw_bench::report::{write_json_file, Json};
use qrqw_bench::scenario::{scenario_row_json, workloads_report_json, Scenario, ScenarioRun};
use qrqw_bench::{Algorithm, Backend, BackendRun};
use qrqw_exec::Schedule;

struct Config {
    backends: Vec<Backend>,
    sizes: Vec<usize>,
    algos: Vec<Algorithm>,
    scenarios: Vec<Scenario>,
    seed: u64,
    threads: Option<usize>,
    sim_cap: usize,
    bsp_cap: usize,
    fuse_compare: bool,
    out: String,
    append: bool,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: perf_report [--backend sim,native,native-steal,bsp|all] \
         [--schedule chunked,stealing|all] [--sizes N,N] \
         [--algos all|name,name] [--scenario all|name,name|<dist>/<i>:<d>:<l>/<epochs>] \
         [--seed S] [--threads T] [--sim-cap N] \
         [--bsp-cap N] [--fuse-compare] [--json-out PATH] [--append]"
    );
    std::process::exit(2);
}

/// Applies a `--schedule` spec: keeps the non-native backends of `backends`
/// and replaces its native entries with the selected schedules' backends
/// (`chunked` → `native`, `stealing` → `native-steal`), preserving registry
/// order.
fn apply_schedule_spec(backends: &mut Vec<Backend>, spec: &str) -> Result<(), ()> {
    let schedules: Vec<Schedule> = if spec == "all" || spec == "both" {
        Schedule::ALL.to_vec()
    } else {
        spec.split(',')
            .map(|s| Schedule::parse(s.trim()).ok_or(()))
            .collect::<Result<Vec<_>, ()>>()?
    };
    if schedules.is_empty() {
        return Err(());
    }
    let keep_backend = |b: Backend| match b {
        Backend::Native => schedules.contains(&Schedule::Chunked),
        Backend::NativeSteal => schedules.contains(&Schedule::Stealing),
        _ => true,
    };
    // Selected schedules run even if --backend dropped their column, that
    // is the point of the flag; insert in registry order.
    for want in Backend::ALL {
        let selected = match want {
            Backend::Native => schedules.contains(&Schedule::Chunked),
            Backend::NativeSteal => schedules.contains(&Schedule::Stealing),
            _ => false,
        };
        if selected && !backends.contains(&want) {
            backends.push(want);
        }
    }
    backends.retain(|&b| keep_backend(b));
    let order = |b: &Backend| Backend::ALL.iter().position(|a| a == b).unwrap();
    backends.sort_by_key(order);
    backends.dedup();
    Ok(())
}

fn parse_args() -> Config {
    let mut cfg = Config {
        backends: Backend::ALL.to_vec(),
        sizes: vec![1 << 16, 1 << 20],
        algos: Algorithm::ALL.to_vec(),
        scenarios: Vec::new(),
        seed: 1,
        threads: None,
        sim_cap: usize::MAX,
        bsp_cap: 1 << 17,
        fuse_compare: false,
        out: "BENCH_native.json".to_string(),
        append: false,
    };
    let mut schedule_spec: Option<String> = None;
    let mut sizes_explicit = false;
    let mut out_explicit = false;
    let mut algos_explicit = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--backend" | "--backends" => {
                let spec = value();
                cfg.backends = Backend::parse_set(&spec)
                    .unwrap_or_else(|| usage(&format!("bad backend set {spec:?}")));
            }
            // Recorded here, applied after the whole command line is
            // parsed — so `--schedule stealing --backend sim,native` and
            // the reverse order mean the same thing.
            "--schedule" | "--schedules" => schedule_spec = Some(value()),
            "--scenario" | "--scenarios" => {
                let spec = value();
                cfg.scenarios = Scenario::parse_set(&spec).unwrap_or_else(|e| usage(&e));
            }
            "--sizes" => {
                sizes_explicit = true;
                cfg.sizes = value()
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| usage(&format!("bad size {s:?}")))
                    })
                    .collect();
            }
            "--algos" => {
                let spec = value();
                algos_explicit = true;
                if spec != "all" {
                    cfg.algos = spec
                        .split(',')
                        .map(|s| {
                            Algorithm::parse(s.trim())
                                .unwrap_or_else(|| usage(&format!("unknown algorithm {s:?}")))
                        })
                        .collect();
                }
            }
            "--seed" => cfg.seed = value().parse().unwrap_or_else(|_| usage("bad --seed")),
            "--threads" => {
                cfg.threads = Some(value().parse().unwrap_or_else(|_| usage("bad --threads")))
            }
            "--sim-cap" => cfg.sim_cap = value().parse().unwrap_or_else(|_| usage("bad --sim-cap")),
            "--bsp-cap" => cfg.bsp_cap = value().parse().unwrap_or_else(|_| usage("bad --bsp-cap")),
            "--fuse-compare" => cfg.fuse_compare = true,
            "--out" | "--json-out" => {
                out_explicit = true;
                cfg.out = value();
            }
            "--append" => cfg.append = true,
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if let Some(spec) = schedule_spec {
        apply_schedule_spec(&mut cfg.backends, &spec)
            .unwrap_or_else(|()| usage(&format!("bad schedule set {spec:?}")));
    }
    if !cfg.scenarios.is_empty() {
        // Scenario mode sweeps scenario × backend, not algorithm × backend:
        // the algorithm axis, --append merging and the fuse A/B are
        // per-algorithm machinery, so combining them is a usage error, not
        // something to ignore silently.
        if algos_explicit {
            usage("--scenario sweeps scenarios, not algorithms; drop --algos");
        }
        if cfg.append || cfg.fuse_compare {
            usage("--scenario does not support --append or --fuse-compare");
        }
        if !sizes_explicit {
            cfg.sizes = vec![4096];
        }
        if !out_explicit {
            cfg.out = "BENCH_workloads.json".to_string();
        }
    }
    if cfg.sizes.is_empty() || cfg.algos.is_empty() {
        usage("need at least one size and one algorithm");
    }
    cfg
}

/// Serialises one run; `valid` is what the report concluded about it —
/// the run's own output validator, *and* (for BSP runs that had a
/// simulator twin) the Theorem 1.1 cross-check — so a JSON consumer
/// filtering on `"valid"` sees conformance failures on the offending run.
fn json_run(run: &BackendRun, valid: bool) -> Json {
    let mut fields = vec![
        (
            "wall_ms".to_string(),
            Json::float(run.elapsed.as_secs_f64() * 1e3, 3),
        ),
        ("steps".to_string(), Json::Int(run.report.steps)),
        (
            "claim_attempts".to_string(),
            Json::Int(run.report.claim_attempts),
        ),
        (
            "contended_claims".to_string(),
            Json::Int(run.report.contended_claims),
        ),
        ("valid".to_string(), Json::Bool(valid)),
    ];
    if let Some(work) = run.report.work {
        fields.push(("work".to_string(), Json::Int(work)));
    }
    if let Some(mc) = run.report.max_contention {
        fields.push(("max_contention".to_string(), Json::Int(mc)));
    }
    if let Some(t) = run.report.time_qrqw {
        fields.push(("time_qrqw".to_string(), Json::Int(t)));
    }
    if let Some(b) = run.report.bsp {
        fields.push(("supersteps".to_string(), Json::Int(b.supersteps)));
        fields.push(("messages".to_string(), Json::Int(b.messages)));
        fields.push(("max_queue".to_string(), Json::Int(b.max_queue)));
        fields.push(("max_h_relation".to_string(), Json::Int(b.max_h_relation)));
        fields.push(("measured_cost".to_string(), Json::Int(b.measured_cost)));
        fields.push(("predicted_cost".to_string(), Json::Int(b.predicted_cost)));
        fields.push(("components".to_string(), Json::Int(b.components)));
    }
    Json::Obj(fields)
}

/// The (algorithm, n) identity of a run entry, for `--append` replacement.
fn run_key(entry: &Json) -> Option<(String, u64)> {
    let algo = entry.get("algorithm")?.as_str()?.to_string();
    let n = entry.get("n")?.as_u64()?;
    Some((algo, n))
}

/// Merges this invocation into a previously written report: new runs
/// replace old runs with the same (algorithm, n), everything else from the
/// old file is kept, headers become unions, `all_valid` the AND.  Returns
/// (merged runs, merged backend names, merged sizes, old all_valid).
fn merge_previous(
    old: &Json,
    new_entries: Vec<Json>,
    backend_names: &[&str],
    sizes: &[usize],
) -> (Vec<Json>, Vec<String>, Vec<u64>, bool) {
    let new_keys: Vec<Option<(String, u64)>> = new_entries.iter().map(run_key).collect();
    let mut runs: Vec<Json> = old
        .get("runs")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter(|e| {
            let k = run_key(e);
            k.is_none() || !new_keys.contains(&k)
        })
        .cloned()
        .collect();
    runs.extend(new_entries);
    // Stable presentation order, matching a single full invocation: by
    // size, then registry order (unknown algorithm names sort last).
    let algo_rank = |e: &Json| {
        e.get("algorithm")
            .and_then(Json::as_str)
            .and_then(|name| Algorithm::ALL.iter().position(|a| a.name() == name))
            .unwrap_or(usize::MAX)
    };
    runs.sort_by_key(|e| (e.get("n").and_then(Json::as_u64).unwrap_or(0), algo_rank(e)));

    let mut backends: Vec<String> = old
        .get("backends")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|b| b.as_str().map(str::to_string))
        .collect();
    for name in backend_names {
        if !backends.iter().any(|b| b == name) {
            backends.push(name.to_string());
        }
    }
    let rank = |name: &str| {
        Backend::ALL
            .iter()
            .position(|b| b.name() == name)
            .unwrap_or(usize::MAX)
    };
    backends.sort_by_key(|b| rank(b));

    let mut merged_sizes: Vec<u64> = old
        .get("sizes")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(Json::as_u64)
        .chain(sizes.iter().map(|&n| n as u64))
        .collect();
    merged_sizes.sort_unstable();
    merged_sizes.dedup();

    let old_valid = old.get("all_valid").and_then(Json::as_bool).unwrap_or(true);
    (runs, backends, merged_sizes, old_valid)
}

/// The `--scenario` sweep: scenario × size × backend, with the sim
/// reference run unconditionally per (scenario, n) — it is both the row's
/// contention-vs-skew record and the arm of the drift guard, which is
/// required on **every** native/BSP cell (a cell without a verdict would
/// read as coverage the artifact doesn't have).  Writes the
/// `BENCH_workloads.json` document and exits.
fn scenario_sweep(cfg: &Config, threads_used: usize) -> ! {
    let backend_names: Vec<&str> = cfg.backends.iter().map(|b| b.name()).collect();
    println!(
        "perf_report --scenario: {} scenarios, backends {:?}, sizes {:?}, seed {}, threads {} (host cores {})",
        cfg.scenarios.len(),
        backend_names,
        cfg.sizes,
        cfg.seed,
        threads_used,
        rayon::current_num_threads(),
    );
    let wants = |b: Backend| cfg.backends.contains(&b);
    let mut rows: Vec<Json> = Vec::new();
    let mut all_valid = true;
    for &n in &cfg.sizes {
        if n > cfg.sim_cap {
            // No reference, no drift guard, no row metadata — refuse
            // rather than emit unguarded cells.
            usage(&format!(
                "--scenario needs the sim reference at every size, but n={n} > --sim-cap {}",
                cfg.sim_cap
            ));
        }
        for scenario in &cfg.scenarios {
            let reference = scenario.run(Backend::Sim, n, cfg.seed);
            println!("{}", reference.format());
            let mut row_valid = reference.valid;
            let mut cells: Vec<(&'static str, Json)> = Vec::new();
            if wants(Backend::Sim) {
                cells.push((Backend::Sim.name(), reference.cell_json(true)));
            }
            // Drift guard, armed on every non-sim cell: the native/BSP run
            // must replay the exact charged trajectory — same steps, same
            // contention totals (global and per-epoch), same end-state
            // digest.  Any drift fails the cell, the row, and the report.
            let mut guarded = |run: ScenarioRun| {
                let drift_free = run.report.steps == reference.report.steps
                    && run.report.contended_claims == reference.report.contended_claims
                    && run.outcome.epoch_contention == reference.outcome.epoch_contention
                    && run.outcome.digest == reference.outcome.digest;
                if !drift_free {
                    eprintln!(
                        "perf_report: {} n={n}: {} drifted from the simulator's charge \
                         (steps {} vs {}, contention {} vs {})",
                        scenario.name,
                        run.backend,
                        run.report.steps,
                        reference.report.steps,
                        run.report.contended_claims,
                        reference.report.contended_claims,
                    );
                }
                println!(
                    "{}{}",
                    run.format(),
                    if drift_free { "" } else { "  DRIFT" }
                );
                row_valid &= run.valid && drift_free;
                cells.push((run.backend, run.cell_json(drift_free)));
            };
            if wants(Backend::Native) {
                guarded(scenario.run_native_with(n, cfg.seed, cfg.threads, Schedule::Chunked));
            }
            if wants(Backend::NativeSteal) {
                guarded(scenario.run_native_with(n, cfg.seed, cfg.threads, Schedule::Stealing));
            }
            if wants(Backend::Bsp) {
                if n <= cfg.bsp_cap {
                    guarded(scenario.run_bsp(n, cfg.seed, cfg.threads));
                } else {
                    eprintln!(
                        "perf_report: note: skipping bsp at n={n} (> --bsp-cap {}); \
                         raise --bsp-cap to include it",
                        cfg.bsp_cap
                    );
                }
            }
            all_valid &= row_valid;
            rows.push(scenario_row_json(scenario, &reference, cells, row_valid));
        }
    }
    let doc = workloads_report_json(
        "perf_report --scenario",
        cfg.seed,
        threads_used,
        &cfg.scenarios,
        &cfg.backends,
        &cfg.sizes,
        all_valid,
        rows,
    );
    write_json_file(&cfg.out, &doc);
    println!("wrote {}", cfg.out);
    if !all_valid {
        eprintln!("perf_report: at least one scenario cell failed validation or drifted");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn ms(run: &Option<BackendRun>) -> String {
    match run {
        Some(r) => format!("{:>9.3}", r.elapsed.as_secs_f64() * 1e3),
        None => format!("{:>9}", "-"),
    }
}

fn main() {
    let cfg = parse_args();
    let threads_used = cfg.threads.unwrap_or_else(|| {
        qrqw_exec::StepPool::from_env().threads() // same resolution the machines use
    });
    if !cfg.scenarios.is_empty() {
        scenario_sweep(&cfg, threads_used);
    }
    let backend_names: Vec<&str> = cfg.backends.iter().map(|b| b.name()).collect();
    println!(
        "perf_report: backends {:?}, sizes {:?}, {} algorithms, seed {}, threads {} (host cores {}), sim cap {}, bsp cap {}",
        backend_names,
        cfg.sizes,
        cfg.algos.len(),
        cfg.seed,
        threads_used,
        rayon::current_num_threads(),
        if cfg.sim_cap == usize::MAX {
            "none".to_string()
        } else {
            cfg.sim_cap.to_string()
        },
        if cfg.bsp_cap == usize::MAX {
            "none".to_string()
        } else {
            cfg.bsp_cap.to_string()
        },
    );

    let wants = |b: Backend| cfg.backends.contains(&b);
    let mut entries: Vec<Json> = Vec::new();
    let mut all_valid = true;
    for &n in &cfg.sizes {
        for &algo in &cfg.algos {
            // Simulator first, matching `backend_bench` ordering: the other
            // machines then allocate against a warmed process heap rather
            // than only the later ones.
            let sim = (wants(Backend::Sim) && n <= cfg.sim_cap)
                .then(|| algo.run(Backend::Sim, n, cfg.seed));
            // Both native columns pin their schedule explicitly: the
            // report's chunked-vs-stealing ratio must stay meaningful even
            // when QRQW_SCHEDULE=stealing is set in the environment (the
            // env-following run_native would then run stolen chunks in the
            // "native" column too).
            // Under --fuse-compare the pool is built explicitly so both
            // arms are pinned (fused vs. unfused) no matter what QRQW_FUSE
            // says; otherwise the env-following constructors decide.
            let pinned_pool = |schedule: Schedule, fused: bool| {
                match cfg.threads {
                    Some(t) => qrqw_exec::StepPool::with_threads(t),
                    None => qrqw_exec::StepPool::from_env(),
                }
                .with_schedule(schedule)
                .with_fused(fused)
            };
            // Each A/B arm is measured best-of-3 with the arms interleaved
            // (F U F U F U): the runs are bit-identical (outputs, steps,
            // contention), so the minimum wall is the cleanest estimate of
            // the dispatch cost — scheduler jitter on a shared host only
            // ever adds time — and interleaving makes host drift (CPU
            // frequency, cache and allocator state after the long sim run
            // just above) bias both minima equally, where back-to-back
            // blocks would hand whichever arm runs second a warmed process.
            let ab_best = |schedule: Schedule| {
                let mut best: [Option<BackendRun>; 2] = [None, None];
                for _ in 0..3 {
                    for (slot, fused) in [(0, true), (1, false)] {
                        let r = algo.run_native_pool(n, cfg.seed, pinned_pool(schedule, fused));
                        if best[slot].as_ref().is_none_or(|b| r.elapsed < b.elapsed) {
                            best[slot] = Some(r);
                        }
                    }
                }
                let [fused, unfused] = best;
                (
                    fused.expect("ab_best ran the fused arm"),
                    unfused.expect("ab_best ran the unfused arm"),
                )
            };
            let (native, native_unfused) = if wants(Backend::Native) {
                if cfg.fuse_compare {
                    let (f, u) = ab_best(Schedule::Chunked);
                    (Some(f), Some(u))
                } else {
                    (
                        Some(algo.run_native_with(n, cfg.seed, cfg.threads, Schedule::Chunked)),
                        None,
                    )
                }
            } else {
                (None, None)
            };
            let (steal, steal_unfused) = if wants(Backend::NativeSteal) {
                if cfg.fuse_compare {
                    let (f, u) = ab_best(Schedule::Stealing);
                    (Some(f), Some(u))
                } else {
                    (Some(algo.run_native_steal(n, cfg.seed, cfg.threads)), None)
                }
            } else {
                (None, None)
            };
            let bsp = (wants(Backend::Bsp) && n <= cfg.bsp_cap)
                .then(|| algo.run_bsp(n, cfg.seed, cfg.threads));
            if wants(Backend::Bsp) && n > cfg.bsp_cap {
                // Never let an explicitly requested backend be skipped
                // silently — a "-" row plus a stderr note, so a green
                // report cannot be mistaken for BSP coverage it lacks.
                eprintln!(
                    "perf_report: note: skipping bsp at n={n} (> --bsp-cap {}); \
                     raise --bsp-cap to include it",
                    cfg.bsp_cap
                );
            }
            // Cross-machine Theorem 1.1 conformance: the BSP machine's own
            // measured/predicted pair coincides by construction (the router
            // realizes each step at its formula charge), so the genuine
            // check is against the simulator's *independently* traced QRQW
            // time for the same seed whenever both backends ran.  The
            // verdict is attached to the BSP run's own validity so the JSON
            // pinpoints the offending (algorithm, n).
            let cross_ok = match (&sim, &bsp) {
                (Some(s), Some(b)) => {
                    let charged = s.report.time_qrqw.unwrap_or(0);
                    let measured = b.report.bsp.map_or(0, |c| c.measured_cost);
                    if measured > charged {
                        eprintln!(
                            "perf_report: {} n={n}: bsp measured cost {measured} exceeds the \
                             simulator's charged QRQW time {charged}",
                            algo.name(),
                        );
                    }
                    measured <= charged
                }
                _ => true,
            };
            // Step-drift guard: a native machine executes the exact charged
            // step sequence of the simulator's trajectory, so whenever both
            // ran, any difference in executed steps or contention totals
            // means the native hot path has drifted off the QRQW charge —
            // fail the run, don't average it into a green report.
            let no_drift = |column: &str, run: &Option<BackendRun>| match (&sim, run) {
                (Some(s), Some(r)) => {
                    let ok = r.report.steps == s.report.steps
                        && r.report.contended_claims == s.report.contended_claims;
                    if !ok {
                        eprintln!(
                            "perf_report: {} n={n}: {column} executed (steps {}, contention {}) \
                             but the simulator charged (steps {}, contention {})",
                            algo.name(),
                            r.report.steps,
                            r.report.contended_claims,
                            s.report.steps,
                            s.report.contended_claims,
                        );
                    }
                    ok
                }
                _ => true,
            };
            let sim_ok = sim.as_ref().is_none_or(|r| r.valid);
            let native_ok = native.as_ref().is_none_or(|r| r.valid) && no_drift("native", &native);
            let steal_ok =
                steal.as_ref().is_none_or(|r| r.valid) && no_drift("native-steal", &steal);
            let native_unfused_ok = native_unfused.as_ref().is_none_or(|r| r.valid)
                && no_drift("native (unfused)", &native_unfused);
            let steal_unfused_ok = steal_unfused.as_ref().is_none_or(|r| r.valid)
                && no_drift("native-steal (unfused)", &steal_unfused);
            let bsp_ok = bsp.as_ref().is_none_or(|r| r.valid) && cross_ok;
            all_valid &=
                sim_ok && native_ok && steal_ok && native_unfused_ok && steal_unfused_ok && bsp_ok;
            let ratio = match (&sim, &native) {
                (Some(s), Some(nat)) => {
                    Some(s.elapsed.as_secs_f64() / nat.elapsed.as_secs_f64().max(f64::EPSILON))
                }
                _ => None,
            };
            let ratio_str = ratio.map_or(format!("{:>8}", "-"), |r| format!("{r:>7.1}x"));
            // The scheduler comparison the --schedule flag exists for:
            // chunked wall over stealing wall (> 1 ⇒ stealing won).
            let sched_ratio = match (&native, &steal) {
                (Some(c), Some(s)) => {
                    Some(c.elapsed.as_secs_f64() / s.elapsed.as_secs_f64().max(f64::EPSILON))
                }
                _ => None,
            };
            let sched_ratio_str =
                sched_ratio.map_or(format!("{:>8}", "-"), |r| format!("{r:>7.2}x"));
            let bsp_str = match &bsp {
                Some(r) => {
                    let b = r.report.bsp.expect("bsp run carries its cost section");
                    format!(
                        "measured {:>8} predicted {:>9} ({:>4.1}x headroom)",
                        b.measured_cost,
                        b.predicted_cost,
                        b.headroom().unwrap_or(f64::NAN),
                    )
                }
                None => "-".to_string(),
            };
            // Unfused wall over fused wall: > 1 means fusion won.
            let fuse_speedup =
                |fused: &Option<BackendRun>, unfused: &Option<BackendRun>| match (fused, unfused) {
                    (Some(f), Some(u)) => {
                        Some(u.elapsed.as_secs_f64() / f.elapsed.as_secs_f64().max(f64::EPSILON))
                    }
                    _ => None,
                };
            let native_speedup = fuse_speedup(&native, &native_unfused);
            let steal_speedup = fuse_speedup(&steal, &steal_unfused);
            let fuse_str = if cfg.fuse_compare {
                let fmt = |s: Option<f64>| s.map_or("-".to_string(), |r| format!("{r:.2}x"));
                format!(
                    "  fuse speedup native {} steal {}",
                    fmt(native_speedup),
                    fmt(steal_speedup)
                )
            } else {
                String::new()
            };
            let valid =
                sim_ok && native_ok && steal_ok && native_unfused_ok && steal_unfused_ok && bsp_ok;
            println!(
                "{:<26} n={:<8} native {} ms  steal {} ms  chunked/steal {}  sim {} ms  sim/native {}  bsp {}  valid={}{}",
                algo.name(),
                n,
                ms(&native),
                ms(&steal),
                sched_ratio_str,
                ms(&sim),
                ratio_str,
                bsp_str,
                valid,
                fuse_str,
            );
            let opt_json = |r: &Option<BackendRun>, ok: bool| {
                r.as_ref().map_or(Json::Null, |r| json_run(r, ok))
            };
            let mut fields = vec![
                ("algorithm", Json::str(algo.name())),
                ("n", Json::Int(n as u64)),
                ("native", opt_json(&native, native_ok)),
                ("native_steal", opt_json(&steal, steal_ok)),
                ("sim", opt_json(&sim, sim_ok)),
                ("bsp", opt_json(&bsp, bsp_ok)),
                (
                    "sim_over_native",
                    ratio.map_or(Json::Null, |r| Json::float(r, 2)),
                ),
                (
                    "chunked_over_stealing",
                    sched_ratio.map_or(Json::Null, |r| Json::float(r, 3)),
                ),
            ];
            if cfg.fuse_compare {
                let wall = |r: &Option<BackendRun>| match r {
                    Some(r) => Json::float(r.elapsed.as_secs_f64() * 1e3, 3),
                    None => Json::Null,
                };
                fields.push(("native_unfused_wall_ms", wall(&native_unfused)));
                fields.push(("native_steal_unfused_wall_ms", wall(&steal_unfused)));
                fields.push((
                    "fused_speedup_native",
                    native_speedup.map_or(Json::Null, |r| Json::float(r, 3)),
                ));
                fields.push((
                    "fused_speedup_steal",
                    steal_speedup.map_or(Json::Null, |r| Json::float(r, 3)),
                ));
            }
            entries.push(Json::obj(fields));
        }
    }

    let previous = cfg
        .append
        .then(|| std::fs::read_to_string(&cfg.out).ok())
        .flatten()
        .map(|text| {
            Json::parse(&text).unwrap_or_else(|e| {
                eprintln!("perf_report: cannot --append to {}: {e}", cfg.out);
                std::process::exit(2);
            })
        });
    let (runs, backends, sizes, doc_valid) = match &previous {
        Some(old) => {
            let (runs, backends, sizes, old_valid) =
                merge_previous(old, entries, &backend_names, &cfg.sizes);
            (runs, backends, sizes, old_valid && all_valid)
        }
        None => (
            entries,
            backend_names.iter().map(|n| n.to_string()).collect(),
            cfg.sizes.iter().map(|&n| n as u64).collect(),
            all_valid,
        ),
    };
    let doc = Json::obj(vec![
        ("generated_by", Json::str("perf_report")),
        (
            "backends",
            Json::Arr(backends.iter().map(|n| Json::str(n)).collect()),
        ),
        ("seed", Json::Int(cfg.seed)),
        ("threads", Json::Int(threads_used as u64)),
        ("host_cores", Json::Int(rayon::current_num_threads() as u64)),
        (
            "sizes",
            Json::Arr(sizes.iter().map(|&n| Json::Int(n)).collect()),
        ),
        ("all_valid", Json::Bool(doc_valid)),
        ("runs", Json::Arr(runs)),
    ]);
    write_json_file(&cfg.out, &doc);
    println!(
        "wrote {}{}",
        cfg.out,
        if previous.is_some() {
            " (merged into previous report)"
        } else {
            ""
        }
    );

    if !all_valid {
        eprintln!("perf_report: at least one run failed its validator or the Theorem 1.1 bound");
        std::process::exit(1);
    }
}
