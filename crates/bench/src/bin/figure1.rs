//! Regenerates Figure 1: a cyclic and a non-cyclic permutation with their
//! cycle representations, plus fresh samples from the two cyclic-permutation
//! generators of Section 5.

use qrqw_core::{
    cycle_representation, is_cyclic, random_cyclic_permutation_efficient,
    random_cyclic_permutation_fast,
};
use qrqw_sim::Pram;

fn show(label: &str, perm: &[u64]) {
    let cycles = cycle_representation(perm);
    let cycles_str: Vec<String> = cycles
        .iter()
        .map(|c| {
            let inner: Vec<String> = c.iter().map(|x| (x + 1).to_string()).collect();
            format!("({})", inner.join(" "))
        })
        .collect();
    let mapping: Vec<String> = perm.iter().map(|x| (x + 1).to_string()).collect();
    println!("{label}");
    println!(
        "  i      : {}",
        (1..=perm.len())
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("  pi(i)  : {}", mapping.join(" "));
    println!("  cycles : {}", cycles_str.join(" "));
    println!("  cyclic : {}\n", is_cyclic(perm));
}

fn main() {
    println!("Figure 1 reproduction — cyclic vs non-cyclic permutations\n");

    // The 5-element example of Section 5.1: dart positions 4 5 2 1 3 in a
    // 10-cell array, read with the two compression techniques.
    // Compaction order (non-cyclic permutation phi):
    let phi: Vec<u64> = vec![3, 4, 1, 0, 2];
    // Cycle-linking order (cyclic permutation pi): every item points to the
    // item occupying the next claimed cell, closing a single cycle.
    let pi: Vec<u64> = vec![2, 3, 4, 0, 1];

    show(
        "pi — cyclic permutation (successor linking, left side of Fig. 1)",
        &pi,
    );
    show(
        "phi — non-cyclic permutation (prefix-sums compaction, right side of Fig. 1)",
        &phi,
    );

    println!("Fresh samples from the two QRQW cyclic-permutation algorithms (n = 10):\n");
    let mut pram = Pram::with_seed(4, 42);
    let fast = random_cyclic_permutation_fast(&mut pram, 10);
    show(
        "Theorem 5.2 (fast, O(sqrt(lg n)) time) sample",
        &fast.successor,
    );
    let mut pram = Pram::with_seed(4, 43);
    let eff = random_cyclic_permutation_efficient(&mut pram, 10);
    show("Theorem 5.3 (work-optimal) sample", &eff.successor);
}
