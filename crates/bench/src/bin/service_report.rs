//! `service_report` — the committed `BENCH_service.json` sweep.
//!
//! Sweeps the batching policy's size cap over {1, 64, 1024, 8192} for each
//! of the three service workloads (hash / counter / task) and records, per
//! (workload, batch cap): sustained requests/second, p50/p99/p999
//! submit→response latency, mean realized batch size, and per-batch
//! contention — the service-level throughput/latency trade the batching
//! policy exists to navigate.  Every run is validated against the final
//! machine state; `"all_valid"` gates CI.
//!
//! Clients pipeline `ceil(batch_max / clients)` requests each so the large
//! caps can actually fill (a strict closed loop with 4 clients can never
//! form a batch of more than 4), and each client submits at least twice
//! its window so every configuration closes multiple full batches.
//!
//! Usage:
//!
//! ```text
//! cargo run -p qrqw-bench --release --bin service_report            # full sweep
//! cargo run -p qrqw-bench --release --bin service_report -- \
//!     [--clients N] [--requests N] [--batch-sizes 1,64,1024,8192] \
//!     [--workloads hash,counter,task,churn] [--key-dist uniform|zipf:<s>|power-law|all-same|adversarial] \
//!     [--threads T] [--seed S] [--quick] [--json-out BENCH_service.json]
//! ```
//!
//! `--quick` shrinks the per-run load for CI smoke use; the committed
//! artifact is generated with the defaults.

use std::time::Duration;

use qrqw_bench::report::write_json_file;
use qrqw_bench::service::{
    run_service_load, service_report_json, KeyDist, LoadSpec, ServiceWorkload,
};
use qrqw_serve::{BatchPolicy, ServiceConfig};

struct Cli {
    clients: usize,
    requests: usize,
    batch_sizes: Vec<usize>,
    workloads: Vec<ServiceWorkload>,
    key_dist: KeyDist,
    threads: Option<usize>,
    seed: u64,
    quick: bool,
    out: String,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: service_report [--clients N] [--requests N] [--batch-sizes N,N] \
         [--workloads hash,counter,task,churn] [--key-dist uniform|zipf:<s>|power-law|all-same|adversarial] [--threads T] \
         [--seed S] [--quick] [--json-out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        clients: 4,
        requests: 4000,
        batch_sizes: vec![1, 64, 1024, 8192],
        workloads: ServiceWorkload::ALL.to_vec(),
        key_dist: KeyDist::Uniform,
        threads: None,
        seed: 1,
        quick: false,
        out: "BENCH_service.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--clients" => cli.clients = value().parse().unwrap_or_else(|_| usage("bad --clients")),
            "--requests" => {
                cli.requests = value().parse().unwrap_or_else(|_| usage("bad --requests"))
            }
            "--batch-sizes" => {
                cli.batch_sizes = value()
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| usage(&format!("bad batch size {s:?}")))
                    })
                    .collect();
            }
            "--workloads" => {
                cli.workloads = value()
                    .split(',')
                    .map(|s| {
                        ServiceWorkload::parse(s.trim())
                            .unwrap_or_else(|| usage(&format!("unknown workload {s:?}")))
                    })
                    .collect();
            }
            "--key-dist" => {
                let spec = value();
                cli.key_dist = KeyDist::parse(&spec).unwrap_or_else(|e| usage(&e));
            }
            "--threads" => {
                cli.threads = Some(value().parse().unwrap_or_else(|_| usage("bad --threads")))
            }
            "--seed" => cli.seed = value().parse().unwrap_or_else(|_| usage("bad --seed")),
            "--quick" => cli.quick = true,
            "--json-out" | "--out" => cli.out = value(),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if cli.batch_sizes.is_empty() || cli.workloads.is_empty() {
        usage("need at least one batch size and one workload");
    }
    cli
}

fn main() {
    let cli = parse_args();
    let threads = cli
        .threads
        .unwrap_or_else(|| qrqw_exec::StepPool::from_env().threads());
    println!(
        "service_report: {} clients, batch sizes {:?}, workloads {:?}, key-dist {}, seed {}, \
         threads {}{}",
        cli.clients,
        cli.batch_sizes,
        cli.workloads.iter().map(|w| w.name()).collect::<Vec<_>>(),
        cli.key_dist.name(),
        cli.seed,
        threads,
        if cli.quick { " [quick]" } else { "" },
    );
    let mut runs = Vec::new();
    for &batch_max in &cli.batch_sizes {
        for &workload in &cli.workloads {
            let window = batch_max.div_ceil(cli.clients.max(1)).max(1);
            let base = if cli.quick {
                cli.requests.min(300)
            } else {
                cli.requests
            };
            let spec = LoadSpec {
                clients: cli.clients,
                requests_per_client: base.max(2 * window),
                window,
                rate: 0.0,
                workload,
                key_dist: cli.key_dist,
                keyspace: 4096,
                seed: cli.seed,
            };
            let policy = BatchPolicy::with_max_batch(batch_max).linger(Duration::from_micros(100));
            let config = ServiceConfig {
                seed: cli.seed,
                ..ServiceConfig::default()
            };
            let summary = run_service_load(config, policy, cli.threads, &spec);
            summary.print_row();
            for finding in &summary.validation_errors {
                eprintln!("service_report: validator: {finding}");
            }
            runs.push(summary);
        }
    }
    let all_valid = runs.iter().all(|r| r.valid() && r.errors == 0);
    let doc = service_report_json("service_report", cli.seed, threads, &runs);
    write_json_file(&cli.out, &doc);
    println!("wrote {}", cli.out);
    if !all_valid {
        eprintln!("service_report: at least one run failed validation");
        std::process::exit(1);
    }
}
