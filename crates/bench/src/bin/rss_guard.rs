//! `rss_guard` — asserts that arena growth does not spike resident memory.
//!
//! The sharded arena's whole point is that `NativeMachine::grow` appends
//! shards without copying live cells, so peak RSS during a staged growth
//! stays at the steady-state footprint.  The old monolithic `Vec` realloc
//! briefly held old + new copies: a doubling growth showed a peak around
//! 1.5× the final footprint.  This probe measures exactly that, from the
//! kernel's own accounting:
//!
//! 1. read `VmRSS` / `VmHWM` from `/proc/self/status` before any arena
//!    exists;
//! 2. grow a [`NativeMachine`] to `--cells` in `--stages` doublings (every
//!    fresh cell is written — the EMPTY fill — so pages are committed);
//! 3. re-read, and compare the growth's peak delta against its steady
//!    delta.  A ratio above `--max-ratio` (default 1.10) fails the run.
//!
//! Usage (CI runs the default 2^24 cells = 128 MiB):
//!
//! ```text
//! cargo run --release -p qrqw-bench --bin rss_guard -- \
//!     [--cells 16777216] [--stages 8] [--max-ratio 1.10] [--threads N]
//! ```
//!
//! On systems without `/proc/self/status` (or without the fields) the
//! probe prints a note and exits 0 — it guards Linux CI, not every host.

use qrqw_exec::NativeMachine;
use qrqw_sim::Machine;

struct Config {
    cells: usize,
    stages: u32,
    max_ratio: f64,
    threads: Option<usize>,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: rss_guard [--cells N] [--stages K] [--max-ratio R] [--threads T]");
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config {
        cells: 1 << 24,
        stages: 8,
        max_ratio: 1.10,
        threads: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--cells" => cfg.cells = value().parse().unwrap_or_else(|_| usage("bad --cells")),
            "--stages" => cfg.stages = value().parse().unwrap_or_else(|_| usage("bad --stages")),
            "--max-ratio" => {
                cfg.max_ratio = value().parse().unwrap_or_else(|_| usage("bad --max-ratio"))
            }
            "--threads" => {
                cfg.threads = Some(value().parse().unwrap_or_else(|_| usage("bad --threads")))
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if cfg.cells == 0 || cfg.stages == 0 {
        usage("--cells and --stages must be positive");
    }
    cfg
}

/// Reads one `kB` field (e.g. `VmHWM`) from `/proc/self/status`.
fn status_kb(text: &str, field: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.starts_with(field))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn snapshot() -> Option<(u64, u64)> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    Some((status_kb(&text, "VmRSS:")?, status_kb(&text, "VmHWM:")?))
}

fn main() {
    let cfg = parse_args();
    let Some((rss0, hwm0)) = snapshot() else {
        println!("rss_guard: /proc/self/status unavailable; skipping");
        return;
    };
    if hwm0 > rss0 + (rss0 / 4) {
        // Startup already spiked well above the current footprint; the
        // growth peak would hide under it and the guard would pass
        // vacuously.  This process does nothing before the probe, so
        // treat it as a broken measurement rather than a green one.
        eprintln!(
            "rss_guard: pre-growth high-water {hwm0} kB dwarfs RSS {rss0} kB; cannot measure"
        );
        std::process::exit(2);
    }

    // Staged doubling growth: the worst case for a realloc-based arena
    // (every stage copies everything so far), a no-op pattern for the
    // sharded one.
    let first = (cfg.cells >> cfg.stages).max(1);
    let mut m = match cfg.threads {
        Some(t) => NativeMachine::with_threads(first, 0, t),
        None => NativeMachine::with_seed(first, 0),
    };
    let mut size = first;
    while size < cfg.cells {
        size = (size * 2).min(cfg.cells);
        m.ensure_memory(size);
    }
    assert_eq!(m.arena_stats().cells, cfg.cells);

    let Some((rss1, hwm1)) = snapshot() else {
        println!("rss_guard: /proc/self/status vanished mid-run; skipping");
        return;
    };
    let steady = rss1.saturating_sub(rss0);
    let peak = hwm1.saturating_sub(rss0).max(steady);
    if steady == 0 {
        eprintln!(
            "rss_guard: growth of {} cells left RSS unchanged; cannot measure",
            cfg.cells
        );
        std::process::exit(2);
    }
    let ratio = peak as f64 / steady as f64;
    println!(
        "rss_guard: {} cells in {} stages ({} shards): steady +{steady} kB, peak +{peak} kB, \
         peak/steady {ratio:.3} (limit {:.3})",
        cfg.cells,
        cfg.stages,
        m.arena_stats().shards,
        cfg.max_ratio,
    );
    if ratio > cfg.max_ratio {
        eprintln!(
            "rss_guard: FAIL — growth transiently used {ratio:.3}x its steady footprint \
             (limit {:.3}); the arena is copying live cells again",
            cfg.max_ratio
        );
        std::process::exit(1);
    }
    println!("rss_guard: OK — growth appends without copying");
}
