//! Regenerates Table II: the MasPar MP-1 random-permutation experiment.
//!
//! The original table reports the average wall-clock time of 1000 random
//! permutations of `[1..p]` for three algorithms at `p = 16,384` and
//! `p = 1,024`.  Here the three algorithms run natively on this machine's
//! cores (rayon + atomics stand in for the MasPar's processors and router),
//! and the same algorithms are also run on the PRAM simulator so the
//! model-predicted ordering of Section 5.2's "asymptotic analysis of the
//! implemented algorithms" paragraph can be printed next to the measured
//! wall clock.
//!
//! Usage: `cargo run -p qrqw-bench --release --bin table2 [repetitions]`

use std::time::Instant;

use qrqw_core::{
    random_permutation_dart_scan, random_permutation_qrqw, random_permutation_sorting_erew,
};
use qrqw_exec::{dart_qrqw_permutation, dart_scan_permutation, sorting_based_permutation};
use qrqw_sim::{CostModel, Pram};

fn time_native(label: &str, n: usize, reps: u64, f: impl Fn(u64) -> qrqw_exec::NativeOutcome) {
    // warm-up
    let _ = f(0);
    let start = Instant::now();
    let mut contended = 0u64;
    for r in 0..reps {
        contended += f(r + 1).contended_attempts;
    }
    let avg_ms = start.elapsed().as_secs_f64() * 1000.0 / reps as f64;
    println!(
        "  {label:<28} n={n:<6} avg {avg_ms:>8.3} ms   (avg contended CAS attempts {:>8.1})",
        contended as f64 / reps as f64
    );
}

fn simulated_times(n: usize) -> Vec<(&'static str, u64, u64)> {
    let mut out = Vec::new();
    let mut p = Pram::with_seed(4, 1);
    let _ = random_permutation_sorting_erew(&mut p, n);
    out.push((
        "sorting-based (erew)",
        p.trace().time(CostModel::SimdQrqw),
        p.trace().time(CostModel::ScanSimdQrqw),
    ));
    let mut p = Pram::with_seed(4, 1);
    let _ = random_permutation_dart_scan(&mut p, n);
    out.push((
        "dart-throwing with scans",
        p.trace().time(CostModel::SimdQrqw),
        p.trace().time(CostModel::ScanSimdQrqw),
    ));
    let mut p = Pram::with_seed(4, 1);
    let _ = random_permutation_qrqw(&mut p, n);
    out.push((
        "dart-throwing for qrqw",
        p.trace().time(CostModel::SimdQrqw),
        p.trace().time(CostModel::ScanSimdQrqw),
    ));
    out
}

fn main() {
    let reps: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("repetitions must be an integer"))
        .unwrap_or(100);

    println!("Table II reproduction — random permutation on {} hardware threads", rayon::current_num_threads());
    println!("(paper: MasPar MP-1, 1000 repetitions; here: {reps} repetitions per cell)\n");

    for &n in &[16_384usize, 1_024] {
        println!("n = p = {n}  (native wall clock)");
        time_native("sorting-based (erew)", n, reps, |seed| {
            sorting_based_permutation(n, seed)
        });
        time_native("dart-throwing with scans", n, reps, |seed| {
            dart_scan_permutation(n, seed)
        });
        time_native("dart-throwing for qrqw", n, reps, |seed| {
            dart_qrqw_permutation(n, seed)
        });
        println!();
    }

    println!("Model-predicted ordering (simulated, n = 1,024 and n = 4,096):");
    println!("  {:<28} {:>14} {:>18}", "algorithm", "simd-qrqw time", "scan-simd-qrqw time");
    for &n in &[1_024usize, 4_096] {
        for (label, t_simd, t_scan) in simulated_times(n) {
            println!("  {label:<28} {t_simd:>10} (n={n}) {t_scan:>12} (n={n})");
        }
    }
    println!("\nPaper's Table II (ms): sorting-based 11.25 / 10.01, dart+scan 8.02 / 6.05, qrqw dart 7.57 / 2.88.");
    println!("The claim to reproduce is the ordering (qrqw dart < dart+scan < sorting-based), not the absolute numbers.");
}
