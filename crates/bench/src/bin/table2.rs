//! Regenerates Table II: the MasPar MP-1 random-permutation experiment.
//!
//! The original table reports the average wall-clock time of 1000 random
//! permutations of `[1..p]` for three algorithms at `p = 16,384` and
//! `p = 1,024`.  Here the same three algorithm *sources* (crate `qrqw-core`,
//! written against the `Machine` backend API) run natively on this machine's
//! cores through `qrqw_exec::NativeMachine`, and on the PRAM simulator so
//! the model-predicted ordering of Section 5.2's "asymptotic analysis of the
//! implemented algorithms" paragraph can be printed next to the measured
//! wall clock.
//!
//! Usage: `cargo run -p qrqw-bench --release --bin table2 [repetitions]`

use qrqw_bench::{Algorithm, Backend};
use qrqw_core::{
    random_permutation_dart_scan, random_permutation_qrqw, random_permutation_sorting_erew,
};
use qrqw_sim::{CostModel, Pram};

const TABLE2_ALGOS: [Algorithm; 3] = [
    Algorithm::PermutationSortingErew,
    Algorithm::PermutationDartScan,
    Algorithm::PermutationQrqw,
];

fn time_native(algo: Algorithm, n: usize, reps: u64) {
    let _ = algo.run(Backend::Native, n, 0); // warm-up
    let mut total_ms = 0.0;
    let mut contended = 0u64;
    for r in 0..reps {
        let run = algo.run(Backend::Native, n, r + 1);
        assert!(run.valid, "{} produced an invalid output", algo.name());
        total_ms += run.elapsed.as_secs_f64() * 1000.0;
        contended += run.report.contended_claims;
    }
    println!(
        "  {:<28} n={n:<6} avg {:>8.3} ms   (avg contended claims {:>8.1})",
        algo.name(),
        total_ms / reps as f64,
        contended as f64 / reps as f64
    );
}

fn simulated_times(n: usize) -> Vec<(&'static str, u64, u64)> {
    let mut out = Vec::new();
    let mut p = Pram::with_seed(4, 1);
    let _ = random_permutation_sorting_erew(&mut p, n);
    out.push((
        "sorting-based (erew)",
        p.trace().time(CostModel::SimdQrqw),
        p.trace().time(CostModel::ScanSimdQrqw),
    ));
    let mut p = Pram::with_seed(4, 1);
    let _ = random_permutation_dart_scan(&mut p, n);
    out.push((
        "dart-throwing with scans",
        p.trace().time(CostModel::SimdQrqw),
        p.trace().time(CostModel::ScanSimdQrqw),
    ));
    let mut p = Pram::with_seed(4, 1);
    let _ = random_permutation_qrqw(&mut p, n);
    out.push((
        "dart-throwing for qrqw",
        p.trace().time(CostModel::SimdQrqw),
        p.trace().time(CostModel::ScanSimdQrqw),
    ));
    out
}

fn main() {
    let reps: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("repetitions must be an integer"))
        .unwrap_or(100);

    println!(
        "Table II reproduction — random permutation on {} hardware threads",
        rayon::current_num_threads()
    );
    println!("(paper: MasPar MP-1, 1000 repetitions; here: {reps} repetitions per cell)");
    println!("(one algorithm source per row, executed through the Machine backend API)\n");

    for &n in &[16_384usize, 1_024] {
        println!("n = p = {n}  (native wall clock)");
        for algo in TABLE2_ALGOS {
            time_native(algo, n, reps);
        }
        println!();
    }

    println!("Model-predicted ordering (simulated, n = 1,024 and n = 4,096):");
    println!(
        "  {:<28} {:>14} {:>18}",
        "algorithm", "simd-qrqw time", "scan-simd-qrqw time"
    );
    for &n in &[1_024usize, 4_096] {
        for (label, t_simd, t_scan) in simulated_times(n) {
            println!("  {label:<28} {t_simd:>10} (n={n}) {t_scan:>12} (n={n})");
        }
    }
    println!("\nPaper's Table II (ms): sorting-based 11.25 / 10.01, dart+scan 8.02 / 6.05, qrqw dart 7.57 / 2.88.");
    println!("The claim to reproduce is the ordering (qrqw dart < dart+scan < sorting-based), not the absolute numbers.");
}
