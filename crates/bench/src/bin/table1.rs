//! Regenerates Table I: the paper's five problems, QRQW algorithm vs. the
//! best practical EREW algorithm, measured on the PRAM simulator.
//!
//! For each problem the harness prints one row per (algorithm, n) pair with
//! the simulated time under the QRQW / CRQW / EREW / CRCW metrics, the
//! work, and the maximum per-step contention.  The paper's claim is about
//! the *shape*: the QRQW algorithms stay work-optimal (linear work) while
//! their time beats the EREW competitors, which either pay a sorting-based
//! `Θ(lg² n)` or lose work-optimality.

use qrqw_bench::{print_rows, MeasuredRow, TABLE1_SIZES};
use qrqw_core::{
    light_multiple_compaction, load_balance_erew, load_balance_qrqw, multiple_compaction,
    random_permutation_qrqw, random_permutation_sorting_erew, sort_uniform_keys, QrqwHashTable,
};
use qrqw_prims::bitonic_sort;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let sizes: Vec<usize> = std::env::args()
        .nth(1)
        .map(|s| vec![s.parse().expect("n must be an integer")])
        .unwrap_or_else(|| TABLE1_SIZES.to_vec());

    println!("Table I reproduction — QRQW vs EREW algorithms (simulated PRAM metrics)");

    // --- Random permutation -------------------------------------------------
    let mut rows = Vec::new();
    for &n in &sizes {
        rows.push(MeasuredRow::measure("perm/qrqw dart-throwing", n, 1, |p| {
            let out = random_permutation_qrqw(p, n);
            assert!(qrqw_core::is_permutation(&out.order));
        }));
        rows.push(MeasuredRow::measure("perm/erew sorting-based", n, 1, |p| {
            let out = random_permutation_sorting_erew(p, n);
            assert!(qrqw_core::is_permutation(&out.order));
        }));
    }
    print_rows("Random permutation", &rows);

    // --- Multiple compaction -----------------------------------------------
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut rng = SmallRng::seed_from_u64(7);
        // few, large sets so the heavy (dart-throwing) path is exercised
        let num_labels = (n / 2048).max(2);
        let labels: Vec<u64> = (0..n)
            .map(|_| rng.gen_range(0..num_labels as u64))
            .collect();
        let mut counts = vec![0u64; num_labels];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        let (l1, c1) = (labels.clone(), counts.clone());
        rows.push(MeasuredRow::measure(
            "mcompact/qrqw heavy+light",
            n,
            2,
            move |p| {
                let r = multiple_compaction(p, &l1, &c1);
                assert!(!r.failed);
            },
        ));
        rows.push(MeasuredRow::measure(
            "mcompact/erew int-sort reduction",
            n,
            2,
            move |p| {
                let r = light_multiple_compaction(p, &labels, &counts);
                assert!(!r.failed);
            },
        ));
    }
    print_rows("Multiple compaction", &rows);

    // --- Sorting from U(0,1) -------------------------------------------------
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut rng = SmallRng::seed_from_u64(11);
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..(1u64 << 31))).collect();
        let k1 = keys.clone();
        rows.push(MeasuredRow::measure(
            "sortU01/qrqw distributive",
            n,
            3,
            move |p| {
                let out = sort_uniform_keys(p, &k1);
                assert!(out.windows(2).all(|w| w[0] <= w[1]));
            },
        ));
        rows.push(MeasuredRow::measure(
            "sortU01/erew bitonic",
            n,
            3,
            move |p| {
                let base = p.alloc(n);
                p.memory_mut().load(base, &keys);
                bitonic_sort(p, base, n);
            },
        ));
    }
    print_rows("Sorting from U(0,1)", &rows);

    // --- Parallel hashing -----------------------------------------------------
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut set = std::collections::HashSet::new();
        while set.len() < n {
            set.insert(rng.gen_range(0..(1u64 << 31) - 1));
        }
        let keys: Vec<u64> = set.into_iter().collect();
        let k1 = keys.clone();
        rows.push(MeasuredRow::measure(
            "hashing/qrqw build+lookup",
            n,
            4,
            move |p| {
                let table = QrqwHashTable::build(p, &k1);
                let hits = table.lookup_batch(p, &k1);
                assert!(hits.iter().all(|&h| h));
            },
        ));
        rows.push(MeasuredRow::measure(
            "hashing/sort+search dictionary",
            n,
            4,
            move |p| {
                let base = p.alloc(n);
                p.memory_mut().load(base, &keys);
                bitonic_sort(p, base, n);
                // membership by binary search (concurrent reads; the practical
                // zero-preprocessing comparator)
                let keys_ref = &keys;
                let hits = p.step(|s| {
                    s.par_map(0..n, |i, ctx| {
                        let x = keys_ref[i];
                        let (mut lo, mut hi) = (0usize, n);
                        while lo < hi {
                            let mid = (lo + hi) / 2;
                            let v = ctx.read(base + mid);
                            if v == x {
                                return true;
                            }
                            if v < x {
                                lo = mid + 1;
                            } else {
                                hi = mid;
                            }
                        }
                        false
                    })
                });
                assert!(hits.iter().all(|&h| h));
            },
        ));
    }
    print_rows("Parallel hashing (build + n lookups)", &rows);

    // --- Load balancing -------------------------------------------------------
    let mut rows = Vec::new();
    for &n in &sizes {
        for &l in &[4u64, 64, 1024] {
            let l = l.min(n as u64);
            let mut loads = vec![0u64; n];
            let heavy = (n as u64 / l).max(1) as usize;
            for item in loads.iter_mut().take(heavy) {
                *item = l;
            }
            let l1 = loads.clone();
            rows.push(MeasuredRow::measure(
                &format!("loadbal/qrqw dispersal L={l}"),
                n,
                5,
                move |p| {
                    let r = load_balance_qrqw(p, &l1);
                    assert!(r.covers_exactly(&l1));
                },
            ));
            rows.push(MeasuredRow::measure(
                &format!("loadbal/erew prefix-sums L={l}"),
                n,
                5,
                move |p| {
                    let r = load_balance_erew(p, &loads);
                    assert!(r.covers_exactly(&loads));
                },
            ));
        }
    }
    print_rows("Load balancing (max initial load L)", &rows);

    println!("\nRead EXPERIMENTS.md for the paper-vs-measured discussion of every row.");
}
