//! `service_bench` — load generator for the `qrqw-serve` request service.
//!
//! Spawns a batched server, drives it with N concurrent client threads
//! (closed-loop, optionally rate-paced, optionally pipelined through a
//! per-client window), prints sustained throughput and latency
//! percentiles, and validates the final service state against the
//! acknowledged replies.  Exit code is non-zero if any client got an
//! unexpected error or the validator found an inconsistency.
//!
//! Usage:
//!
//! ```text
//! cargo run -p qrqw-bench --release --bin service_bench -- \
//!     [--clients N] [--requests N]   # per client \
//!     [--window W] [--rate R]        # pipelining / target aggregate req/s \
//!     [--workload hash|counter|task|churn|mix] [--key-dist uniform|zipf:<s>|power-law|all-same|adversarial] \
//!     [--keyspace N] [--batch-max B] [--linger-us L] \
//!     [--threads T] [--seed S] [--json-out PATH] [--smoke]
//! ```
//!
//! * `--batch-max` / `--linger-us` default to the `QRQW_BATCH_MAX` /
//!   `QRQW_LINGER_US` environment resolution (see `ARCHITECTURE.md`);
//! * `--key-dist zipf` concentrates traffic on a few hot keys — the
//!   high-contention regime the model charges for; compare its
//!   `contention_per_batch` against `uniform`;
//! * `--smoke` runs a small fixed configuration (2 clients) and fails
//!   loudly unless the run completes with nonzero throughput, zero
//!   errors, and a clean validator — the CI entry point.

use std::time::Duration;

use qrqw_bench::report::write_json_file;
use qrqw_bench::service::{run_service_load, KeyDist, LoadSpec, ServiceWorkload};
use qrqw_serve::{BatchPolicy, ServiceConfig};

struct Cli {
    spec: LoadSpec,
    policy: BatchPolicy,
    threads: Option<usize>,
    json_out: Option<String>,
    smoke: bool,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: service_bench [--clients N] [--requests N] [--window W] [--rate R] \
         [--workload hash|counter|task|churn|mix] [--key-dist uniform|zipf:<s>|power-law|all-same|adversarial] [--keyspace N] \
         [--batch-max B] [--linger-us L] [--threads T] [--seed S] [--json-out PATH] [--smoke]"
    );
    std::process::exit(2);
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        spec: LoadSpec {
            clients: 4,
            requests_per_client: 5000,
            window: 16,
            rate: 0.0,
            workload: ServiceWorkload::Mix,
            key_dist: KeyDist::Uniform,
            keyspace: 4096,
            seed: 1,
        },
        policy: BatchPolicy::from_env(),
        threads: None,
        json_out: None,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--clients" => {
                cli.spec.clients = value().parse().unwrap_or_else(|_| usage("bad --clients"))
            }
            "--requests" => {
                cli.spec.requests_per_client =
                    value().parse().unwrap_or_else(|_| usage("bad --requests"))
            }
            "--window" => {
                cli.spec.window = value().parse().unwrap_or_else(|_| usage("bad --window"))
            }
            "--rate" => cli.spec.rate = value().parse().unwrap_or_else(|_| usage("bad --rate")),
            "--workload" => {
                let spec = value();
                cli.spec.workload = ServiceWorkload::parse(&spec)
                    .unwrap_or_else(|| usage(&format!("unknown workload {spec:?}")));
            }
            "--key-dist" => {
                let spec = value();
                cli.spec.key_dist = KeyDist::parse(&spec).unwrap_or_else(|e| usage(&e));
            }
            "--keyspace" => {
                cli.spec.keyspace = value().parse().unwrap_or_else(|_| usage("bad --keyspace"))
            }
            "--batch-max" => {
                cli.policy.max_batch = value()
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage("bad --batch-max"))
                    .max(1)
            }
            "--linger-us" => {
                cli.policy.linger = Duration::from_micros(
                    value().parse().unwrap_or_else(|_| usage("bad --linger-us")),
                )
            }
            "--threads" => {
                cli.threads = Some(value().parse().unwrap_or_else(|_| usage("bad --threads")))
            }
            "--seed" => cli.spec.seed = value().parse().unwrap_or_else(|_| usage("bad --seed")),
            "--json-out" => cli.json_out = Some(value()),
            "--smoke" => cli.smoke = true,
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if cli.smoke {
        // Fixed small configuration: 2 clients, a mixed workload, a batch
        // cap small enough that several batches definitely close.
        cli.spec.clients = 2;
        cli.spec.requests_per_client = 400;
        cli.spec.window = 8;
        cli.spec.rate = 0.0;
        cli.spec.workload = ServiceWorkload::Mix;
        cli.spec.keyspace = 512;
        cli.policy = BatchPolicy::with_max_batch(64).linger(Duration::from_micros(100));
    }
    cli
}

fn main() {
    let cli = parse_args();
    let config = ServiceConfig {
        seed: cli.spec.seed,
        ..ServiceConfig::default()
    };
    println!(
        "service_bench: {} clients x {} requests, window {}, workload {}, key-dist {} over {}, \
         batch_max {}, linger {:?}{}",
        cli.spec.clients,
        cli.spec.requests_per_client,
        cli.spec.window,
        cli.spec.workload.name(),
        cli.spec.key_dist.name(),
        cli.spec.keyspace,
        cli.policy.max_batch,
        cli.policy.linger,
        if cli.smoke { " [smoke]" } else { "" },
    );
    let summary = run_service_load(config, cli.policy, cli.threads, &cli.spec);
    summary.print_row();
    for finding in &summary.validation_errors {
        eprintln!("service_bench: validator: {finding}");
    }
    if let Some(path) = &cli.json_out {
        let threads = cli
            .threads
            .unwrap_or_else(|| qrqw_exec::StepPool::from_env().threads());
        let doc = qrqw_bench::service::service_report_json(
            "service_bench",
            cli.spec.seed,
            threads,
            std::slice::from_ref(&summary),
        );
        write_json_file(path, &doc);
        println!("wrote {path}");
    }
    let expected = (cli.spec.clients.max(1) * cli.spec.requests_per_client) as u64;
    let mut failed = false;
    if summary.completed != expected {
        eprintln!(
            "service_bench: completed {} of {expected} requests",
            summary.completed
        );
        failed = true;
    }
    if summary.errors != 0 {
        eprintln!("service_bench: {} requests got errors", summary.errors);
        failed = true;
    }
    if !summary.valid() {
        failed = true;
    }
    if cli.smoke && summary.req_per_s() <= 0.0 {
        eprintln!("service_bench: smoke run measured zero throughput");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
