//! The scenario subsystem: parameterized multi-epoch churn workloads.
//!
//! A [`Scenario`] is a workload parameter block — key distribution
//! ([`KeyDist`]), an insert:delete:lookup churn ratio, and an epoch count —
//! and [`Scenario::run_churn`] is the multi-epoch driver that executes it
//! on any [`Machine`] backend: every epoch applies a mixed batch of hash
//! operations against a live [`OpenTable`] (deletes tombstone cells,
//! growth rebuilds purge them), one emulated Fetch&Add step over a
//! counter bank, and one §3 QRQW load-balancing pass over the epoch's
//! key-traffic histogram — with **machine state carried between epochs**,
//! unlike the one-shot registry algorithms.
//!
//! The driver is deterministic by construction: the operation trace
//! depends only on `(scenario, n, seed)`, machine operations are issued
//! in host trace order (occupy-claim winners are the lowest claimant
//! index on every backend), and rebuild triggers depend only on host-side
//! counters.  One churn trace therefore produces **bit-identical**
//! digests, step counts, and per-epoch contention totals on sim, native,
//! native-steal, and BSP machines at any thread count — which is what
//! `tests/scenarios.rs` pins and what arms `perf_report`'s sim-vs-native
//! drift guard on every `--scenario` cell.
//!
//! Alongside the digest, the driver measures the *skew* the distribution
//! actually produced ([`ChurnOutcome::hot_fraction`]) so the committed
//! `BENCH_workloads.json` can record contention as a function of skew —
//! the axis the paper's uniform-input Table II never opened.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use qrqw_bsp::BspMachine;
use qrqw_core::{emulate_fetch_add_step, load_balance_qrqw, OpenTable};
use qrqw_exec::NativeMachine;
use qrqw_sim::{CostReport, Machine, Pram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::report::Json;
use crate::workload::{KeyDist, KeySampler};
use crate::Backend;

/// One scenario: a named workload parameter block.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Registry name, or the spec string a custom scenario parsed from.
    pub name: String,
    /// Key distribution the trace draws from.
    pub dist: KeyDist,
    /// Relative insert : delete : lookup weights of the hash traffic.
    pub churn: [u32; 3],
    /// Epochs the driver runs (state carries across them).
    pub epochs: usize,
}

impl Scenario {
    /// The registered sweep set: one scenario per distribution family,
    /// covering the whole skew axis from uniform to the crafted adversary.
    pub fn registry() -> Vec<Scenario> {
        vec![
            Scenario {
                name: "uniform-churn".into(),
                dist: KeyDist::Uniform,
                churn: [2, 1, 2],
                epochs: 6,
            },
            Scenario {
                name: "zipf-hot".into(),
                dist: KeyDist::Zipf(1.2),
                churn: [3, 1, 4],
                epochs: 6,
            },
            Scenario {
                name: "power-law-churn".into(),
                dist: KeyDist::PowerLaw,
                churn: [2, 1, 2],
                epochs: 6,
            },
            Scenario {
                name: "all-same-key".into(),
                dist: KeyDist::AllSame,
                churn: [1, 1, 2],
                epochs: 4,
            },
            Scenario {
                name: "adversarial-collide".into(),
                dist: KeyDist::Adversarial,
                churn: [3, 1, 2],
                epochs: 6,
            },
        ]
    }

    /// Parses one scenario: a registry name, or a custom spec
    /// `<dist>/<ins>:<del>:<look>/<epochs>` (e.g. `zipf:1.5/3:1:4/8`).
    /// Unknown names are an error carrying the vocabulary — never a
    /// silent default (the `QRQW_SCHEDULE` contract).
    pub fn parse(spec: &str) -> Result<Scenario, String> {
        if let Some(s) = Self::registry().into_iter().find(|s| s.name == spec) {
            return Ok(s);
        }
        let parts: Vec<&str> = spec.split('/').collect();
        if parts.len() != 3 {
            let names: Vec<String> = Self::registry().into_iter().map(|s| s.name).collect();
            return Err(format!(
                "unknown scenario {spec:?} (valid: {}, or <dist>/<ins>:<del>:<look>/<epochs>)",
                names.join(", ")
            ));
        }
        let dist = KeyDist::parse(parts[0])?;
        let ratio: Vec<&str> = parts[1].split(':').collect();
        if ratio.len() != 3 {
            return Err(format!(
                "bad churn ratio {:?} (want <ins>:<del>:<look>)",
                parts[1]
            ));
        }
        let mut churn = [0u32; 3];
        for (slot, r) in churn.iter_mut().zip(&ratio) {
            *slot = r
                .parse()
                .map_err(|_| format!("bad churn weight {r:?} in {spec:?}"))?;
        }
        if churn.iter().all(|&w| w == 0) {
            return Err(format!(
                "churn ratio in {spec:?} must have a nonzero weight"
            ));
        }
        let epochs: usize = parts[2]
            .parse()
            .map_err(|_| format!("bad epoch count {:?} in {spec:?}", parts[2]))?;
        if epochs == 0 {
            return Err(format!("epoch count in {spec:?} must be >= 1"));
        }
        Ok(Scenario {
            name: spec.to_string(),
            dist,
            churn,
            epochs,
        })
    }

    /// Parses a comma-separated scenario set; `"all"` selects the whole
    /// registry.
    pub fn parse_set(spec: &str) -> Result<Vec<Scenario>, String> {
        if spec == "all" {
            return Ok(Self::registry());
        }
        spec.split(',').map(|s| Self::parse(s.trim())).collect()
    }

    /// The churn ratio as its spec form (`"2:1:2"`).
    pub fn churn_label(&self) -> String {
        format!("{}:{}:{}", self.churn[0], self.churn[1], self.churn[2])
    }

    /// Runs the multi-epoch churn driver on `m` (see the module docs) and
    /// returns the outcome.  `seed` feeds the trace generator — callers
    /// must pass the same seed the machine was built with to make
    /// cross-backend runs comparable.
    pub fn run_churn<M: Machine>(&self, m: &mut M, n: usize, seed: u64) -> ChurnOutcome {
        let ops_per_epoch = n.max(16);
        let keyspace = n.max(16);
        let num_counters = (n / 4).max(4);
        let balance_procs = (n / 16).max(4);
        let sampler = KeySampler::new(self.dist, keyspace);
        let counter_base = m.alloc(num_counters);
        // Start the table small relative to the epoch volume so growth
        // rebuilds (and their tombstone purges) actually fire mid-run.
        let mut table = OpenTable::new(m, (ops_per_epoch / 4).max(1));

        let mut valid = true;
        let mut model: HashSet<u64> = HashSet::new();
        let mut counter_model: Vec<u64> = vec![0; num_counters];
        let mut key_traffic: HashMap<u64, u64> = HashMap::new();
        let mut hash_ops = 0u64;
        let mut total_ops = 0u64;
        let mut epoch_contention = Vec::with_capacity(self.epochs);
        let weights = self.churn;
        let total_weight = u64::from(weights[0] + weights[1] + weights[2]);

        for epoch in 0..self.epochs {
            let contended_before = m.cost_report().contended_claims;
            let mut rng =
                SmallRng::seed_from_u64(seed ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9));

            // ---- Decode walk (host-side, strictly in trace order): the
            // same overlay scheme as a qrqw-serve batch, so insert-delete
            // pairs net away and machine ops derive from first-touch order.
            let mut overlay: HashMap<u64, bool> = HashMap::new();
            let mut touched: Vec<u64> = Vec::new();
            let mut lookups: Vec<(u64, bool)> = Vec::new(); // (key, pre-epoch presence)
            for _ in 0..ops_per_epoch {
                let key = sampler.sample(&mut rng);
                *key_traffic.entry(key).or_default() += 1;
                hash_ops += 1;
                let roll = rng.gen_range(0..total_weight) as u32;
                let present = overlay
                    .get(&key)
                    .copied()
                    .unwrap_or_else(|| model.contains(&key));
                if roll < weights[0] {
                    // insert
                    if !present {
                        if !overlay.contains_key(&key) {
                            touched.push(key);
                        }
                        overlay.insert(key, true);
                    }
                } else if roll < weights[0] + weights[1] {
                    // delete
                    if present {
                        if !overlay.contains_key(&key) {
                            touched.push(key);
                        }
                        overlay.insert(key, false);
                    }
                } else {
                    // lookup: answered against the pre-epoch table below
                    lookups.push((key, model.contains(&key)));
                }
            }
            let mut new_keys = Vec::new();
            let mut dead_keys = Vec::new();
            for &key in &touched {
                let fin = overlay[&key];
                let was = model.contains(&key);
                if fin && !was {
                    new_keys.push(key);
                } else if !fin && was {
                    dead_keys.push(key);
                }
            }

            // ---- Machine stage: lookups against the pre-epoch table,
            // then deletes, then inserts.
            if !lookups.is_empty() {
                let keys: Vec<u64> = lookups.iter().map(|&(k, _)| k).collect();
                let found = table.lookup(m, &keys);
                valid &= found
                    .iter()
                    .zip(&lookups)
                    .all(|(&got, &(_, want))| got == want);
            }
            table.remove_present(m, &dead_keys);
            table.insert_new(m, &new_keys);
            for &key in &dead_keys {
                model.remove(&key);
            }
            model.extend(new_keys.iter().copied());

            // ---- One Fetch&Add step over the counter bank (Lemma 7.5),
            // keys drawn from the same skewed distribution.
            let fadd_reqs: Vec<(usize, u64)> = (0..num_counters.max(4))
                .map(|_| {
                    let c = (sampler.sample(&mut rng) % num_counters as u64) as usize;
                    (counter_base + c, rng.gen_range(1..4u64))
                })
                .collect();
            total_ops += fadd_reqs.len() as u64;
            let olds = emulate_fetch_add_step(m, &fadd_reqs);
            for (&(addr, delta), &old) in fadd_reqs.iter().zip(&olds) {
                let c = addr - counter_base;
                valid &= old == counter_model[c];
                counter_model[c] += delta;
            }

            // ---- Rebalance the epoch's key traffic across virtual
            // processors with the §3 QRQW load balancer.
            let mut loads = vec![0u64; balance_procs];
            for (&key, &count) in &key_traffic {
                loads[(key % balance_procs as u64) as usize] += count;
            }
            let res = load_balance_qrqw(m, &loads);
            valid &= res.covers_exactly(&loads);

            epoch_contention.push(m.cost_report().contended_claims - contended_before);
        }
        total_ops += hash_ops;

        // ---- Digest + final cross-check against the host model.
        let mut keys = table.live_keys(m);
        keys.sort_unstable();
        let mut want: Vec<u64> = model.iter().copied().collect();
        want.sort_unstable();
        valid &= keys == want;
        let digest = ChurnDigest {
            keys,
            counters: m.dump(counter_base, num_counters),
            len: table.len(),
        };
        let hot = key_traffic.values().copied().max().unwrap_or(0);
        ChurnOutcome {
            valid,
            digest,
            ops: total_ops,
            hot_fraction: hot as f64 / (hash_ops as f64).max(1.0),
            epoch_contention,
        }
    }

    /// Creates a fresh machine of the requested backend, runs the churn
    /// driver on it, and packages the result (the scenario analogue of
    /// `Algorithm::run`).
    pub fn run(&self, backend: Backend, n: usize, seed: u64) -> ScenarioRun {
        match backend {
            Backend::Sim => {
                let mut m = Pram::with_seed(16, seed);
                let started = Instant::now();
                let outcome = self.run_churn(&mut m, n, seed);
                self.package(
                    backend,
                    n,
                    seed,
                    started.elapsed(),
                    m.cost_report(),
                    outcome,
                )
            }
            Backend::Native => self.run_native_pool(n, seed, qrqw_exec::StepPool::from_env()),
            Backend::NativeSteal => {
                self.run_native_with(n, seed, None, qrqw_exec::Schedule::Stealing)
            }
            Backend::Bsp => self.run_bsp(n, seed, None),
        }
    }

    /// Runs the driver on a fresh native machine with an explicit chunk
    /// schedule (ignoring `QRQW_SCHEDULE`), optionally pinning threads.
    pub fn run_native_with(
        &self,
        n: usize,
        seed: u64,
        threads: Option<usize>,
        schedule: qrqw_exec::Schedule,
    ) -> ScenarioRun {
        let pool = match threads {
            Some(t) => qrqw_exec::StepPool::with_threads(t),
            None => qrqw_exec::StepPool::from_env(),
        }
        .with_schedule(schedule);
        self.run_native_pool(n, seed, pool)
    }

    /// Runs the driver on a fresh native machine built around an explicit,
    /// fully-configured [`qrqw_exec::StepPool`].
    pub fn run_native_pool(&self, n: usize, seed: u64, pool: qrqw_exec::StepPool) -> ScenarioRun {
        let mut m = NativeMachine::with_pool(16, seed, pool);
        let started = Instant::now();
        let outcome = self.run_churn(&mut m, n, seed);
        let backend = Backend::parse(m.backend())
            .expect("every native backend name is registered in Backend::ALL");
        self.package(
            backend,
            n,
            seed,
            started.elapsed(),
            m.cost_report(),
            outcome,
        )
    }

    /// Runs the driver on a fresh BSP machine, optionally pinning the
    /// compute-phase thread count.
    pub fn run_bsp(&self, n: usize, seed: u64, threads: Option<usize>) -> ScenarioRun {
        let mut m = match threads {
            Some(t) => BspMachine::with_threads(16, seed, t),
            None => BspMachine::with_seed(16, seed),
        };
        let started = Instant::now();
        let outcome = self.run_churn(&mut m, n, seed);
        self.package(
            Backend::Bsp,
            n,
            seed,
            started.elapsed(),
            m.cost_report(),
            outcome,
        )
    }

    fn package(
        &self,
        backend: Backend,
        n: usize,
        seed: u64,
        elapsed: Duration,
        report: CostReport,
        outcome: ChurnOutcome,
    ) -> ScenarioRun {
        ScenarioRun {
            scenario: self.name.clone(),
            backend: backend.name(),
            n,
            seed,
            valid: outcome.valid,
            elapsed,
            report,
            outcome,
        }
    }
}

/// Canonical observable end state of a churn run, for cross-backend
/// parity: sorted live keys (placement is canonicalized away — occupy
/// winners are backend-deterministic but the *digest* shouldn't depend on
/// that), the raw counter region, and the live count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnDigest {
    /// Sorted keys present in the table at the end of the run.
    pub keys: Vec<u64>,
    /// Raw dump of the counter region.
    pub counters: Vec<u64>,
    /// Live key count (cross-checks `keys.len()` against the table's
    /// occupancy counter).
    pub len: usize,
}

/// Everything one churn run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnOutcome {
    /// All in-run validations passed (lookup answers, Fetch&Add
    /// serialization, balance coverage, final model cross-check).
    pub valid: bool,
    /// Canonical end state.
    pub digest: ChurnDigest,
    /// Total requests driven through the machine (hash + Fetch&Add).
    pub ops: u64,
    /// Fraction of hash traffic that hit the single hottest key — the
    /// measured skew the report plots contention against.
    pub hot_fraction: f64,
    /// Contended claims accrued in each epoch (bit-identical across
    /// backends; the drift guard compares the whole vector).
    pub epoch_contention: Vec<u64>,
}

/// One scenario execution on one backend.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// [`Scenario::name`] of the run.
    pub scenario: String,
    /// [`Backend::name`] of the run.
    pub backend: &'static str,
    /// Scale parameter (ops per epoch and keyspace).
    pub n: usize,
    /// Machine + trace seed.
    pub seed: u64,
    /// Whether every in-run validation passed.
    pub valid: bool,
    /// Wall-clock time of the driver.
    pub elapsed: Duration,
    /// The backend's cost report after the run.
    pub report: CostReport,
    /// The driver's outcome (digest, skew, per-epoch contention).
    pub outcome: ChurnOutcome,
}

impl ScenarioRun {
    /// Formats the run as one harness row.
    pub fn format(&self) -> String {
        format!(
            "{:<20} {:<12} n={:<6} {:>9.3} ms  hot={:.3} contended={} valid={}",
            self.scenario,
            self.backend,
            self.n,
            self.elapsed.as_secs_f64() * 1e3,
            self.outcome.hot_fraction,
            self.report.contended_claims,
            self.valid,
        )
    }

    /// This run as one per-backend cell of a `BENCH_workloads.json` row.
    /// `drift_free` records the armed sim-vs-native guard's verdict for
    /// this cell (trivially true for the sim reference itself).
    pub fn cell_json(&self, drift_free: bool) -> Json {
        Json::obj(vec![
            ("wall_ms", Json::float(self.elapsed.as_secs_f64() * 1e3, 3)),
            ("steps", Json::Int(self.report.steps)),
            ("claim_attempts", Json::Int(self.report.claim_attempts)),
            ("contended_claims", Json::Int(self.report.contended_claims)),
            (
                "contention_per_op",
                Json::float(
                    self.report.contended_claims as f64 / (self.outcome.ops as f64).max(1.0),
                    4,
                ),
            ),
            ("valid", Json::Bool(self.valid)),
            ("drift_free", Json::Bool(drift_free)),
        ])
    }
}

/// Assembles one `BENCH_workloads.json` row from a scenario's sweep cells
/// (`reference` is the sim run the drift guard compared everything
/// against).  Shared by `perf_report --scenario` and the schema test.
pub fn scenario_row_json(
    scenario: &Scenario,
    reference: &ScenarioRun,
    cells: Vec<(&'static str, Json)>,
    row_valid: bool,
) -> Json {
    Json::obj(vec![
        ("scenario", Json::str(&scenario.name)),
        ("dist", Json::Str(scenario.dist.label())),
        ("churn", Json::Str(scenario.churn_label())),
        ("epochs", Json::Int(scenario.epochs as u64)),
        ("n", Json::Int(reference.n as u64)),
        ("seed", Json::Int(reference.seed)),
        ("ops", Json::Int(reference.outcome.ops)),
        (
            "hot_fraction",
            Json::float(reference.outcome.hot_fraction, 4),
        ),
        (
            "epoch_contention",
            Json::Arr(
                reference
                    .outcome
                    .epoch_contention
                    .iter()
                    .map(|&c| Json::Int(c))
                    .collect(),
            ),
        ),
        (
            "backends",
            Json::Obj(
                cells
                    .into_iter()
                    .map(|(name, cell)| (name.to_string(), cell))
                    .collect(),
            ),
        ),
        ("valid", Json::Bool(row_valid)),
    ])
}

/// Assembles the top-level `BENCH_workloads.json` document (shared by
/// `perf_report --scenario` and the committed-artifact schema test).
/// One parameter per top-level header field, by design — collapsing them
/// into a struct would just move the field list one call site away.
#[allow(clippy::too_many_arguments)]
pub fn workloads_report_json(
    generated_by: &str,
    seed: u64,
    threads: usize,
    scenarios: &[Scenario],
    backends: &[Backend],
    sizes: &[usize],
    all_valid: bool,
    rows: Vec<Json>,
) -> Json {
    Json::obj(vec![
        ("generated_by", Json::str(generated_by)),
        ("seed", Json::Int(seed)),
        ("threads", Json::Int(threads as u64)),
        ("host_cores", Json::Int(rayon::current_num_threads() as u64)),
        (
            "scenarios",
            Json::Arr(scenarios.iter().map(|s| Json::str(&s.name)).collect()),
        ),
        (
            "backends",
            Json::Arr(backends.iter().map(|b| Json::str(b.name())).collect()),
        ),
        (
            "sizes",
            Json::Arr(sizes.iter().map(|&n| Json::Int(n as u64)).collect()),
        ),
        ("all_valid", Json::Bool(all_valid)),
        ("rows", Json::Arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_parse_back_to_themselves() {
        for s in Scenario::registry() {
            assert_eq!(Scenario::parse(&s.name), Ok(s.clone()), "{}", s.name);
        }
        assert_eq!(Scenario::parse_set("all").unwrap(), Scenario::registry());
    }

    #[test]
    fn custom_specs_parse_and_bad_ones_reject_loudly() {
        let s = Scenario::parse("zipf:1.5/3:1:4/8").unwrap();
        assert_eq!(s.dist, KeyDist::Zipf(1.5));
        assert_eq!(s.churn, [3, 1, 4]);
        assert_eq!(s.epochs, 8);
        for bad in [
            "nope",
            "uniform/1:1/4",
            "uniform/1:1:x/4",
            "uniform/0:0:0/4",
            "uniform/1:1:1/0",
            "zipfian/1:1:1/4",
        ] {
            let err = Scenario::parse(bad).expect_err(bad);
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn churn_driver_validates_on_the_simulator() {
        for scenario in Scenario::registry() {
            let mut m = Pram::with_seed(16, 7);
            let outcome = scenario.run_churn(&mut m, 64, 7);
            assert!(outcome.valid, "{} invalid on sim", scenario.name);
            assert_eq!(outcome.epoch_contention.len(), scenario.epochs);
            assert_eq!(outcome.digest.keys.len(), outcome.digest.len);
            assert!(outcome.hot_fraction > 0.0 && outcome.hot_fraction <= 1.0);
        }
    }

    #[test]
    fn skewed_scenarios_measure_more_skew_than_uniform() {
        let run = |name: &str| {
            let scenario = Scenario::parse(name).unwrap();
            let mut m = Pram::with_seed(16, 3);
            scenario.run_churn(&mut m, 256, 3).hot_fraction
        };
        let uniform = run("uniform-churn");
        let zipf = run("zipf-hot");
        let all_same = run("all-same-key");
        assert!(
            zipf > uniform,
            "zipf {zipf} must out-skew uniform {uniform}"
        );
        assert!((all_same - 1.0).abs() < 1e-9, "all-same is total skew");
    }
}
