//! A minimal JSON value model shared by every report-writing harness.
//!
//! The container has no serde; the committed artifacts
//! (`BENCH_native.json`, `BENCH_service.json`, …) were historically
//! assembled with `format!`, which made their schemas impossible to test.
//! This module gives the harnesses one [`Json`] tree type, one renderer
//! ([`Json::render`]) and one file writer ([`write_json_file`]) — plus a
//! small parser ([`Json::parse`]) so tests can round-trip a generated
//! report and assert on its schema instead of its formatting.
//!
//! Rendering is deterministic: object keys keep insertion order, an object
//! or array whose compact form fits in one line stays on one line, and
//! anything longer breaks across indented lines.  Non-finite floats render
//! as `null` (JSON has no NaN).

use std::io::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (all the harness counters are `u64`).
    Int(u64),
    /// A float; non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

/// Width at which [`Json::render`] breaks a container across lines.
const WRAP: usize = 100;

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// A float rounded to `digits` decimal places (reports don't need 17
    /// significant digits of wall-clock noise).
    pub fn float(value: f64, digits: usize) -> Json {
        if value.is_finite() {
            let scale = 10f64.powi(digits as i32);
            Json::Float((value * scale).round() / scale)
        } else {
            Json::Null
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn compact(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Int(v) => v.to_string(),
            Json::Float(v) if v.is_finite() => {
                // Keep a decimal point so the parser round-trips the type.
                let s = format!("{v}");
                if s.contains('.') || s.contains('e') {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            Json::Float(_) => "null".to_string(),
            Json::Str(s) => escape(s),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::compact).collect();
                format!("[{}]", inner.join(", "))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}: {}", escape(k), v.compact()))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
        }
    }

    fn pretty(&self, level: usize, out: &mut String) {
        let compact = self.compact();
        if compact.len() <= WRAP || !matches!(self, Json::Arr(_) | Json::Obj(_)) {
            out.push_str(&compact);
            return;
        }
        let pad = "  ".repeat(level + 1);
        match self {
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.pretty(level + 1, out);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(level));
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str(&escape(k));
                    out.push_str(": ");
                    v.pretty(level + 1, out);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(level));
                out.push('}');
            }
            _ => unreachable!("scalars returned above"),
        }
    }

    /// Renders the value (line-wrapped, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.pretty(0, &mut out);
        out.push('\n');
        out
    }

    /// Parses a JSON document (strict enough for the harnesses' own
    /// output; numbers become [`Json::Int`] when they are plain
    /// non-negative integers, [`Json::Float`] otherwise).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, "\"")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = std::str::from_utf8(&bytes[*pos + 1..*pos + 5])
                            .map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from a &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

/// Writes a rendered [`Json`] document to `path` (the one writer shared by
/// `perf_report`, `service_bench` and `service_report`).
pub fn write_json_file(path: &str, json: &Json) {
    let mut file =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    file.write_all(json.render().as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::obj(vec![
            ("name", Json::str("bench")),
            ("count", Json::Int(42)),
            ("ratio", Json::float(1.23456, 3)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "runs",
                Json::Arr(vec![
                    Json::obj(vec![("n", Json::Int(1)), ("ms", Json::float(0.5, 3))]),
                    Json::obj(vec![("n", Json::Int(2)), ("ms", Json::Null)]),
                ]),
            ),
        ])
    }

    #[test]
    fn render_parse_round_trips() {
        let doc = sample();
        let text = doc.render();
        let back = Json::parse(&text).expect("rendered JSON must parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let doc = sample();
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("bench"));
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(42));
        assert_eq!(doc.get("ratio").and_then(Json::as_f64), Some(1.235));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("n").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(Json::float(f64::NAN, 2), Json::Null);
        assert_eq!(Json::float(f64::INFINITY, 2), Json::Null);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let doc = Json::str("a \"quoted\" line\nwith a tab\t\\");
        let back = Json::parse(&doc.render()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }
}
