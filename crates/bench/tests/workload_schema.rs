//! `BENCH_workloads.json` schema round-trip: the committed artifact's
//! shape is produced and checked through the same code path
//! (`ScenarioRun::cell_json` + `scenario_row_json` +
//! `workloads_report_json` + the shared renderer/parser), so a schema
//! drift breaks this test before it breaks a downstream consumer —
//! mirroring `service_schema.rs` for the scenario sweep.

use qrqw_bench::report::Json;
use qrqw_bench::scenario::{scenario_row_json, workloads_report_json, Scenario};
use qrqw_bench::Backend;

/// A named type predicate over one JSON field.
type FieldCheck = fn(&Json) -> bool;

/// Every field a `BENCH_workloads.json` row must carry, with a type
/// predicate.
const ROW_FIELDS: &[(&str, FieldCheck)] = &[
    ("scenario", |v| v.as_str().is_some()),
    ("dist", |v| v.as_str().is_some()),
    ("churn", |v| v.as_str().is_some()),
    ("epochs", |v| v.as_u64().is_some()),
    ("n", |v| v.as_u64().is_some()),
    ("seed", |v| v.as_u64().is_some()),
    ("ops", |v| v.as_u64().is_some()),
    ("hot_fraction", |v| v.as_f64().is_some()),
    ("epoch_contention", |v| v.as_arr().is_some()),
    ("backends", |v| matches!(v, Json::Obj(_))),
    ("valid", |v| v.as_bool().is_some()),
];

/// Every field a per-backend cell must carry, with a type predicate.
const CELL_FIELDS: &[(&str, FieldCheck)] = &[
    ("wall_ms", |v| v.as_f64().is_some()),
    ("steps", |v| v.as_u64().is_some()),
    ("claim_attempts", |v| v.as_u64().is_some()),
    ("contended_claims", |v| v.as_u64().is_some()),
    ("contention_per_op", |v| v.as_f64().is_some()),
    ("valid", |v| v.as_bool().is_some()),
    ("drift_free", |v| v.as_bool().is_some()),
];

fn check_rows(doc: &Json) {
    assert_eq!(doc.get("all_valid").and_then(Json::as_bool), Some(true));
    let rows = doc.get("rows").and_then(Json::as_arr).expect("rows array");
    assert!(!rows.is_empty());
    for row in rows {
        for (field, type_ok) in ROW_FIELDS {
            let value = row
                .get(field)
                .unwrap_or_else(|| panic!("row missing field {field:?}"));
            assert!(
                type_ok(value),
                "row field {field:?} has the wrong type: {value:?}"
            );
        }
        assert_eq!(row.get("valid").and_then(Json::as_bool), Some(true));
        let Some(Json::Obj(cells)) = row.get("backends") else {
            panic!("backends must be an object of cells");
        };
        assert!(!cells.is_empty(), "row carries at least one backend cell");
        for (backend, cell) in cells {
            assert!(
                Backend::parse(backend).is_some(),
                "unknown backend column {backend:?}"
            );
            for (field, type_ok) in CELL_FIELDS {
                let value = cell
                    .get(field)
                    .unwrap_or_else(|| panic!("cell {backend:?} missing field {field:?}"));
                assert!(
                    type_ok(value),
                    "cell {backend:?} field {field:?} has the wrong type: {value:?}"
                );
            }
            assert_eq!(cell.get("drift_free").and_then(Json::as_bool), Some(true));
        }
    }
}

#[test]
fn workloads_report_round_trips_and_matches_the_schema() {
    // A tiny in-process sweep through the exact assembly helpers the
    // binary uses: sim reference + one drift-guarded native cell per
    // scenario.
    let scenarios = vec![
        Scenario::parse("uniform-churn").unwrap(),
        Scenario::parse("adversarial-collide").unwrap(),
    ];
    let backends = [Backend::Sim, Backend::Native];
    let mut rows = Vec::new();
    for scenario in &scenarios {
        let reference = scenario.run(Backend::Sim, 64, 3);
        assert!(reference.valid, "{} invalid on sim", scenario.name);
        let native = scenario.run_native_with(64, 3, Some(2), qrqw_exec::Schedule::Chunked);
        let drift_free = native.report.steps == reference.report.steps
            && native.report.contended_claims == reference.report.contended_claims
            && native.outcome.digest == reference.outcome.digest;
        assert!(drift_free, "{} drifted", scenario.name);
        let cells = vec![
            (Backend::Sim.name(), reference.cell_json(true)),
            (Backend::Native.name(), native.cell_json(drift_free)),
        ];
        rows.push(scenario_row_json(
            scenario,
            &reference,
            cells,
            reference.valid && native.valid && drift_free,
        ));
    }
    let doc = workloads_report_json(
        "perf_report --scenario",
        3,
        2,
        &scenarios,
        &backends,
        &[64],
        true,
        rows,
    );

    // Render → parse → compare: the renderer and parser agree exactly.
    let back = Json::parse(&doc.render()).expect("generated report must parse");
    assert_eq!(back, doc);

    for key in [
        "generated_by",
        "seed",
        "threads",
        "host_cores",
        "scenarios",
        "backends",
        "sizes",
        "all_valid",
        "rows",
    ] {
        assert!(back.get(key).is_some(), "missing top-level field {key:?}");
    }
    check_rows(&back);
}

#[test]
fn committed_workloads_artifact_parses_with_the_same_schema() {
    // The committed BENCH_workloads.json must stay loadable and
    // schema-conformant (it is regenerated by `perf_report --scenario`),
    // and must actually cover the axis it claims: at least 3 scenarios,
    // at least 2 backends, both native schedules, every cell drift-free.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_workloads.json");
    let text = std::fs::read_to_string(path)
        .expect("BENCH_workloads.json must be committed at the repository root");
    let doc = Json::parse(&text).expect("committed BENCH_workloads.json must parse");
    check_rows(&doc);

    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .expect("scenarios array");
    assert!(
        scenarios.len() >= 3,
        "committed sweep must cover at least 3 scenarios"
    );
    let backends: Vec<&str> = doc
        .get("backends")
        .and_then(Json::as_arr)
        .expect("backends array")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert!(
        backends.len() >= 2,
        "committed sweep must cover at least 2 backends"
    );
    for schedule_column in ["native", "native-steal"] {
        assert!(
            backends.contains(&schedule_column),
            "committed sweep must cover both native schedules (missing {schedule_column:?})"
        );
    }
    let rows = doc.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(
        rows.len(),
        scenarios.len(),
        "one row per scenario per size in the committed sweep"
    );
    for row in rows {
        let Some(Json::Obj(cells)) = row.get("backends") else {
            unreachable!("checked by check_rows");
        };
        for name in &backends {
            assert!(
                cells.iter().any(|(b, _)| b == name),
                "row {:?} missing declared backend {name:?}",
                row.get("scenario"),
            );
        }
    }
}
