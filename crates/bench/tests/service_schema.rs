//! `BENCH_service.json` schema round-trip: the committed artifact's shape
//! is produced and checked through the same code path
//! (`RunSummary::to_json` + `service_report_json` + the shared
//! renderer/parser), so a schema drift breaks this test before it breaks
//! a downstream consumer.

use std::time::Duration;

use qrqw_bench::chaos::{chaos_report_json, run_chaos, ChaosSpec, FaultPlan};
use qrqw_bench::report::Json;
use qrqw_bench::service::{
    run_service_load, service_report_json, KeyDist, LoadSpec, ServiceWorkload,
};
use qrqw_serve::{BatchPolicy, ServiceConfig};

/// A named type predicate over one JSON field.
type FieldCheck = fn(&Json) -> bool;

/// Every field a `BENCH_service.json` run entry must carry, with a type
/// predicate.
const RUN_FIELDS: &[(&str, FieldCheck)] = &[
    ("workload", |v| v.as_str().is_some()),
    ("key_dist", |v| v.as_str().is_some()),
    ("batch_max", |v| v.as_u64().is_some()),
    ("clients", |v| v.as_u64().is_some()),
    ("requests", |v| v.as_u64().is_some()),
    ("errors", |v| v.as_u64().is_some()),
    ("served", |v| v.as_u64().is_some()),
    ("shed", |v| v.as_u64().is_some()),
    ("failed", |v| v.as_u64().is_some()),
    ("wall_ms", |v| v.as_f64().is_some()),
    ("req_per_s", |v| v.as_f64().is_some()),
    ("p50_us", |v| v.as_f64().is_some()),
    ("p99_us", |v| v.as_f64().is_some()),
    ("p999_us", |v| v.as_f64().is_some()),
    ("mean_us", |v| v.as_f64().is_some()),
    ("batches", |v| v.as_u64().is_some()),
    ("mean_batch", |v| v.as_f64().is_some()),
    ("max_batch", |v| v.as_u64().is_some()),
    ("steps", |v| v.as_u64().is_some()),
    ("claim_attempts", |v| v.as_u64().is_some()),
    ("contended_claims", |v| v.as_u64().is_some()),
    ("contention_per_batch", |v| v.as_f64().is_some()),
    ("panicked_batches", |v| v.as_u64().is_some()),
    ("valid", |v| v.as_bool().is_some()),
];

fn micro_sweep() -> Json {
    let runs: Vec<_> = [
        (1usize, ServiceWorkload::Hash),
        (8, ServiceWorkload::Counter),
    ]
    .into_iter()
    .map(|(batch_max, workload)| {
        run_service_load(
            ServiceConfig {
                seed: 5,
                num_counters: 16,
                task_procs: 4,
                hash_capacity: 64,
            },
            BatchPolicy::with_max_batch(batch_max).linger(Duration::from_micros(50)),
            Some(2),
            &LoadSpec {
                clients: 2,
                requests_per_client: 40,
                window: 4,
                rate: 0.0,
                workload,
                key_dist: KeyDist::Zipf(1.0),
                keyspace: 128,
                seed: 5,
            },
        )
    })
    .collect();
    assert!(runs.iter().all(|r| r.valid() && r.errors == 0));
    service_report_json("service_report", 5, 2, &runs)
}

#[test]
fn bench_service_json_round_trips_and_matches_the_schema() {
    let doc = micro_sweep();
    // Render → parse → compare: the renderer and parser agree exactly.
    let text = doc.render();
    let back = Json::parse(&text).expect("generated report must parse");
    assert_eq!(back, doc);

    // Top-level schema.
    for key in [
        "generated_by",
        "seed",
        "threads",
        "host_cores",
        "all_valid",
        "runs",
    ] {
        assert!(back.get(key).is_some(), "missing top-level field {key:?}");
    }
    assert_eq!(back.get("all_valid").and_then(Json::as_bool), Some(true));

    // Per-run schema, through the parsed copy.
    let runs = back.get("runs").and_then(Json::as_arr).expect("runs array");
    assert_eq!(runs.len(), 2);
    for run in runs {
        for (field, type_ok) in RUN_FIELDS {
            let value = run
                .get(field)
                .unwrap_or_else(|| panic!("run entry missing field {field:?}"));
            assert!(
                type_ok(value),
                "field {field:?} has the wrong type: {value:?}"
            );
        }
        assert_eq!(run.get("valid").and_then(Json::as_bool), Some(true));
        assert_eq!(
            run.get("requests").and_then(Json::as_u64),
            Some(80),
            "2 clients x 40 requests"
        );
    }
}

/// Every field a `BENCH_chaos.json` run entry must carry, with a type
/// predicate.
const CHAOS_RUN_FIELDS: &[(&str, FieldCheck)] = &[
    ("workload", |v| v.as_str().is_some()),
    ("panic_per_10k", |v| v.as_u64().is_some()),
    ("error_per_10k", |v| v.as_u64().is_some()),
    ("delay_per_10k", |v| v.as_u64().is_some()),
    ("batch_max", |v| v.as_u64().is_some()),
    ("requests", |v| v.as_u64().is_some()),
    ("served", |v| v.as_u64().is_some()),
    ("shed", |v| v.as_u64().is_some()),
    ("failed", |v| v.as_u64().is_some()),
    ("wedged", |v| v.as_u64().is_some()),
    ("injected_panics", |v| v.as_u64().is_some()),
    ("isolated_panics", |v| v.as_u64().is_some()),
    ("panicked_batches", |v| v.as_u64().is_some()),
    ("batches", |v| v.as_u64().is_some()),
    ("snapshots", |v| v.as_u64().is_some()),
    ("snapshot_us_per_batch", |v| v.as_f64().is_some()),
    ("mean_recovery_us", |v| v.as_f64().is_some()),
    ("goodput_per_s", |v| v.as_f64().is_some()),
    ("p99_us", |v| v.as_f64().is_some()),
    ("wall_ms", |v| v.as_f64().is_some()),
    ("valid", |v| v.as_bool().is_some()),
];

fn check_chaos_runs(doc: &Json) {
    assert_eq!(doc.get("all_valid").and_then(Json::as_bool), Some(true));
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs array");
    assert!(!runs.is_empty());
    for run in runs {
        for (field, type_ok) in CHAOS_RUN_FIELDS {
            let value = run
                .get(field)
                .unwrap_or_else(|| panic!("chaos run entry missing field {field:?}"));
            assert!(
                type_ok(value),
                "chaos field {field:?} has the wrong type: {value:?}"
            );
        }
        assert_eq!(run.get("wedged").and_then(Json::as_u64), Some(0));
    }
}

#[test]
fn bench_chaos_json_round_trips_and_matches_the_schema() {
    let summary = run_chaos(
        ServiceConfig {
            seed: 7,
            num_counters: 8,
            task_procs: 4,
            hash_capacity: 64,
        },
        BatchPolicy::with_max_batch(16).linger(Duration::from_micros(50)),
        2,
        FaultPlan {
            panic_per_10k: 400,
            error_per_10k: 25,
            ..FaultPlan::default()
        },
        &ChaosSpec {
            workload: ServiceWorkload::Mix,
            requests: 250,
            window: 16,
            keyspace: 64,
            seed: 7,
        },
    );
    assert!(summary.valid(), "{:?}", summary.validation_errors);
    let doc = chaos_report_json("chaos_bench", 7, 2, &[summary]);
    let back = Json::parse(&doc.render()).expect("generated chaos report must parse");
    assert_eq!(back, doc);
    check_chaos_runs(&back);
}

#[test]
fn committed_chaos_artifact_parses_with_the_same_schema() {
    // The repository's committed BENCH_chaos.json must stay loadable and
    // schema-conformant (it is regenerated by `chaos_bench`).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    let text = std::fs::read_to_string(path)
        .expect("BENCH_chaos.json must be committed at the repository root");
    let doc = Json::parse(&text).expect("committed BENCH_chaos.json must parse");
    check_chaos_runs(&doc);
}

#[test]
fn committed_artifact_parses_with_the_same_schema() {
    // The repository's committed BENCH_service.json must stay loadable and
    // schema-conformant (it is regenerated by `service_report`).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    let text = std::fs::read_to_string(path)
        .expect("BENCH_service.json must be committed at the repository root");
    let doc = Json::parse(&text).expect("committed BENCH_service.json must parse");
    assert_eq!(doc.get("all_valid").and_then(Json::as_bool), Some(true));
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs array");
    assert!(!runs.is_empty());
    for run in runs {
        for (field, type_ok) in RUN_FIELDS {
            let value = run
                .get(field)
                .unwrap_or_else(|| panic!("run entry missing field {field:?}"));
            assert!(
                type_ok(value),
                "field {field:?} has the wrong type: {value:?}"
            );
        }
    }
}
