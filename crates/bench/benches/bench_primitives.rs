//! Criterion timings for the substrate primitives (prefix sums, bitonic
//! sort, linear compaction, claiming) so changes to the simulator or the
//! primitives show up as host-runtime regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use qrqw_prims::{bitonic_sort, claim_cells, linear_compaction, prefix_sums_inclusive, ClaimMode};
use qrqw_sim::Pram;

fn bench_prefix_sums(c: &mut Criterion) {
    let n = 1 << 14;
    let data: Vec<u64> = (0..n as u64).collect();
    c.bench_function("primitives/prefix_sums_16k", |b| {
        b.iter(|| {
            let mut p = Pram::new(n);
            p.memory_mut().load(0, &data);
            prefix_sums_inclusive(&mut p, 0, n)
        })
    });
}

fn bench_bitonic(c: &mut Criterion) {
    let n = 1 << 12;
    let data: Vec<u64> = (0..n as u64).rev().collect();
    c.bench_function("primitives/bitonic_sort_4k", |b| {
        b.iter(|| {
            let mut p = Pram::new(n);
            p.memory_mut().load(0, &data);
            bitonic_sort(&mut p, 0, n)
        })
    });
}

fn bench_linear_compaction(c: &mut Criterion) {
    let n = 1 << 13;
    let k = n / 4;
    c.bench_function("primitives/linear_compaction_2k_of_8k", |b| {
        b.iter(|| {
            let mut p = Pram::with_seed(n, 3);
            for i in 0..k {
                p.memory_mut().poke(i * 4, i as u64 + 1);
            }
            let dst = p.alloc(4 * k);
            linear_compaction(&mut p, 0, n, dst, 4 * k)
        })
    });
}

fn bench_claiming(c: &mut Criterion) {
    let n = 1 << 12;
    c.bench_function("primitives/claim_cells_4k", |b| {
        b.iter(|| {
            let mut p = Pram::with_seed(2 * n, 5);
            let attempts: Vec<(u64, usize)> = (0..n as u64)
                .map(|i| (i + 1, (i as usize * 7) % (2 * n)))
                .collect();
            claim_cells(&mut p, &attempts, ClaimMode::Exclusive)
        })
    });
}

criterion_group!(
    benches,
    bench_prefix_sums,
    bench_bitonic,
    bench_linear_compaction,
    bench_claiming
);
criterion_main!(benches);
