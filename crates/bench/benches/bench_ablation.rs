//! Criterion timings for the ablation studies (fat-tree vs concurrent
//! search, cyclic-permutation variants).

use criterion::{criterion_group, criterion_main, Criterion};
use qrqw_core::{random_cyclic_permutation_efficient, random_cyclic_permutation_fast, FatTree};
use qrqw_sim::Pram;

fn bench_fat_tree(c: &mut Criterion) {
    let n = 1 << 12;
    let splitters: Vec<u64> = (1..64).map(|i| i * 1000).collect();
    let keys: Vec<u64> = (0..n as u64).map(|i| (i * 977) % 64_000).collect();
    let mut g = c.benchmark_group("ablation/fat_tree_search");
    g.sample_size(10);
    g.bench_function("fat_tree", |b| {
        b.iter(|| {
            let mut p = Pram::with_seed(4, 1);
            let tree = FatTree::build(&mut p, &splitters, n);
            tree.search_batch(&mut p, &keys)
        })
    });
    g.bench_function("concurrent_binary_search", |b| {
        b.iter(|| {
            let mut p = Pram::with_seed(4, 1);
            let tree = FatTree::build(&mut p, &splitters, n);
            tree.search_batch_concurrent(&mut p, &keys)
        })
    });
    g.finish();
}

fn bench_cyclic(c: &mut Criterion) {
    let n = 1 << 12;
    let mut g = c.benchmark_group("ablation/cyclic_permutation");
    g.sample_size(10);
    g.bench_function("fast_thm_5_2", |b| {
        b.iter(|| {
            let mut p = Pram::with_seed(4, 2);
            random_cyclic_permutation_fast(&mut p, n)
        })
    });
    g.bench_function("work_optimal_thm_5_3", |b| {
        b.iter(|| {
            let mut p = Pram::with_seed(4, 2);
            random_cyclic_permutation_efficient(&mut p, n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fat_tree, bench_cyclic);
criterion_main!(benches);
