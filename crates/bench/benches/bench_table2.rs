//! Criterion timings behind Table II: the three native random-permutation
//! implementations at the paper's two machine sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrqw_exec::{dart_qrqw_permutation, dart_scan_permutation, sorting_based_permutation};

fn bench_native_permutations(c: &mut Criterion) {
    for &n in &[16_384usize, 1_024] {
        let mut g = c.benchmark_group(format!("table2/n={n}"));
        g.sample_size(20);
        g.bench_function(BenchmarkId::new("sorting_based_erew", n), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                sorting_based_permutation(n, seed)
            })
        });
        g.bench_function(BenchmarkId::new("dart_throwing_with_scans", n), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                dart_scan_permutation(n, seed)
            })
        });
        g.bench_function(BenchmarkId::new("dart_throwing_qrqw", n), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                dart_qrqw_permutation(n, seed)
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_native_permutations);
criterion_main!(benches);
