//! Criterion timings behind Table II: the three random-permutation
//! algorithms — one source each, executed through the `Machine` backend API
//! on the native rayon/atomics machine at the paper's two machine sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrqw_bench::{Algorithm, Backend};

fn bench_native_permutations(c: &mut Criterion) {
    for &n in &[16_384usize, 1_024] {
        let mut g = c.benchmark_group(format!("table2/n={n}"));
        g.sample_size(20);
        for (label, algo) in [
            ("sorting_based_erew", Algorithm::PermutationSortingErew),
            ("dart_throwing_with_scans", Algorithm::PermutationDartScan),
            ("dart_throwing_qrqw", Algorithm::PermutationQrqw),
        ] {
            g.bench_function(BenchmarkId::new(label, n), |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    algo.run(Backend::Native, n, seed)
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_native_permutations);
criterion_main!(benches);
