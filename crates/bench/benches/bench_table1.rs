//! Criterion timings behind Table I: each benchmark runs one of the paper's
//! QRQW algorithms and its EREW comparator on the PRAM simulator at a fixed
//! problem size, so regressions in simulated cost (and host runtime) are
//! visible.  The printable table itself comes from the `table1` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrqw_core::{
    load_balance_erew, load_balance_qrqw, multiple_compaction, random_permutation_qrqw,
    random_permutation_sorting_erew, sort_uniform_keys, QrqwHashTable,
};
use qrqw_prims::bitonic_sort;
use qrqw_sim::Pram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N: usize = 1 << 12;

fn bench_permutation(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/random_permutation");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("qrqw_dart", N), |b| {
        b.iter(|| {
            let mut p = Pram::with_seed(4, 1);
            random_permutation_qrqw(&mut p, N)
        })
    });
    g.bench_function(BenchmarkId::new("erew_sorting", N), |b| {
        b.iter(|| {
            let mut p = Pram::with_seed(4, 1);
            random_permutation_sorting_erew(&mut p, N)
        })
    });
    g.finish();
}

fn bench_multiple_compaction(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let labels: Vec<u64> = (0..N).map(|_| rng.gen_range(0..(N / 64) as u64)).collect();
    let mut counts = vec![0u64; N / 64];
    for &l in &labels {
        counts[l as usize] += 1;
    }
    let mut g = c.benchmark_group("table1/multiple_compaction");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("qrqw", N), |b| {
        b.iter(|| {
            let mut p = Pram::with_seed(4, 2);
            multiple_compaction(&mut p, &labels, &counts)
        })
    });
    g.finish();
}

fn bench_sorting_u01(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let keys: Vec<u64> = (0..N).map(|_| rng.gen_range(0..(1u64 << 31))).collect();
    let mut g = c.benchmark_group("table1/sorting_u01");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("qrqw_distributive", N), |b| {
        b.iter(|| {
            let mut p = Pram::with_seed(4, 3);
            sort_uniform_keys(&mut p, &keys)
        })
    });
    g.bench_function(BenchmarkId::new("erew_bitonic", N), |b| {
        b.iter(|| {
            let mut p = Pram::with_seed(4, 3);
            let base = p.alloc(N);
            p.memory_mut().load(base, &keys);
            bitonic_sort(&mut p, base, N);
        })
    });
    g.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut set = std::collections::HashSet::new();
    while set.len() < N {
        set.insert(rng.gen_range(0..(1u64 << 31) - 1));
    }
    let keys: Vec<u64> = set.into_iter().collect();
    let mut g = c.benchmark_group("table1/hashing");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("qrqw_build_lookup", N), |b| {
        b.iter(|| {
            let mut p = Pram::with_seed(4, 4);
            let t = QrqwHashTable::build(&mut p, &keys);
            t.lookup_batch(&mut p, &keys)
        })
    });
    g.finish();
}

fn bench_load_balancing(c: &mut Criterion) {
    let l = 64u64;
    let mut loads = vec![0u64; N];
    for item in loads.iter_mut().take(N / l as usize) {
        *item = l;
    }
    let mut g = c.benchmark_group("table1/load_balancing");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("qrqw_dispersal", N), |b| {
        b.iter(|| {
            let mut p = Pram::with_seed(4, 5);
            load_balance_qrqw(&mut p, &loads)
        })
    });
    g.bench_function(BenchmarkId::new("erew_prefix_sums", N), |b| {
        b.iter(|| {
            let mut p = Pram::with_seed(4, 5);
            load_balance_erew(&mut p, &loads)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_permutation,
    bench_multiple_compaction,
    bench_sorting_u01,
    bench_hashing,
    bench_load_balancing
);
criterion_main!(benches);
