//! General sorting by √n-sample sort (Section 7.2, "Algorithm A").
//!
//! The paper adapts Reischuk's `√n`-sample sort: sample `√n` keys, sort the
//! sample, pick every `n^ε`-th sample element as a splitter, label every key
//! with its splitter bucket, move the keys to per-bucket subarrays with
//! (relaxed) heavy multiple compaction, and finish the now-small buckets
//! with a simple deterministic sort.  Two variants differ only in how a key
//! learns its bucket:
//!
//! * [`sample_sort_qrqw`] searches the **binary-search fat-tree**
//!   ([`crate::fat_tree::FatTree`]), the paper's novel data structure, so
//!   every search step has `O(lg n / lg lg n)` contention w.h.p.
//! * [`sample_sort_crqw`] performs a plain binary search in which every key
//!   reads the same splitter cells — free on a concurrent-read (CRQW)
//!   machine, but a `Θ(n)`-contention hot spot under the QRQW metric.
//!
//! **Substitution note.**  The paper's Algorithm A recurses until buckets
//! shrink below `n^{1/lg lg n}` (CRQW) or `2^{√lg n}` (QRQW).  For the
//! problem sizes this repository simulates (`n ≤ 2^20`) a *single* sampling
//! level already drives every bucket below those thresholds, so the
//! implementation unrolls exactly one level and finishes all buckets with a
//! parallel segmented bitonic pass — the same point at which the paper's
//! recursion would bottom out.  This is recorded in DESIGN.md.

use crate::fat_tree::FatTree;
use crate::multiple_compaction::{build_layout, McLayout};
use qrqw_prims::{bitonic_sort, bitonic_sort_segments, claim_cells, compact_erew, ClaimMode};
use qrqw_sim::schedule::ceil_lg;
use qrqw_sim::{Machine, EMPTY};

/// Which labelling strategy a sample-sort run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SearchKind {
    FatTree,
    ConcurrentBinarySearch,
}

/// Sorts `keys` (each `< 2^31`) with the QRQW variant of Algorithm A
/// (fat-tree labelling).  Returns the sorted keys.
pub fn sample_sort_qrqw<M: Machine>(m: &mut M, keys: &[u64]) -> Vec<u64> {
    sample_sort(m, keys, SearchKind::FatTree)
}

/// Sorts `keys` with the CRQW variant of Algorithm A (concurrent-read
/// binary-search labelling).
pub fn sample_sort_crqw<M: Machine>(m: &mut M, keys: &[u64]) -> Vec<u64> {
    sample_sort(m, keys, SearchKind::ConcurrentBinarySearch)
}

fn sample_sort<M: Machine>(m: &mut M, keys: &[u64], kind: SearchKind) -> Vec<u64> {
    let n = keys.len();
    if n <= 1 {
        return keys.to_vec();
    }
    assert!(keys.iter().all(|&k| k < (1 << 31)), "keys must be < 2^31");
    let lg = ceil_lg(n as u64).max(1);

    // Small inputs: the recursion would stop immediately, so sort directly.
    if n <= (4 * lg * lg) as usize {
        let base = m.alloc(n);
        m.load(base, keys);
        bitonic_sort(m, base, n);
        let out = m.dump(base, n);
        m.release_to(base);
        return out;
    }

    // --- Step 1: sample ~√n keys (each sampling processor reads one random
    // input cell).
    let input = m.alloc(n);
    m.load(input, keys);
    let sample_count = ((n as f64).sqrt().ceil() as usize).max(4).min(n);
    let sample = m.alloc(sample_count);
    m.par_for(sample_count, |i, ctx| {
        let pick = ctx.random_index(n);
        let v = ctx.read(input + pick);
        ctx.write(sample + i, v);
    });

    // --- Step 2: sort the sample (bitonic; EREW) and pick every
    // (sample_count / num_splitters)-th element as a splitter.
    bitonic_sort(m, sample, sample_count);
    let num_splitters = ((sample_count as f64).sqrt().ceil() as usize)
        .max(1)
        .min(sample_count);
    let stride = sample_count / (num_splitters + 1);
    let splitter_positions: Vec<usize> = (1..=num_splitters)
        .map(|i| (i * stride.max(1)).min(sample_count - 1))
        .collect();
    let pos_ref = &splitter_positions;
    let mut splitters: Vec<u64> = m.par_map(pos_ref.len(), |i, ctx| ctx.read(sample + pos_ref[i]));
    splitters.dedup();

    // --- Step 3: label every key with its splitter bucket.
    let labels: Vec<usize> = match kind {
        SearchKind::FatTree => {
            let tree = FatTree::build(m, &splitters, n.max(16));
            tree.search_batch(m, keys)
        }
        SearchKind::ConcurrentBinarySearch => {
            // splitters live in one shared array; every key binary-searches
            // it with plain (concurrent) reads.
            let spl = m.alloc(splitters.len());
            m.load(spl, &splitters);
            let s_len = splitters.len();
            m.par_map(n, |i, ctx| {
                let key = keys[i];
                let mut lo = 0usize;
                let mut hi = s_len;
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    let v = ctx.read(spl + mid);
                    ctx.compute(1);
                    if key < v {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                lo
            })
        }
    };
    let num_buckets = splitters.len() + 1;

    // --- Step 4: move the keys into per-bucket subarrays with relaxed heavy
    // multiple compaction.  Subarray sizes are a power of two so the finish
    // can run one segmented bitonic network over all buckets at once.
    let expected = n / num_buckets + 1;
    let seg = (4 * expected + 8 * lg as usize).next_power_of_two();
    let counts = vec![(seg / 4) as u64; num_buckets];
    let labels_u64: Vec<u64> = labels.iter().map(|&l| l as u64).collect();
    let layout = build_layout(m, &counts);
    let placed = place_keys(m, keys, &labels_u64, &layout);
    if !placed {
        // Las-Vegas restart path of the paper, collapsed to the safe
        // fallback: sort the whole input with the system (bitonic) sort.
        bitonic_sort(m, input, n);
        let out = m.dump(input, n);
        m.release_to(input);
        return out;
    }

    // --- Step 5: finish every bucket with one parallel bitonic pass over
    // the equal-size subarrays (EMPTY padding sorts to the end), then
    // compact out the padding.
    bitonic_sort_segments(m, layout.b_base, seg, num_buckets);
    let out_region = m.alloc(layout.b_len);
    let cnt = compact_erew(m, layout.b_base, layout.b_len, out_region);
    assert_eq!(cnt as usize, n);
    let out = m.dump(out_region, n);
    m.release_to(input);
    out
}

/// Dart-throwing placement of the keys' *values* into their buckets'
/// subarrays (the relaxed heavy multiple compaction of Section 4.1, with
/// the cells holding key values rather than item indices because the finish
/// sorts values in place).  Returns false if some bucket overflowed.
fn place_keys<M: Machine>(m: &mut M, keys: &[u64], labels: &[u64], layout: &McLayout) -> bool {
    let n = keys.len();
    let mut active: Vec<usize> = (0..n).collect();
    let mut team = 1usize;
    let team_cap = ceil_lg(n as u64).max(2) as usize;
    let mut rounds = 0;
    let max_rounds = 8 + 2 * qrqw_sim::schedule::log_star(n as u64);

    while !active.is_empty() && rounds < max_rounds {
        rounds += 1;
        let q = team;
        let k = active.len();
        let active_ref = &active;
        let targets: Vec<usize> = m.par_map(k * q, |a, ctx| {
            let item = active_ref[a / q];
            let label = labels[item] as usize;
            layout.cell(label, ctx.random_index(layout.subarray_len[label].max(1)))
        });
        let attempts: Vec<(u64, usize)> = (0..k * q)
            .map(|a| {
                let item = active[a / q];
                ((a % q) as u64 * n as u64 + item as u64 + 1, targets[a])
            })
            .collect();
        let won = claim_cells(m, &attempts, ClaimMode::Occupy);
        let mut keep: Vec<Option<usize>> = vec![None; k];
        for a in 0..k * q {
            if won[a] && keep[a / q].is_none() {
                keep[a / q] = Some(a);
            }
        }
        let (keep_ref, attempts_ref, won_ref) = (&keep, &attempts, &won);
        m.par_for(k * q, |a, ctx| {
            if !won_ref[a] {
                return;
            }
            let slot = a / q;
            if keep_ref[slot] == Some(a) {
                ctx.write(attempts_ref[a].1, keys[active_ref[slot]]);
            } else {
                ctx.write(attempts_ref[a].1, EMPTY);
            }
        });
        active = active
            .iter()
            .enumerate()
            .filter(|&(slot, _)| keep[slot].is_none())
            .map(|(_, &item)| item)
            .collect();
        team = (team * 4).min(team_cap);
    }

    if active.is_empty() {
        return true;
    }
    // Sequential clean-up; reports overflow as failure (relaxed semantics).
    let mut cursors: std::collections::HashMap<usize, usize> = Default::default();
    let placed = qrqw_prims::seq_place_leftovers(
        m,
        &active,
        |item| {
            let label = labels[item] as usize;
            let cur = cursors.entry(label).or_insert(0);
            (*cur < layout.subarray_len[label]).then(|| {
                *cur += 1;
                layout.cell(label, *cur - 1)
            })
        },
        |item| keys[item],
    );
    placed.iter().all(|&(_, spot)| spot.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::Pram;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..(1 << 31))).collect()
    }

    #[test]
    fn qrqw_variant_sorts_random_input() {
        let keys = random_keys(3000, 1);
        let mut pram = Pram::with_seed(4, 2);
        let got = sample_sort_qrqw(&mut pram, &keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn crqw_variant_sorts_random_input() {
        let keys = random_keys(2500, 3);
        let mut pram = Pram::with_seed(4, 4);
        let got = sample_sort_crqw(&mut pram, &keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn handles_duplicates_and_skew() {
        let mut keys = vec![7u64; 800];
        keys.extend(random_keys(800, 5));
        let mut pram = Pram::with_seed(4, 6);
        let got = sample_sort_qrqw(&mut pram, &keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn small_inputs_take_the_direct_path() {
        let keys = vec![5u64, 3, 9, 1];
        let mut pram = Pram::with_seed(4, 7);
        assert_eq!(sample_sort_qrqw(&mut pram, &keys), vec![1, 3, 5, 9]);
        assert_eq!(sample_sort_qrqw(&mut pram, &[]), Vec::<u64>::new());
        assert_eq!(sample_sort_qrqw(&mut pram, &[2]), vec![2]);
    }

    #[test]
    fn fat_tree_variant_has_lower_contention_than_concurrent_variant() {
        let keys = random_keys(4096, 9);
        let mut a = Pram::with_seed(4, 10);
        let _ = sample_sort_qrqw(&mut a, &keys);
        let mut b = Pram::with_seed(4, 10);
        let _ = sample_sort_crqw(&mut b, &keys);
        let qrqw_cont = a.trace().max_contention();
        let crqw_cont = b.trace().max_contention();
        assert!(
            qrqw_cont * 4 < crqw_cont,
            "fat-tree labelling contention ({qrqw_cont}) should be far below the hot-spot search ({crqw_cont})"
        );
        // ... and under the CRQW metric (reads free) the concurrent variant
        // is not penalised for it.
        assert!(
            b.trace().time(qrqw_sim::CostModel::Crqw) < b.trace().time(qrqw_sim::CostModel::Qrqw)
        );
    }
}
