//! Distributive sorting — sorting keys drawn from U(0,1) (Section 7.1).
//!
//! The interval `(0,1)` is split into `n / lg n` subintervals; by the
//! Chernoff bound every subinterval receives `O(lg n)` keys w.h.p., so after
//! one multiple-compaction pass that moves each key into a private cell of
//! its subinterval's subarray, a single processor per subinterval can finish
//! sequentially in `O(lg n)` time, and a final prefix-sums compaction
//! produces the sorted output.  `O(lg n)` time and linear work w.h.p.
//! (Theorem 7.1).
//!
//! Keys are represented as integers in `[0, 2^31)` interpreted as the
//! fractions `key / 2^31` — the standard fixed-point stand-in for U(0,1)
//! reals in a word-addressed PRAM.

use crate::multiple_compaction::heavy_multiple_compaction;
use qrqw_prims::{bitonic_sort, compact_erew};
use qrqw_sim::schedule::ceil_lg;
use qrqw_sim::{Machine, EMPTY};

/// Maximum representable key (exclusive): keys are fractions `key / 2^31`.
pub const KEY_RANGE: u64 = 1 << 31;

/// Sorts `keys` (each `< 2^31`, assumed drawn uniformly at random) in
/// ascending order.  Las Vegas: if the input is so skewed that some
/// subinterval overflows its `Θ(lg n)` budget, the run falls back to the
/// system (bitonic) sort, preserving correctness on any input.
pub fn sort_uniform_keys<M: Machine>(m: &mut M, keys: &[u64]) -> Vec<u64> {
    let n = keys.len();
    if n <= 1 {
        return keys.to_vec();
    }
    assert!(keys.iter().all(|&k| k < KEY_RANGE), "keys must be < 2^31");
    let lg = ceil_lg(n as u64).max(1);
    if n <= 4 * lg as usize {
        return fallback_sort(m, keys);
    }

    // Subintervals and the per-subinterval key budget (4·count cells each).
    let buckets = (n / lg as usize).max(1);
    let count = 2 * lg + 8;
    let labels: Vec<u64> = keys
        .iter()
        .map(|&k| ((k as u128 * buckets as u128) >> 31) as u64)
        .collect();
    let counts = vec![count; buckets];

    // The labelling itself is one accounted constant-work step per key.
    m.par_for(n, |_i, ctx| ctx.compute(2));

    // The paper invokes its multiple-compaction algorithm here; the relaxed
    // dart-throwing (heavy) placement is the right fit because every
    // subinterval has the same Θ(lg n) budget and a failure report simply
    // routes the run to the Las-Vegas fallback below.
    let result = heavy_multiple_compaction(m, &labels, &counts, true);
    if result.failed {
        return fallback_sort(m, keys);
    }

    // Each placed item writes its key value next to its placement, in a
    // value array parallel to B.
    let vals = m.alloc(result.layout.b_len);
    let positions = &result.positions;
    let b_base = result.layout.b_base;
    m.par_for(n, |i, ctx| {
        ctx.write(vals + (positions[i] - b_base), keys[i]);
    });

    // One processor per subinterval sorts its O(lg n) keys sequentially and
    // rewrites its subarray in sorted, front-packed order.
    let layout = &result.layout;
    m.par_for(buckets, |j, ctx| {
        let off = layout.subarray_offset[j];
        let len = layout.subarray_len[j];
        let mut local: Vec<u64> = Vec::new();
        for c in 0..len {
            let v = ctx.read(vals + off + c);
            if v != EMPTY {
                local.push(v);
            }
        }
        local.sort_unstable();
        ctx.compute((local.len() as u64 + 1) * (ceil_lg(local.len().max(2) as u64) + 1));
        for (c, &v) in local.iter().enumerate() {
            ctx.write(vals + off + c, v);
        }
        for c in local.len()..len {
            ctx.write(vals + off + c, EMPTY);
        }
    });

    // Compact the subinterval-ordered, locally sorted values into the final
    // sorted array.
    let out = m.alloc(result.layout.b_len.max(1));
    let cnt = compact_erew(m, vals, result.layout.b_len, out);
    assert_eq!(cnt as usize, n);
    let sorted = m.dump(out, n);
    m.release_to(vals);
    sorted
}

fn fallback_sort<M: Machine>(m: &mut M, keys: &[u64]) -> Vec<u64> {
    let base = m.alloc(keys.len());
    m.load(base, keys);
    bitonic_sort(m, base, keys.len());
    let out = m.dump(base, keys.len());
    m.release_to(base);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::Pram;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn uniform_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..KEY_RANGE)).collect()
    }

    #[test]
    fn sorts_uniform_input() {
        let keys = uniform_keys(5000, 1);
        let mut pram = Pram::with_seed(4, 2);
        let got = sort_uniform_keys(&mut pram, &keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn survives_skewed_input_via_las_vegas_fallback() {
        // every key in the same subinterval — the w.h.p. assumption is
        // violated, the algorithm must still sort correctly
        let keys: Vec<u64> = (0..600).map(|i| 1000 + i).collect();
        let mut pram = Pram::with_seed(4, 3);
        let got = sort_uniform_keys(&mut pram, &keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn tiny_inputs() {
        let mut pram = Pram::with_seed(4, 4);
        assert_eq!(sort_uniform_keys(&mut pram, &[]), Vec::<u64>::new());
        assert_eq!(sort_uniform_keys(&mut pram, &[9]), vec![9]);
        assert_eq!(sort_uniform_keys(&mut pram, &[9, 3]), vec![3, 9]);
    }

    #[test]
    fn work_is_near_linear_for_uniform_input() {
        let n = 8192;
        let keys = uniform_keys(n, 7);
        let mut pram = Pram::with_seed(4, 8);
        let got = sort_uniform_keys(&mut pram, &keys);
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            pram.trace().work() <= 400 * n as u64,
            "work {} not near-linear",
            pram.trace().work()
        );
    }

    #[test]
    fn handles_duplicate_keys() {
        let mut keys = uniform_keys(1000, 9);
        keys.extend_from_slice(&keys.clone()[..500]);
        let mut pram = Pram::with_seed(4, 10);
        let got = sort_uniform_keys(&mut pram, &keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}
