//! Parallel hashing (Section 6).
//!
//! Builds a linear-size hash table for a set `S` of `n` distinct keys in
//! `O(lg n)` time and linear work w.h.p. on the QRQW PRAM, and answers `n`
//! membership queries in `O(lg n / lg lg n)` time (Theorem 6.1).
//!
//! The construction follows Gil–Matias oblivious execution, adapted as in
//! the paper:
//!
//! 1. The first-level function is drawn from the
//!    Dietzfelbinger–Meyer-auf-der-Heide class
//!    `R = { h(x) = (g(x) + a_{f(x)}) mod n }` with `k = Θ(n^{3/7})`
//!    displacement parameters `a_j`, because its buckets are
//!    `O(lg n / lg lg n)`-bounded w.h.p. (Fact 6.3) — polynomial hash
//!    functions alone would give polynomially large buckets.
//! 2. Each `a_j` is **duplicated** into `Θ(n/k)` copies (Lemma 6.4); during
//!    evaluation every key reads a *random copy* of `a_{f(x)}`, so the
//!    contention of the evaluation step is `O(lg n / lg lg n)` w.h.p. — the
//!    paper's duplication technique, exercised with real accounted reads.
//! 3. `O(lg lg n)` oblivious iterations follow: blocks of geometrically
//!    growing size are allocated, every still-active bucket claims a random
//!    block (occupy-mode claim) and tries to map its keys injectively into
//!    it with a random linear hash function, recording the block and the
//!    function on success.
//!
//! Lookups recompute the first-level function (same duplicated reads), read
//! the bucket's directory entry and probe one cell of its block.

use qrqw_prims::{claim_cells, duplicate_values, ClaimMode};
use qrqw_sim::schedule::lg_lg;
use qrqw_sim::{Machine, EMPTY};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The Mersenne prime `2^31 - 1`, the field size `q` for all hash-function
/// arithmetic (keys must be below it).
pub const HASH_PRIME: u64 = (1 << 31) - 1;

/// A degree-`d` polynomial hash function `x ↦ ((Σ aᵢ xⁱ) mod q) mod range`.
#[derive(Debug, Clone)]
pub struct PolyHash {
    coeffs: Vec<u64>,
    range: u64,
}

impl PolyHash {
    /// Draws a random polynomial of degree `degree` mapping into `range`.
    pub fn random(rng: &mut SmallRng, degree: usize, range: u64) -> Self {
        PolyHash {
            coeffs: (0..=degree).map(|_| rng.gen_range(0..HASH_PRIME)).collect(),
            range: range.max(1),
        }
    }

    /// Evaluates the polynomial (Horner) — `degree + 1` arithmetic ops.
    pub fn eval(&self, x: u64) -> u64 {
        let mut acc: u128 = 0;
        for &c in self.coeffs.iter().rev() {
            acc = (acc * (x as u128) + c as u128) % HASH_PRIME as u128;
        }
        (acc as u64) % self.range
    }

    /// Number of arithmetic operations one evaluation charges.
    pub fn cost(&self) -> u64 {
        self.coeffs.len() as u64
    }
}

/// A two-level hash table built by the QRQW algorithm of Theorem 6.1.
#[derive(Debug)]
pub struct QrqwHashTable {
    n: usize,
    k: usize,
    copies: usize,
    /// Region holding the duplicated displacement parameters `a_j`.
    a_region: usize,
    f: PolyHash,
    g: PolyHash,
    /// Directory region: 3 cells per bucket (block base, secondary a,
    /// secondary b); `EMPTY` block base means the bucket is empty.
    directory: usize,
    /// Per-bucket block size (host mirror of what the directory describes).
    block_size: Vec<u64>,
    /// Build statistics.
    pub iterations: u64,
    /// Whether any bucket needed the sequential Las-Vegas clean-up.
    pub fallback_used: bool,
}

impl QrqwHashTable {
    /// First-level bucket of key `x`, *without* accounting (host-side use
    /// only; the accounted evaluation happens inside build/lookup steps).
    fn bucket_of<M: Machine>(&self, m: &M, x: u64) -> usize {
        let j = self.f.eval(x) as usize;
        let a = m.peek(self.a_region + j * self.copies);
        ((self.g.eval(x) + a) % self.n as u64) as usize
    }

    /// Builds a hash table for the distinct keys `keys` (all `< 2^31 - 1`)
    /// on any [`Machine`] backend.  Host-side random draws (the hash
    /// functions themselves) come from a `SmallRng` seeded by the machine
    /// seed, so two backends with the same seed build with the same hash
    /// functions; the occupy-mode block claims may still resolve
    /// differently, so the resulting tables are semantically equivalent
    /// (identical membership answers) rather than bit-identical.
    pub fn build<M: Machine>(m: &mut M, keys: &[u64]) -> QrqwHashTable {
        let n = keys.len().max(1);
        assert!(
            keys.iter().all(|&k| k < HASH_PRIME),
            "keys must be < 2^31-1"
        );
        let mut rng = SmallRng::seed_from_u64(m.seed() ^ 0x9A17);

        // --- Step 1: draw h ∈ R and duplicate its parameters (Lemma 6.4).
        let k = ((n as f64).powf(3.0 / 7.0).ceil() as usize).max(1);
        let copies = (4 * n).div_ceil(k).max(1);
        let f = PolyHash::random(&mut rng, 7, k as u64);
        let g = PolyHash::random(&mut rng, 11, n as u64);
        let a_src = m.alloc(k);
        let a_vals: Vec<u64> = (0..k).map(|_| rng.gen_range(0..n as u64)).collect();
        m.par_for(k, |j, ctx| {
            ctx.compute(1);
            ctx.write(a_src + j, a_vals[j]);
        });
        let a_region = m.alloc(k * copies);
        duplicate_values(m, a_src, k, a_region, copies);

        let directory = m.alloc(3 * n);
        let mut table = QrqwHashTable {
            n,
            k,
            copies,
            a_region,
            f,
            g,
            directory,
            block_size: vec![0; n],
            iterations: 0,
            fallback_used: false,
        };
        if keys.is_empty() {
            return table;
        }

        // Accounted evaluation of h on every key: each key reads a random
        // copy of a_{f(x)} — the low-contention evaluation of Lemma 6.4.
        let buckets = table.eval_batch(m, keys);

        // Group keys by bucket (host mirror of the processors' private
        // knowledge of their own bucket).
        let mut bucket_keys: Vec<Vec<u64>> = vec![Vec::new(); n];
        for (i, &b) in buckets.iter().enumerate() {
            bucket_keys[b].push(keys[i]);
        }
        let mut active: Vec<usize> = (0..n).filter(|&b| !bucket_keys[b].is_empty()).collect();

        // --- Oblivious iterations (allocation + hashing).
        let t_star = 2 * lg_lg(n as u64) + 6;
        let mut iter = 0u64;
        while !active.is_empty() && iter < t_star {
            iter += 1;
            let x_t = 1usize << (iter + 2).min(12); // block size (capped)
            let m_t = ((2 * n) >> (2 * (iter as usize - 1)).min(24)).max(64); // number of blocks
            let blocks = m.alloc(m_t * (x_t + 1)); // +1 header cell per block

            // Allocation substep: every active bucket claims a random block.
            let active_ref = &active;
            let picks: Vec<usize> = m.par_map(active_ref.len(), |_b, ctx| ctx.random_index(m_t));
            let attempts: Vec<(u64, usize)> = active
                .iter()
                .zip(&picks)
                .map(|(&b, &blk)| (b as u64 + 1, blocks + blk * (x_t + 1)))
                .collect();
            let won = claim_cells(m, &attempts, ClaimMode::Occupy);

            // Hashing substep: claimed buckets try a random linear function.
            let mut sec: Vec<(u64, u64)> = Vec::with_capacity(active.len());
            for _ in 0..active.len() {
                sec.push((rng.gen_range(1..HASH_PRIME), rng.gen_range(0..HASH_PRIME)));
            }
            // Each key of a claimed bucket writes itself into the block and
            // reads back; collisions are detected exactly as in Section 5.1.
            let mut writes: Vec<(u64, usize)> = Vec::new(); // (key, cell)
            let mut write_owner: Vec<usize> = Vec::new(); // active-slot per write
            for (slot, &b) in active.iter().enumerate() {
                if !won[slot] {
                    continue;
                }
                let (sa, sb) = sec[slot];
                let body = attempts[slot].1 + 1;
                for &key in &bucket_keys[b] {
                    let pos = (((sa as u128 * key as u128 + sb as u128) % HASH_PRIME as u128)
                        % x_t as u128) as usize;
                    writes.push((key, body + pos));
                    write_owner.push(slot);
                }
            }
            let writes_ref = &writes;
            m.par_for(writes_ref.len(), |w, ctx| {
                ctx.compute(2);
                ctx.write(writes_ref[w].1, writes_ref[w].0);
            });
            let ok: Vec<bool> = m.par_map(writes_ref.len(), |w, ctx| {
                ctx.read(writes_ref[w].1) == writes_ref[w].0
            });
            // Aggregate per bucket (the per-bucket OR the paper charges at
            // contention ≤ bucket size).
            let mut bucket_ok: Vec<bool> = vec![true; active.len()];
            for (w, &slot) in write_owner.iter().enumerate() {
                bucket_ok[slot] &= ok[w];
            }
            m.par_for(writes_ref.len(), |w, ctx| {
                // model the failure-flag write of each key
                let _ = w;
                ctx.compute(1);
            });

            // Successful buckets record their directory entry.
            let mut dir_writes: Vec<(usize, u64, u64, u64)> = Vec::new();
            let mut still = Vec::new();
            for (slot, &b) in active.iter().enumerate() {
                if won[slot] && bucket_ok[slot] {
                    let (sa, sb) = sec[slot];
                    dir_writes.push((b, (attempts[slot].1 + 1) as u64, sa, sb));
                    table.block_size[b] = x_t as u64;
                } else {
                    still.push(b);
                }
            }
            let dir_ref = &dir_writes;
            let dir_base = directory;
            m.par_for(dir_ref.len(), |d, ctx| {
                let (b, base, sa, sb) = dir_ref[d];
                ctx.write(dir_base + 3 * b, base);
                ctx.write(dir_base + 3 * b + 1, sa);
                ctx.write(dir_base + 3 * b + 2, sb);
            });
            active = still;
        }
        table.iterations = iter;

        // Las-Vegas clean-up: any bucket still unserved gets a private
        // quadratic-size block built sequentially (FKS second level).
        if !active.is_empty() {
            table.fallback_used = true;
            for &b in &active {
                let keys_b = bucket_keys[b].clone();
                let size = (keys_b.len() * keys_b.len() * 2).max(4);
                let block = m.alloc(size + 1);
                let mut placed = None;
                for _try in 0..64 {
                    let sa = rng.gen_range(1..HASH_PRIME);
                    let sb = rng.gen_range(0..HASH_PRIME);
                    let mut cells: Vec<usize> = keys_b
                        .iter()
                        .map(|&key| {
                            (((sa as u128 * key as u128 + sb as u128) % HASH_PRIME as u128)
                                % size as u128) as usize
                        })
                        .collect();
                    cells.sort_unstable();
                    cells.dedup();
                    if cells.len() == keys_b.len() {
                        placed = Some((sa, sb));
                        break;
                    }
                }
                let (sa, sb) = placed.expect("quadratic block admits a perfect linear hash");
                let keys_ref = &keys_b;
                m.par_for(keys_ref.len(), |i, ctx| {
                    let key = keys_ref[i];
                    let pos = (((sa as u128 * key as u128 + sb as u128) % HASH_PRIME as u128)
                        % size as u128) as usize;
                    ctx.write(block + 1 + pos, key);
                    ctx.compute(2);
                });
                m.par_for(1, |_p, ctx| {
                    ctx.write(dir_base_of(directory, b), (block + 1) as u64);
                    ctx.write(dir_base_of(directory, b) + 1, sa);
                    ctx.write(dir_base_of(directory, b) + 2, sb);
                });
                table.block_size[b] = size as u64;
            }
        }
        table
    }

    /// Accounted batch evaluation of the first-level function: every key
    /// reads a random copy of its `a_{f(x)}` parameter (Lemma 6.4).
    fn eval_batch<M: Machine>(&self, m: &mut M, keys: &[u64]) -> Vec<usize> {
        let f = self.f.clone();
        let g = self.g.clone();
        let (copies, a_region, n) = (self.copies, self.a_region, self.n);
        m.par_map(keys.len(), |i, ctx| {
            let x = keys[i];
            ctx.compute(f.cost() + g.cost());
            let j = f.eval(x) as usize;
            let r = ctx.random_index(copies);
            let a = ctx.read(a_region + j * copies + r);
            ((g.eval(x) + a) % n as u64) as usize
        })
    }

    /// Answers `queries.len()` membership queries in parallel, returning
    /// `true` for each query key present in the table.
    pub fn lookup_batch<M: Machine>(&self, m: &mut M, queries: &[u64]) -> Vec<bool> {
        if queries.is_empty() {
            return Vec::new();
        }
        let buckets = self.eval_batch(m, queries);
        let directory = self.directory;
        let block_size = &self.block_size;
        m.par_map(queries.len(), |i, ctx| {
            let b = buckets[i];
            let base = ctx.read(directory + 3 * b);
            if base == EMPTY {
                return false;
            }
            let sa = ctx.read(directory + 3 * b + 1);
            let sb = ctx.read(directory + 3 * b + 2);
            let size = block_size[b].max(1);
            let x = queries[i];
            ctx.compute(2);
            let pos = (((sa as u128 * x as u128 + sb as u128) % HASH_PRIME as u128) % size as u128)
                as usize;
            ctx.read(base as usize + pos) == x
        })
    }

    /// Host-side membership check (no accounting), for validation in tests.
    pub fn contains<M: Machine>(&self, m: &M, x: u64) -> bool {
        let b = self.bucket_of(m, x);
        let base = m.peek(self.directory + 3 * b);
        if base == EMPTY {
            return false;
        }
        let sa = m.peek(self.directory + 3 * b + 1);
        let sb = m.peek(self.directory + 3 * b + 2);
        let size = self.block_size[b].max(1);
        let pos =
            (((sa as u128 * x as u128 + sb as u128) % HASH_PRIME as u128) % size as u128) as usize;
        m.peek(base as usize + pos) == x
    }

    /// Number of first-level displacement parameters (`k = Θ(n^{3/7})`).
    pub fn displacement_parameters(&self) -> usize {
        self.k
    }
}

fn dir_base_of(directory: usize, bucket: usize) -> usize {
    directory + 3 * bucket
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::schedule::ceil_lg;
    use qrqw_sim::{CostModel, Pram};

    fn distinct_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut set = std::collections::HashSet::new();
        while set.len() < n {
            set.insert(rng.gen_range(0..HASH_PRIME));
        }
        set.into_iter().collect()
    }

    #[test]
    fn build_and_lookup_positive_and_negative() {
        let keys = distinct_keys(500, 3);
        let mut pram = Pram::with_seed(4, 5);
        let table = QrqwHashTable::build(&mut pram, &keys);
        let hits = table.lookup_batch(&mut pram, &keys);
        assert!(hits.iter().all(|&h| h), "every stored key must be found");

        let others: Vec<u64> = distinct_keys(500, 77)
            .into_iter()
            .filter(|k| !keys.contains(k))
            .collect();
        let misses = table.lookup_batch(&mut pram, &others);
        assert!(misses.iter().all(|&h| !h), "absent keys must not be found");
    }

    #[test]
    fn host_side_contains_agrees_with_lookup() {
        let keys = distinct_keys(128, 9);
        let mut pram = Pram::with_seed(4, 6);
        let table = QrqwHashTable::build(&mut pram, &keys);
        for &k in keys.iter().take(20) {
            assert!(table.contains(&pram, k));
        }
        assert!(!table.contains(&pram, HASH_PRIME - 1));
    }

    #[test]
    fn contention_of_evaluation_is_sublogarithmic_ish() {
        let n = 4096;
        let keys = distinct_keys(n, 13);
        let mut pram = Pram::with_seed(4, 7);
        let table = QrqwHashTable::build(&mut pram, &keys);
        let _ = pram.take_trace();
        let _ = table.lookup_batch(&mut pram, &keys);
        let lg = ceil_lg(n as u64);
        assert!(
            pram.trace().max_contention() <= 3 * lg,
            "lookup contention {} too high (duplication should bound it by O(lg n / lg lg n))",
            pram.trace().max_contention()
        );
        // the CRCW time is a small constant (dominated by the polynomial
        // evaluation's arithmetic, not by contention)
        assert!(pram.trace().time(CostModel::Crcw) <= 64);
    }

    #[test]
    fn build_work_is_near_linear() {
        let n = 2048;
        let keys = distinct_keys(n, 21);
        let mut pram = Pram::with_seed(4, 8);
        let _ = QrqwHashTable::build(&mut pram, &keys);
        assert!(
            pram.trace().work() <= 200 * n as u64,
            "build work {} not near-linear",
            pram.trace().work()
        );
    }

    #[test]
    fn empty_and_single_key_tables() {
        let mut pram = Pram::with_seed(4, 1);
        let table = QrqwHashTable::build(&mut pram, &[]);
        assert!(table.lookup_batch(&mut pram, &[]).is_empty());
        assert_eq!(table.lookup_batch(&mut pram, &[42]), vec![false]);

        let table = QrqwHashTable::build(&mut pram, &[42]);
        assert_eq!(table.lookup_batch(&mut pram, &[42, 43]), vec![true, false]);
    }

    #[test]
    fn duplicate_displacement_parameters_exist() {
        let keys = distinct_keys(1000, 2);
        let mut pram = Pram::with_seed(4, 3);
        let table = QrqwHashTable::build(&mut pram, &keys);
        assert!(table.displacement_parameters() >= 1);
        assert!(table.displacement_parameters() < keys.len());
    }
}
