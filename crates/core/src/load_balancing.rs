//! Load balancing (Section 3).
//!
//! `n` processors hold `m` independent tasks; processor `i` starts with
//! `loads[i]` of them.  The goal is to redistribute the tasks so that every
//! processor ends with `O(1 + m/n)` of them.
//!
//! * [`load_balance_qrqw`] — the paper's low-contention algorithm
//!   (Lemma 3.3 / Theorem 3.4): tasks are grouped into super-tasks of size
//!   `⌈m/n⌉`, and `O(lg lg L)` *dispersal stages* follow, each of which
//!   (1) injectively maps the currently overloaded processors into an
//!   auxiliary array with the linear-compaction primitive, (2) broadcasts
//!   each auxiliary cell to a standing team of `u_i` processors, and
//!   (3) lets every team member adopt a chunk of at most `2 u_i`
//!   super-tasks from its overloaded processor.  Concurrent reads are
//!   replaced by the broadcast exactly as Section 3.2 prescribes.
//!
//! * [`load_balance_erew`] — the zero-contention baseline of Table I: one
//!   prefix-sums pass assigns every task a global rank and the tasks are
//!   dealt out in contiguous chunks of `⌈m/n⌉`.
//!
//! The paper also proves an `Ω(lg L)` lower bound (Theorem 3.2, by
//! reduction from broadcasting); the Table I harness exercises the
//! implementation across a range of `L` values to exhibit that growth.

use qrqw_prims::{
    duplicate_values, linear_compaction, prefix_sums_exclusive, propagate_nonempty_forward,
};
use qrqw_sim::schedule::lg_lg;
use qrqw_sim::{Machine, EMPTY};

/// A contiguous run of tasks, identified by the processor that originally
/// held them: tasks `start .. start + len` of `origin`'s initial task array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskBlock {
    /// Processor that held these tasks in the input.
    pub origin: usize,
    /// First task index within `origin`'s initial array.
    pub start: u64,
    /// Number of tasks in the block.
    pub len: u64,
}

/// Result of a load-balancing run.
#[derive(Debug, Clone)]
pub struct LoadBalanceResult {
    /// `assignment[p]` lists the task blocks processor `p` ends up with.
    pub assignment: Vec<Vec<TaskBlock>>,
    /// The largest number of tasks held by any processor after balancing.
    pub max_final_load: u64,
    /// Number of dispersal stages executed (0 for the EREW baseline).
    pub stages: u64,
    /// Whether the final greedy clean-up had to move any block.
    pub fallback_used: bool,
}

impl LoadBalanceResult {
    /// Verifies that every input task appears in exactly one output block.
    pub fn covers_exactly(&self, loads: &[u64]) -> bool {
        let mut seen: Vec<Vec<bool>> = loads.iter().map(|&l| vec![false; l as usize]).collect();
        for blocks in &self.assignment {
            for b in blocks {
                for t in b.start..b.start + b.len {
                    let Some(slot) = seen.get_mut(b.origin).and_then(|v| v.get_mut(t as usize))
                    else {
                        return false;
                    };
                    if *slot {
                        return false;
                    }
                    *slot = true;
                }
            }
        }
        seen.iter().all(|v| v.iter().all(|&b| b))
    }
}

/// Internal representation during the dispersal stages: a contiguous run of
/// *super-tasks* of one origin processor.
#[derive(Debug, Clone, Copy)]
struct SuperBlock {
    origin: usize,
    st_start: u64,
    st_len: u64,
}

fn super_blocks_to_tasks(blocks: &[SuperBlock], loads: &[u64], g: u64) -> Vec<TaskBlock> {
    blocks
        .iter()
        .filter_map(|b| {
            let start = b.st_start * g;
            let end = ((b.st_start + b.st_len) * g).min(loads[b.origin]);
            if end > start {
                Some(TaskBlock {
                    origin: b.origin,
                    start,
                    len: end - start,
                })
            } else {
                None
            }
        })
        .collect()
}

/// The QRQW load-balancing algorithm (Theorem 3.4).
pub fn load_balance_qrqw<M: Machine>(machine: &mut M, loads: &[u64]) -> LoadBalanceResult {
    let n = loads.len();
    if n == 0 {
        return LoadBalanceResult {
            assignment: Vec::new(),
            max_final_load: 0,
            stages: 0,
            fallback_used: false,
        };
    }
    let m: u64 = loads.iter().sum();
    let g = (m.div_ceil(n as u64)).max(1); // super-task size

    // Ownership state in super-task units ("array of arrays" format: every
    // processor holds a list of pointers to runs of super-tasks).
    let mut owner: Vec<Vec<SuperBlock>> = (0..n)
        .map(|i| {
            let st = loads[i].div_ceil(g);
            if st == 0 {
                Vec::new()
            } else {
                vec![SuperBlock {
                    origin: i,
                    st_start: 0,
                    st_len: st,
                }]
            }
        })
        .collect();
    let mut cur: Vec<u64> = owner
        .iter()
        .map(|b| b.iter().map(|x| x.st_len).sum())
        .collect();
    let max_load = |cur: &[u64]| cur.iter().copied().max().unwrap_or(0);

    // Every processor inspects its own load once (the accounted equivalent
    // of reading the `m_i` input).
    machine.par_for(n, |_i, ctx| ctx.compute(1));

    let l0 = max_load(&cur);
    let mut stages = 0u64;
    let max_stages = 2 * lg_lg(l0.max(4)) + 10;
    let settle = 24u64; // constant load at which the dispersal stops

    while max_load(&cur) > settle && stages < max_stages {
        stages += 1;
        let l_cur = max_load(&cur);
        let u = ((l_cur as f64).sqrt().ceil() as u64).max(2);

        // Step 0: overloaded processors announce themselves in a source
        // array (one exclusive write each).
        let threshold = 2 * u;
        let src = machine.alloc(n);
        let overloaded: Vec<usize> = (0..n).filter(|&i| cur[i] >= threshold).collect();
        if overloaded.is_empty() {
            machine.release_to(src);
            break;
        }
        let over_ref = &overloaded;
        machine.par_for(over_ref.len(), |x, ctx| {
            ctx.write(src + over_ref[x], over_ref[x] as u64);
        });

        // Step 1: linear compaction maps them injectively into the auxiliary
        // array; each auxiliary cell has a team of u processors standing by.
        let aux_size = (4 * n.div_ceil(u as usize))
            .max(4 * overloaded.len())
            .max(4);
        let aux = machine.alloc(aux_size);
        let placement = linear_compaction(machine, src, n, aux, aux_size);

        // Step 2: broadcast every auxiliary cell to its team (the paper's
        // replacement for concurrent reads), then every team member adopts
        // a chunk of at most 2u super-tasks.  Teams have ⌈u/2⌉ members so
        // the total number of team slots stays at ~2n and no destination
        // processor receives more than two chunks per stage.
        let team_size = (u as usize).div_ceil(2).max(1);
        let teams = machine.alloc(aux_size * team_size);
        duplicate_values(machine, aux, aux_size, teams, team_size);

        // Snapshot the overloaded processors' blocks, then clear them.
        let mut chunk_donors: Vec<(usize, Vec<SuperBlock>)> = Vec::new();
        for &(proc_id, aux_cell) in &placement.placements {
            chunk_donors.push((aux_cell, owner[proc_id].clone()));
            owner[proc_id].clear();
            cur[proc_id] = 0;
        }

        // Accounted adoption step: every member of a non-empty team reads
        // its broadcast copy and performs O(1) bookkeeping.
        let active_members: Vec<usize> = chunk_donors
            .iter()
            .flat_map(|&(cell, _)| (0..team_size).map(move |v| cell * team_size + v))
            .collect();
        let members_ref = &active_members;
        machine.par_for(members_ref.len(), |x, ctx| {
            let slot = members_ref[x];
            let _donor = ctx.read(teams + slot);
            ctx.compute(2);
        });

        // Host-side bookkeeping mirroring what the team members just did:
        // split the donor's super-tasks into chunks of 2u and hand chunk v
        // to processor (cell·team_size + v) mod n.
        for (cell, blocks) in chunk_donors {
            let mut flat: Vec<SuperBlock> = blocks;
            let mut v = 0usize;
            let chunk = 2 * u;
            while !flat.is_empty() {
                let dest = (cell * team_size + v) % n;
                v += 1;
                let mut taken = 0u64;
                let mut piece = Vec::new();
                while taken < chunk {
                    let Some(mut b) = flat.pop() else { break };
                    let take = b.st_len.min(chunk - taken);
                    piece.push(SuperBlock {
                        origin: b.origin,
                        st_start: b.st_start,
                        st_len: take,
                    });
                    taken += take;
                    if b.st_len > take {
                        b.st_start += take;
                        b.st_len -= take;
                        flat.push(b);
                    }
                }
                cur[dest] += taken;
                owner[dest].extend(piece);
            }
        }
        machine.release_to(src);
    }

    // Greedy clean-up (Las Vegas tail): move whole blocks from processors
    // above the target to processors below it; charged as one step whose
    // per-processor cost is the number of blocks moved.
    let target = settle.max(2 * m.div_ceil(n as u64));
    let mut fallback_used = false;
    if max_load(&cur) > 2 * target {
        fallback_used = true;
        let mut moved = 0u64;
        let mut light: Vec<usize> = (0..n).filter(|&i| cur[i] < target).collect();
        for i in 0..n {
            while cur[i] > 2 * target {
                let Some(b) = owner[i].pop() else { break };
                cur[i] -= b.st_len;
                let dest = match light.last() {
                    Some(&d) => d,
                    None => break,
                };
                owner[dest].push(b);
                cur[dest] += b.st_len;
                moved += 1;
                if cur[dest] >= target {
                    light.pop();
                }
            }
        }
        machine.par_for(1, |_p, ctx| ctx.compute(moved.max(1)));
    }

    let assignment: Vec<Vec<TaskBlock>> = owner
        .iter()
        .map(|blocks| super_blocks_to_tasks(blocks, loads, g))
        .collect();
    let max_final_load = assignment
        .iter()
        .map(|bs| bs.iter().map(|b| b.len).sum::<u64>())
        .max()
        .unwrap_or(0);
    LoadBalanceResult {
        assignment,
        max_final_load,
        stages,
        fallback_used,
    }
}

/// The EREW prefix-sums baseline (the Table I comparison row): every task
/// gets a global rank via one prefix-sums pass and ranks are dealt out in
/// chunks of `⌈m/n⌉`.  `Θ(lg n + lg m)` time, `O(n + m)` work.
pub fn load_balance_erew<M: Machine>(machine: &mut M, loads: &[u64]) -> LoadBalanceResult {
    let n = loads.len();
    if n == 0 {
        return LoadBalanceResult {
            assignment: Vec::new(),
            max_final_load: 0,
            stages: 0,
            fallback_used: false,
        };
    }
    let m: u64 = loads.iter().sum();
    let g = m.div_ceil(n as u64).max(1) as usize;

    // Prefix sums over the loads give every processor its tasks' global
    // offset.
    let offs = machine.alloc(n);
    machine.par_for(n, |i, ctx| {
        ctx.compute(1);
        ctx.write(offs + i, loads[i]);
    });
    prefix_sums_exclusive(machine, offs, n);
    let offsets: Vec<u64> = machine.dump(offs, n);

    // Mark every segment start of the global task array with
    // (origin, offset) and propagate it across the segment, so that task
    // rank p learns its origin without any concurrent reads.
    let tasks = machine.alloc((m as usize).max(1));
    machine.par_for(n, |i, ctx| {
        if loads[i] > 0 {
            let off = ctx.read(offs + i);
            ctx.write(tasks + off as usize, ((i as u64) << 32) | off);
        }
    });
    propagate_nonempty_forward(machine, tasks, m as usize);

    // Every task rank computes its destination (rank / g); the blocks are
    // reconstructed host-side from the same arithmetic.
    machine.par_for(m as usize, |p, ctx| {
        let w = ctx.read(tasks + p);
        debug_assert_ne!(w, EMPTY);
        ctx.compute(2);
    });
    machine.release_to(offs);

    let mut assignment: Vec<Vec<TaskBlock>> = vec![Vec::new(); n];
    for i in 0..n {
        let mut k = 0u64;
        while k < loads[i] {
            let rank = offsets[i] + k;
            let dest = (rank as usize / g).min(n - 1);
            let room = (g as u64 - rank % g as u64).min(loads[i] - k);
            assignment[dest].push(TaskBlock {
                origin: i,
                start: k,
                len: room,
            });
            k += room;
        }
    }
    let max_final_load = assignment
        .iter()
        .map(|bs| bs.iter().map(|b| b.len).sum::<u64>())
        .max()
        .unwrap_or(0);
    LoadBalanceResult {
        assignment,
        max_final_load,
        stages: 0,
        fallback_used: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::Pram;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn skewed_loads(n: usize, l: u64, seed: u64) -> Vec<u64> {
        // a few processors hold load L, the rest hold 0 or 1, total ~<= 2n
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut loads = vec![0u64; n];
        let heavy = (n as u64 / l.max(1)).clamp(1, n as u64) as usize;
        for load in loads.iter_mut().take(heavy) {
            *load = l;
        }
        for load in loads.iter_mut().skip(heavy) {
            *load = rng.gen_range(0..2);
        }
        loads
    }

    #[test]
    fn qrqw_balances_skewed_input() {
        let n = 512;
        let loads = skewed_loads(n, 64, 1);
        let m: u64 = loads.iter().sum();
        let mut pram = Pram::with_seed(4, 3);
        let res = load_balance_qrqw(&mut pram, &loads);
        assert!(res.covers_exactly(&loads));
        let bound = 64 * (1 + m / n as u64);
        assert!(
            res.max_final_load <= bound,
            "final load {} exceeds O(1+m/n) bound {}",
            res.max_final_load,
            bound
        );
    }

    #[test]
    fn qrqw_handles_single_hot_processor() {
        let n = 256;
        let mut loads = vec![0u64; n];
        loads[17] = 200;
        let mut pram = Pram::with_seed(4, 5);
        let res = load_balance_qrqw(&mut pram, &loads);
        assert!(res.covers_exactly(&loads));
        assert!(res.max_final_load <= 64, "load {}", res.max_final_load);
        assert!(res.stages >= 1);
    }

    #[test]
    fn qrqw_is_noop_when_already_balanced() {
        let loads = vec![2u64; 128];
        let mut pram = Pram::with_seed(4, 6);
        let res = load_balance_qrqw(&mut pram, &loads);
        assert!(res.covers_exactly(&loads));
        assert_eq!(res.stages, 0);
        assert_eq!(res.max_final_load, 2);
    }

    #[test]
    fn erew_baseline_balances_exactly() {
        let n = 300;
        let loads = skewed_loads(n, 128, 9);
        let m: u64 = loads.iter().sum();
        let mut pram = Pram::with_seed(4, 2);
        let res = load_balance_erew(&mut pram, &loads);
        assert!(res.covers_exactly(&loads));
        assert!(res.max_final_load <= m.div_ceil(n as u64) + 1);
    }

    #[test]
    fn erew_time_tracks_lg_n_not_l() {
        // the EREW baseline's time is (almost) independent of L
        let run = |l: u64| {
            let loads = skewed_loads(1024, l, 4);
            let mut pram = Pram::with_seed(4, 4);
            load_balance_erew(&mut pram, &loads);
            pram.trace().time(qrqw_sim::CostModel::Qrqw)
        };
        let t_small = run(4);
        let t_big = run(512);
        assert!(
            t_big <= t_small * 2,
            "EREW baseline should not grow with L ({t_small} vs {t_big})"
        );
    }

    #[test]
    fn empty_and_zero_load_inputs() {
        let mut pram = Pram::new(4);
        let res = load_balance_qrqw(&mut pram, &[]);
        assert!(res.assignment.is_empty());
        let res = load_balance_qrqw(&mut pram, &[0, 0, 0]);
        assert!(res.covers_exactly(&[0, 0, 0]));
        assert_eq!(res.max_final_load, 0);
        let res = load_balance_erew(&mut pram, &[0, 0, 0]);
        assert!(res.covers_exactly(&[0, 0, 0]));
    }

    #[test]
    fn block_accounting_is_exact_for_random_loads() {
        let mut rng = SmallRng::seed_from_u64(12);
        let loads: Vec<u64> = (0..200).map(|_| rng.gen_range(0..10)).collect();
        let mut pram = Pram::with_seed(4, 8);
        let res = load_balance_qrqw(&mut pram, &loads);
        assert!(res.covers_exactly(&loads));
        let total_out: u64 = res
            .assignment
            .iter()
            .flat_map(|bs| bs.iter().map(|b| b.len))
            .sum();
        assert_eq!(total_out, loads.iter().sum::<u64>());
    }
}
