//! Random permutation generation (Section 5.1.1 and the Section 5.2
//! experiment's three algorithms).
//!
//! * [`random_permutation_qrqw`] — the paper's new QRQW algorithm
//!   (Theorem 5.1, adapted from Gil's renaming algorithm): `O(lg lg n)`
//!   dart-throwing rounds into geometrically shrinking fresh subarrays,
//!   followed by one prefix-sums compaction.  `O(lg n)` time and linear
//!   work w.h.p. on the QRQW PRAM.
//!
//! * [`random_permutation_dart_scan`] — the "dart-throwing with scans"
//!   algorithm of the MasPar experiment: every round throws the unplaced
//!   items into an array of size `n` and compacts the winners with the
//!   machine's scan primitive.
//!
//! * [`random_permutation_sorting_erew`] — the popular sorting-based EREW
//!   algorithm: draw a random 31-bit key per item, sort (bitonic, as the
//!   MasPar system sort does), output the ranks; retry on key collisions.
//!
//! All three are Las Vegas: they always output a valid permutation.
//!
//! Every algorithm here is generic over the [`Machine`] backend: the same
//! source runs on the exact-cost simulator ([`qrqw_sim::Pram`]) and on the
//! native rayon/atomics machine (`qrqw_exec::NativeMachine`).  Because both
//! backends draw per-`(seed, step, proc)` random streams from the same
//! generator and exclusive claims resolve deterministically, the dart
//! throwers produce *bit-identical* permutations on both backends for the
//! same seed.

use qrqw_prims::{bitonic_sort, claim_cells, compact_erew, global_or, ClaimMode};
use qrqw_sim::schedule::lg_lg;
use qrqw_sim::{Machine, EMPTY};

/// Outcome of a permutation-generation run.
#[derive(Debug, Clone)]
pub struct PermutationOutcome {
    /// `order[p] = i` means item `i` ended up at position `p`; `order` is a
    /// permutation of `0..n`.
    pub order: Vec<u64>,
    /// Dart-throwing rounds (or sorting attempts) used.
    pub rounds: u64,
    /// Whether a sequential Las-Vegas clean-up was needed (w.h.p. false).
    pub fallback_used: bool,
}

/// Checks that `order` is a permutation of `0..order.len()`.
pub fn is_permutation(order: &[u64]) -> bool {
    let n = order.len();
    let mut seen = vec![false; n];
    for &x in order {
        let Ok(i) = usize::try_from(x) else {
            return false;
        };
        if i >= n || seen[i] {
            return false;
        }
        seen[i] = true;
    }
    true
}

/// The QRQW dart-throwing random-permutation algorithm (Theorem 5.1).
pub fn random_permutation_qrqw<M: Machine>(m: &mut M, n: usize) -> PermutationOutcome {
    if n == 0 {
        return PermutationOutcome {
            order: Vec::new(),
            rounds: 0,
            fallback_used: false,
        };
    }
    // Fresh subarrays: round r uses d·n/2^r cells (d = 2), carved as one
    // stack allocation per round — the allocator is a bump stack and
    // nothing else allocates between rounds, so the subarrays are
    // contiguous and the final compaction is a single scan over them,
    // while rounds that never happen cost no memory.  6n cells
    // upper-bounds the geometric series plus slack for the
    // low-probability extra rounds.
    let region_cap = 6 * n + 64;
    let a_base = m.heap_top();
    let mut carve = 0usize;

    let mut active: Vec<usize> = (0..n).collect();
    let mut rounds = 0u64;
    let max_rounds = 2 * lg_lg(n.max(4) as u64) + 6;
    let mut fallback_used = false;

    while !active.is_empty() && rounds < max_rounds {
        let sub_len = ((2 * n) >> rounds.min(32)).max(2 * active.len()).max(4);
        if carve + sub_len > region_cap {
            break;
        }
        let sub_base = m.alloc(sub_len);
        debug_assert_eq!(sub_base, a_base + carve);
        carve += sub_len;
        rounds += 1;

        // Each unplaced item throws one dart into this round's fresh
        // subarray; only uncontested claims survive (exclusive mode keeps
        // the permutation unbiased).  The dart par_map emits the claim
        // attempts directly (same processor indices, so the same draws as a
        // separate target pass), and the losers are filtered in place.
        let attempts: Vec<(u64, usize)> = m.par_map(active.len(), |a, ctx| {
            (active[a] as u64, sub_base + ctx.random_index(sub_len))
        });
        let won = claim_cells(m, &attempts, ClaimMode::Exclusive);
        let mut survived = won.iter();
        active.retain(|_| !*survived.next().unwrap());
    }

    // Sequential Las-Vegas clean-up for the (w.h.p. empty) remainder, run
    // as a sequential step so the placement walk sees its own writes — with
    // snapshot reads the random wrap-around probes could land on a cell
    // claimed earlier in the same step and double-book it.
    if !active.is_empty() {
        fallback_used = true;
        let sub_len = (2 * active.len()).max(4).min(region_cap - carve);
        let sub_base = m.alloc(sub_len);
        debug_assert_eq!(sub_base, a_base + carve);
        carve += sub_len;
        let leftovers = active.clone();
        m.seq_step(|ctx| {
            let mut cursor = 0usize;
            for &item in &leftovers {
                loop {
                    let pos = if cursor < sub_len {
                        cursor
                    } else {
                        // deterministic wrap: reuse earlier free cells
                        ctx.random_index(sub_len)
                    };
                    cursor += 1;
                    if ctx.read(sub_base + pos) == EMPTY {
                        ctx.write(sub_base + pos, item as u64);
                        break;
                    }
                }
            }
        });
    }

    // Compact the concatenated subarrays: the relative order of the items in
    // the region is the output permutation.  Exactly `n` items survive, so
    // the output region is `n` cells (`compact_step` only ensures memory up
    // to the survivor count).
    let out = m.alloc(n);
    let count = compact_erew(m, a_base, carve, out);
    assert_eq!(count as usize, n, "every item must appear exactly once");
    let order = m.dump(out, n);
    m.release_to(a_base);
    PermutationOutcome {
        order,
        rounds,
        fallback_used,
    }
}

/// The dart-throwing-with-scans algorithm from the MasPar experiment
/// (Section 5.2): repeated rounds of dart throwing into an `n`-cell array,
/// compacting the winners after every round with the machine's built-in
/// scan (`enumerate`) and completion test (`globalor`).
pub fn random_permutation_dart_scan<M: Machine>(m: &mut M, n: usize) -> PermutationOutcome {
    if n == 0 {
        return PermutationOutcome {
            order: Vec::new(),
            rounds: 0,
            fallback_used: false,
        };
    }
    let arena = m.alloc(n);
    let flags = m.alloc(n);
    let out = m.alloc(n);
    let mut placed = 0usize;
    let mut active: Vec<usize> = (0..n).collect();
    let mut rounds = 0u64;
    let max_rounds = 40 * (lg_lg(n.max(4) as u64) + 2);
    let mut fallback_used = false;

    while !active.is_empty() && rounds < max_rounds {
        rounds += 1;
        let targets: Vec<usize> = m.par_map(active.len(), |_a, ctx| arena + ctx.random_index(n));
        let attempts: Vec<(u64, usize)> = active
            .iter()
            .zip(&targets)
            .map(|(&item, &t)| (item as u64, t))
            .collect();
        let won = claim_cells(m, &attempts, ClaimMode::Exclusive);

        // Winners publish a flag at their cell; a scan (MasPar `enumerate`)
        // ranks them and they transfer themselves to the output positions
        // placed .. placed + k, then clear their arena cells.
        m.par_for(attempts.len(), |a, ctx| {
            if won[a] {
                ctx.write(flags + (attempts[a].1 - arena), 1);
            }
        });
        let k = m.scan_step(flags, n) as usize;
        m.par_for(attempts.len(), |a, ctx| {
            if won[a] {
                let cell = attempts[a].1 - arena;
                let rank = ctx.read(flags + cell) as usize - 1;
                ctx.write(out + placed + rank, attempts[a].0);
                ctx.write(attempts[a].1, EMPTY);
            }
        });
        // Reset the flag array for the next round (the scan filled every
        // cell with a running total).
        m.par_for(n, |i, ctx| {
            ctx.write(flags + i, EMPTY);
        });
        placed += k;
        active = active
            .iter()
            .zip(&won)
            .filter(|&(_, &w)| !w)
            .map(|(&item, _)| item)
            .collect();
        // MasPar-style completion check (`globalor` over the arena).
        let _ = m.global_or_step(arena, n);
    }

    if !active.is_empty() {
        fallback_used = true;
        let leftovers = active.clone();
        m.par_for(leftovers.len(), |i, ctx| {
            ctx.write(out + placed + i, leftovers[i] as u64);
        });
        placed += leftovers.len();
    }
    assert_eq!(placed, n);
    let order = m.dump(out, n);
    m.release_to(arena);
    PermutationOutcome {
        order,
        rounds,
        fallback_used,
    }
}

/// The sorting-based EREW random-permutation algorithm (Section 5.2): each
/// item draws a random key, the keys are sorted with the bitonic system
/// sort, and the ranks form the permutation; the (unlikely) event of a key
/// collision triggers a retry.
///
/// Keys use every bit the packed `(key, index)` word does not need for the
/// index — the paper assumes Θ(log n)-bit random priorities, and a fixed
/// key width would hit the birthday bound (a fixed 31-bit key collides
/// almost surely for n ≳ 2¹⁷, turning every round into a futile re-sort).
/// With `64 − ⌈log₂ n⌉` key bits the per-round collision probability stays
/// below `n² / 2⁶⁵⁻ˡᵒᵍ ⁿ` — about 3% at n = 2²⁰.
pub fn random_permutation_sorting_erew<M: Machine>(m: &mut M, n: usize) -> PermutationOutcome {
    if n == 0 {
        return PermutationOutcome {
            order: Vec::new(),
            rounds: 0,
            fallback_used: false,
        };
    }
    let idx_bits = n.next_power_of_two().trailing_zeros().max(1) as usize;
    let idx_mask = (1u64 << idx_bits) - 1;
    let key_bound = 1usize << (64 - idx_bits).min(usize::BITS as usize - 1);
    let words = m.alloc(n);
    let dup_flags = m.alloc(n);
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        m.par_for(n, |i, ctx| {
            let key = ctx.random_index(key_bound) as u64;
            ctx.write(words + i, (key << idx_bits) | i as u64);
        });
        bitonic_sort(m, words, n);
        // Collision check: adjacent equal keys?  Done in two EREW-legal
        // substeps: every processor first publishes a shifted copy of its
        // own key, then compares its key against the copy it received.
        let shifted = m.alloc(n + 1);
        m.par_for(n, |i, ctx| {
            let w = ctx.read(words + i);
            ctx.write(shifted + i + 1, w >> idx_bits);
        });
        m.par_for(n, |i, ctx| {
            if i == 0 {
                ctx.write(dup_flags, 0);
                return;
            }
            let prev = ctx.read(shifted + i);
            let own = ctx.read(words + i) >> idx_bits;
            ctx.write(dup_flags + i, (prev == own) as u64);
        });
        m.release_to(shifted);
        if !global_or(m, dup_flags, n) {
            break;
        }
        if rounds > 16 {
            // astronomically unlikely; fall back to accepting ties broken by
            // item index (still a valid permutation, marginally biased).
            break;
        }
    }
    let order: Vec<u64> = m.dump(words, n).into_iter().map(|w| w & idx_mask).collect();
    m.release_to(words);
    PermutationOutcome {
        order,
        rounds,
        fallback_used: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::{CostModel, Pram};

    #[test]
    fn qrqw_algorithm_outputs_a_permutation() {
        for seed in 0..3 {
            let mut pram = Pram::with_seed(4, seed);
            let out = random_permutation_qrqw(&mut pram, 500);
            assert!(is_permutation(&out.order));
        }
    }

    #[test]
    fn dart_scan_outputs_a_permutation() {
        let mut pram = Pram::with_seed(4, 7);
        let out = random_permutation_dart_scan(&mut pram, 300);
        assert!(is_permutation(&out.order));
    }

    #[test]
    fn sorting_based_outputs_a_permutation_and_is_erew() {
        let mut pram = Pram::with_seed(4, 5);
        let out = random_permutation_sorting_erew(&mut pram, 256);
        assert!(is_permutation(&out.order));
        assert_eq!(pram.trace().violations(CostModel::Erew), 0);
    }

    #[test]
    fn different_seeds_give_different_permutations() {
        let run = |seed| {
            let mut pram = Pram::with_seed(4, seed);
            random_permutation_qrqw(&mut pram, 128).order
        };
        assert_ne!(run(1), run(2));
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn qrqw_contention_is_low_and_work_linear() {
        let n = 4096usize;
        let mut pram = Pram::with_seed(4, 42);
        let out = random_permutation_qrqw(&mut pram, n);
        assert!(is_permutation(&out.order));
        let lg = qrqw_sim::schedule::ceil_lg(n as u64);
        assert!(
            pram.trace().max_contention() <= 3 * lg,
            "contention {}",
            pram.trace().max_contention()
        );
        assert!(
            pram.trace().work() <= 80 * n as u64,
            "work {}",
            pram.trace().work()
        );
        // The QRQW time must be far below n (the contention bound is what
        // distinguishes the model from a serial queue).
        assert!(pram.trace().time(CostModel::Qrqw) < n as u64 / 4);
    }

    #[test]
    fn qrqw_beats_sorting_baseline_under_qrqw_metric() {
        let n = 2048usize;
        let mut a = Pram::with_seed(4, 1);
        random_permutation_qrqw(&mut a, n);
        let mut b = Pram::with_seed(4, 1);
        random_permutation_sorting_erew(&mut b, n);
        let t_qrqw = a.trace().time(CostModel::SimdQrqw);
        let t_erew = b.trace().time(CostModel::SimdQrqw);
        assert!(
            t_qrqw < t_erew,
            "dart throwing ({t_qrqw}) should beat bitonic sorting ({t_erew}) — the Table II effect"
        );
    }

    #[test]
    fn empty_input() {
        let mut pram = Pram::new(4);
        assert!(random_permutation_qrqw(&mut pram, 0).order.is_empty());
        assert!(random_permutation_dart_scan(&mut pram, 0).order.is_empty());
        assert!(random_permutation_sorting_erew(&mut pram, 0)
            .order
            .is_empty());
    }

    #[test]
    fn permutation_validator_rejects_bad_inputs() {
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3, 1]));
        assert!(is_permutation(&[]));
    }
}
