//! Machine-resident open-addressing hash set with tombstone deletion.
//!
//! This is the churn-capable generalization of the insert-only table the
//! service layer grew in PR 6: a region of `cap` (power-of-two) cells in
//! machine shared memory, double-hash probe sequences, inserts by rounds of
//! occupy-mode [`Machine::claim`]s (a batch of inserts is exactly the
//! paper's low-contention cell-claiming step), lookups as one parallel
//! probe step — plus **deletion**.  A deleted key's cell is overwritten
//! with the [`TOMBSTONE`] sentinel rather than [`EMPTY`], which keeps every
//! other key's probe walk intact:
//!
//! * **lookups** stop only at [`EMPTY`]; a tombstoned cell is skipped, so
//!   keys placed past it are still found;
//! * **inserts** claim only [`EMPTY`] cells (the claim protocol's probe
//!   pass rejects any occupied cell, tombstones included), so a reinserted
//!   key lands on the first empty cell of its probe order — exactly where
//!   its own lookup walk terminates.
//!
//! The load invariant is `2 · (len + tombstones) ≤ cap` on entry to every
//! insert batch: tombstones count against the load factor because they
//! lengthen probe walks exactly like live keys.  [`OpenTable::insert_new`]
//! restores the invariant by **rebuilding** — re-inserting only the live
//! keys into a fresh (possibly larger) region, which is the growth-time
//! tombstone purge — and a delete-heavy workload triggers the same purge
//! once tombstones alone exceed a quarter of the capacity, so sustained
//! churn cannot degrade probes without bound.  The old region is abandoned
//! (the machine allocator is a stack; a long-lived region cannot be freed
//! from the middle), which is the same trade the service layer already
//! makes for growth.
//!
//! Every operation is deterministic on every backend: occupy-claim winners
//! are the lowest claimant index everywhere (see `qrqw_sim::Machine::claim`),
//! and rebuild triggers depend only on host-side counters — so a churn
//! trace drives bit-identical table states across sim, native, stealing
//! and BSP machines, which is what `tests/scenarios.rs` pins.

use qrqw_sim::{ClaimMode, Machine, EMPTY};

/// Sentinel marking a deleted cell.  Distinct from [`EMPTY`] and from every
/// stored tag (keys are stored as `key + 1` and must stay below this).
pub const TOMBSTONE: u64 = EMPTY - 1;

/// First probe cell of `key` in a table of `cap` (power-of-two) cells.
pub fn probe_home(key: u64, cap: usize) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - cap.trailing_zeros())
}

/// Odd probe stride of `key` (coprime to the power-of-two capacity, so the
/// probe sequence visits every cell).
pub fn probe_stride(key: u64) -> u64 {
    (key.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 33) | 1
}

/// The `r`-th probe cell of `key`.
pub fn probe_cell(key: u64, r: u64, cap: usize) -> usize {
    (probe_home(key, cap).wrapping_add(r.wrapping_mul(probe_stride(key))) & (cap as u64 - 1))
        as usize
}

/// The host-side geometry of an [`OpenTable`], for checkpoint/restore: the
/// machine region itself is snapshotted separately (it lives in machine
/// memory), but base/cap and the occupancy counters must rewind with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableGeometry {
    /// Base address of the live region.
    pub base: usize,
    /// Capacity in cells (a power of two).
    pub cap: usize,
    /// Live keys.
    pub len: usize,
    /// Tombstoned cells awaiting the next purge.
    pub tombstones: usize,
}

/// A machine-resident open-addressing hash set (see the module docs).
#[derive(Debug)]
pub struct OpenTable {
    base: usize,
    cap: usize,
    len: usize,
    tombstones: usize,
}

impl OpenTable {
    /// Allocates a fresh table of at least `capacity` cells (rounded up to
    /// a power of two, minimum 64).
    pub fn new<M: Machine>(m: &mut M, capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(64);
        OpenTable {
            base: m.alloc(cap),
            cap,
            len: 0,
            tombstones: 0,
        }
    }

    /// Live keys currently present.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no key is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current capacity in cells.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Tombstoned cells not yet purged by a rebuild.
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }

    /// The current geometry, for checkpointing.
    pub fn geometry(&self) -> TableGeometry {
        TableGeometry {
            base: self.base,
            cap: self.cap,
            len: self.len,
            tombstones: self.tombstones,
        }
    }

    /// Rewinds the geometry to a checkpoint (the caller restores the
    /// machine memory the geometry points into).
    pub fn restore_geometry(&mut self, g: TableGeometry) {
        self.base = g.base;
        self.cap = g.cap;
        self.len = g.len;
        self.tombstones = g.tombstones;
    }

    /// One parallel probe step answering membership for `keys` against the
    /// current table.  Tombstoned cells are skipped; only [`EMPTY`]
    /// terminates a walk.
    pub fn lookup<M: Machine>(&self, m: &mut M, keys: &[u64]) -> Vec<bool> {
        let (base, cap) = (self.base, self.cap);
        m.par_map(keys.len(), |i, ctx| {
            let key = keys[i];
            for r in 0..cap as u64 {
                let v = ctx.read(base + probe_cell(key, r, cap));
                if v == EMPTY {
                    return false;
                }
                if v == key + 1 {
                    return true;
                }
            }
            false
        })
    }

    /// Inserts `keys` (distinct, and absent from the table) by rounds of
    /// occupy-mode claims: every still-unplaced key claims the next cell of
    /// its probe sequence; losers and keys probing occupied or tombstoned
    /// cells advance.  Rebuilds (growing and purging tombstones) first if
    /// the load invariant would break.
    pub fn insert_new<M: Machine>(&mut self, m: &mut M, keys: &[u64]) {
        if keys.is_empty() {
            return;
        }
        debug_assert!(
            keys.iter().all(|&k| k + 1 < TOMBSTONE),
            "keys must leave room for the stored tag below TOMBSTONE"
        );
        self.reserve(m, keys.len());
        self.insert_rounds(m, keys);
        self.len += keys.len();
    }

    /// Tombstones `keys` (distinct, and present in the table): one parallel
    /// probe step locates each key's cell, one exclusive-write step marks
    /// it.  Triggers a purge rebuild when tombstones pass a quarter of the
    /// capacity, so delete-heavy churn keeps probe walks short.
    ///
    /// # Panics
    ///
    /// If any key is absent — deletion of a missing key is a caller
    /// contract violation, exactly like duplicate insertion.
    pub fn remove_present<M: Machine>(&mut self, m: &mut M, keys: &[u64]) {
        if keys.is_empty() {
            return;
        }
        let (base, cap) = (self.base, self.cap);
        let cells: Vec<u64> = m.par_map(keys.len(), |i, ctx| {
            let key = keys[i];
            for r in 0..cap as u64 {
                let cell = probe_cell(key, r, cap);
                let v = ctx.read(base + cell);
                if v == EMPTY {
                    break;
                }
                if v == key + 1 {
                    return cell as u64;
                }
            }
            EMPTY
        });
        assert!(
            cells.iter().all(|&c| c != EMPTY),
            "remove_present: a key was absent from the table"
        );
        // Distinct keys occupy distinct cells, so the marking step is
        // exclusive-write (contention 1 per cell).
        m.par_for(keys.len(), |i, ctx| {
            ctx.write(base + cells[i] as usize, TOMBSTONE);
        });
        self.len -= keys.len();
        self.tombstones += keys.len();
        if 4 * self.tombstones > self.cap {
            let cap = self.cap;
            self.rebuild(m, cap);
        }
    }

    /// The live keys in the machine region (unsorted; tombstones excluded).
    pub fn live_keys<M: Machine>(&self, m: &M) -> Vec<u64> {
        m.dump(self.base, self.cap)
            .into_iter()
            .filter(|&v| v != EMPTY && v != TOMBSTONE)
            .map(|v| v - 1)
            .collect()
    }

    fn insert_rounds<M: Machine>(&self, m: &mut M, keys: &[u64]) {
        let (base, cap) = (self.base, self.cap);
        // (key, current probe index) of every still-unplaced key.
        let mut pending: Vec<(u64, u64)> = keys.iter().map(|&k| (k, 0)).collect();
        let mut rounds = 0usize;
        while !pending.is_empty() {
            rounds += 1;
            assert!(
                rounds <= 2 * cap,
                "hash insert failed to place {} keys in {rounds} rounds (cap {cap})",
                pending.len()
            );
            let attempts: Vec<(u64, usize)> = pending
                .iter()
                .map(|&(k, r)| (k + 1, base + probe_cell(k, r, cap)))
                .collect();
            let won = m.claim(&attempts, ClaimMode::Occupy);
            let mut still = Vec::new();
            for (i, &(k, r)) in pending.iter().enumerate() {
                if !won[i] {
                    // Cell occupied (earlier key, a tombstone, or a
                    // same-round rival that won the claim): advance.
                    still.push((k, r + 1));
                }
            }
            pending = still;
        }
    }

    /// Restores the load invariant for `additional` more keys: rebuilds
    /// into a fresh region — doubling while needed, and always purging
    /// every tombstone — whenever live + tombstoned cells would pass half
    /// full.  A rebuild triggered by tombstones alone keeps the same
    /// capacity; the purge is the point.
    fn reserve<M: Machine>(&mut self, m: &mut M, additional: usize) {
        if 2 * (self.len + self.tombstones + additional) <= self.cap {
            return;
        }
        let mut new_cap = self.cap;
        while 2 * (self.len + additional) > new_cap {
            new_cap *= 2;
        }
        self.rebuild(m, new_cap);
    }

    /// Re-inserts the live keys into a fresh region of `new_cap` cells,
    /// dropping every tombstone.  The old region is abandoned (stack
    /// allocator).
    fn rebuild<M: Machine>(&mut self, m: &mut M, new_cap: usize) {
        let live = self.live_keys(m);
        debug_assert_eq!(live.len(), self.len, "occupancy counter drifted");
        self.base = m.alloc(new_cap);
        self.cap = new_cap;
        self.tombstones = 0;
        self.insert_rounds(m, &live);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::Pram;

    fn keys(range: std::ops::Range<u64>) -> Vec<u64> {
        range.map(|k| k.wrapping_mul(0x5DEE_CE66) % 5000).collect()
    }

    #[test]
    fn insert_lookup_remove_round_trip() {
        let mut m = Pram::with_seed(16, 1);
        let mut t = OpenTable::new(&mut m, 64);
        let ks = keys(0..20);
        t.insert_new(&mut m, &ks);
        assert_eq!(t.len(), 20);
        assert!(t.lookup(&mut m, &ks).iter().all(|&f| f));
        let dead: Vec<u64> = ks.iter().copied().step_by(2).collect();
        t.remove_present(&mut m, &dead);
        assert_eq!(t.len(), 10);
        let found = t.lookup(&mut m, &ks);
        for (i, &f) in found.iter().enumerate() {
            assert_eq!(f, i % 2 == 1, "key index {i} after deleting evens");
        }
        let mut live = t.live_keys(&m);
        live.sort_unstable();
        let mut expect: Vec<u64> = ks.iter().copied().skip(1).step_by(2).collect();
        expect.sort_unstable();
        assert_eq!(live, expect);
    }

    #[test]
    fn reinsert_after_delete_is_found_again() {
        let mut m = Pram::with_seed(16, 2);
        let mut t = OpenTable::new(&mut m, 64);
        let ks = keys(0..16);
        t.insert_new(&mut m, &ks);
        t.remove_present(&mut m, &ks[..8]);
        t.insert_new(&mut m, &ks[..8]);
        assert_eq!(t.len(), 16);
        assert!(t.lookup(&mut m, &ks).iter().all(|&f| f));
    }

    #[test]
    fn growth_purges_tombstones() {
        let mut m = Pram::with_seed(16, 3);
        let mut t = OpenTable::new(&mut m, 64);
        let ks = keys(0..30);
        t.insert_new(&mut m, &ks);
        t.remove_present(&mut m, &ks[..10]);
        assert!(t.tombstones() > 0);
        // Force the load invariant past half full: the rebuild must both
        // grow and drop every tombstone.
        let more = keys(100..140);
        t.insert_new(&mut m, &more);
        assert_eq!(t.tombstones(), 0, "growth must purge tombstones");
        assert_eq!(t.len(), 60);
        assert!(t.lookup(&mut m, &more).iter().all(|&f| f));
        assert!(t.lookup(&mut m, &ks[10..]).iter().all(|&f| f));
        assert!(t.lookup(&mut m, &ks[..10]).iter().all(|&f| !f));
    }

    #[test]
    fn delete_heavy_churn_purges_without_growth() {
        let mut m = Pram::with_seed(16, 4);
        let mut t = OpenTable::new(&mut m, 64);
        let ks = keys(0..30);
        t.insert_new(&mut m, &ks);
        // Deleting past cap/4 = 16 tombstones must trigger the purge
        // rebuild on the delete path itself, keeping the same capacity.
        t.remove_present(&mut m, &ks[..20]);
        assert_eq!(t.tombstones(), 0, "delete-heavy churn must purge");
        assert_eq!(t.capacity(), 64);
        assert_eq!(t.len(), 10);
        assert!(t.lookup(&mut m, &ks[20..]).iter().all(|&f| f));
    }

    #[test]
    #[should_panic(expected = "absent")]
    fn removing_an_absent_key_panics() {
        let mut m = Pram::with_seed(16, 5);
        let mut t = OpenTable::new(&mut m, 64);
        t.insert_new(&mut m, &[1, 2, 3]);
        t.remove_present(&mut m, &[99]);
    }

    #[test]
    fn geometry_round_trips() {
        let mut m = Pram::with_seed(16, 6);
        let mut t = OpenTable::new(&mut m, 64);
        t.insert_new(&mut m, &[5, 6, 7]);
        t.remove_present(&mut m, &[5]);
        let g = t.geometry();
        let mut u = OpenTable::new(&mut m, 64);
        u.restore_geometry(g);
        assert_eq!(u.geometry(), g);
        assert_eq!(u.len(), 2);
        assert_eq!(u.tombstones(), 1);
    }
}
