//! Automatic processor allocation for L-spawning algorithms (Section 3.3).
//!
//! An *L-spawning* algorithm is given in the work–time presentation as a
//! sequence of parallel steps in which every task may spawn up to `L-1` new
//! tasks.  Theorem 3.6 shows that a predicted L-spawning algorithm can be
//! executed on `p` processors with only `O(n/p)` overhead by interleaving a
//! load-balancing pass between consecutive steps, keeping the tasks evenly
//! spread.  [`run_l_spawning`] is the operational form of that scheduler:
//! it executes the user's spawn function round by round on a fixed set of
//! `p` simulated processors, re-balancing with
//! [`crate::load_balancing::load_balance_qrqw`] whenever a round ends with
//! some processor holding more than twice the average load.

use crate::load_balancing::load_balance_qrqw;
use qrqw_sim::Machine;

/// Statistics of an L-spawning execution.
#[derive(Debug, Clone, Default)]
pub struct SpawningReport {
    /// Parallel rounds executed.
    pub rounds: u64,
    /// Total tasks processed across all rounds.
    pub tasks_processed: u64,
    /// Largest per-processor load observed *before* any rebalancing pass.
    pub max_load_seen: u64,
    /// Number of load-balancing passes that were actually run.
    pub rebalances: u64,
}

/// Runs an L-spawning computation on `p` simulated processors.
///
/// `spawn(round, &task)` returns the tasks the given task spawns for the
/// next round (at most `l - 1` of them, checked).  The run stops after
/// `max_rounds` rounds or when no tasks remain; the tasks still alive are
/// returned together with the execution report.
pub fn run_l_spawning<M, T, F>(
    m: &mut M,
    initial: Vec<T>,
    p: usize,
    l: u64,
    max_rounds: u64,
    spawn: F,
) -> (Vec<T>, SpawningReport)
where
    M: Machine,
    T: Clone + Send + Sync,
    F: Fn(u64, &T) -> Vec<T> + Sync,
{
    assert!(p > 0, "need at least one processor");
    assert!(l >= 1, "the spawning factor is at least 1");
    let mut queues: Vec<Vec<T>> = vec![Vec::new(); p];
    for (i, t) in initial.into_iter().enumerate() {
        queues[i % p].push(t);
    }
    let mut report = SpawningReport::default();

    for round in 0..max_rounds {
        let alive: u64 = queues.iter().map(|q| q.len() as u64).sum();
        if alive == 0 {
            break;
        }
        report.rounds = round + 1;
        report.tasks_processed += alive;

        // One parallel step: every processor processes its queue and
        // produces the spawned tasks (charged one operation per task plus
        // one per spawned task).
        let queues_ref = &queues;
        let spawn_ref = &spawn;
        let next: Vec<Vec<T>> = m.par_map(p, |proc, ctx| {
            let mut out = Vec::new();
            for t in &queues_ref[proc] {
                let children = spawn_ref(round, t);
                assert!(
                    (children.len() as u64) < l.max(1) + 1,
                    "a task spawned more than L-1 children"
                );
                ctx.compute(1 + children.len() as u64);
                out.extend(children);
            }
            out
        });
        queues = next;

        // Re-balance when the invariant (load ≤ 2·average) is violated.
        let loads: Vec<u64> = queues.iter().map(|q| q.len() as u64).collect();
        let total: u64 = loads.iter().sum();
        let max = loads.iter().copied().max().unwrap_or(0);
        report.max_load_seen = report.max_load_seen.max(max);
        if total > 0 && max > 2 * total.div_ceil(p as u64) + 2 {
            report.rebalances += 1;
            let plan = load_balance_qrqw(m, &loads);
            let mut new_queues: Vec<Vec<T>> = vec![Vec::new(); p];
            for (dest, blocks) in plan.assignment.iter().enumerate() {
                for b in blocks {
                    for t in b.start..b.start + b.len {
                        new_queues[dest].push(queues[b.origin][t as usize].clone());
                    }
                }
            }
            queues = new_queues;
        }
    }

    let remaining: Vec<T> = queues.into_iter().flatten().collect();
    (remaining, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::Pram;

    #[test]
    fn geometric_decay_terminates_without_rebalancing_much() {
        // every task dies with no children -> one round
        let mut pram = Pram::with_seed(4, 1);
        let (rest, report) = run_l_spawning(&mut pram, vec![(); 1000], 32, 2, 10, |_, _| vec![]);
        assert!(rest.is_empty());
        assert_eq!(report.rounds, 1);
        assert_eq!(report.tasks_processed, 1000);
    }

    #[test]
    fn skewed_spawning_triggers_rebalancing_and_keeps_loads_bounded() {
        // task i spawns two children for a few rounds, but only tasks that
        // started on processor 0 survive -> heavy skew
        let mut pram = Pram::with_seed(4, 2);
        let initial: Vec<u64> = (0..64).collect();
        let (_rest, report) = run_l_spawning(&mut pram, initial, 16, 3, 6, |round, &t| {
            if t % 16 == 0 && round < 5 {
                vec![t, t]
            } else {
                vec![]
            }
        });
        assert!(report.rounds >= 2);
        assert!(report.max_load_seen >= 2);
    }

    #[test]
    fn respects_round_limit_and_returns_survivors() {
        let mut pram = Pram::with_seed(4, 3);
        let (rest, report) = run_l_spawning(&mut pram, vec![1u32], 4, 2, 3, |_, &t| vec![t, t]);
        assert_eq!(report.rounds, 3);
        assert_eq!(rest.len(), 8, "1 -> 2 -> 4 -> 8 survivors after 3 rounds");
    }

    #[test]
    #[should_panic(expected = "more than L-1 children")]
    fn overspawning_is_rejected() {
        let mut pram = Pram::with_seed(4, 4);
        let _ = run_l_spawning(&mut pram, vec![0u8], 2, 2, 2, |_, _| vec![0, 0, 0]);
    }

    #[test]
    fn empty_initial_set_is_a_noop() {
        let mut pram = Pram::new(4);
        let (rest, report) = run_l_spawning::<_, u8, _>(&mut pram, vec![], 4, 2, 5, |_, _| vec![]);
        assert!(rest.is_empty());
        assert_eq!(report.rounds, 0);
    }
}
