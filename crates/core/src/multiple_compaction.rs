//! Multiple compaction (Section 4).
//!
//! Input: `n` items, each carrying a *label* `j`; for every label a *count*
//! `n_j` that upper-bounds the number of items with that label
//! (`Σ n_j = O(n)`), and an output array `B` partitioned so that label `j`
//! owns a private subarray of size `4 n_j`.  The problem is to move every
//! item into a private cell of its label's subarray.
//!
//! The paper splits the problem into the *heavy* case (every count at least
//! `α lg² n`) solved by log-star dart throwing with doubling teams
//! (Section 4.1), and the *light* case (every count below `α lg² n`) solved
//! by a reduction to small-range stable sorting (Section 4.2).  Both are
//! implemented here; [`multiple_compaction`] partitions an arbitrary
//! instance into the two cases and runs each once, exactly as the proof of
//! Theorem 4.1 prescribes.
//!
//! **Substitution note (light case).**  Section 4.2 routes the light case
//! through "supersets" of `Θ(lg² n)` consecutive labels so that the final
//! within-superset sort has keys in a `lg^O(1) n` range and Fact 4.3
//! applies.  Our [`light_multiple_compaction`] keeps steps (i)–(ii) (leader
//! election and the count array) and then sorts the light items by label
//! directly with the multi-pass Fact 4.3 radix sort from `qrqw-prims`,
//! which has the same `O(lg n)` time / linear work and removes one level of
//! indirection; the superset detour exists only to keep the key range small
//! for a single-pass sort.  This is recorded in DESIGN.md.

use qrqw_prims::{
    claim_cells, prefix_sums_exclusive, propagate_nonempty_forward, radix_sort_packed, ClaimMode,
};
use qrqw_sim::schedule::{ceil_lg, log_star};
use qrqw_sim::{Machine, EMPTY};

/// The position of every label's private subarray inside the output array.
#[derive(Debug, Clone)]
pub struct McLayout {
    /// Base address (absolute, in shared memory) of the output array `B`.
    pub b_base: usize,
    /// Total size of `B`.
    pub b_len: usize,
    /// Per-label subarray offset within `B`.
    pub subarray_offset: Vec<usize>,
    /// Per-label subarray length (`4 · count`).
    pub subarray_len: Vec<usize>,
}

impl McLayout {
    /// Absolute address of cell `slot` of label `j`'s subarray.
    pub fn cell(&self, label: usize, slot: usize) -> usize {
        debug_assert!(slot < self.subarray_len[label]);
        self.b_base + self.subarray_offset[label] + slot
    }
}

/// Result of a multiple-compaction run.
#[derive(Debug, Clone)]
pub struct McResult {
    /// Absolute output cell per item (`usize::MAX` for unplaced items when
    /// `failed` is set).
    pub positions: Vec<usize>,
    /// The output-array layout that was built from the counts.
    pub layout: McLayout,
    /// Set when the *relaxed* variant detected that some set exceeded its
    /// count (the caller is expected to re-run with better counts), or when
    /// an item could not be placed.
    pub failed: bool,
    /// Dart-throwing rounds used by the heavy phase.
    pub rounds: u64,
}

/// Builds the output array `B` and the per-label subarrays (size `4·count`)
/// from the counts, charging the prefix-sums computation to the machine.
pub fn build_layout<M: Machine>(m: &mut M, counts: &[u64]) -> McLayout {
    let num_labels = counts.len();
    let sizes = m.alloc(num_labels.max(1));
    m.par_for(num_labels, |j, ctx| {
        ctx.compute(1);
        ctx.write(sizes + j, 4 * counts[j]);
    });
    let total = prefix_sums_exclusive(m, sizes, num_labels) as usize;
    let offsets: Vec<usize> = m
        .dump(sizes, num_labels)
        .into_iter()
        .map(|v| v as usize)
        .collect();
    m.release_to(sizes);
    let b_base = m.alloc(total.max(1));
    McLayout {
        b_base,
        b_len: total,
        subarray_offset: offsets,
        subarray_len: counts.iter().map(|&c| 4 * c as usize).collect(),
    }
}

/// Places the given items into their label subarrays by log-star
/// dart-throwing (the heavy algorithm of Section 4.1); used by both the
/// heavy case and, internally, by the sorting algorithms of Section 7 that
/// call "relaxed heavy multiple compaction".
fn place_by_dart_throwing<M: Machine>(
    m: &mut M,
    items: &[usize],
    labels: &[u64],
    layout: &McLayout,
    positions: &mut [usize],
    relaxed: bool,
) -> (bool, u64) {
    let n = labels.len().max(2);
    let mut active: Vec<usize> = items.to_vec();
    let team_cap = ceil_lg(n as u64).max(2);
    let mut team: u64 = 1;
    let mut rounds = 0u64;
    let max_rounds = 8 + 2 * log_star(n as u64);
    let mut failed = false;

    while !active.is_empty() && rounds < max_rounds {
        rounds += 1;
        let q = team as usize;
        let k = active.len();

        // Every team member picks a random slot inside its item's subarray.
        let active_ref = &active;
        let targets: Vec<usize> = m.par_map(k * q, |a, ctx| {
            let item = active_ref[a / q];
            let label = labels[item] as usize;
            let len = layout.subarray_len[label];
            layout.cell(label, ctx.random_index(len.max(1)))
        });
        let attempts: Vec<(u64, usize)> = (0..k * q)
            .map(|a| {
                let item = active[a / q];
                let member = (a % q) as u64;
                (member * n as u64 + item as u64 + 1, targets[a])
            })
            .collect();
        let won = claim_cells(m, &attempts, ClaimMode::Occupy);

        // Keep the first successful copy per item, release the others, and
        // stamp the winning cell with the item's index.
        let mut keep: Vec<Option<usize>> = vec![None; k];
        for a in 0..k * q {
            if won[a] && keep[a / q].is_none() {
                keep[a / q] = Some(a);
            }
        }
        let (keep_ref, attempts_ref, won_ref) = (&keep, &attempts, &won);
        m.par_for(k * q, |a, ctx| {
            ctx.compute(1);
            if !won_ref[a] {
                return;
            }
            let slot = a / q;
            if keep_ref[slot] == Some(a) {
                ctx.write(attempts_ref[a].1, active_ref[slot] as u64);
            } else {
                ctx.write(attempts_ref[a].1, EMPTY);
            }
        });

        let mut still = Vec::new();
        for (slot, &item) in active.iter().enumerate() {
            match keep[slot] {
                Some(a) => positions[item] = attempts[a].1,
                None => still.push(item),
            }
        }
        active = still;
        team = (1u64 << team.min(6)).min(team_cap).max(team + 1);
    }

    // Las-Vegas clean-up (or relaxed failure report): one sequential step
    // scans each leftover label's subarray for free cells.
    if !active.is_empty() {
        let mut cursors: std::collections::HashMap<usize, usize> = Default::default();
        let placed = qrqw_prims::seq_place_leftovers(
            m,
            &active,
            |item| {
                let label = labels[item] as usize;
                let cur = cursors.entry(label).or_insert(0);
                (*cur < layout.subarray_len[label]).then(|| {
                    *cur += 1;
                    layout.cell(label, *cur - 1)
                })
            },
            |item| item as u64,
        );
        for (item, spot) in placed {
            match spot {
                Some(addr) => positions[item] = addr,
                None => {
                    failed = true;
                    assert!(relaxed, "multiple compaction overflowed a subarray whose count was promised to be an upper bound");
                }
            }
        }
    }
    (failed, rounds)
}

/// The heavy multiple-compaction algorithm (Lemma 4.2): every count is at
/// least `α lg² n`.  With `relaxed = true` this is the "relaxed" variant
/// used by the sorting algorithms of Section 7: if some set turns out to
/// exceed its promised count the run reports failure instead of panicking.
pub fn heavy_multiple_compaction<M: Machine>(
    m: &mut M,
    labels: &[u64],
    counts: &[u64],
    relaxed: bool,
) -> McResult {
    let layout = build_layout(m, counts);
    let mut positions = vec![usize::MAX; labels.len()];
    let items: Vec<usize> = (0..labels.len()).collect();
    let (failed, rounds) =
        place_by_dart_throwing(m, &items, labels, &layout, &mut positions, relaxed);
    McResult {
        positions,
        layout,
        failed,
        rounds,
    }
}

/// The light multiple-compaction algorithm (Section 4.2): every count is
/// below `α lg² n`.  Items are sorted by label with the Fact 4.3 radix
/// sort, ranked within their label run, and written to
/// `subarray(label)[rank]`.
pub fn light_multiple_compaction<M: Machine>(
    m: &mut M,
    labels: &[u64],
    counts: &[u64],
) -> McResult {
    let layout = build_layout(m, counts);
    let n = labels.len();
    let mut positions = vec![usize::MAX; n];
    if n == 0 {
        return McResult {
            positions,
            layout,
            failed: false,
            rounds: 0,
        };
    }

    // Step (i)-(ii) of Section 4.2 in spirit: every item publishes a packed
    // (label, item) word; the words are then stably sorted by label.
    let words = m.alloc(n);
    m.par_for(n, |i, ctx| {
        ctx.compute(1);
        ctx.write(words + i, qrqw_prims::pack(labels[i], i as u64));
    });
    let label_bits = (ceil_lg(counts.len().max(2) as u64) + 1) as usize;
    radix_sort_packed(m, words, n, label_bits);

    // Rank every item within its label run: mark run starts, propagate the
    // run-start index and the label's subarray base forward, then rank =
    // own index - run start.
    let starts = m.alloc(n);
    let bases = m.alloc(n);
    m.par_for(n, |i, ctx| {
        let w = ctx.read(words + i);
        let label = qrqw_prims::unpack_key(w) as usize;
        let is_start = if i == 0 {
            true
        } else {
            qrqw_prims::unpack_key(ctx.read(words + i - 1)) as usize != label
        };
        if is_start {
            ctx.write(starts + i, i as u64);
            // one reader per label: exclusive
            ctx.compute(1);
            ctx.write(
                bases + i,
                (layout.b_base + layout.subarray_offset[label]) as u64,
            );
        }
    });
    propagate_nonempty_forward(m, starts, n);
    propagate_nonempty_forward(m, bases, n);

    // Final placement: each item writes itself into subarray_base + rank.
    let placed: Vec<(usize, usize, bool)> = m.par_map(n, |i, ctx| {
        let w = ctx.read(words + i);
        let item = qrqw_prims::unpack_payload(w) as usize;
        let label = qrqw_prims::unpack_key(w) as usize;
        let start = ctx.read(starts + i) as usize;
        let base = ctx.read(bases + i) as usize;
        let rank = i - start;
        if rank < layout.subarray_len[label] {
            ctx.write(base + rank, item as u64);
            (item, base + rank, true)
        } else {
            (item, usize::MAX, false)
        }
    });
    let mut failed = false;
    for (item, addr, ok) in placed {
        if ok {
            positions[item] = addr;
        } else {
            failed = true;
        }
    }
    m.release_to(words);
    McResult {
        positions,
        layout,
        failed,
        rounds: 0,
    }
}

/// Solves an arbitrary multiple-compaction instance (Theorem 4.1): labels
/// with counts of at least `lg² n` go through the heavy algorithm, the rest
/// through the light algorithm, one application each.
pub fn multiple_compaction<M: Machine>(m: &mut M, labels: &[u64], counts: &[u64]) -> McResult {
    let n = labels.len();
    let lg = ceil_lg(n.max(2) as u64);
    let threshold = (lg * lg).max(4);

    let layout = build_layout(m, counts);
    let mut positions = vec![usize::MAX; n];

    let heavy_items: Vec<usize> = (0..n)
        .filter(|&i| counts[labels[i] as usize] >= threshold)
        .collect();
    let light_items: Vec<usize> = (0..n)
        .filter(|&i| counts[labels[i] as usize] < threshold)
        .collect();

    let mut failed = false;
    let mut rounds = 0;
    if !heavy_items.is_empty() {
        let (f, r) = place_by_dart_throwing(m, &heavy_items, labels, &layout, &mut positions, true);
        failed |= f;
        rounds = r;
    }
    if !light_items.is_empty() {
        // Run the light path on the light items only, then translate its
        // positions (computed against the same layout) into ours.
        let light_labels: Vec<u64> = light_items.iter().map(|&i| labels[i]).collect();
        // Counts restricted to light labels keep their original values; heavy
        // labels get zero so the light layout only sizes light subarrays.
        let light_counts: Vec<u64> = counts
            .iter()
            .map(|&c| if c < threshold { c } else { 0 })
            .collect();
        let sub = light_multiple_compaction(m, &light_labels, &light_counts);
        failed |= sub.failed;
        for (slot, &item) in light_items.iter().enumerate() {
            let p = sub.positions[slot];
            if p == usize::MAX {
                failed = true;
                continue;
            }
            // Translate from the light layout's subarray to the shared one.
            let label = labels[item] as usize;
            let off = p - (sub.layout.b_base + sub.layout.subarray_offset[label]);
            positions[item] = layout.cell(label, off);
        }
        // Materialise the light placements in the shared output array.
        let to_write: Vec<(usize, usize)> = light_items
            .iter()
            .filter(|&&i| positions[i] != usize::MAX)
            .map(|&i| (i, positions[i]))
            .collect();
        m.par_for(to_write.len(), |t, ctx| {
            let (item, addr) = to_write[t];
            ctx.write(addr, item as u64);
        });
    }

    McResult {
        positions,
        layout,
        failed,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::Pram;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn check_valid(result: &McResult, labels: &[u64]) {
        assert!(!result.failed);
        let mut seen = HashSet::new();
        for (item, &pos) in result.positions.iter().enumerate() {
            assert_ne!(pos, usize::MAX, "item {item} unplaced");
            assert!(seen.insert(pos), "position {pos} used twice");
            let label = labels[item] as usize;
            let lo = result.layout.b_base + result.layout.subarray_offset[label];
            let hi = lo + result.layout.subarray_len[label];
            assert!(pos >= lo && pos < hi, "item {item} outside its subarray");
        }
    }

    #[test]
    fn heavy_case_places_all_items() {
        let n = 1024usize;
        let num_labels = 4usize;
        let mut rng = SmallRng::seed_from_u64(3);
        let labels: Vec<u64> = (0..n)
            .map(|_| rng.gen_range(0..num_labels as u64))
            .collect();
        let mut counts = vec![0u64; num_labels];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        let mut pram = Pram::with_seed(4, 1);
        let result = heavy_multiple_compaction(&mut pram, &labels, &counts, false);
        check_valid(&result, &labels);
        // cells hold the item index that was placed there
        for (item, &pos) in result.positions.iter().enumerate() {
            assert_eq!(pram.memory().peek(pos), item as u64);
        }
    }

    #[test]
    fn light_case_places_all_items() {
        let n = 600usize;
        let num_labels = 100usize;
        let mut rng = SmallRng::seed_from_u64(8);
        let labels: Vec<u64> = (0..n)
            .map(|_| rng.gen_range(0..num_labels as u64))
            .collect();
        let mut counts = vec![0u64; num_labels];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        let mut pram = Pram::with_seed(4, 2);
        let result = light_multiple_compaction(&mut pram, &labels, &counts);
        check_valid(&result, &labels);
    }

    #[test]
    fn mixed_instance_uses_both_paths() {
        // two huge sets and many tiny ones
        let mut labels = vec![0u64; 700];
        labels.extend(std::iter::repeat_n(1, 500));
        for i in 0..200 {
            labels.push(2 + (i % 50));
        }
        let num_labels = 52;
        let mut counts = vec![0u64; num_labels];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        let mut pram = Pram::with_seed(4, 9);
        let result = multiple_compaction(&mut pram, &labels, &counts);
        check_valid(&result, &labels);
    }

    #[test]
    fn relaxed_variant_reports_overflow_instead_of_panicking() {
        // promise a count of 1 for a set that actually has 16 items
        let labels = vec![0u64; 16];
        let counts = vec![1u64];
        let mut pram = Pram::with_seed(4, 5);
        let result = heavy_multiple_compaction(&mut pram, &labels, &counts, true);
        assert!(result.failed, "overflow must be reported");
    }

    #[test]
    fn counts_may_overestimate_set_sizes() {
        let labels = vec![0, 0, 1, 1, 1, 3];
        let counts = vec![10u64, 10, 10, 10];
        let mut pram = Pram::with_seed(4, 6);
        let result = multiple_compaction(&mut pram, &labels, &counts);
        check_valid(&result, &labels);
    }

    #[test]
    fn empty_instance() {
        let mut pram = Pram::new(4);
        let result = multiple_compaction(&mut pram, &[], &[]);
        assert!(!result.failed);
        assert!(result.positions.is_empty());
    }

    #[test]
    fn work_is_near_linear_and_contention_modest() {
        let n = 4096usize;
        let num_labels = 64usize;
        let mut rng = SmallRng::seed_from_u64(10);
        let labels: Vec<u64> = (0..n)
            .map(|_| rng.gen_range(0..num_labels as u64))
            .collect();
        let mut counts = vec![0u64; num_labels];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        let mut pram = Pram::with_seed(4, 11);
        let result = multiple_compaction(&mut pram, &labels, &counts);
        check_valid(&result, &labels);
        let lg = ceil_lg(n as u64);
        assert!(
            pram.trace().max_contention() <= 6 * lg,
            "contention {} too high",
            pram.trace().max_contention()
        );
        assert!(pram.trace().work() <= 120 * n as u64);
    }
}
