//! The binary-search fat-tree (Section 7.2).
//!
//! A binary search tree over a sorted splitter array in which the node at
//! depth `j` is replicated `Θ(total/2^j)` times: `n` copies of the root
//! (median) splitter, `n/2` copies of each quartile splitter, and so on.
//! A searching processor reads a *random copy* of the node it is visiting,
//! so when `n` searches run in parallel the expected contention per copy is
//! constant and, by Observation 2.6, the maximum contention per step is
//! `O(lg n / lg lg n)` w.h.p. — this "added fatness" is precisely what lets
//! the sample-sort labelling phase run on the QRQW PRAM without the
//! `Θ(n)`-contention hot spot that a plain binary search over one shared
//! splitter array would create (compare [`FatTree::search_batch`] with
//! [`FatTree::search_batch_concurrent`], the CRQW-style search used by
//! `sample_sort_crqw`).

use qrqw_prims::duplicate_values;
use qrqw_sim::{Machine, EMPTY};

/// One level of the fat-tree: `nodes` distinct splitters, each replicated
/// `copies` times, stored contiguously.
#[derive(Debug, Clone)]
struct Level {
    base: usize,
    copies: usize,
}

/// A binary-search fat-tree over a sorted splitter array.
#[derive(Debug, Clone)]
pub struct FatTree {
    levels: Vec<Level>,
    splitters: Vec<u64>,
}

impl FatTree {
    /// Builds the fat-tree for the (sorted, duplicate-free) `splitters`,
    /// replicating the root `total_copies` times and halving the
    /// replication at every level.  `O(lg |splitters|)` levels are built
    /// with the binary-broadcasting primitive, `O(total_copies)` cells and
    /// work per level.
    pub fn build<M: Machine>(m: &mut M, splitters: &[u64], total_copies: usize) -> FatTree {
        assert!(
            splitters.windows(2).all(|w| w[0] <= w[1]),
            "splitters must be sorted"
        );
        let s = splitters.len();
        let mut levels = Vec::new();
        if s == 0 {
            return FatTree {
                levels,
                splitters: Vec::new(),
            };
        }
        let depth = (usize::BITS - s.leading_zeros()) as usize; // ⌈lg(s+1)⌉-ish

        // Node (j, t) holds the median splitter of the search range that a
        // query reaching it still has to consider.
        for j in 0..depth {
            let nodes = 1usize << j;
            let copies = (total_copies >> j).max(1);
            // splitter value per node of this level (EMPTY for empty ranges)
            let values: Vec<u64> = (0..nodes)
                .map(|t| {
                    let (lo, hi) = range_of(s, j, t);
                    if lo < hi {
                        splitters[(lo + hi) / 2]
                    } else {
                        EMPTY
                    }
                })
                .collect();
            let src = m.alloc(nodes);
            m.par_for(nodes, |t, ctx| {
                ctx.compute(1);
                ctx.write(src + t, values[t]);
            });
            let base = m.alloc(nodes * copies);
            duplicate_values(m, src, nodes, base, copies);
            levels.push(Level { base, copies });
        }
        FatTree {
            levels,
            splitters: splitters.to_vec(),
        }
    }

    /// Number of buckets the tree partitions keys into (`splitters + 1`).
    pub fn num_buckets(&self) -> usize {
        self.splitters.len() + 1
    }

    /// Depth of the tree (number of search steps per key).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Searches all `keys` in parallel, each reading a *random copy* of the
    /// node it visits at every level (the low-contention QRQW search).
    /// Returns the bucket index (number of splitters `≤` key) per key.
    pub fn search_batch<M: Machine>(&self, m: &mut M, keys: &[u64]) -> Vec<usize> {
        self.search(m, keys, true)
    }

    /// The same search but every key reads copy 0 of its node — the
    /// concurrent-read search a CREW/CRQW machine would use.  Under the
    /// QRQW metric this exhibits `Θ(#keys)` contention at the root, which
    /// is exactly the hot spot the fat-tree exists to remove; the ablation
    /// bench contrasts the two.
    pub fn search_batch_concurrent<M: Machine>(&self, m: &mut M, keys: &[u64]) -> Vec<usize> {
        self.search(m, keys, false)
    }

    fn search<M: Machine>(&self, m: &mut M, keys: &[u64], randomize: bool) -> Vec<usize> {
        let s = self.splitters.len();
        if s == 0 || keys.is_empty() {
            return vec![0; keys.len()];
        }
        // (lo, hi, node) per key, carried in the searching processors'
        // private memories.
        let mut state: Vec<(usize, usize, usize)> = vec![(0, s, 0); keys.len()];
        for level in &self.levels {
            let prev = state.clone();
            state = m.par_map(keys.len(), |i, ctx| {
                let (lo, hi, node) = prev[i];
                if lo >= hi {
                    return (lo, hi, node);
                }
                let copy = if randomize {
                    ctx.random_index(level.copies)
                } else {
                    0
                };
                let splitter = ctx.read(level.base + node * level.copies + copy);
                debug_assert_ne!(splitter, EMPTY);
                let mid = (lo + hi) / 2;
                ctx.compute(1);
                if keys[i] < splitter {
                    (lo, mid, 2 * node)
                } else {
                    (mid + 1, hi, 2 * node + 1)
                }
            });
        }
        state.into_iter().map(|(lo, _, _)| lo).collect()
    }
}

/// The splitter-index range still under consideration at node `(level, t)`.
fn range_of(s: usize, level: usize, t: usize) -> (usize, usize) {
    let mut lo = 0usize;
    let mut hi = s;
    for bit in (0..level).rev() {
        if lo >= hi {
            break;
        }
        let mid = (lo + hi) / 2;
        if (t >> bit) & 1 == 0 {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::Pram;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn reference_bucket(splitters: &[u64], key: u64) -> usize {
        splitters.iter().filter(|&&s| s <= key).count()
    }

    #[test]
    fn search_agrees_with_linear_scan() {
        let splitters: Vec<u64> = vec![10, 20, 30, 40, 50, 60, 70];
        let mut pram = Pram::with_seed(4, 2);
        let tree = FatTree::build(&mut pram, &splitters, 64);
        let keys: Vec<u64> = vec![0, 10, 11, 35, 70, 71, 100, 19, 20, 21];
        let got = tree.search_batch(&mut pram, &keys);
        let expect: Vec<usize> = keys
            .iter()
            .map(|&k| reference_bucket(&splitters, k))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn search_matches_for_random_splitters_and_keys() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut splitters: Vec<u64> = (0..37).map(|_| rng.gen_range(0..10_000)).collect();
        splitters.sort_unstable();
        splitters.dedup();
        let mut pram = Pram::with_seed(4, 9);
        let tree = FatTree::build(&mut pram, &splitters, 256);
        let keys: Vec<u64> = (0..500).map(|_| rng.gen_range(0..10_000)).collect();
        let got = tree.search_batch(&mut pram, &keys);
        let conc = tree.search_batch_concurrent(&mut pram, &keys);
        let expect: Vec<usize> = keys
            .iter()
            .map(|&k| reference_bucket(&splitters, k))
            .collect();
        assert_eq!(got, expect);
        assert_eq!(conc, expect);
    }

    #[test]
    fn randomized_search_has_lower_contention_than_concurrent_search() {
        let splitters: Vec<u64> = (1..64).map(|i| i * 100).collect();
        let keys: Vec<u64> = (0..2048).map(|i| (i * 37) % 6400).collect();

        let mut a = Pram::with_seed(4, 1);
        let tree = FatTree::build(&mut a, &splitters, 2048);
        let _ = a.take_trace();
        let _ = tree.search_batch(&mut a, &keys);
        let low = a.trace().max_contention();

        let mut b = Pram::with_seed(4, 1);
        let tree = FatTree::build(&mut b, &splitters, 2048);
        let _ = b.take_trace();
        let _ = tree.search_batch_concurrent(&mut b, &keys);
        let high = b.trace().max_contention();

        assert_eq!(high, keys.len() as u64, "all keys hit copy 0 of the root");
        assert!(
            low * 8 < high,
            "fat-tree search contention ({low}) should be far below the hot-spot search ({high})"
        );
    }

    #[test]
    fn empty_and_single_splitter_trees() {
        let mut pram = Pram::with_seed(4, 3);
        let tree = FatTree::build(&mut pram, &[], 16);
        assert_eq!(tree.search_batch(&mut pram, &[5, 6]), vec![0, 0]);
        assert_eq!(tree.num_buckets(), 1);

        let tree = FatTree::build(&mut pram, &[100], 16);
        assert_eq!(tree.search_batch(&mut pram, &[5, 100, 200]), vec![0, 1, 1]);
        assert_eq!(tree.num_buckets(), 2);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted_splitters() {
        let mut pram = Pram::new(4);
        let _ = FatTree::build(&mut pram, &[3, 1], 4);
    }
}
