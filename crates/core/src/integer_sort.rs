//! Integer sorting on the CRQW PRAM (Section 7.3).
//!
//! Sorts `n` integers in the range `[0, n·lg^c n)` in `O(lg n)` time and
//! linear work w.h.p. (Theorem 7.4), following the Rajasekaran–Reif
//! structure: the *main phase* sorts the keys by their `lg(n / lg³ n)` least
//! significant bits — sample the input, estimate per-label counts, and move
//! every key into its label's subarray with relaxed heavy multiple
//! compaction — and the *finishing phase* stably sorts the result by the
//! remaining high bits with the small-range EREW sort of Fact 4.3.
//!
//! The concurrent-read capability of the CRQW model is only needed in the
//! step where every key reads its label's count and subarray pointer
//! (step 5 of the paper's listing); the implementation performs those reads
//! directly, so under the QRQW metric the same trace shows the higher
//! contention the paper predicts — a contrast the ablation bench reports.

use crate::multiple_compaction::{build_layout, McLayout};
use qrqw_prims::{
    claim_cells, compact_erew, pack, stable_sort_small_range, unpack_payload, ClaimMode,
};
use qrqw_sim::schedule::{ceil_lg, log_star};
use qrqw_sim::{Machine, EMPTY};

/// Sorts `keys`, each below `max_key ≤ n · lg^c n` for a small constant `c`
/// (asserted loosely), returning the sorted sequence.
pub fn integer_sort_crqw<M: Machine>(m: &mut M, keys: &[u64], max_key: u64) -> Vec<u64> {
    let n = keys.len();
    if n <= 1 {
        return keys.to_vec();
    }
    assert!(
        keys.iter().all(|&k| k < max_key.max(1)),
        "keys must be < max_key"
    );
    let lg = ceil_lg(n as u64).max(1);
    assert!(
        max_key <= (n as u64).saturating_mul(lg * lg * lg * lg).max(16),
        "integer sorting expects keys in [0, n·polylog n)"
    );

    // Number of low-bit labels: D ≈ n / lg³ n, rounded to a power of two.
    let d_bits = {
        let target = (n as u64 / (lg * lg * lg).max(1)).max(2);
        ceil_lg(target)
    };
    let d = 1u64 << d_bits;

    // --- Steps 1–3: sample n / lg² n keys and derive per-label count
    // estimates count_j = β·lg² n·max(N_j, lg n) (the paper's overestimate).
    let sample_size = (n / (lg * lg) as usize).max(16).min(n);
    let samples: Vec<u64> = m.par_map(sample_size, |i, ctx| {
        ctx.compute(1);
        let _ = ctx.random_index(n);
        keys[(i * 7919 + ctx.random_index(n)) % n]
    });
    let mut sample_counts = vec![0u64; d as usize];
    for &k in &samples {
        sample_counts[(k & (d - 1)) as usize] += 1;
    }
    let beta = (n as u64).div_ceil(sample_size as u64);
    let counts: Vec<u64> = sample_counts
        .iter()
        .map(|&nj| beta * nj.max(lg) + lg)
        .collect();

    // --- Steps 4–6: build the output layout and place every key into its
    // label's subarray with relaxed heavy multiple compaction.  The keys'
    // *values* are written so the subarrays can be finished in place.
    let labels: Vec<u64> = keys.iter().map(|&k| k & (d - 1)).collect();
    let layout = build_layout(m, &counts);
    if !place_values(m, keys, &labels, &layout) {
        // count estimate failed (w.h.p. never): fall back to a full-width
        // radix sort, which is still linear work.
        return radix_fallback(m, keys, max_key);
    }

    // --- Step 7: compact B to size n.  The subarrays appear in label order,
    // so the result is sorted by the low bits.
    let packed = m.alloc(layout.b_len.max(1));
    let cnt = compact_erew(m, layout.b_base, layout.b_len, packed);
    assert_eq!(cnt as usize, n);

    // --- Finishing phase: stable small-range sort on the high bits
    // (Fact 4.3).  Pack (high bits, position) and sort stably.
    let high_range = (max_key >> d_bits) + 1;
    m.par_for(n, |i, ctx| {
        let v = ctx.read(packed + i);
        ctx.write(
            packed + i,
            pack(v >> d_bits, v & ((1u64 << d_bits.min(32)) - 1)),
        );
    });
    stable_sort_small_range(m, packed, n, high_range as usize);
    let sorted: Vec<u64> = m
        .dump(packed, n)
        .into_iter()
        .map(|w| (qrqw_prims::unpack_key(w) << d_bits) | unpack_payload(w))
        .collect();
    m.release_to(packed);
    sorted
}

/// Dart-throwing placement of key values into label subarrays (relaxed
/// heavy multiple compaction specialised to value cells).
fn place_values<M: Machine>(m: &mut M, keys: &[u64], labels: &[u64], layout: &McLayout) -> bool {
    let n = keys.len();
    let mut active: Vec<usize> = (0..n).collect();
    let mut team = 1usize;
    let team_cap = ceil_lg(n as u64).max(2) as usize;
    let max_rounds = 8 + 2 * log_star(n as u64);
    let mut rounds = 0;
    while !active.is_empty() && rounds < max_rounds {
        rounds += 1;
        let q = team;
        let k = active.len();
        let active_ref = &active;
        let targets: Vec<usize> = m.par_map(k * q, |a, ctx| {
            let item = active_ref[a / q];
            let label = labels[item] as usize;
            layout.cell(label, ctx.random_index(layout.subarray_len[label].max(1)))
        });
        let attempts: Vec<(u64, usize)> = (0..k * q)
            .map(|a| {
                (
                    (a % q) as u64 * n as u64 + active[a / q] as u64 + 1,
                    targets[a],
                )
            })
            .collect();
        let won = claim_cells(m, &attempts, ClaimMode::Occupy);
        let mut keep: Vec<Option<usize>> = vec![None; k];
        for a in 0..k * q {
            if won[a] && keep[a / q].is_none() {
                keep[a / q] = Some(a);
            }
        }
        let (keep_ref, attempts_ref, won_ref) = (&keep, &attempts, &won);
        m.par_for(k * q, |a, ctx| {
            if !won_ref[a] {
                return;
            }
            let slot = a / q;
            if keep_ref[slot] == Some(a) {
                ctx.write(attempts_ref[a].1, keys[active_ref[slot]]);
            } else {
                ctx.write(attempts_ref[a].1, EMPTY);
            }
        });
        active = active
            .iter()
            .enumerate()
            .filter(|&(slot, _)| keep[slot].is_none())
            .map(|(_, &item)| item)
            .collect();
        team = (team * 4).min(team_cap);
    }
    if active.is_empty() {
        return true;
    }
    // Sequential Las-Vegas clean-up; an exhausted subarray reports failure.
    let mut cursors: std::collections::HashMap<usize, usize> = Default::default();
    let placed = qrqw_prims::seq_place_leftovers(
        m,
        &active,
        |item| {
            let label = labels[item] as usize;
            let cur = cursors.entry(label).or_insert(0);
            (*cur < layout.subarray_len[label]).then(|| {
                *cur += 1;
                layout.cell(label, *cur - 1)
            })
        },
        |item| keys[item],
    );
    placed.iter().all(|&(_, spot)| spot.is_some())
}

fn radix_fallback<M: Machine>(m: &mut M, keys: &[u64], max_key: u64) -> Vec<u64> {
    let n = keys.len();
    let base = m.alloc(n);
    let words: Vec<u64> = keys
        .iter()
        .map(|&k| pack(k.min((1 << 31) - 1), 0))
        .collect();
    m.load(base, &words);
    let bits = ceil_lg(max_key.max(2)) as usize;
    qrqw_prims::radix_sort_packed(m, base, n, bits.min(31));
    let out: Vec<u64> = m
        .dump(base, n)
        .into_iter()
        .map(qrqw_prims::unpack_key)
        .collect();
    m.release_to(base);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::Pram;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sorts_random_integers_in_range() {
        let n = 4000usize;
        let max_key = (n as u64) * 16;
        let mut rng = SmallRng::seed_from_u64(1);
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..max_key)).collect();
        let mut pram = Pram::with_seed(4, 2);
        let got = integer_sort_crqw(&mut pram, &keys, max_key);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn sorts_skewed_integers() {
        let n = 1500usize;
        let max_key = (n as u64) * 4;
        let keys: Vec<u64> = (0..n as u64).map(|i| (i * i) % 17).collect();
        let mut pram = Pram::with_seed(4, 3);
        let got = integer_sort_crqw(&mut pram, &keys, max_key);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn tiny_inputs() {
        let mut pram = Pram::with_seed(4, 5);
        assert_eq!(integer_sort_crqw(&mut pram, &[], 10), Vec::<u64>::new());
        assert_eq!(integer_sort_crqw(&mut pram, &[3], 10), vec![3]);
        assert_eq!(integer_sort_crqw(&mut pram, &[3, 1, 2], 10), vec![1, 2, 3]);
    }

    #[test]
    fn work_is_near_linear() {
        let n = 8192usize;
        let max_key = (n as u64) * 8;
        let mut rng = SmallRng::seed_from_u64(4);
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..max_key)).collect();
        let mut pram = Pram::with_seed(4, 6);
        let got = integer_sort_crqw(&mut pram, &keys, max_key);
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            pram.trace().work() <= 200 * n as u64,
            "work {} not near-linear",
            pram.trace().work()
        );
    }
}
