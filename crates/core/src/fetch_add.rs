//! Emulating one step of a Fetch&Add PRAM on the CRQW PRAM (Section 7.3).
//!
//! The Fetch&Add PRAM lets any number of processors issue `fetch&add(x, v)`
//! to the same location in one step: the requests are serialised in some
//! order, each returns the value of `x` just before its own addition, and
//! `x` ends up incremented by the total.  Lemma 7.5 reduces emulating such a
//! step to integer sorting; combined with the CRQW integer sort this gives
//! Theorem 7.6.  The implementation follows that reduction: sort the
//! requests by target address, prefix-sum the increments within every
//! address run, let one representative per address perform the single real
//! read-modify-write, and broadcast the old value back along the run.

use qrqw_prims::{
    pack, prefix_sums_exclusive, propagate_nonempty_forward, radix_sort_packed, unpack_key,
    unpack_payload,
};
use qrqw_sim::schedule::ceil_lg;
use qrqw_sim::{Machine, EMPTY};

/// Executes one Fetch&Add step: request `i` atomically adds `requests[i].1`
/// to shared-memory address `requests[i].0` and receives the value that was
/// there just before its own addition (with requests to the same address
/// serialised in an arbitrary order).  Returns the per-request old values.
///
/// Addresses must be below `2^31` and the memory cells involved must hold
/// numeric values (an [`EMPTY`] cell counts as zero, matching an
/// uninitialised counter).
pub fn emulate_fetch_add_step<M: Machine>(m: &mut M, requests: &[(usize, u64)]) -> Vec<u64> {
    let n = requests.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(
        requests.iter().all(|&(a, _)| a < (1 << 31)),
        "addresses must be < 2^31"
    );
    if let Some(max_addr) = requests.iter().map(|&(a, _)| a).max() {
        m.ensure_memory(max_addr + 1);
    }

    // Sort the requests by address (the integer-sorting reduction).
    let words = m.alloc(n);
    m.par_for(n, |i, ctx| {
        ctx.compute(1);
        ctx.write(words + i, pack(requests[i].0 as u64, i as u64));
    });
    let addr_bits = ceil_lg(requests.iter().map(|&(a, _)| a as u64).max().unwrap_or(1) + 1).max(1);
    radix_sort_packed(m, words, n, addr_bits as usize);
    let sorted: Vec<(usize, usize)> = m
        .dump(words, n)
        .into_iter()
        .map(|w| (unpack_key(w) as usize, unpack_payload(w) as usize))
        .collect();

    // Exclusive prefix sums of the increments in sorted order.
    let incs = m.alloc(n);
    let sorted_ref = &sorted;
    m.par_for(n, |i, ctx| {
        ctx.write(incs + i, requests[sorted_ref[i].1].1);
    });
    prefix_sums_exclusive(m, incs, n);

    // Run boundaries: the first request of every address run remembers the
    // global prefix at the run start and performs the one real
    // read-modify-write of the target cell; both the run-start prefix and
    // the old cell value are then propagated along the run.
    let run_prefix = m.alloc(n);
    let old_vals = m.alloc(n);
    m.par_for(n, |i, ctx| {
        let (addr, _) = sorted_ref[i];
        let is_start = i == 0 || sorted_ref[i - 1].0 != addr;
        if is_start {
            let p = ctx.read(incs + i);
            ctx.write(run_prefix + i, p);
            let old = ctx.read(addr);
            ctx.write(old_vals + i, if old == EMPTY { 0 } else { old });
        }
    });
    propagate_nonempty_forward(m, run_prefix, n);
    propagate_nonempty_forward(m, old_vals, n);

    // Representatives write back old + run_total; every request computes its
    // own return value old + (prefix - run_start_prefix).
    let results: Vec<(usize, u64)> = m.par_map(n, |i, ctx| {
        let (addr, req) = sorted_ref[i];
        let my_prefix = ctx.read(incs + i);
        let start_prefix = ctx.read(run_prefix + i);
        let old = ctx.read(old_vals + i);
        ctx.compute(2);
        let is_last = i + 1 == sorted_ref.len() || sorted_ref[i + 1].0 != addr;
        if is_last {
            let run_total = my_prefix + requests[req].1 - start_prefix;
            ctx.write(addr, old + run_total);
        }
        (req, old + (my_prefix - start_prefix))
    });
    let mut out = vec![0u64; n];
    for (req, val) in results {
        out[req] = val;
    }
    m.release_to(words);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::Pram;
    use std::collections::HashMap;

    #[test]
    fn single_address_serialises_all_requests() {
        let mut pram = Pram::new(16);
        pram.memory_mut().poke(3, 100);
        let reqs: Vec<(usize, u64)> = (0..8).map(|i| (3usize, i + 1)).collect();
        let olds = emulate_fetch_add_step(&mut pram, &reqs);
        // the returned old values must be 100 plus a prefix of the increments
        // in *some* serialisation order; collectively they must be distinct
        // and consistent with the final cell value
        let total: u64 = reqs.iter().map(|&(_, v)| v).sum();
        assert_eq!(pram.memory().peek(3), 100 + total);
        let mut sorted_olds = olds.clone();
        sorted_olds.sort_unstable();
        sorted_olds.dedup();
        assert_eq!(sorted_olds.len(), reqs.len(), "old values must be distinct");
        assert!(olds.iter().all(|&v| v >= 100 && v < 100 + total));
    }

    #[test]
    fn disjoint_addresses_behave_like_plain_adds() {
        let mut pram = Pram::new(64);
        let reqs: Vec<(usize, u64)> = (0..20).map(|i| (i, 5)).collect();
        let olds = emulate_fetch_add_step(&mut pram, &reqs);
        assert!(
            olds.iter().all(|&v| v == 0),
            "uninitialised cells read as zero"
        );
        for i in 0..20 {
            assert_eq!(pram.memory().peek(i), 5);
        }
    }

    #[test]
    fn mixed_addresses_match_a_sequential_emulation() {
        let mut pram = Pram::with_seed(64, 3);
        let reqs: Vec<(usize, u64)> = vec![(5, 1), (9, 10), (5, 2), (9, 20), (5, 3), (2, 7)];
        let olds = emulate_fetch_add_step(&mut pram, &reqs);
        // final values equal the sums
        let mut totals: HashMap<usize, u64> = HashMap::new();
        for &(a, v) in &reqs {
            *totals.entry(a).or_default() += v;
        }
        for (&a, &t) in &totals {
            assert_eq!(pram.memory().peek(a), t);
        }
        // per-address old values are exactly the prefix sums of that
        // address's increments in the serialisation order chosen
        for &addr in totals.keys() {
            let mut seen: Vec<(u64, u64)> = reqs
                .iter()
                .enumerate()
                .filter(|&(_, &(a, _))| a == addr)
                .map(|(i, &(_, v))| (olds[i], v))
                .collect();
            seen.sort_unstable();
            let mut acc = 0;
            for (old, v) in seen {
                assert_eq!(old, acc);
                acc += v;
            }
        }
    }

    #[test]
    fn prefix_sums_emulation_use_case() {
        // the paper's motivation: prefix sums in "one" Fetch&Add step
        let mut pram = Pram::new(8);
        let reqs: Vec<(usize, u64)> = (0..32).map(|_| (0usize, 1)).collect();
        let olds = emulate_fetch_add_step(&mut pram, &reqs);
        let mut ranks = olds.clone();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..32).collect::<Vec<u64>>());
        assert_eq!(pram.memory().peek(0), 32);
    }

    #[test]
    fn empty_request_set() {
        let mut pram = Pram::new(4);
        assert!(emulate_fetch_add_step(&mut pram, &[]).is_empty());
    }
}
