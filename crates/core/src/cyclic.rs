//! Random cyclic permutations (Sections 5.1.2–5.1.3) and the cycle-structure
//! utilities behind Figure 1.
//!
//! A *cyclic* permutation consists of a single cycle.  The paper gives two
//! low-contention generators:
//!
//! * [`random_cyclic_permutation_fast`] (Theorem 5.2): every item throws
//!   `f = ⌈√lg n⌉` darts into an array of `Θ(n·2^f / f)` cells, keeps one
//!   uncontested cell, and then finds its successor (the next occupied cell
//!   to its right, with wrap-around) by walking a binary tree imposed on the
//!   array.  Because the array is a factor `2^f` larger than the item count,
//!   the dart-throwing contention is only `O(√lg n)` w.h.p. — this is the
//!   paper's "larger array" technique — and because gaps are at most
//!   `2^{2f}` w.h.p. the tree walk needs only `O(√lg n)` levels.
//!
//! * [`random_cyclic_permutation_efficient`] (Theorem 5.3): items are placed
//!   into a `Θ(n)`-cell array with the log-star team-doubling placement of
//!   the heavy multiple-compaction algorithm, and successors are found with
//!   a `O(lg lg n)`-level tree walk (gaps are `O(lg² n)` w.h.p.).  Linear
//!   work.
//!
//! The successor relation *is* the cyclic permutation: `successor[i] = j`
//! means `π(i) = j`.

use qrqw_prims::{claim_cells, ClaimMode};
use qrqw_sim::schedule::{ceil_lg, lg_lg, log_star, sqrt_lg};
use qrqw_sim::{Machine, MachineProc, EMPTY};

/// Outcome of a cyclic-permutation generation.
#[derive(Debug, Clone)]
pub struct CyclicOutcome {
    /// `successor[i] = π(i)`; a single cycle over `0..n`.
    pub successor: Vec<u64>,
    /// Whether the sequential Las-Vegas clean-up ran (w.h.p. false).
    pub fallback_used: bool,
    /// Dart-throwing / placement rounds used.
    pub rounds: u64,
}

/// True iff `successor` describes one single cycle covering all of `0..n`.
pub fn is_cyclic(successor: &[u64]) -> bool {
    let n = successor.len();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut cur = 0usize;
    for _ in 0..n {
        if seen[cur] {
            return false;
        }
        seen[cur] = true;
        let Ok(next) = usize::try_from(successor[cur]) else {
            return false;
        };
        if next >= n {
            return false;
        }
        cur = next;
    }
    cur == 0 && seen.iter().all(|&b| b)
}

/// Decomposes a permutation (given as `perm[i] = π(i)`) into its cycles,
/// each listed starting from its smallest element — the representation
/// illustrated in Figure 1 of the paper.
pub fn cycle_representation(perm: &[u64]) -> Vec<Vec<u64>> {
    let n = perm.len();
    let mut seen = vec![false; n];
    let mut cycles = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut cycle = Vec::new();
        let mut cur = start;
        while !seen[cur] {
            seen[cur] = true;
            cycle.push(cur as u64);
            cur = perm[cur] as usize;
            if cur >= n {
                break;
            }
        }
        cycles.push(cycle);
    }
    cycles
}

/// Places the `n` items into `[arena, arena+size)` with exclusive dart
/// throwing; `darts_per_item` darts in the first round, then team doubling.
/// Returns each item's cell and whether a sequential clean-up ran.
fn place_items<M: Machine>(
    m: &mut M,
    n: usize,
    arena: usize,
    size: usize,
    darts_per_item: usize,
) -> (Vec<usize>, bool, u64) {
    let mut cells = vec![usize::MAX; n];
    let mut active: Vec<usize> = (0..n).collect();
    let mut rounds = 0u64;
    let max_rounds = 6 + 2 * log_star(n.max(2) as u64);
    let mut q = darts_per_item.max(1);
    let q_cap = ceil_lg(n.max(2) as u64).max(2) as usize;

    while !active.is_empty() && rounds < max_rounds {
        rounds += 1;
        let k = active.len();
        let active_ref = &active;
        let targets: Vec<usize> = m.par_map(k * q, |_a, ctx| arena + ctx.random_index(size));
        let attempts: Vec<(u64, usize)> = (0..k * q)
            .map(|a| {
                let item = active_ref[a / q];
                let member = (a % q) as u64;
                (member * n as u64 + item as u64 + 1, targets[a])
            })
            .collect();
        let won = claim_cells(m, &attempts, ClaimMode::Exclusive);

        // Keep the first claimed cell per item, mark the rest unclaimed
        // (step 2 of Theorem 5.2), and stamp the kept cell with the item id.
        let mut keep: Vec<Option<usize>> = vec![None; k];
        for a in 0..k * q {
            if won[a] && keep[a / q].is_none() {
                keep[a / q] = Some(a);
            }
        }
        let (keep_ref, attempts_ref, won_ref) = (&keep, &attempts, &won);
        m.par_for(k * q, |a, ctx| {
            if !won_ref[a] {
                return;
            }
            if keep_ref[a / q] == Some(a) {
                ctx.write(attempts_ref[a].1, active_ref[a / q] as u64);
            } else {
                ctx.write(attempts_ref[a].1, EMPTY);
            }
        });
        let mut still = Vec::new();
        for (slot, &item) in active.iter().enumerate() {
            match keep[slot] {
                Some(a) => cells[item] = attempts[a].1,
                None => still.push(item),
            }
        }
        active = still;
        q = (q * 2).min(q_cap);
    }

    let fallback = !active.is_empty();
    if fallback {
        // Sequential Las-Vegas clean-up: one shared-cursor walk of the arena.
        let mut cursor = 0usize;
        let spots = qrqw_prims::seq_place_leftovers(
            m,
            &active,
            |_item| {
                (cursor < size).then(|| {
                    cursor += 1;
                    arena + cursor - 1
                })
            },
            |item| item as u64,
        );
        for (item, addr) in spots {
            cells[item] = addr.expect("the dart arena has at least 2n free cells");
        }
    }
    (cells, fallback, rounds)
}

/// Finds, for every placed item, the item occupying the next non-empty cell
/// to its right (with wrap-around) by the paper's binary-tree walk: level
/// `j` nodes cover `2^j` cells and remember the leftmost/rightmost item of
/// their subtree; merging two siblings links the left child's rightmost
/// item to the right child's leftmost item.  `levels` bounds the walk; gaps
/// larger than `2^levels` are fixed by a sequential sweep (w.h.p. none).
fn link_successors<M: Machine>(
    m: &mut M,
    arena: usize,
    size: usize,
    levels: usize,
    cells: &[usize],
) -> (Vec<u64>, bool) {
    let n = cells.len();
    let succ = m.alloc(n);

    // Level 0 is the arena itself; higher levels store (leftmost, rightmost)
    // packed as two cells per node.
    let mut prev_base = arena;
    let mut prev_nodes = size;
    let mut prev_is_arena = true;
    let mut level_meta: Vec<(usize, usize)> = Vec::new(); // (base, nodes) of top level

    for _ in 0..levels {
        if prev_nodes <= 1 {
            break;
        }
        let nodes = prev_nodes.div_ceil(2);
        let base = m.alloc(2 * nodes);
        m.par_for(nodes, |t, ctx| {
            let read_child = |ctx: &mut dyn MachineProc, c: usize| -> (u64, u64) {
                if c >= prev_nodes {
                    return (EMPTY, EMPTY);
                }
                if prev_is_arena {
                    let v = ctx.read(prev_base + c);
                    (v, v)
                } else {
                    (ctx.read(prev_base + 2 * c), ctx.read(prev_base + 2 * c + 1))
                }
            };
            let (ll, lr) = read_child(ctx, 2 * t);
            let (rl, rr) = read_child(ctx, 2 * t + 1);
            // Link across the sibling boundary, at the lowest level where
            // both sides are non-empty (do not overwrite earlier links).
            if lr != EMPTY && rl != EMPTY {
                let existing = ctx.read(succ + lr as usize);
                if existing == EMPTY {
                    ctx.write(succ + lr as usize, rl);
                }
            }
            let left = if ll != EMPTY { ll } else { rl };
            let right = if rr != EMPTY { rr } else { lr };
            if left != EMPTY {
                ctx.write(base + 2 * t, left);
            }
            if right != EMPTY {
                ctx.write(base + 2 * t + 1, right);
            }
        });
        prev_base = base;
        prev_nodes = nodes;
        prev_is_arena = false;
        level_meta = vec![(base, nodes)];
    }

    // Top level: link every node's rightmost item to the leftmost item of
    // the next non-empty node to its right (immediate neighbour w.h.p.).
    if let Some(&(base, nodes)) = level_meta.first() {
        m.par_for(nodes, |t, ctx| {
            let right = ctx.read(base + 2 * t + 1);
            if right == EMPTY {
                return;
            }
            let next_left = ctx.read(base + 2 * ((t + 1) % nodes));
            if next_left != EMPTY {
                let existing = ctx.read(succ + right as usize);
                if existing == EMPTY {
                    ctx.write(succ + right as usize, next_left);
                }
            }
        });
    }

    // Collect and, if necessary, repair sequentially (an unset successor
    // means some top-level node was empty — w.h.p. this never happens).
    let mut successor = m.dump(succ, n);
    let fallback = successor.contains(&EMPTY);
    if fallback {
        // Order items by their arena cell and close the cycle directly.
        let mut by_cell: Vec<(usize, usize)> = cells.iter().copied().enumerate().collect();
        by_cell.sort_by_key(|&(_, c)| c);
        m.seq_step(|ctx| ctx.compute(n as u64));
        for w in 0..by_cell.len() {
            let (item, _) = by_cell[w];
            let (next_item, _) = by_cell[(w + 1) % by_cell.len()];
            successor[item] = next_item as u64;
        }
    }
    (successor, fallback)
}

/// The fast algorithm of Theorem 5.2: `O(√lg n)` time with `n` processors.
pub fn random_cyclic_permutation_fast<M: Machine>(m: &mut M, n: usize) -> CyclicOutcome {
    if n == 0 {
        return CyclicOutcome {
            successor: Vec::new(),
            fallback_used: false,
            rounds: 0,
        };
    }
    if n == 1 {
        return CyclicOutcome {
            successor: vec![0],
            fallback_used: false,
            rounds: 0,
        };
    }
    let f = sqrt_lg(n as u64).max(1) as usize;
    let size = ((n / f.max(1)) << f.min(8)).max(2 * n);
    let arena = m.alloc(size);
    let (cells, fb1, rounds) = place_items(m, n, arena, size, f);
    let levels = (2 * f + 3).min(ceil_lg(size as u64) as usize + 1);
    let (successor, fb2) = link_successors(m, arena, size, levels, &cells);
    m.release_to(arena);
    CyclicOutcome {
        successor,
        fallback_used: fb1 || fb2,
        rounds,
    }
}

/// The work-optimal algorithm of Theorem 5.3: log-star placement into a
/// `Θ(n)`-cell array, `O(lg lg n)`-level successor search, linear work.
pub fn random_cyclic_permutation_efficient<M: Machine>(m: &mut M, n: usize) -> CyclicOutcome {
    if n == 0 {
        return CyclicOutcome {
            successor: Vec::new(),
            fallback_used: false,
            rounds: 0,
        };
    }
    if n == 1 {
        return CyclicOutcome {
            successor: vec![0],
            fallback_used: false,
            rounds: 0,
        };
    }
    let size = 4 * n;
    let arena = m.alloc(size);
    let (cells, fb1, rounds) = place_items(m, n, arena, size, 1);
    let levels = (2 * lg_lg(n as u64) as usize + 6).min(ceil_lg(size as u64) as usize + 1);
    let (successor, fb2) = link_successors(m, arena, size, levels, &cells);
    m.release_to(arena);
    CyclicOutcome {
        successor,
        fallback_used: fb1 || fb2,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::Pram;

    #[test]
    fn fast_algorithm_produces_a_single_cycle() {
        for seed in 0..3 {
            let mut pram = Pram::with_seed(4, seed);
            let out = random_cyclic_permutation_fast(&mut pram, 400);
            assert!(crate::permutation::is_permutation(&out.successor));
            assert!(is_cyclic(&out.successor), "seed {seed} not a single cycle");
        }
    }

    #[test]
    fn efficient_algorithm_produces_a_single_cycle() {
        let mut pram = Pram::with_seed(4, 11);
        let out = random_cyclic_permutation_efficient(&mut pram, 600);
        assert!(crate::permutation::is_permutation(&out.successor));
        assert!(is_cyclic(&out.successor));
    }

    #[test]
    fn tiny_instances() {
        let mut pram = Pram::with_seed(4, 1);
        assert!(random_cyclic_permutation_fast(&mut pram, 0)
            .successor
            .is_empty());
        assert_eq!(
            random_cyclic_permutation_fast(&mut pram, 1).successor,
            vec![0]
        );
        let two = random_cyclic_permutation_fast(&mut pram, 2);
        assert_eq!(two.successor, vec![1, 0]);
    }

    #[test]
    fn cycle_representation_matches_figure_1_examples() {
        // the paper's Figure 1: a cyclic permutation has one cycle, a
        // non-cyclic one decomposes into several
        let cyclic = vec![3u64, 0, 4, 1, 2]; // 0->3->1->0? no: check below
        let cycles = cycle_representation(&cyclic);
        let total: usize = cycles.iter().map(|c| c.len()).sum();
        assert_eq!(total, 5);

        let identity = vec![0u64, 1, 2, 3];
        assert_eq!(cycle_representation(&identity).len(), 4);

        let single = vec![1u64, 2, 3, 0];
        assert_eq!(cycle_representation(&single).len(), 1);
        assert!(is_cyclic(&single));
        assert!(!is_cyclic(&identity));
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut pram = Pram::with_seed(4, seed);
            random_cyclic_permutation_efficient(&mut pram, 128).successor
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn fast_algorithm_contention_is_low() {
        let n = 2048usize;
        let mut pram = Pram::with_seed(4, 21);
        let out = random_cyclic_permutation_fast(&mut pram, n);
        assert!(is_cyclic(&out.successor));
        let lg = ceil_lg(n as u64);
        assert!(
            pram.trace().max_contention() <= 2 * lg,
            "contention {}",
            pram.trace().max_contention()
        );
    }
}
