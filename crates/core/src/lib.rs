//! # qrqw-core — the paper's low-contention parallel algorithms
//!
//! This crate implements every algorithm of Gibbons, Matias and
//! Ramachandran, *"Efficient Low-Contention Parallel Algorithms"*, on top of
//! the QRQW PRAM simulator (`qrqw-sim`) and its primitive toolbox
//! (`qrqw-prims`), together with the EREW/CRCW baselines the paper compares
//! against:
//!
//! | Paper section | Module |
//! |---|---|
//! | §3 load balancing (+ EREW prefix-sums baseline) | [`load_balancing`] |
//! | §3.3 L-spawning automatic processor allocation | [`spawning`] |
//! | §4 multiple compaction (heavy / light / relaxed) | [`multiple_compaction()`] |
//! | §5.1.1 random permutation + §5.2 experiment algorithms | [`permutation`] |
//! | §5.1.2–5.1.3 random *cyclic* permutation, Fig. 1 utilities | [`cyclic`] |
//! | §6 parallel hashing (R-class functions, two-level table) | [`hashing`] |
//! | §7.1 sorting from U(0,1) | [`distributive`] |
//! | §7.2 general sorting (sample sort + binary-search fat-tree) | [`sample_sort`], [`fat_tree`] |
//! | §7.3 integer sorting and Fetch&Add emulation | [`integer_sort`], [`fetch_add`] |
//!
//! Every public routine is generic over the [`qrqw_sim::Machine`] backend
//! trait: the same algorithm source runs on the exact-cost simulator
//! ([`qrqw_sim::Pram`]) — where its time under any PRAM cost model, its work,
//! and its contention profile can be read off the trace afterwards — and on
//! the native threads/atomics machine (`qrqw_exec::NativeMachine`) for wall
//! clock.  That is how the Table I / Table II harnesses and the
//! `backend_bench` registry in `qrqw-bench` are built; the cross-backend
//! parity suite in `tests/backends.rs` pins the exact contract each
//! algorithm keeps (bit-identical output for exclusive-claim and
//! deterministic routines, semantic validity for occupy-based ones).

#![deny(missing_docs)]

pub mod cyclic;
pub mod distributive;
pub mod fat_tree;
pub mod fetch_add;
pub mod hashing;
pub mod integer_sort;
pub mod load_balancing;
pub mod multiple_compaction;
pub mod open_table;
pub mod permutation;
pub mod sample_sort;
pub mod spawning;

pub use cyclic::{
    cycle_representation, is_cyclic, random_cyclic_permutation_efficient,
    random_cyclic_permutation_fast,
};
pub use distributive::sort_uniform_keys;
pub use fat_tree::FatTree;
pub use fetch_add::emulate_fetch_add_step;
pub use hashing::QrqwHashTable;
pub use integer_sort::integer_sort_crqw;
pub use load_balancing::{load_balance_erew, load_balance_qrqw, LoadBalanceResult, TaskBlock};
pub use multiple_compaction::{
    heavy_multiple_compaction, light_multiple_compaction, multiple_compaction, McLayout, McResult,
};
pub use open_table::{OpenTable, TableGeometry, TOMBSTONE};
pub use permutation::{
    is_permutation, random_permutation_dart_scan, random_permutation_qrqw,
    random_permutation_sorting_erew, PermutationOutcome,
};
pub use sample_sort::{sample_sort_crqw, sample_sort_qrqw};
pub use spawning::{run_l_spawning, SpawningReport};
