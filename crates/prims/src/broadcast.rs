//! Binary broadcasting and value duplication.
//!
//! Broadcasting a value to `k` processors requires `Ω(lg k)` time on the
//! QRQW PRAM (Theorem 3.1 quotes the lower bound from the companion paper),
//! and the matching upper bound is the plain binary-doubling broadcast
//! implemented here.  The same doubling pattern implements the paper's
//! *duplication* technique (Section 1.2): "if a program variable is to be
//! read by `k` processors, replace the variable with `k` copies and let
//! each processor read a random copy" — used by the hashing algorithm
//! (Lemma 6.4) and the binary-search fat-tree (Section 7.2).

use qrqw_sim::Machine;

/// Copies the value at `src_addr` into the `count` cells
/// `dest_base .. dest_base + count` in `O(lg count)` EREW-legal steps and
/// `O(count)` work.
pub fn broadcast_cell<M: Machine>(m: &mut M, src_addr: usize, dest_base: usize, count: usize) {
    if count == 0 {
        return;
    }
    m.ensure_memory(dest_base + count);
    // Seed the first destination cell.
    m.par_for(1, |_p, ctx| {
        let v = ctx.read(src_addr);
        ctx.write(dest_base, v);
    });
    // Double the copied prefix until it covers the region.
    let mut have = 1usize;
    while have < count {
        let add = have.min(count - have);
        m.par_for(add, |p, ctx| {
            let v = ctx.read(dest_base + p);
            ctx.write(dest_base + have + p, v);
        });
        have += add;
    }
}

/// Duplicates each of the `k` values `mem[src_base + i]` into `copies`
/// consecutive cells starting at `dest_base + i * copies`, in
/// `O(lg copies)` EREW-legal steps and `O(k · copies)` work.
///
/// This is the bulk form of the paper's duplication technique: after the
/// call, a processor wanting value `i` can read `dest_base + i*copies + r`
/// for a random `r`, so `κ` concurrent readers of the same logical value
/// spread over `copies` cells and the expected contention drops to
/// `κ / copies`.
pub fn duplicate_values<M: Machine>(
    m: &mut M,
    src_base: usize,
    k: usize,
    dest_base: usize,
    copies: usize,
) {
    if k == 0 || copies == 0 {
        return;
    }
    m.ensure_memory(dest_base + k * copies);
    // Seed copy 0 of every value.
    m.par_for(k, |i, ctx| {
        let v = ctx.read(src_base + i);
        ctx.write(dest_base + i * copies, v);
    });
    // Doubling within every block simultaneously.
    let mut have = 1usize;
    while have < copies {
        let add = have.min(copies - have);
        m.par_for(k * add, |p, ctx| {
            let i = p / add;
            let j = p % add;
            let v = ctx.read(dest_base + i * copies + j);
            ctx.write(dest_base + i * copies + have + j, v);
        });
        have += add;
    }
}

/// Propagates non-empty values forward: after the call, every cell of
/// `[base, base+len)` holds the nearest non-[`qrqw_sim::EMPTY`] value at or
/// before it (cells before the first non-empty value stay empty).
///
/// This is the "segmented broadcast" used to distribute a per-segment datum
/// (written at each segment's first cell) to the whole segment — e.g. a
/// bucket's subarray pointer to all items of the bucket after they have been
/// sorted by label.  `⌈lg len⌉` steps of contention ≤ 2 each; the total work
/// is `O(len · lg s)` where `s` is the longest empty run being filled.
pub fn propagate_nonempty_forward<M: Machine>(m: &mut M, base: usize, len: usize) {
    use qrqw_sim::EMPTY;
    if len <= 1 {
        return;
    }
    m.ensure_memory(base + len);
    let mut jump = 1usize;
    while jump < len {
        m.par_for(len - jump, |p, ctx| {
            let i = p + jump;
            let own = ctx.read(base + i);
            if own != EMPTY {
                return;
            }
            let prev = ctx.read(base + i - jump);
            if prev != EMPTY {
                ctx.write(base + i, prev);
            }
        });
        jump *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::{CostModel, Pram};

    #[test]
    fn broadcast_fills_region_with_value() {
        let mut pram = Pram::new(64);
        pram.memory_mut().poke(0, 99);
        broadcast_cell(&mut pram, 0, 10, 37);
        assert!(pram.memory().dump(10, 37).iter().all(|&v| v == 99));
        assert_eq!(pram.trace().violations(CostModel::Erew), 0);
    }

    #[test]
    fn broadcast_time_is_logarithmic() {
        let mut pram = Pram::new(2048);
        pram.memory_mut().poke(0, 1);
        broadcast_cell(&mut pram, 0, 1, 1024);
        let t = pram.trace().time(CostModel::Qrqw);
        assert!(t <= 2 * 11, "broadcast of 1024 cells took {t} steps");
        assert!(pram.trace().work() <= 3 * 1024);
    }

    #[test]
    fn broadcast_of_zero_cells_is_noop() {
        let mut pram = Pram::new(4);
        broadcast_cell(&mut pram, 0, 0, 0);
        assert_eq!(pram.trace().num_steps(), 0);
    }

    #[test]
    fn duplicate_values_makes_block_copies() {
        let mut pram = Pram::new(4);
        pram.memory_mut().load(0, &[7, 8, 9]);
        let dest = pram.alloc(3 * 5);
        duplicate_values(&mut pram, 0, 3, dest, 5);
        for i in 0..3 {
            for j in 0..5 {
                assert_eq!(pram.memory().peek(dest + i * 5 + j), 7 + i as u64);
            }
        }
        assert_eq!(pram.trace().violations(CostModel::Erew), 0);
    }

    #[test]
    fn duplicate_values_handles_non_power_of_two_copies() {
        let mut pram = Pram::new(2);
        pram.memory_mut().load(0, &[3, 4]);
        let dest = pram.alloc(2 * 7);
        duplicate_values(&mut pram, 0, 2, dest, 7);
        assert!(pram.memory().dump(dest, 7).iter().all(|&v| v == 3));
        assert!(pram.memory().dump(dest + 7, 7).iter().all(|&v| v == 4));
    }

    #[test]
    fn duplicate_single_copy_is_plain_copy() {
        let mut pram = Pram::new(4);
        pram.memory_mut().load(0, &[1, 2, 3, 4]);
        let dest = pram.alloc(4);
        duplicate_values(&mut pram, 0, 4, dest, 1);
        assert_eq!(pram.memory().dump(dest, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn propagate_fills_runs_with_previous_value() {
        use qrqw_sim::EMPTY;
        let mut pram = Pram::new(12);
        pram.memory_mut().poke(2, 7);
        pram.memory_mut().poke(6, 9);
        pram.memory_mut().poke(10, 3);
        propagate_nonempty_forward(&mut pram, 0, 12);
        assert_eq!(
            pram.memory().dump(0, 12),
            vec![EMPTY, EMPTY, 7, 7, 7, 7, 9, 9, 9, 9, 3, 3]
        );
        // contention never exceeds two (own cell + successor probe)
        assert!(pram.trace().max_contention() <= 2);
    }

    #[test]
    fn propagate_noop_on_short_or_full_regions() {
        let mut pram = Pram::new(8);
        propagate_nonempty_forward(&mut pram, 0, 1);
        assert_eq!(pram.trace().num_steps(), 0);
        pram.memory_mut().load(0, &[1, 2, 3, 4]);
        propagate_nonempty_forward(&mut pram, 0, 4);
        assert_eq!(pram.memory().dump(0, 4), vec![1, 2, 3, 4]);
    }
}
