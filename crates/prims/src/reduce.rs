//! Binary-tree reductions: global OR, sum, max.
//!
//! These are the EREW bookkeeping tools the paper's algorithms use for
//! "detect whether any item failed" / "count the survivors" style steps
//! (e.g. the `globalor` calls in the MasPar experiment of Section 5.2 and
//! the failure tests of the Las Vegas wrappers).  Each runs in `⌈lg n⌉ + 1`
//! EREW-legal steps and `O(n)` work.

use qrqw_sim::{Machine, EMPTY};

use crate::util::next_pow2;

fn tree_reduce<M: Machine>(
    m: &mut M,
    base: usize,
    len: usize,
    combine: fn(u64, u64) -> u64,
    identity: u64,
    map_empty: u64,
) -> u64 {
    if len == 0 {
        return identity;
    }
    let width = next_pow2(len);
    let w = m.alloc(width);
    m.par_for(width, |i, ctx| {
        let v = if i < len { ctx.read(base + i) } else { EMPTY };
        ctx.write(w + i, if v == EMPTY { map_empty } else { v });
    });
    let levels = width.trailing_zeros() as usize;
    for d in 0..levels {
        let stride = 1usize << (d + 1);
        let half = 1usize << d;
        m.par_for(width / stride, |i, ctx| {
            let a = ctx.read(w + i * stride + half - 1);
            let b = ctx.read(w + i * stride + stride - 1);
            ctx.write(w + i * stride + stride - 1, combine(a, b));
        });
    }
    let result = m.peek(w + width - 1);
    m.release_to(w);
    result
}

/// Returns true iff any cell in `[base, base+len)` is non-zero and
/// non-[`EMPTY`].  `O(lg n)` EREW steps, `O(n)` work.
pub fn global_or<M: Machine>(m: &mut M, base: usize, len: usize) -> bool {
    tree_reduce(m, base, len, |a, b| (a != 0 || b != 0) as u64, 0, 0) != 0
}

/// Sum of the region ([`EMPTY`] counts as zero).  `O(lg n)` EREW steps.
pub fn reduce_sum<M: Machine>(m: &mut M, base: usize, len: usize) -> u64 {
    tree_reduce(m, base, len, |a, b| a + b, 0, 0)
}

/// Maximum of the region ([`EMPTY`] counts as zero).  `O(lg n)` EREW steps.
pub fn reduce_max<M: Machine>(m: &mut M, base: usize, len: usize) -> u64 {
    tree_reduce(m, base, len, |a, b| a.max(b), 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::{CostModel, Pram};

    #[test]
    fn or_detects_presence() {
        let mut pram = Pram::new(33);
        assert!(!global_or(&mut pram, 0, 33));
        pram.memory_mut().poke(20, 5);
        assert!(global_or(&mut pram, 0, 33));
        assert_eq!(pram.trace().violations(CostModel::Erew), 0);
    }

    #[test]
    fn or_ignores_zero_cells() {
        let mut pram = Pram::new(8);
        pram.memory_mut().load(0, &[0; 8]);
        assert!(!global_or(&mut pram, 0, 8));
    }

    #[test]
    fn sum_and_max_match_reference() {
        let xs: Vec<u64> = (0..50).map(|i| (i * 13) % 29).collect();
        let mut pram = Pram::new(64);
        pram.memory_mut().load(0, &xs);
        assert_eq!(reduce_sum(&mut pram, 0, 50), xs.iter().sum::<u64>());
        assert_eq!(reduce_max(&mut pram, 0, 50), *xs.iter().max().unwrap());
    }

    #[test]
    fn reductions_are_logarithmic_time() {
        let mut pram = Pram::new(4096);
        pram.memory_mut().load(0, &vec![1u64; 4096]);
        reduce_sum(&mut pram, 0, 4096);
        let t = pram.trace().time(CostModel::Qrqw);
        assert!(t <= 3 * 13, "sum of 4096 cells took {t} time");
    }

    #[test]
    fn empty_region_reduces_to_identity() {
        let mut pram = Pram::new(4);
        assert_eq!(reduce_sum(&mut pram, 0, 0), 0);
        assert_eq!(reduce_max(&mut pram, 0, 0), 0);
        assert!(!global_or(&mut pram, 0, 0));
    }
}
