//! # qrqw-prims — parallel building blocks over the `Machine` backend API
//!
//! This crate provides the primitive parallel routines that the paper's
//! algorithms (crate `qrqw-core`) are built from.  Every routine is generic
//! over [`qrqw_sim::Machine`], expressed as a sequence of synchronous steps:
//! on the simulator backend ([`qrqw_sim::Pram`]) its time, work and
//! contention are measured exactly; on the native backend
//! (`qrqw_exec::NativeMachine`) the same source runs on real threads.
//!
//! * [`prefix`] — work-optimal EREW prefix sums (Blelloch up/down sweep),
//!   the `Θ(lg n)`-time tool behind the EREW baselines of Table I.
//! * [`broadcast`] — binary broadcasting of a cell to `k` cells in
//!   `O(lg k)` EREW steps, and bulk value duplication (the paper's
//!   "replace a program variable with k copies" technique, Section 1.2).
//! * [`reduce`] — binary-tree global OR / sum / max reductions.
//! * [`listrank`] — pointer-jumping list ranking (used by the load-balancing
//!   input-format conversion of Section 3).
//! * [`claim`] — the "write, read, write, read" cell-claiming protocol of
//!   Section 5.1, in both *exclusive* (all colliders fail) and *occupy*
//!   (arbitration winner succeeds) flavours.
//! * [`compaction`] — the compaction and linear-compaction problems
//!   (Section 4 preliminaries): an EREW prefix-sums compaction and a
//!   low-contention dart-throwing linear compaction with log-star team
//!   doubling.
//! * [`intsort`] — the stable small-range integer sort of Fact 4.3 and a
//!   general LSD radix sort for packed (key, payload) words.
//! * [`bitonic`] — Batcher's bitonic sorting network as an EREW PRAM
//!   algorithm (the MasPar system sort used by the sorting-based
//!   random-permutation baseline of Section 5.2).

#![deny(missing_docs)]

pub mod bitonic;
pub mod broadcast;
pub mod claim;
pub mod compaction;
pub mod intsort;
pub mod listrank;
pub mod prefix;
pub mod reduce;
pub mod util;

pub use bitonic::{bitonic_sort, bitonic_sort_segments};
pub use broadcast::{broadcast_cell, duplicate_values, propagate_nonempty_forward};
pub use claim::{claim_cells, ClaimMode};
pub use compaction::{
    compact_erew, linear_compaction, seq_place_leftovers, LinearCompactionOutcome,
};
pub use intsort::{radix_sort_packed, stable_sort_small_range};
pub use listrank::list_rank;
pub use prefix::{prefix_sums_exclusive, prefix_sums_inclusive};
pub use reduce::{global_or, reduce_max, reduce_sum};
pub use util::{pack, unpack_key, unpack_payload};
