//! Compaction and linear compaction (Section 4, preliminaries).
//!
//! *Compaction*: given an array `A[1..n]` with `k` non-empty cells (`k`
//! known, positions unknown), move the non-empty contents to the first `k`
//! cells.  *Linear compaction*: move them to an output array of size
//! `O(k)`.
//!
//! Two implementations are provided:
//!
//! * [`compact_erew`] — the zero-contention prefix-sums route
//!   (`Θ(lg n)` time, linear work), the tool behind the EREW baselines and
//!   the "compact the array at the end" steps of several QRQW algorithms.
//!
//! * [`linear_compaction`] — a low-contention randomized routine: every
//!   non-empty item repeatedly *dart-throws* into the `Θ(k)`-cell output
//!   array using the occupy-mode claiming protocol, with the team size per
//!   still-unplaced item doubling doubly-exponentially between rounds (the
//!   log-star paradigm of Section 4.1), plus a sequential Las-Vegas
//!   clean-up for the (w.h.p. empty) tail.
//!
//!   **Substitution note.**  The paper invokes the `O(√lg n)`-time linear
//!   compaction of its companion paper GMR96a, whose internals are not
//!   reproduced in the present text.  Our routine attains
//!   `O(lg*n · lg n / lg lg n)` QRQW time with linear work — the same
//!   w.h.p. contention bound per round (Observation 2.6) and the same
//!   linear-work property, so every qualitative comparison in Table I that
//!   relies on linear compaction is preserved; only the `√lg n` factor in
//!   the load-balancing bound becomes `lg n / lg lg n`.  This is recorded
//!   in DESIGN.md.

use qrqw_sim::schedule::ceil_lg;
use qrqw_sim::{Machine, EMPTY};

use crate::claim::{claim_cells, ClaimMode};

/// The shared sequential Las-Vegas clean-up walk behind every dart-throwing
/// algorithm's fallback path: for each leftover `item`, advance its
/// candidate-cell stream (`candidates(item)`, `None` = exhausted) until an
/// [`EMPTY`] cell turns up, write `value_of(item)` there, and report the
/// cell.  Runs as one [`Machine::seq_step`], so the walk observes its own
/// placements immediately on every backend — the property the fallbacks
/// need to stay injective.
///
/// `candidates` is stateful across items (a shared cursor models one
/// processor scanning an arena; per-label cursors model one scan per
/// subarray), which is exactly how the w.h.p.-dead tails of Sections 4–7
/// are specified.
pub fn seq_place_leftovers<M, C, V>(
    m: &mut M,
    items: &[usize],
    mut candidates: C,
    value_of: V,
) -> Vec<(usize, Option<usize>)>
where
    M: Machine,
    C: FnMut(usize) -> Option<usize>,
    V: Fn(usize) -> u64,
{
    m.seq_step(|ctx| {
        items
            .iter()
            .map(|&item| {
                let mut found = None;
                while let Some(addr) = candidates(item) {
                    if ctx.read(addr) == EMPTY {
                        ctx.write(addr, value_of(item));
                        found = Some(addr);
                        break;
                    }
                }
                (item, found)
            })
            .collect()
    })
}

/// Moves the non-empty cells of `[src_base, src_base+n)` to the front of
/// `[dst_base, dst_base+n)` in their original order, returning how many
/// there were.  EREW-legal; this is the machine's compaction primitive
/// ([`Machine::compact_step`]): the simulator runs (and charges) the
/// canonical flag-write → [`Machine::scan_step`] → rank-gather route, the
/// native backend fuses the passes into two block sweeps.
pub fn compact_erew<M: Machine>(m: &mut M, src_base: usize, n: usize, dst_base: usize) -> u64 {
    m.compact_step(src_base, n, dst_base)
}

/// Result of a [`linear_compaction`] call.
#[derive(Debug, Clone)]
pub struct LinearCompactionOutcome {
    /// `(source index, destination offset)` for every placed item; the
    /// destination cell `dst_base + offset` holds the source index.
    pub placements: Vec<(usize, usize)>,
    /// Number of dart-throwing rounds executed.
    pub rounds: u64,
    /// Whether the sequential Las-Vegas clean-up had to place any item
    /// (w.h.p. false).
    pub fallback_used: bool,
}

/// Injectively maps the non-empty cells of `[src_base, src_base+n)` into the
/// output array `[dst_base, dst_base + dst_size)`, leaving each claimed
/// output cell holding the *source index* of the item placed there.
///
/// `dst_size` must be at least four times the number of non-empty cells
/// (the paper's constant-factor slack); randomized, Las Vegas, linear work,
/// `O(lg*n · lg n / lg lg n)` QRQW time w.h.p. (see the module notes).
pub fn linear_compaction<M: Machine>(
    m: &mut M,
    src_base: usize,
    n: usize,
    dst_base: usize,
    dst_size: usize,
) -> LinearCompactionOutcome {
    m.ensure_memory(src_base + n.max(1));
    m.ensure_memory(dst_base + dst_size.max(1));

    // Each processor inspects its own cell (one read each) and the hosts of
    // non-empty cells become the active item set.
    let occupied: Vec<bool> = m.par_map(n, |i, ctx| ctx.read(src_base + i) != EMPTY);
    let mut active: Vec<usize> = (0..n).filter(|&i| occupied[i]).collect();
    let count = active.len();
    assert!(
        count == 0 || dst_size >= 4 * count,
        "linear compaction needs an output array of size >= 4k (k = {count}, dst_size = {dst_size})"
    );

    let team_cap = (2 * ceil_lg(n.max(2) as u64)).max(2);
    let mut team: u64 = 1;
    let mut rounds = 0u64;
    let max_rounds = 4 + 2 * qrqw_sim::schedule::log_star(n.max(2) as u64);
    let mut placements: Vec<(usize, usize)> = Vec::with_capacity(count);

    while !active.is_empty() && rounds < max_rounds {
        rounds += 1;
        let q = team as usize;
        let k_active = active.len();

        // Every team member picks a random target cell (one accounted
        // random draw per member).
        let targets: Vec<usize> = m.par_map(k_active * q, |_a, ctx| ctx.random_index(dst_size));

        // Claim attempts: tag = member * n + source_index + 1 (unique, below
        // EMPTY for all simulated sizes).
        let attempts: Vec<(u64, usize)> = (0..k_active * q)
            .map(|a| {
                let item = active[a / q];
                let member = (a % q) as u64;
                (member * n as u64 + item as u64 + 1, dst_base + targets[a])
            })
            .collect();
        let won = claim_cells(m, &attempts, ClaimMode::Occupy);

        // Team-internal selection of the surviving copy (the paper charges a
        // within-group prefix computation for this; we account one compute
        // operation per team member).
        m.par_for(k_active * q, |_a, ctx| ctx.compute(1));

        // Fix-up step: the selected winner rewrites its cell with the source
        // index, redundant winners release their cells.
        let mut keep: Vec<Option<usize>> = vec![None; k_active]; // attempt index kept per item
        for (a, &got) in won.iter().enumerate() {
            if got {
                let item_slot = a / q;
                if keep[item_slot].is_none() {
                    keep[item_slot] = Some(a);
                }
            }
        }
        let keep_ref = &keep;
        let attempts_ref = &attempts;
        let won_ref = &won;
        m.par_for(k_active * q, |a, ctx| {
            if !won_ref[a] {
                return;
            }
            let item_slot = a / q;
            let item = active[item_slot];
            if keep_ref[item_slot] == Some(a) {
                ctx.write(attempts_ref[a].1, item as u64);
            } else {
                ctx.write(attempts_ref[a].1, EMPTY);
            }
        });

        let mut still_active = Vec::new();
        for (slot, &item) in active.iter().enumerate() {
            match keep[slot] {
                Some(a) => placements.push((item, attempts[a].1 - dst_base)),
                None => still_active.push(item),
            }
        }
        active = still_active;
        team = (1u64 << team.min(6)).min(team_cap).max(team + 1);
    }

    // Las-Vegas clean-up: one sequential step walks the output array and
    // places whatever is left (w.h.p. nothing).
    let fallback_used = !active.is_empty();
    if fallback_used {
        let mut cursor = 0usize;
        let placed = seq_place_leftovers(
            m,
            &active,
            |_item| {
                (cursor < dst_size).then(|| {
                    cursor += 1;
                    dst_base + cursor - 1
                })
            },
            |item| item as u64,
        );
        assert!(
            placed.iter().all(|&(_, spot)| spot.is_some()),
            "output array too small for the linear-compaction fallback"
        );
        placements.extend(
            placed
                .into_iter()
                .map(|(item, spot)| (item, spot.unwrap() - dst_base)),
        );
    }

    LinearCompactionOutcome {
        placements,
        rounds,
        fallback_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::{CostModel, Pram};
    use std::collections::HashSet;

    #[test]
    fn compact_erew_moves_values_in_order() {
        let mut pram = Pram::new(32);
        pram.memory_mut().poke(3, 30);
        pram.memory_mut().poke(7, 70);
        pram.memory_mut().poke(12, 120);
        let count = compact_erew(&mut pram, 0, 16, 16);
        assert_eq!(count, 3);
        assert_eq!(pram.memory().dump(16, 3), vec![30, 70, 120]);
        assert_eq!(pram.trace().violations(CostModel::Erew), 0);
    }

    #[test]
    fn compact_erew_empty_input() {
        let mut pram = Pram::new(8);
        assert_eq!(compact_erew(&mut pram, 0, 4, 4), 0);
        assert_eq!(compact_erew(&mut pram, 0, 0, 4), 0);
    }

    #[test]
    fn compact_erew_full_input_is_identity() {
        let xs: Vec<u64> = (0..20).map(|i| i * 2).collect();
        let mut pram = Pram::new(64);
        pram.memory_mut().load(0, &xs);
        let count = compact_erew(&mut pram, 0, 20, 32);
        assert_eq!(count, 20);
        assert_eq!(pram.memory().dump(32, 20), xs);
    }

    #[test]
    fn linear_compaction_places_every_item_injectively() {
        let n = 256;
        let mut pram = Pram::with_seed(n, 11);
        // every 4th cell occupied -> k = 64 items
        for i in (0..n).step_by(4) {
            pram.memory_mut().poke(i, 1000 + i as u64);
        }
        let dst = pram.alloc(4 * 64);
        let out = linear_compaction(&mut pram, 0, n, dst, 4 * 64);
        assert_eq!(out.placements.len(), 64);
        let sources: HashSet<usize> = out.placements.iter().map(|&(s, _)| s).collect();
        assert_eq!(sources, (0..n).step_by(4).collect::<HashSet<_>>());
        let spots: HashSet<usize> = out.placements.iter().map(|&(_, d)| d).collect();
        assert_eq!(spots.len(), 64, "destinations must be distinct");
        for &(src, off) in &out.placements {
            assert_eq!(pram.memory().peek(dst + off), src as u64);
        }
    }

    #[test]
    fn linear_compaction_handles_empty_and_single_item() {
        let mut pram = Pram::new(16);
        let out = linear_compaction(&mut pram, 0, 16, 16, 16);
        assert!(out.placements.is_empty());
        assert!(!out.fallback_used);

        let mut pram = Pram::new(16);
        pram.memory_mut().poke(5, 7);
        let dst = pram.alloc(8);
        let out = linear_compaction(&mut pram, 0, 16, dst, 8);
        assert_eq!(out.placements.len(), 1);
        assert_eq!(out.placements[0].0, 5);
    }

    #[test]
    fn linear_compaction_contention_is_modest() {
        let n = 1 << 12;
        let mut pram = Pram::with_seed(n, 3);
        for i in 0..n / 2 {
            pram.memory_mut().poke(i * 2, i as u64 + 1);
        }
        let k = n / 2;
        let dst = pram.alloc(4 * k);
        let out = linear_compaction(&mut pram, 0, n, dst, 4 * k);
        assert_eq!(out.placements.len(), k);
        // Observation 2.6: expected load per cell <= 1/4, so the maximum
        // contention is O(lg n / lg lg n) w.h.p.; allow a generous constant.
        let lg_n = ceil_lg(n as u64);
        assert!(
            pram.trace().max_contention() <= 4 * lg_n,
            "contention {} too high",
            pram.trace().max_contention()
        );
        // linear work
        assert!(pram.trace().work() <= 60 * n as u64);
    }

    #[test]
    #[should_panic(expected = "output array of size >= 4k")]
    fn linear_compaction_rejects_undersized_output() {
        let mut pram = Pram::new(16);
        for i in 0..8 {
            pram.memory_mut().poke(i, 1);
        }
        let _ = linear_compaction(&mut pram, 0, 16, 16, 8);
    }
}
