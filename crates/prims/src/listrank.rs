//! Pointer-jumping list ranking.
//!
//! Section 3 of the paper converts the "array of arrays" task representation
//! into the single-array input format by linking the task arrays into a
//! list, *list ranking* it, and copying tasks to their ranked positions —
//! `O(lg L)` time, `O(m)` work.  This module provides the classic
//! pointer-jumping list-ranking algorithm (`O(lg n)` steps, `O(n lg n)`
//! work), which is exactly what that conversion needs for lists of length
//! `≤ L`.
//!
//! Each round is split into a *publish* step (every node writes its current
//! rank and pointer into its own cells) and a *jump* step (every node reads
//! its unique successor's cells), so the whole routine is EREW-legal: a
//! node's cells are read only by its unique predecessor.

use qrqw_sim::{Machine, EMPTY};

/// The null successor pointer marking the end of a list.
pub const NIL: u64 = EMPTY;

/// Computes, for every node `i` of the linked lists described by
/// `succ[base_succ + i]` (`NIL` terminates a list), the number of links from
/// `i` to the end of its list, storing it in `rank[base_rank + i]`.
///
/// Runs in `2⌈lg n⌉ + 2` EREW-legal steps with `O(n lg n)` work on any
/// [`Machine`] backend (the routine is deterministic, so both backends
/// produce identical ranks).
pub fn list_rank<M: Machine>(m: &mut M, base_succ: usize, n: usize, base_rank: usize) {
    if n == 0 {
        return;
    }
    m.ensure_memory(base_succ + n);
    m.ensure_memory(base_rank + n);
    // Shared "publication" arrays for the current pointer of every node;
    // the ranks are published in the caller's output array.
    let s_pub = m.alloc(n);

    // Private per-node state (the node's current rank and pointer), carried
    // between steps by the host exactly as a PRAM processor would carry it
    // in its private memory.
    let mut state: Vec<(u64, u64)> = m.par_map(n, |i, ctx| {
        let succ = ctx.read(base_succ + i);
        let rank = if succ == NIL { 0 } else { 1 };
        (rank, succ)
    });

    let rounds = (usize::BITS - (n - 1).leading_zeros()).max(1);
    for _ in 0..rounds {
        // Publish: every node writes its own cells (exclusive).
        let snapshot = state.clone();
        m.par_for(n, |i, ctx| {
            let (rank, succ) = snapshot[i];
            ctx.write(base_rank + i, rank);
            ctx.write(s_pub + i, succ);
        });
        // Jump: every node reads its unique successor's cells (exclusive).
        let prev = state.clone();
        state = m.par_map(n, |i, ctx| {
            let (rank, succ) = prev[i];
            if succ == NIL {
                return (rank, succ);
            }
            let succ_rank = ctx.read(base_rank + succ as usize);
            let succ_succ = ctx.read(s_pub + succ as usize);
            (rank + succ_rank, succ_succ)
        });
    }

    // Final publish of the converged ranks.
    m.par_for(n, |i, ctx| {
        ctx.write(base_rank + i, state[i].0);
    });
    m.release_to(s_pub);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::{CostModel, Pram};

    /// Builds the successor array of a single list visiting `order` in turn.
    fn chain(order: &[usize], n: usize) -> Vec<u64> {
        let mut succ = vec![NIL; n];
        for w in order.windows(2) {
            succ[w[0]] = w[1] as u64;
        }
        succ
    }

    #[test]
    fn ranks_single_chain() {
        let order = [3usize, 0, 4, 1, 2];
        let succ = chain(&order, 5);
        let mut pram = Pram::new(16);
        pram.memory_mut().load(0, &succ);
        list_rank(&mut pram, 0, 5, 8);
        // node at position j in the traversal has rank (len-1-j)
        for (j, &node) in order.iter().enumerate() {
            assert_eq!(pram.memory().peek(8 + node), (order.len() - 1 - j) as u64);
        }
        assert_eq!(pram.trace().violations(CostModel::Erew), 0);
    }

    #[test]
    fn ranks_multiple_disjoint_lists() {
        // two lists: 0 -> 1 -> 2 and 5 -> 4
        let mut succ = vec![NIL; 6];
        succ[0] = 1;
        succ[1] = 2;
        succ[5] = 4;
        let mut pram = Pram::new(32);
        pram.memory_mut().load(0, &succ);
        list_rank(&mut pram, 0, 6, 16);
        let ranks = pram.memory().dump(16, 6);
        assert_eq!(ranks, vec![2, 1, 0, 0, 0, 1]);
        assert_eq!(pram.trace().violations(CostModel::Erew), 0);
    }

    #[test]
    fn preserves_original_successors() {
        let succ = chain(&[0, 1, 2, 3], 4);
        let mut pram = Pram::new(16);
        pram.memory_mut().load(0, &succ);
        list_rank(&mut pram, 0, 4, 8);
        assert_eq!(pram.memory().dump(0, 4), succ);
    }

    #[test]
    fn long_chain_is_erew_and_logarithmic() {
        let n = 512;
        let order: Vec<usize> = (0..n).collect();
        let succ = chain(&order, n);
        let mut pram = Pram::new(2 * n);
        pram.memory_mut().load(0, &succ);
        list_rank(&mut pram, 0, n, n);
        assert_eq!(pram.memory().peek(n), (n - 1) as u64);
        assert_eq!(pram.trace().violations(CostModel::Erew), 0);
        let t = pram.trace().time(CostModel::Qrqw);
        assert!(t <= 10 * 12, "list ranking of 512 nodes took {t}");
    }
}
