//! The cell-claiming protocol ("write, read, write, read", Section 5.1).
//!
//! Many of the paper's randomized algorithms have processors *claim* memory
//! cells: a processor picks a cell (usually at random) and wants to learn,
//! within a constant number of low-contention steps, whether its claim
//! succeeded.  Two flavours appear in the paper:
//!
//! * **Occupy** — an already-occupied cell rejects all claims; among
//!   simultaneous claimants to a free cell, the arbitration winner succeeds
//!   and the cell keeps its tag.  This is the behaviour used by the heavy
//!   multiple-compaction deactivation step (Section 4.1) and by the hashing
//!   algorithm's block-claiming step (Section 6.2).
//!
//! * **Exclusive** — a claim succeeds only if it is the *only* claim on the
//!   cell in this round; simultaneous claimants all fail and the cell is
//!   restored to empty.  This is the behaviour required by the
//!   random-permutation dart-throwing algorithms (Section 5.1), where
//!   letting an arbitration winner through would bias the permutation.
//!
//! Both are implemented with the paper's constant-round protocol, so the
//! contention of every step is at most the size of the largest collision
//! set — exactly the quantity the QRQW metric charges.

use qrqw_sim::Machine;

pub use qrqw_sim::ClaimMode;

/// Executes one round of the claiming protocol on any [`Machine`] backend.
///
/// `attempts[i] = (tag, target)` asks to claim shared-memory cell `target`
/// with the (unique, non-[`qrqw_sim::EMPTY`]) value `tag`; the return vector
/// reports which attempts succeeded.  After the call, every successfully
/// claimed cell contains its claimant's tag; unsuccessful attempts leave
/// cells unchanged (Exclusive) or owned by the arbitration winner (Occupy).
///
/// This is a thin wrapper over [`Machine::claim`]: the simulator runs the
/// paper's constant-round protocol (3 steps for Occupy, 6 for Exclusive,
/// each with per-processor operation count 1 and contention equal to the
/// largest collision set), the native backend an equivalent CAS sequence
/// with the same step-count charge.
pub fn claim_cells<M: Machine>(m: &mut M, attempts: &[(u64, usize)], mode: ClaimMode) -> Vec<bool> {
    m.claim(attempts, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::CostModel;
    use qrqw_sim::{Pram, EMPTY};

    #[test]
    fn unique_claims_succeed_in_both_modes() {
        for mode in [ClaimMode::Exclusive, ClaimMode::Occupy] {
            let mut pram = Pram::new(16);
            let attempts = vec![(100u64, 3usize), (101, 7), (102, 11)];
            let ok = claim_cells(&mut pram, &attempts, mode);
            assert_eq!(ok, vec![true, true, true]);
            assert_eq!(pram.memory().peek(3), 100);
            assert_eq!(pram.memory().peek(7), 101);
            assert_eq!(pram.memory().peek(11), 102);
        }
    }

    #[test]
    fn occupied_cells_reject_claims() {
        for mode in [ClaimMode::Exclusive, ClaimMode::Occupy] {
            let mut pram = Pram::new(8);
            pram.memory_mut().poke(2, 55);
            let ok = claim_cells(&mut pram, &[(77, 2)], mode);
            assert_eq!(ok, vec![false]);
            assert_eq!(pram.memory().peek(2), 55, "occupied cell must be untouched");
        }
    }

    #[test]
    fn exclusive_collisions_all_fail_and_cell_stays_empty() {
        let mut pram = Pram::new(8);
        let attempts = vec![(1u64, 4usize), (2, 4), (3, 4), (4, 6)];
        let ok = claim_cells(&mut pram, &attempts, ClaimMode::Exclusive);
        assert_eq!(ok, vec![false, false, false, true]);
        assert_eq!(
            pram.memory().peek(4),
            EMPTY,
            "contested cell must be restored"
        );
        assert_eq!(pram.memory().peek(6), 4);
    }

    #[test]
    fn occupy_collisions_let_exactly_one_winner_through() {
        let mut pram = Pram::new(8);
        let attempts = vec![(10u64, 4usize), (11, 4), (12, 4)];
        let ok = claim_cells(&mut pram, &attempts, ClaimMode::Occupy);
        assert_eq!(ok.iter().filter(|&&b| b).count(), 1);
        let winner = ok.iter().position(|&b| b).unwrap();
        assert_eq!(pram.memory().peek(4), attempts[winner].0);
    }

    #[test]
    fn contention_accounting_matches_collision_set_size() {
        let mut pram = Pram::new(8);
        let attempts: Vec<(u64, usize)> = (0..5).map(|i| (100 + i, 3usize)).collect();
        claim_cells(&mut pram, &attempts, ClaimMode::Occupy);
        // the probe and write steps each see 5 processors on one cell
        assert_eq!(pram.trace().max_contention(), 5);
        assert!(pram.trace().time(CostModel::Crcw) <= 3);
        assert!(pram.trace().time(CostModel::Qrqw) >= 10);
    }

    #[test]
    fn empty_attempt_list_is_a_noop() {
        let mut pram = Pram::new(4);
        assert!(claim_cells(&mut pram, &[], ClaimMode::Exclusive).is_empty());
        assert_eq!(pram.trace().num_steps(), 0);
    }

    #[test]
    fn sequential_rounds_respect_previous_claims() {
        let mut pram = Pram::new(8);
        assert_eq!(
            claim_cells(&mut pram, &[(1, 2)], ClaimMode::Occupy),
            vec![true]
        );
        // a later round cannot steal the cell
        assert_eq!(
            claim_cells(&mut pram, &[(9, 2)], ClaimMode::Occupy),
            vec![false]
        );
        assert_eq!(pram.memory().peek(2), 1);
    }
}
