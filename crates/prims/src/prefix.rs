//! Work-optimal EREW prefix sums (Blelloch up-sweep / down-sweep).
//!
//! Prefix sums are the workhorse of the *zero-contention* (EREW) algorithms
//! the paper compares against: the `Θ(lg n)`-time load-balancing baseline
//! (Table I), the compaction steps of the dart-throwing-with-scans
//! permutation algorithm (Section 5.2), and countless bookkeeping steps in
//! the QRQW algorithms themselves.  The routine below runs in `2⌈lg n⌉ + 3`
//! EREW-legal steps and `O(n)` work.
//!
//! Cells equal to [`qrqw_sim::EMPTY`] are treated as zero, which is what the
//! flag-counting uses in this repository want.

use qrqw_sim::{Machine, EMPTY};

use crate::util::next_pow2;

/// Replaces `mem[base .. base+len)` by its *inclusive* prefix sums and
/// returns the total.
pub fn prefix_sums_inclusive<M: Machine>(m: &mut M, base: usize, len: usize) -> u64 {
    scan(m, base, len, true)
}

/// Replaces `mem[base .. base+len)` by its *exclusive* prefix sums and
/// returns the total.
pub fn prefix_sums_exclusive<M: Machine>(m: &mut M, base: usize, len: usize) -> u64 {
    scan(m, base, len, false)
}

fn scan<M: Machine>(m: &mut M, base: usize, len: usize, inclusive: bool) -> u64 {
    if len == 0 {
        return 0;
    }
    let width = next_pow2(len);
    let w = m.alloc(width);

    // Copy the input into the scratch tree (EMPTY -> 0; cells past `len`
    // are already EMPTY and become 0).
    m.par_for(width, |i, ctx| {
        let v = if i < len { ctx.read(base + i) } else { EMPTY };
        ctx.write(w + i, if v == EMPTY { 0 } else { v });
    });

    // Up-sweep.
    let levels = width.trailing_zeros() as usize;
    for d in 0..levels {
        let stride = 1usize << (d + 1);
        let half = 1usize << d;
        m.par_for(width / stride, |i, ctx| {
            let left = w + i * stride + half - 1;
            let right = w + i * stride + stride - 1;
            let a = ctx.read(left);
            let b = ctx.read(right);
            ctx.write(right, a + b);
        });
    }
    let total = m.peek(w + width - 1);

    // Down-sweep: clear the root, then push partial sums down.
    m.par_for(1, |_i, ctx| ctx.write(w + width - 1, 0));
    for d in (0..levels).rev() {
        let stride = 1usize << (d + 1);
        let half = 1usize << d;
        m.par_for(width / stride, |i, ctx| {
            let left = w + i * stride + half - 1;
            let right = w + i * stride + stride - 1;
            let a = ctx.read(left);
            let b = ctx.read(right);
            ctx.write(left, b);
            ctx.write(right, a + b);
        });
    }

    // Write the result back into the caller's region.
    m.par_for(len, |i, ctx| {
        let excl = ctx.read(w + i);
        if inclusive {
            let orig = ctx.read(base + i);
            let orig = if orig == EMPTY { 0 } else { orig };
            ctx.write(base + i, excl + orig);
        } else {
            ctx.write(base + i, excl);
        }
    });

    m.release_to(w);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::{CostModel, Pram};

    fn reference_inclusive(xs: &[u64]) -> Vec<u64> {
        let mut acc = 0;
        xs.iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect()
    }

    #[test]
    fn inclusive_matches_reference() {
        let xs: Vec<u64> = (0..37).map(|i| (i * 7 + 3) % 11).collect();
        let mut pram = Pram::new(64);
        pram.memory_mut().load(0, &xs);
        let total = prefix_sums_inclusive(&mut pram, 0, xs.len());
        assert_eq!(pram.memory().dump(0, xs.len()), reference_inclusive(&xs));
        assert_eq!(total, xs.iter().sum::<u64>());
    }

    #[test]
    fn exclusive_matches_reference() {
        let xs: Vec<u64> = vec![5, 0, 2, 9, 1, 1, 3];
        let mut pram = Pram::new(16);
        pram.memory_mut().load(0, &xs);
        let total = prefix_sums_exclusive(&mut pram, 0, xs.len());
        let mut expect = vec![0u64];
        for &x in &xs[..xs.len() - 1] {
            expect.push(expect.last().unwrap() + x);
        }
        assert_eq!(pram.memory().dump(0, xs.len()), expect);
        assert_eq!(total, 21);
    }

    #[test]
    fn empty_cells_count_as_zero() {
        let mut pram = Pram::new(8);
        pram.memory_mut().poke(2, 4);
        pram.memory_mut().poke(5, 6);
        let total = prefix_sums_inclusive(&mut pram, 0, 8);
        assert_eq!(total, 10);
        assert_eq!(pram.memory().dump(0, 8), vec![0, 0, 4, 4, 4, 10, 10, 10]);
    }

    #[test]
    fn is_erew_legal_and_logarithmic_time() {
        let n = 1024usize;
        let xs: Vec<u64> = vec![1; n];
        let mut pram = Pram::new(n);
        pram.memory_mut().load(0, &xs);
        prefix_sums_inclusive(&mut pram, 0, n);
        let trace = pram.trace();
        assert_eq!(trace.violations(CostModel::Erew), 0, "scan must be EREW");
        assert_eq!(trace.max_contention(), 1);
        let t = trace.time(CostModel::Qrqw);
        // 2 lg n + 3 steps, every step has m = κ = small constant
        assert!(t <= 4 * 10 + 12, "time {t} should be O(lg n)");
        // work is linear
        assert!(
            trace.work() <= 16 * n as u64,
            "work {} should be O(n)",
            trace.work()
        );
    }

    #[test]
    fn singleton_and_zero_length() {
        let mut pram = Pram::new(4);
        pram.memory_mut().poke(0, 9);
        assert_eq!(prefix_sums_inclusive(&mut pram, 0, 1), 9);
        assert_eq!(pram.memory().peek(0), 9);
        assert_eq!(prefix_sums_inclusive(&mut pram, 0, 0), 0);
        assert_eq!(prefix_sums_exclusive(&mut pram, 0, 1), 9);
        assert_eq!(pram.memory().peek(0), 0);
    }

    #[test]
    fn scratch_space_is_released() {
        let mut pram = Pram::new(32);
        let before = pram.heap_top();
        prefix_sums_inclusive(&mut pram, 0, 32);
        assert_eq!(pram.heap_top(), before);
    }
}
