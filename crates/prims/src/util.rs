//! Word-packing helpers.
//!
//! Shared-memory cells are single `u64` words.  Several algorithms need to
//! carry a `(key, payload)` pair per cell — e.g. "a key together with the
//! index of the item it came from" — exactly as one would on a real PRAM
//! where a cell holds `O(lg n)` bits.  We pack the key into the high 32 bits
//! and the payload into the low 32 bits, so that sorting packed words by
//! numeric value sorts by key with ties broken by payload (which keeps
//! radix/bitonic sorts stable with respect to original positions when the
//! payload is the original index).

/// Number of bits reserved for the payload (low half of the word).
pub const PAYLOAD_BITS: u32 = 32;

/// Packs `key` (at most 31 bits for safe headroom below [`qrqw_sim::EMPTY`])
/// and `payload` (at most 32 bits) into one word.
pub fn pack(key: u64, payload: u64) -> u64 {
    debug_assert!(key < (1 << 31), "packed key must fit in 31 bits");
    debug_assert!(payload < (1 << PAYLOAD_BITS), "payload must fit in 32 bits");
    (key << PAYLOAD_BITS) | payload
}

/// Extracts the key from a packed word.
pub fn unpack_key(word: u64) -> u64 {
    word >> PAYLOAD_BITS
}

/// Extracts the payload from a packed word.
pub fn unpack_payload(word: u64) -> u64 {
    word & ((1 << PAYLOAD_BITS) - 1)
}

/// `⌈a / b⌉` for positive `b`.
pub fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// The smallest power of two `≥ x` (and `≥ 1`).
pub fn next_pow2(x: usize) -> usize {
    x.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips() {
        let w = pack(12345, 678);
        assert_eq!(unpack_key(w), 12345);
        assert_eq!(unpack_payload(w), 678);
    }

    #[test]
    fn packed_order_is_key_major_payload_minor() {
        assert!(pack(1, 999) < pack(2, 0));
        assert!(pack(5, 1) < pack(5, 2));
    }

    #[test]
    fn packed_values_stay_below_empty_sentinel() {
        assert!(pack((1 << 31) - 1, (1 << 32) - 1) < qrqw_sim::EMPTY);
    }

    #[test]
    fn small_helpers() {
        assert_eq!(div_ceil(10, 3), 4);
        assert_eq!(div_ceil(9, 3), 3);
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(8), 8);
    }
}
