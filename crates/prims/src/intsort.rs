//! Stable small-range integer sorting (Fact 4.3) and LSD radix sort.
//!
//! Fact 4.3 of the paper: *the EREW PRAM can stably sort `n` integers in the
//! range `[1..lg^c n]` in `O(lg n)` time and linear work.*  The proof sorts
//! by one `lg n`-sized digit per pass using per-group counting, a prefix-sums
//! computation over the count matrix `N[key, group]`, and a ranked copy-out;
//! [`stable_sort_by`] below is exactly that pass (with a configurable bucket
//! count), and [`radix_sort_packed`] composes passes into a general
//! least-significant-digit radix sort for packed `(key, payload)` words.
//!
//! Cells hold packed words (see [`crate::util::pack`]): the key in the high
//! 32 bits, an arbitrary payload (usually the original index) in the low 32
//! bits.

use qrqw_sim::{Machine, EMPTY};

use crate::prefix::prefix_sums_exclusive;
use crate::util::unpack_key;

/// One stable counting-sort pass over `[base, base+n)`, ordering the packed
/// words by `bucket_of(word) ∈ [0, num_buckets)`.
///
/// `O(g + lg n)` time and `O(n)` work on an EREW PRAM, where
/// `g = max(num_buckets, lg n)` is the group size each processor handles
/// sequentially (the paper's choice `g = lg n`, generalised so callers may
/// use more buckets per pass at a proportional time cost).  Deterministic on
/// every [`Machine`] backend.
pub fn stable_sort_by<M: Machine, F>(
    m: &mut M,
    base: usize,
    n: usize,
    num_buckets: usize,
    bucket_of: F,
) where
    F: Fn(u64) -> u64 + Sync,
{
    if n <= 1 {
        return;
    }
    assert!(num_buckets >= 1);
    m.ensure_memory(base + n);
    let lg_n = qrqw_sim::schedule::ceil_lg(n as u64) as usize;
    let g = num_buckets.max(lg_n).max(1);
    let p = n.div_ceil(g);

    let counts = m.alloc(num_buckets * p); // N[key * p + group]
    let out = m.alloc(n);

    // Pass 1: every group processor counts its keys and publishes its column
    // of the count matrix (zero counts are simply left EMPTY, which the
    // prefix-sums routine treats as zero).
    let bucket_of = &bucket_of;
    m.par_for(p, |j, ctx| {
        let lo = j * g;
        let hi = ((j + 1) * g).min(n);
        let mut local = vec![0u64; num_buckets];
        for i in lo..hi {
            let w = ctx.read(base + i);
            let b = bucket_of(w) as usize;
            assert!(b < num_buckets, "bucket {b} out of range {num_buckets}");
            local[b] += 1;
            ctx.compute(1);
        }
        for (b, &c) in local.iter().enumerate() {
            if c > 0 {
                ctx.write(counts + b * p + j, c);
            }
        }
    });

    // Pass 2: exclusive prefix sums over the count matrix in row-major
    // (key-major) order give every (key, group) its starting output rank.
    prefix_sums_exclusive(m, counts, num_buckets * p);

    // Pass 3: every group processor re-reads its keys and copies them to
    // their global ranks (distinct ranks, so the writes are exclusive).
    m.par_for(p, |j, ctx| {
        let lo = j * g;
        let hi = ((j + 1) * g).min(n);
        let mut next = vec![u64::MAX; num_buckets];
        for i in lo..hi {
            let w = ctx.read(base + i);
            let b = bucket_of(w) as usize;
            if next[b] == u64::MAX {
                let start = ctx.read(counts + b * p + j);
                next[b] = if start == EMPTY { 0 } else { start };
            }
            ctx.write(out + next[b] as usize, w);
            next[b] += 1;
            ctx.compute(1);
        }
    });

    // Pass 4: copy the sorted sequence back to the caller's region.
    m.par_for(n, |i, ctx| {
        let w = ctx.read(out + i);
        ctx.write(base + i, w);
    });

    m.release_to(counts);
}

/// Stably sorts the packed words of `[base, base+n)` by their (full) key
/// field, assuming every key is below `num_keys`.
///
/// For `num_keys ≤ lg^c n` this is exactly the Fact 4.3 routine (applied in
/// `⌈lg num_keys / lg g⌉` digit passes of `g = max(lg n, 256)` buckets
/// each); the total time is `O(lg n)` per pass with linear work.
pub fn stable_sort_small_range<M: Machine>(m: &mut M, base: usize, n: usize, num_keys: usize) {
    if n <= 1 || num_keys <= 1 {
        return;
    }
    let digit_buckets = qrqw_sim::schedule::ceil_lg(n.max(4) as u64).clamp(256, 1 << 12) as usize;
    if num_keys <= digit_buckets {
        stable_sort_by(m, base, n, num_keys, unpack_key);
        return;
    }
    let key_bits = 64 - (num_keys as u64 - 1).leading_zeros();
    radix_sort_packed(m, base, n, key_bits as usize);
}

/// Stable LSD radix sort of packed words by the low `key_bits` bits of
/// their key field; `O(key_bits / 8)` counting passes of 256 buckets each.
pub fn radix_sort_packed<M: Machine>(m: &mut M, base: usize, n: usize, key_bits: usize) {
    if n <= 1 || key_bits == 0 {
        return;
    }
    let digit_bits = 8usize;
    let passes = key_bits.div_ceil(digit_bits);
    for t in 0..passes {
        let shift = t * digit_bits;
        stable_sort_by(m, base, n, 1 << digit_bits, move |w| {
            (unpack_key(w) >> shift) & 0xFF
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{pack, unpack_payload};
    use qrqw_sim::{CostModel, Pram};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn load_pairs(pram: &mut Pram, pairs: &[(u64, u64)]) {
        let words: Vec<u64> = pairs.iter().map(|&(k, p)| pack(k, p)).collect();
        pram.ensure_memory(words.len());
        pram.memory_mut().load(0, &words);
    }

    fn read_pairs(pram: &Pram, n: usize) -> Vec<(u64, u64)> {
        pram.memory()
            .dump(0, n)
            .into_iter()
            .map(|w| (unpack_key(w), unpack_payload(w)))
            .collect()
    }

    #[test]
    fn small_range_sort_matches_stable_reference() {
        let mut rng = SmallRng::seed_from_u64(5);
        let pairs: Vec<(u64, u64)> = (0..300).map(|i| (rng.gen_range(0..16), i)).collect();
        let mut pram = Pram::new(1);
        load_pairs(&mut pram, &pairs);
        stable_sort_small_range(&mut pram, 0, pairs.len(), 16);
        let mut expect = pairs.clone();
        expect.sort_by_key(|&(k, _)| k); // std stable sort
        assert_eq!(read_pairs(&pram, pairs.len()), expect);
        assert_eq!(pram.trace().violations(CostModel::Erew), 0);
    }

    #[test]
    fn radix_sort_handles_large_keys() {
        let mut rng = SmallRng::seed_from_u64(17);
        let pairs: Vec<(u64, u64)> = (0..500).map(|i| (rng.gen_range(0..1_000_000), i)).collect();
        let mut pram = Pram::new(1);
        load_pairs(&mut pram, &pairs);
        radix_sort_packed(&mut pram, 0, pairs.len(), 20);
        let mut expect = pairs.clone();
        expect.sort_by_key(|&(k, _)| k);
        assert_eq!(read_pairs(&pram, pairs.len()), expect);
    }

    #[test]
    fn sort_is_stable_across_digit_boundaries() {
        // keys chosen so that several share low digits but differ in high ones
        let pairs: Vec<(u64, u64)> =
            vec![(0x201, 0), (0x101, 1), (0x201, 2), (0x001, 3), (0x101, 4)];
        let mut pram = Pram::new(1);
        load_pairs(&mut pram, &pairs);
        radix_sort_packed(&mut pram, 0, pairs.len(), 12);
        assert_eq!(
            read_pairs(&pram, pairs.len()),
            vec![(0x001, 3), (0x101, 1), (0x101, 4), (0x201, 0), (0x201, 2)]
        );
    }

    #[test]
    fn linear_work_and_logarithmic_time_per_pass() {
        let n = 4096usize;
        let mut rng = SmallRng::seed_from_u64(2);
        let pairs: Vec<(u64, u64)> = (0..n as u64).map(|i| (rng.gen_range(0..12), i)).collect();
        let mut pram = Pram::new(1);
        load_pairs(&mut pram, &pairs);
        stable_sort_small_range(&mut pram, 0, n, 12);
        let work = pram.trace().work();
        assert!(work <= 40 * n as u64, "work {work} should be linear");
        let t = pram.trace().time(CostModel::Qrqw);
        // group size is max(lg n, 256) here, so time is O(g)
        assert!(t <= 4 * 256 + 200, "time {t} unexpectedly high");
    }

    #[test]
    fn degenerate_inputs_are_noops() {
        let mut pram = Pram::new(4);
        stable_sort_small_range(&mut pram, 0, 0, 10);
        stable_sort_small_range(&mut pram, 0, 1, 10);
        radix_sort_packed(&mut pram, 0, 1, 8);
        assert_eq!(pram.trace().num_steps(), 0);
    }

    #[test]
    fn single_bucket_input_preserves_order() {
        let pairs: Vec<(u64, u64)> = (0..50).map(|i| (7, i)).collect();
        let mut pram = Pram::new(1);
        load_pairs(&mut pram, &pairs);
        stable_sort_by(&mut pram, 0, 50, 8, unpack_key);
        assert_eq!(read_pairs(&pram, 50), pairs);
    }
}
