//! Batcher's bitonic sorting network as an EREW PRAM algorithm.
//!
//! The MasPar MP-1 system sort used by the *sorting-based* random-permutation
//! baseline of Section 5.2 is a bitonic sort, and the paper's asymptotic
//! analysis of that baseline charges it `O(lg² n)` time on the
//! (scan-)SIMD-QRQW PRAM.  This module provides exactly that network: every
//! compare–exchange stage is one EREW-legal step in which each active
//! processor performs two reads and at most two writes, for
//! `lg n (lg n + 1) / 2` steps and `O(n lg² n)` work in total.
//!
//! Cells may hold any `u64` below [`qrqw_sim::EMPTY`]; the routine pads to a
//! power of two internally with `EMPTY`, which sorts to the end.

use qrqw_sim::{Machine, EMPTY};

use crate::util::next_pow2;

/// Sorts `[base, base+n)` in ascending order.
pub fn bitonic_sort<M: Machine>(m: &mut M, base: usize, n: usize) {
    if n <= 1 {
        return;
    }
    m.ensure_memory(base + n);
    let width = next_pow2(n);
    let work = m.alloc(width);

    // Copy in, padding with EMPTY (the maximum value, so pads stay at the
    // tail of the sorted order).
    m.par_for(width, |i, ctx| {
        let v = if i < n { ctx.read(base + i) } else { EMPTY };
        ctx.write(work + i, v);
    });

    let mut k = 2usize;
    while k <= width {
        let mut j = k / 2;
        while j >= 1 {
            m.par_for(width, |i, ctx| {
                let l = i ^ j;
                if l <= i {
                    return;
                }
                let a = ctx.read(work + i);
                let b = ctx.read(work + l);
                let ascending = (i & k) == 0;
                let out_of_order = if ascending { a > b } else { a < b };
                if out_of_order {
                    ctx.write(work + i, b);
                    ctx.write(work + l, a);
                }
            });
            j /= 2;
        }
        k *= 2;
    }

    // Copy the sorted prefix back.
    m.par_for(n, |i, ctx| {
        let v = ctx.read(work + i);
        ctx.write(base + i, v);
    });
    m.release_to(work);
}

/// Sorts `num_segs` independent, equally sized segments
/// `[base + s*seg_size, base + (s+1)*seg_size)` simultaneously: every
/// compare–exchange stage of the network runs across *all* segments in the
/// same PRAM step, so the total number of steps is `O(lg² seg_size)`
/// regardless of how many segments there are.
///
/// `seg_size` must be a power of two (callers pad with [`EMPTY`], which
/// sorts to the end of each segment).  This is the "finish the groups in
/// parallel" tool used by the sample-sort finishing phase (Section 7.2).
pub fn bitonic_sort_segments<M: Machine>(m: &mut M, base: usize, seg_size: usize, num_segs: usize) {
    if seg_size <= 1 || num_segs == 0 {
        return;
    }
    assert!(
        seg_size.is_power_of_two(),
        "segment size must be a power of two"
    );
    m.ensure_memory(base + seg_size * num_segs);
    let total = seg_size * num_segs;
    let mut k = 2usize;
    while k <= seg_size {
        let mut j = k / 2;
        while j >= 1 {
            m.par_for(total, |g, ctx| {
                let seg = g / seg_size;
                let i = g % seg_size;
                let l = i ^ j;
                if l <= i {
                    return;
                }
                let off = base + seg * seg_size;
                let a = ctx.read(off + i);
                let b = ctx.read(off + l);
                let ascending = (i & k) == 0;
                let out_of_order = if ascending { a > b } else { a < b };
                if out_of_order {
                    ctx.write(off + i, b);
                    ctx.write(off + l, a);
                }
            });
            j /= 2;
        }
        k *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::{CostModel, Pram};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sorts_random_input() {
        let mut rng = SmallRng::seed_from_u64(9);
        let xs: Vec<u64> = (0..777).map(|_| rng.gen_range(0..10_000)).collect();
        let mut pram = Pram::new(1024);
        pram.memory_mut().load(0, &xs);
        bitonic_sort(&mut pram, 0, xs.len());
        let mut expect = xs.clone();
        expect.sort_unstable();
        assert_eq!(pram.memory().dump(0, xs.len()), expect);
    }

    #[test]
    fn is_erew_legal() {
        let xs: Vec<u64> = (0..64).rev().collect();
        let mut pram = Pram::new(64);
        pram.memory_mut().load(0, &xs);
        bitonic_sort(&mut pram, 0, 64);
        assert_eq!(pram.trace().violations(CostModel::Erew), 0);
        assert_eq!(pram.trace().max_contention(), 1);
    }

    #[test]
    fn time_is_order_lg_squared() {
        let n = 1024usize;
        let xs: Vec<u64> = (0..n as u64).rev().collect();
        let mut pram = Pram::new(n);
        pram.memory_mut().load(0, &xs);
        bitonic_sort(&mut pram, 0, n);
        let t = pram.trace().time(CostModel::Qrqw);
        let lg = 10u64;
        assert!(t >= lg * (lg + 1) / 2, "bitonic must pay Θ(lg² n) steps");
        // each compare–exchange stage costs 2 (two reads / two writes per
        // processor), plus the copy-in / copy-out steps
        assert!(t <= lg * (lg + 1) + 8, "unexpected extra steps: {t}");
    }

    #[test]
    fn handles_duplicates_and_already_sorted() {
        let xs = vec![3u64, 3, 3, 1, 1, 2, 2, 2, 2];
        let mut pram = Pram::new(16);
        pram.memory_mut().load(0, &xs);
        bitonic_sort(&mut pram, 0, xs.len());
        assert_eq!(
            pram.memory().dump(0, xs.len()),
            vec![1, 1, 2, 2, 2, 2, 3, 3, 3]
        );

        let sorted: Vec<u64> = (0..33).collect();
        let mut pram = Pram::new(64);
        pram.memory_mut().load(0, &sorted);
        bitonic_sort(&mut pram, 0, 33);
        assert_eq!(pram.memory().dump(0, 33), sorted);
    }

    #[test]
    fn trivial_sizes_are_noops() {
        let mut pram = Pram::new(4);
        bitonic_sort(&mut pram, 0, 0);
        bitonic_sort(&mut pram, 0, 1);
        assert_eq!(pram.trace().num_steps(), 0);
    }

    #[test]
    fn segmented_sort_sorts_each_segment_independently() {
        let mut rng = SmallRng::seed_from_u64(4);
        let segs = 10usize;
        let size = 32usize;
        let data: Vec<u64> = (0..segs * size).map(|_| rng.gen_range(0..1000)).collect();
        let mut pram = Pram::new(segs * size);
        pram.memory_mut().load(0, &data);
        bitonic_sort_segments(&mut pram, 0, size, segs);
        for s in 0..segs {
            let mut expect: Vec<u64> = data[s * size..(s + 1) * size].to_vec();
            expect.sort_unstable();
            assert_eq!(pram.memory().dump(s * size, size), expect);
        }
        assert_eq!(pram.trace().violations(CostModel::Erew), 0);
    }

    #[test]
    fn segmented_sort_step_count_is_independent_of_segment_count() {
        let run = |segs: usize| {
            let mut pram = Pram::new(segs * 16);
            pram.memory_mut()
                .load(0, &(0..(segs * 16) as u64).rev().collect::<Vec<_>>());
            bitonic_sort_segments(&mut pram, 0, 16, segs);
            pram.trace().num_steps()
        };
        assert_eq!(run(2), run(64));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn segmented_sort_rejects_non_power_of_two() {
        let mut pram = Pram::new(30);
        bitonic_sort_segments(&mut pram, 0, 10, 3);
    }
}
