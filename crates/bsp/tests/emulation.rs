//! Crate-level integration check: a full paper algorithm re-executes the
//! simulator's exact trajectory on the BSP backend, and the measured
//! emulation stays within the Theorem 1.1 formula bound.

use qrqw_bsp::BspMachine;
use qrqw_core::{is_permutation, random_permutation_qrqw};
use qrqw_sim::{CostModel, Machine, Pram};

#[test]
fn permutation_is_bit_identical_and_measured_cost_stays_under_the_bound() {
    for (n, seed) in [(500usize, 7u64), (2048, 3)] {
        let mut sim = Pram::with_seed(16, seed);
        let mut bsp = BspMachine::with_seed(16, seed);
        let a = random_permutation_qrqw(&mut sim, n);
        let b = random_permutation_qrqw(&mut bsp, n);
        assert!(is_permutation(&a.order));
        assert_eq!(
            a.order, b.order,
            "bsp diverged from sim (n={n} seed={seed})"
        );
        assert_eq!(sim.steps_executed(), Machine::steps_executed(&bsp));

        // The BSP backend's formula accumulator must agree with the
        // simulator's exact QRQW trace time, and the realized queues must
        // never exceed what the trace charged per step.
        assert_eq!(
            bsp.charged_qrqw_time(),
            sim.trace().time(CostModel::Qrqw),
            "formula sides diverged (n={n} seed={seed})"
        );
        let charged = sim.trace().contention_profile();
        let measured = bsp.queue_profile();
        assert_eq!(measured.len(), charged.len());
        for (i, (&q, &k)) in measured.iter().zip(&charged).enumerate() {
            assert!(q <= k, "step {i}: realized queue {q} > charged {k}");
        }
        let cost = bsp.cost_report().bsp.unwrap();
        assert!(cost.measured_cost <= cost.predicted_cost);
    }
}
