//! The batch-message router: the communication phase of a BSP superstep.
//!
//! Processors do not touch shared cells directly on a BSP machine — they
//! emit read/write *requests* during the local-computation phase, and a
//! routing phase delivers them in batches keyed by destination cell.  This
//! module is that phase: it combines duplicate same-processor requests
//! (the standard first move of a PRAM-on-BSP emulation — each component
//! sorts its own requests and merges duplicates before injecting them into
//! the network), sorts the combined traffic by destination address, and
//! *measures* what the delivery actually cost:
//!
//! * the longest per-cell message queue (the realized contention `k` of
//!   Theorem 1.1 — a queue of length `k` drains in `k` delivery cycles),
//! * the heaviest per-component load (the `h` of the realized h-relation,
//!   with cells distributed cyclically over components), and
//! * the message count itself.
//!
//! Delivery is deterministic: messages arrive at a cell in processor-id
//! order, so the first message of a write batch wins the cell — exactly the
//! simulator's lowest-processor-id write arbitration.  Batching order
//! therefore never affects results, which is what lets the BSP backend keep
//! bit-identical parity with the simulator at any thread count.

/// One step's routed traffic and the measurements taken while routing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedStep {
    /// Winning write per destination cell (first message of each batch,
    /// i.e. lowest processor id), in ascending address order.
    pub winners: Vec<(usize, u64)>,
    /// Read requests routed, after same-processor combining.
    pub read_msgs: u64,
    /// Write messages routed, after same-processor combining.
    pub write_msgs: u64,
    /// Longest realized per-cell read queue.
    pub read_queue: u64,
    /// Longest realized per-cell write queue.
    pub write_queue: u64,
    /// Largest number of messages handled by one component (read requests
    /// count twice — request plus reply — write messages once).
    pub max_h: u64,
}

impl RoutedStep {
    /// The realized contention of the step: the longest message queue any
    /// single cell accumulated, reads or writes.
    pub fn max_queue(&self) -> u64 {
        self.read_queue.max(self.write_queue)
    }

    /// Total messages this step put on the network (reads are
    /// request + reply).
    pub fn messages(&self) -> u64 {
        2 * self.read_msgs + self.write_msgs
    }
}

/// Routes one superstep's buffered requests.
///
/// `reads` holds `(addr, proc)` read requests, `writes` holds
/// `(addr, proc, value)` write messages; `components` is the number of BSP
/// components cells are distributed over (cyclically: `addr % components`).
/// Duplicate same-processor reads of one cell are combined into a single
/// request; a processor writing one cell more than once in a step (already
/// outside the backend contract) has its smallest value delivered.
pub fn route(
    mut reads: Vec<(usize, u64)>,
    mut writes: Vec<(usize, u64, u64)>,
    components: usize,
) -> RoutedStep {
    // Local combining: one request per (cell, processor).
    reads.sort_unstable();
    reads.dedup();
    let read_queue = max_run(reads.iter().map(|&(a, _)| a));

    writes.sort_unstable();
    writes.dedup_by_key(|&mut (a, p, _)| (a, p));
    let write_queue = max_run(writes.iter().map(|&(a, _, _)| a));

    // Delivery: batches are grouped by destination cell and arrive in
    // processor order, so the first message of each batch takes the cell.
    let mut winners: Vec<(usize, u64)> = Vec::new();
    let mut last_addr = usize::MAX;
    for &(a, _, v) in &writes {
        if a != last_addr {
            winners.push((a, v));
            last_addr = a;
        }
    }

    // The realized h-relation over the component-distributed cells.
    let mut per_component = vec![0u64; components.max(1)];
    for &(a, _) in &reads {
        per_component[a % components.max(1)] += 2;
    }
    for &(a, _, _) in &writes {
        per_component[a % components.max(1)] += 1;
    }
    let max_h = per_component.iter().copied().max().unwrap_or(0);

    RoutedStep {
        winners,
        read_msgs: reads.len() as u64,
        write_msgs: writes.len() as u64,
        read_queue,
        write_queue,
        max_h,
    }
}

/// Longest run of equal addresses in an address-sorted sequence (0 when
/// empty) — the length of the fullest delivery queue.
fn max_run<I: Iterator<Item = usize>>(addrs: I) -> u64 {
    let mut best = 0u64;
    let mut cur = 0u64;
    let mut last = usize::MAX;
    for a in addrs {
        if a == last {
            cur += 1;
        } else {
            cur = 1;
            last = a;
        }
        best = best.max(cur);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_processor_id_wins_each_cell() {
        let routed = route(
            Vec::new(),
            vec![(4, 2, 22), (4, 0, 20), (4, 1, 21), (9, 5, 95)],
            8,
        );
        assert_eq!(routed.winners, vec![(4, 20), (9, 95)]);
        assert_eq!(routed.write_queue, 3);
        assert_eq!(routed.write_msgs, 4);
    }

    #[test]
    fn same_processor_duplicate_reads_are_combined() {
        // Processor 7 reads cell 3 three times: one routed request.
        let routed = route(vec![(3, 7), (3, 7), (3, 7), (3, 8)], Vec::new(), 4);
        assert_eq!(routed.read_msgs, 2);
        assert_eq!(routed.read_queue, 2);
        assert_eq!(routed.messages(), 4, "a read costs request + reply");
    }

    #[test]
    fn queue_lengths_count_distinct_processors_per_cell() {
        let reads = vec![(0, 1), (0, 2), (0, 3), (1, 4)];
        let writes = vec![(5, 1, 10), (5, 2, 11)];
        let routed = route(reads, writes, 4);
        assert_eq!(routed.read_queue, 3);
        assert_eq!(routed.write_queue, 2);
        assert_eq!(routed.max_queue(), 3);
    }

    #[test]
    fn h_relation_counts_traffic_per_component() {
        // Cells 0 and 4 share component 0 of 4: 2 reads (×2) + 1 write = 5.
        let routed = route(vec![(0, 1), (4, 2)], vec![(4, 3, 1)], 4);
        assert_eq!(routed.max_h, 5);
    }

    #[test]
    fn routing_is_independent_of_request_order() {
        let reads = vec![(2, 9), (0, 1), (2, 3), (0, 7), (2, 9)];
        let writes = vec![(6, 4, 40), (6, 1, 10), (3, 2, 20)];
        let a = route(reads.clone(), writes.clone(), 8);
        let mut shuffled_reads = reads;
        shuffled_reads.reverse();
        let mut shuffled_writes = writes;
        shuffled_writes.swap(0, 2);
        let b = route(shuffled_reads, shuffled_writes, 8);
        assert_eq!(a, b, "routing must not depend on buffer order");
    }

    #[test]
    fn empty_step_routes_nothing() {
        let routed = route(Vec::new(), Vec::new(), 16);
        assert_eq!(routed.max_queue(), 0);
        assert_eq!(routed.messages(), 0);
        assert_eq!(routed.max_h, 0);
        assert!(routed.winners.is_empty());
    }
}
