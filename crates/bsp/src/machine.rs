//! [`BspMachine`]: the batch-message BSP implementation of the [`Machine`]
//! backend API.
//!
//! The other two backends *charge* contention (the simulator, by formula
//! over its exact trace) or *suffer* it (the native machine, as lost CAS
//! races).  This backend **measures** it: every [`Machine`] step runs as
//! BSP supersteps — a local-computation phase in which virtual processors
//! buffer their read/write requests as messages, then a routing phase
//! ([`crate::router`]) that sorts the traffic by destination cell and
//! delivers it in batches.  The longest batch any cell accumulates is the
//! *realized* queue length of the step, recorded per step in
//! [`BspMachine::queue_profile`] and summed into
//! [`qrqw_sim::BspCost::measured_cost`]; the Theorem 1.1 formula bound for
//! the same run (`charged QRQW time · ⌈lg components⌉`, via
//! [`qrqw_sim::bsp_emulation_time`]) is reported next to it as
//! [`qrqw_sim::BspCost::predicted_cost`].
//!
//! # Keeping the backend contract
//!
//! * **Synchronous steps** — each routing phase is a barrier; writes are
//!   delivered only after every processor's compute phase finished, so
//!   reads observe the memory as of the start of the step (the simulator's
//!   snapshot semantics, which the step-race-freedom contract makes
//!   indistinguishable from the native backend's live reads).
//! * **Deterministic randomness** — processors draw from the shared
//!   [`qrqw_sim::proc_rng`] streams, and every operation advances the step
//!   index exactly as the contract prescribes ([`Machine::claim`] runs the
//!   Section 5.1 protocol as 6 (Exclusive) or 3 (Occupy) message steps of
//!   its own).
//! * **Claim semantics** — concurrent writes are arbitrated by the router:
//!   message batches arrive in processor order, so the lowest processor id
//!   wins a cell, exactly like the simulator.  Exclusive claims therefore
//!   succeed iff they are the unique live claimant — the same outcome the
//!   native CAS-plus-poison passes produce — and Occupy hands contested
//!   cells to the lowest-id claimant (a legal instance of the
//!   backend-defined "arbitrary" rule).
//! * **Thread-count invariance** — the compute phase fans out over the
//!   persistent worker pool ([`qrqw_exec::StepPool`], `QRQW_THREADS` /
//!   [`BspMachine::with_threads`]), each chunk buffering messages locally;
//!   the router sorts the merged traffic, so chunk boundaries and buffer
//!   order are unobservable.
//!
//! Because routing arbitration coincides with the simulator's, a `BspMachine`
//! re-executes the simulator's exact trajectory for *every* algorithm in the
//! repository (occupy-based ones included), which is what makes the
//! measured-vs-charged comparison exact: the realized per-step queue can be
//! checked cell-for-cell against the contention the simulator charged for
//! the very same step (see `tests/theorem11.rs`).

use std::sync::Mutex;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::Rng;
use rayon::pool::SendPtr;

use qrqw_exec::StepPool;
use qrqw_sim::{bsp_emulation_time, proc_rng};
use qrqw_sim::{BspCost, ClaimMode, CostReport, Machine, MachineProc, EMPTY};

use crate::router::{self, RoutedStep};

/// Environment variable overriding the number of BSP components (`p` in the
/// Theorem 1.1 bound).  Must parse as an integer ≥ 2 to take effect.
pub const COMPONENTS_ENV: &str = "QRQW_BSP_COMPONENTS";

/// Default component count: `2^10`, giving the Theorem 1.1 formula its
/// `⌈lg p⌉ = 10` factor (the MasPar of the Section 5.2 experiment had
/// `2^14` processors; `p/lg p ≈ 2^10` components is the machine Theorem 1.1
/// would emulate it on).
pub const DEFAULT_COMPONENTS: u64 = 1024;

/// Running totals of the measured emulation (see [`BspCost`] for the
/// reported form).
#[derive(Debug, Default)]
struct BspStats {
    supersteps: u64,
    messages: u64,
    max_queue: u64,
    max_h_relation: u64,
    /// Σ over steps of `max(local ops, realized queue)` — what the routed
    /// supersteps actually cost in h-relation units.  In this router the
    /// realized queue coincides with the Definition 2.1 contention `κ`
    /// (one combined message per (cell, processor), drained one per
    /// cycle), so this sum equals the QRQW formula charge `Σ max(m, κ)` —
    /// an invariant this machine cannot check against itself; the
    /// independent anchor is the simulator's exact trace, which
    /// `tests/theorem11.rs` compares per step and in total.
    measured_cost: u64,
    /// Realized max queue length per [`Machine`] step, in step order (one
    /// entry per step-index advance, like the simulator's trace).
    queue_profile: Vec<u64>,
}

/// The batch-message BSP [`Machine`] backend.
pub struct BspMachine {
    cells: Vec<u64>,
    seed: u64,
    steps_executed: u64,
    heap_top: usize,
    created: Instant,
    pool: StepPool,
    components: u64,
    claim_attempts: u64,
    claim_failures: u64,
    stats: BspStats,
}

impl BspMachine {
    /// Creates a machine with `mem_size` cells (all [`EMPTY`]) and seed 0.
    pub fn new(mem_size: usize) -> Self {
        Machine::with_seed(mem_size, 0)
    }

    /// Creates a machine with an explicit compute-phase thread count,
    /// overriding `QRQW_THREADS` / host parallelism.
    pub fn with_threads(mem_size: usize, seed: u64, threads: usize) -> Self {
        Self::build(
            mem_size,
            seed,
            StepPool::with_threads(threads),
            components_from_env(),
        )
    }

    /// Creates a machine with an explicit component count (`p` of the
    /// Theorem 1.1 bound; clamped to at least 2), overriding
    /// [`COMPONENTS_ENV`].
    pub fn with_components(mem_size: usize, seed: u64, components: u64) -> Self {
        Self::build(mem_size, seed, StepPool::from_env(), components.max(2))
    }

    fn build(mem_size: usize, seed: u64, pool: StepPool, components: u64) -> Self {
        BspMachine {
            cells: vec![EMPTY; mem_size],
            seed,
            steps_executed: 0,
            heap_top: mem_size,
            created: Instant::now(),
            pool,
            components,
            claim_attempts: 0,
            claim_failures: 0,
            stats: BspStats::default(),
        }
    }

    /// Number of threads the compute phase fans out over.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Number of BSP components the router distributes cells over.
    pub fn components(&self) -> u64 {
        self.components
    }

    /// The realized max queue length of every [`Machine`] step so far, in
    /// step order — the measured counterpart of the simulator's
    /// `trace().contention_profile()`.
    pub fn queue_profile(&self) -> &[u64] {
        &self.stats.queue_profile
    }

    /// The measured emulation cost read as the QRQW charge it realizes —
    /// the `t` whose Theorem 1.1 bound is `t · ⌈lg components⌉`.  The
    /// router delivers every step at exactly its formula charge, so this
    /// must equal the simulator's `trace().time(CostModel::Qrqw)` for the
    /// same run — a cross-machine invariant only the simulator's
    /// independent trace can witness (pinned by `tests/theorem11.rs` and
    /// the `perf_report` validator, not by this machine's own counters).
    pub fn charged_qrqw_time(&self) -> u64 {
        self.stats.measured_cost
    }

    fn grow(&mut self, size: usize) {
        if self.cells.len() < size {
            self.cells.resize(size, EMPTY);
        }
    }

    /// Runs one message step: compute phase over the pool (processors
    /// buffer requests per chunk), routing phase (sort, measure, deliver),
    /// then the bookkeeping that one step-index advance owes the stats.
    fn exec_step<T, F>(&mut self, procs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut dyn MachineProc) -> T + Sync,
    {
        let step_idx = self.steps_executed;
        let seed = self.seed;
        let cells = &self.cells[..];
        let mut out: Vec<T> = Vec::with_capacity(procs);
        let slots = SendPtr(out.as_mut_ptr());
        let slots = &slots;
        let chunk_logs: Mutex<Vec<ChunkLog>> = Mutex::new(Vec::new());
        self.pool.dispatch(procs, 1, |lo, hi| {
            let mut ctx = BspProc::new(cells, seed, step_idx);
            for p in lo..hi {
                ctx.begin(p as u64);
                let value = f(p, &mut ctx);
                // Safety: each index is written exactly once, chunks are
                // disjoint, and `set_len` happens after the dispatch barrier.
                unsafe { slots.0.add(p).write(value) };
                ctx.end();
            }
            chunk_logs.lock().unwrap().push(ctx.log);
        });
        unsafe { out.set_len(procs) };

        // Merge the chunk buffers.  Order is irrelevant: the router sorts
        // every message by destination before measuring or delivering.
        let mut log = ChunkLog::default();
        for chunk in chunk_logs.into_inner().unwrap() {
            log.reads.extend_from_slice(&chunk.reads);
            log.writes.extend_from_slice(&chunk.writes);
            log.active += chunk.active;
            log.max_substep_ops = log.max_substep_ops.max(chunk.max_substep_ops);
        }
        let routed = router::route(log.reads, log.writes, self.components as usize);
        for &(addr, value) in &routed.winners {
            self.cells[addr] = value;
        }
        self.record_message_step(&routed, log.active, log.max_substep_ops);
        self.steps_executed += 1;
        out
    }

    fn record_message_step(&mut self, routed: &RoutedStep, active: u64, m: u64) {
        let q = routed.max_queue();
        // Read traffic costs a request and a reply superstep, write traffic
        // a delivery superstep; even an all-compute step ends in a barrier.
        let supersteps =
            (2 * (routed.read_msgs > 0) as u64 + (routed.write_msgs > 0) as u64).max(1);
        self.stats.supersteps += supersteps;
        self.stats.messages += routed.messages();
        self.stats.max_queue = self.stats.max_queue.max(q);
        self.stats.max_h_relation = self.stats.max_h_relation.max(routed.max_h);
        if active > 0 {
            // The realized queues the router just drained.  Combining makes
            // the realized queue coincide with the Definition 2.1 κ, so this
            // is simultaneously the step's formula charge `max(m, κ)`; only
            // the simulator's independently computed trace can tell whether
            // the router still realizes that charge (tests/theorem11.rs).
            self.stats.measured_cost += m.max(q).max(1);
        }
        self.stats.queue_profile.push(q);
    }

    /// Records a built-in tree primitive (scan / global OR) of `width`
    /// leaves: `⌈lg width⌉` supersteps with unit queues (pairwise
    /// combining), `width` messages into the fabric — matching the
    /// `⌈lg width⌉` the simulator charges such a step.
    fn record_tree_step(&mut self, width: usize) {
        if width == 0 {
            self.stats.supersteps += 1;
            self.stats.queue_profile.push(0);
            return;
        }
        let depth = (64 - (width.max(2) as u64 - 1).leading_zeros()) as u64;
        self.stats.supersteps += depth;
        self.stats.messages += width as u64;
        self.stats.max_queue = self.stats.max_queue.max(1);
        self.stats.measured_cost += depth;
        self.stats.queue_profile.push(1);
    }
}

impl std::fmt::Debug for BspMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BspMachine")
            .field("cells", &self.cells.len())
            .field("seed", &self.seed)
            .field("steps_executed", &self.steps_executed)
            .field("heap_top", &self.heap_top)
            .field("threads", &self.pool.threads())
            .field("components", &self.components)
            .finish()
    }
}

fn components_from_env() -> u64 {
    std::env::var(COMPONENTS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&c| c >= 2)
        .unwrap_or(DEFAULT_COMPONENTS)
}

/// Message buffers of one compute-phase chunk.
#[derive(Debug, Default)]
struct ChunkLog {
    /// Buffered read requests `(addr, proc)`.
    reads: Vec<(usize, u64)>,
    /// Buffered write messages `(addr, proc, value)`.
    writes: Vec<(usize, u64, u64)>,
    /// Processors that issued at least one operation.
    active: u64,
    /// Max over processors of `max(reads, writes, computes)` — the `m` of
    /// the Definition 2.3 charge, counted exactly like the simulator.
    max_substep_ops: u64,
}

/// Per-chunk processor context: reads the start-of-step snapshot directly
/// (no write is delivered before routing), buffers writes as messages.
struct BspProc<'a> {
    cells: &'a [u64],
    seed: u64,
    step_idx: u64,
    proc: u64,
    rng: Option<SmallRng>,
    log: ChunkLog,
    cur_reads: u64,
    cur_writes: u64,
    cur_computes: u64,
}

impl<'a> BspProc<'a> {
    fn new(cells: &'a [u64], seed: u64, step_idx: u64) -> Self {
        BspProc {
            cells,
            seed,
            step_idx,
            proc: 0,
            rng: None,
            log: ChunkLog::default(),
            cur_reads: 0,
            cur_writes: 0,
            cur_computes: 0,
        }
    }

    fn begin(&mut self, proc: u64) {
        self.proc = proc;
        self.rng = None;
        self.cur_reads = 0;
        self.cur_writes = 0;
        self.cur_computes = 0;
    }

    fn end(&mut self) {
        if self.cur_reads + self.cur_writes + self.cur_computes > 0 {
            self.log.active += 1;
        }
        self.log.max_substep_ops = self
            .log
            .max_substep_ops
            .max(self.cur_reads)
            .max(self.cur_writes)
            .max(self.cur_computes);
    }
}

impl MachineProc for BspProc<'_> {
    fn proc_id(&self) -> u64 {
        self.proc
    }

    fn read(&mut self, addr: usize) -> u64 {
        assert!(
            addr < self.cells.len(),
            "read of address {addr} outside shared memory of size {}",
            self.cells.len()
        );
        self.cur_reads += 1;
        self.log.reads.push((addr, self.proc));
        self.cells[addr]
    }

    fn write(&mut self, addr: usize, value: u64) {
        assert!(
            addr < self.cells.len(),
            "write of address {addr} outside shared memory of size {}",
            self.cells.len()
        );
        self.cur_writes += 1;
        self.log.writes.push((addr, self.proc, value));
    }

    fn compute(&mut self, ops: u64) {
        self.cur_computes += ops;
    }

    fn random_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "random_index bound must be positive");
        self.cur_computes += 1;
        if self.rng.is_none() {
            self.rng = Some(proc_rng(self.seed, self.step_idx, self.proc));
        }
        self.rng.as_mut().unwrap().gen_range(0..bound)
    }
}

/// Write-through context for [`Machine::seq_step`]: one processor on one
/// component, reads see its own same-step writes.
struct SeqBspProc<'a> {
    cells: &'a mut Vec<u64>,
    seed: u64,
    step_idx: u64,
    rng: Option<SmallRng>,
    reads: u64,
    writes: u64,
    computes: u64,
}

impl MachineProc for SeqBspProc<'_> {
    fn proc_id(&self) -> u64 {
        0
    }

    fn read(&mut self, addr: usize) -> u64 {
        assert!(
            addr < self.cells.len(),
            "read of address {addr} outside shared memory of size {}",
            self.cells.len()
        );
        self.reads += 1;
        self.cells[addr]
    }

    fn write(&mut self, addr: usize, value: u64) {
        assert!(
            addr < self.cells.len(),
            "write of address {addr} outside shared memory of size {}",
            self.cells.len()
        );
        self.writes += 1;
        self.cells[addr] = value;
    }

    fn compute(&mut self, ops: u64) {
        self.computes += ops;
    }

    fn random_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "random_index bound must be positive");
        self.computes += 1;
        if self.rng.is_none() {
            self.rng = Some(proc_rng(self.seed, self.step_idx, 0));
        }
        self.rng.as_mut().unwrap().gen_range(0..bound)
    }
}

impl Machine for BspMachine {
    fn with_seed(mem_size: usize, seed: u64) -> Self {
        Self::build(mem_size, seed, StepPool::from_env(), components_from_env())
    }

    fn backend(&self) -> &'static str {
        "bsp"
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    fn ensure_memory(&mut self, size: usize) {
        self.grow(size);
        self.heap_top = self.heap_top.max(size);
    }

    fn alloc(&mut self, len: usize) -> usize {
        let base = self.heap_top;
        self.heap_top += len;
        let fresh_from = self.cells.len();
        self.grow(self.heap_top);
        // `grow` initializes everything past the old arena end to EMPTY;
        // only the reused prefix (released and re-allocated cells) needs an
        // explicit clear.
        if base < fresh_from {
            let reused = len.min(fresh_from - base);
            self.cells[base..base + reused].fill(EMPTY);
        }
        base
    }

    fn release_to(&mut self, base: usize) {
        assert!(base <= self.heap_top, "release_to past the allocation top");
        self.heap_top = base;
    }

    fn heap_top(&self) -> usize {
        self.heap_top
    }

    fn load(&mut self, base: usize, values: &[u64]) {
        self.grow(base + values.len());
        self.cells[base..base + values.len()].copy_from_slice(values);
    }

    fn dump(&self, base: usize, len: usize) -> Vec<u64> {
        self.cells[base..base + len].to_vec()
    }

    fn peek(&self, addr: usize) -> u64 {
        self.cells[addr]
    }

    fn poke(&mut self, addr: usize, value: u64) {
        self.cells[addr] = value;
    }

    fn clear_region(&mut self, base: usize, len: usize) {
        self.grow(base + len);
        self.cells[base..base + len].fill(EMPTY);
    }

    fn par_map<T, F>(&mut self, procs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut dyn MachineProc) -> T + Sync,
    {
        self.exec_step(procs, f)
    }

    fn seq_step<T, F>(&mut self, f: F) -> T
    where
        F: FnOnce(&mut dyn MachineProc) -> T,
    {
        let step_idx = self.steps_executed;
        let seed = self.seed;
        let mut ctx = SeqBspProc {
            cells: &mut self.cells,
            seed,
            step_idx,
            rng: None,
            reads: 0,
            writes: 0,
            computes: 0,
        };
        let result = f(&mut ctx);
        let (reads, writes, computes) = (ctx.reads, ctx.writes, ctx.computes);
        // One component working serially: every remote access is a message
        // with a queue of one, and the step costs its full operation count.
        let ops = reads + writes + computes;
        self.stats.supersteps += 1;
        self.stats.messages += reads + writes;
        let q = ((reads + writes) > 0) as u64;
        self.stats.max_queue = self.stats.max_queue.max(q);
        self.stats.measured_cost += ops;
        self.stats.queue_profile.push(q);
        self.steps_executed += 1;
        result
    }

    fn scan_step(&mut self, base: usize, len: usize) -> u64 {
        self.grow(base + len);
        let mut acc = 0u64;
        for cell in &mut self.cells[base..base + len] {
            let v = if *cell == EMPTY { 0 } else { *cell };
            acc += v;
            *cell = acc;
        }
        self.record_tree_step(len);
        self.steps_executed += 1;
        acc
    }

    fn global_or_step(&mut self, base: usize, len: usize) -> bool {
        self.grow(base + len);
        let any = self.cells[base..base + len]
            .iter()
            .any(|&v| v != 0 && v != EMPTY);
        self.record_tree_step(len);
        self.steps_executed += 1;
        any
    }

    fn claim(&mut self, attempts: &[(u64, usize)], mode: ClaimMode) -> Vec<bool> {
        let k = attempts.len();
        if k == 0 {
            return Vec::new();
        }
        debug_assert!(
            attempts.iter().all(|&(tag, _)| tag != EMPTY),
            "claim tags must differ from EMPTY"
        );
        if let Some(max_addr) = attempts.iter().map(|&(_, a)| a).max() {
            self.ensure_memory(max_addr + 1);
        }

        // The Section 5.1 protocol, step for step like the simulator, each
        // pass a routed message step whose queues are measured.  The
        // router's processor-order delivery makes S2's write arbitration
        // identical to the simulator's lowest-id rule.

        // S1: probe — an already-occupied cell rejects the claim outright.
        let live: Vec<bool> = self.exec_step(k, |i, ctx| ctx.read(attempts[i].1) == EMPTY);

        // S2: live claimants send their tag; the longest write batch here
        // *is* the realized contention k of the claim.
        self.exec_step(k, |i, ctx| {
            if live[i] {
                ctx.write(attempts[i].1, attempts[i].0);
            }
        });

        // S3: live claimants read back; holding one's own tag makes one the
        // tentative winner of the cell.
        let tentative: Vec<bool> = self.exec_step(k, |i, ctx| {
            live[i] && ctx.read(attempts[i].1) == attempts[i].0
        });

        let success = match mode {
            ClaimMode::Occupy => tentative,
            ClaimMode::Exclusive => {
                // S4: the losers re-send their tag, poisoning the cell so
                // the tentative winner can detect contestation.
                self.exec_step(k, |i, ctx| {
                    if live[i] && !tentative[i] {
                        ctx.write(attempts[i].1, attempts[i].0);
                    }
                });
                // S5: tentative winners re-read; an unchanged cell means the
                // claim was uncontested.
                let success: Vec<bool> = self.exec_step(k, |i, ctx| {
                    tentative[i] && ctx.read(attempts[i].1) == attempts[i].0
                });
                // S6: contested cells are restored to empty.
                self.exec_step(k, |i, ctx| {
                    if live[i] && !success[i] {
                        ctx.write(attempts[i].1, EMPTY);
                    }
                });
                success
            }
        };

        let live_total = live.iter().filter(|&&l| l).count() as u64;
        let contended = live
            .iter()
            .zip(&success)
            .filter(|&(&l, &won)| l && !won)
            .count() as u64;
        self.claim_attempts += live_total;
        self.claim_failures += contended;
        success
    }

    fn cost_report(&self) -> CostReport {
        CostReport {
            backend: "bsp",
            steps: self.steps_executed,
            wall: self.created.elapsed(),
            claim_attempts: self.claim_attempts,
            contended_claims: self.claim_failures,
            work: None,
            max_contention: None,
            time_qrqw: None,
            bsp: Some(BspCost {
                components: self.components,
                supersteps: self.stats.supersteps,
                messages: self.stats.messages,
                max_queue: self.stats.max_queue,
                max_h_relation: self.stats.max_h_relation,
                measured_cost: self.stats.measured_cost,
                predicted_cost: bsp_emulation_time(self.stats.measured_cost, self.components),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::Pram;

    #[test]
    fn par_map_runs_all_processors_in_order() {
        let mut m = BspMachine::new(16);
        let out = m.par_map(5000, |p, ctx| {
            ctx.write(p % 16, p as u64);
            p * 2
        });
        assert_eq!(out.len(), 5000);
        assert_eq!(out[1234], 2468);
        assert_eq!(m.steps_executed, 1);
    }

    #[test]
    fn reads_observe_the_start_of_step_snapshot() {
        let mut m = BspMachine::new(8);
        Machine::poke(&mut m, 0, 7);
        let seen = m.par_map(4, |p, ctx| {
            ctx.write(0, 100 + p as u64);
            ctx.read(0)
        });
        assert_eq!(seen, vec![7; 4], "writes must not be visible mid-step");
        // delivery: lowest processor id wins the contested cell
        assert_eq!(Machine::peek(&m, 0), 100);
        assert_eq!(m.queue_profile(), &[4]);
    }

    #[test]
    fn exclusive_claim_is_deterministic_and_restores_contested_cells() {
        let mut m = BspMachine::new(8);
        let ok = m.claim(&[(1, 4), (2, 4), (3, 4), (4, 6)], ClaimMode::Exclusive);
        assert_eq!(ok, vec![false, false, false, true]);
        assert_eq!(Machine::peek(&m, 4), EMPTY, "contested cell restored");
        assert_eq!(Machine::peek(&m, 6), 4);
        assert_eq!(m.steps_executed, 6);
        let report = m.cost_report();
        assert_eq!(report.claim_attempts, 4);
        assert_eq!(report.contended_claims, 3);
        // the S2 write batch realizes the claim's contention: 3 tags on cell 4
        assert_eq!(m.queue_profile()[1], 3);
    }

    #[test]
    fn occupy_claim_hands_the_cell_to_the_lowest_claimant() {
        let mut m = BspMachine::new(8);
        let ok = m.claim(&[(10, 4), (11, 4), (12, 4)], ClaimMode::Occupy);
        assert_eq!(ok, vec![true, false, false]);
        assert_eq!(Machine::peek(&m, 4), 10);
        assert_eq!(m.steps_executed, 3);
    }

    #[test]
    fn occupied_cells_reject_claims_in_both_modes() {
        for mode in [ClaimMode::Exclusive, ClaimMode::Occupy] {
            let mut m = BspMachine::new(8);
            Machine::poke(&mut m, 2, 55);
            assert_eq!(m.claim(&[(77, 2)], mode), vec![false]);
            assert_eq!(Machine::peek(&m, 2), 55);
        }
    }

    #[test]
    fn claims_match_the_simulator_cell_by_cell() {
        let attempts: Vec<(u64, usize)> = (0..200u64)
            .map(|i| (i + 1, (i as usize * 7) % 64))
            .collect();
        let mut sim = Pram::with_seed(16, 0);
        let mut bsp = BspMachine::with_seed(16, 0);
        for mode in [ClaimMode::Exclusive, ClaimMode::Occupy] {
            let a = Machine::claim(&mut sim, &attempts, mode);
            let b = bsp.claim(&attempts, mode);
            assert_eq!(a, b, "{mode:?} outcomes diverged");
            for addr in 0..64 {
                assert_eq!(Machine::peek(&sim, addr), bsp.peek(addr), "cell {addr}");
            }
        }
        let (rs, rb) = (sim.cost_report(), bsp.cost_report());
        assert_eq!(rs.steps, rb.steps);
        assert_eq!(rs.claim_attempts, rb.claim_attempts);
        assert_eq!(rs.contended_claims, rb.contended_claims);
    }

    #[test]
    fn scan_step_matches_sequential_prefix_and_charges_tree_depth() {
        let mut m = BspMachine::new(0);
        let vals: Vec<u64> = (0..1000u64).map(|i| i % 7).collect();
        m.ensure_memory(1000);
        Machine::load(&mut m, 0, &vals);
        let total = m.scan_step(0, 1000);
        assert_eq!(total, vals.iter().sum::<u64>());
        let got = Machine::dump(&m, 0, 1000);
        let mut acc = 0;
        for i in 0..1000 {
            acc += vals[i];
            assert_eq!(got[i], acc, "mismatch at {i}");
        }
        // ceil(lg 1000) = 10 tree supersteps, unit queues
        assert_eq!(m.cost_report().bsp.unwrap().measured_cost, 10);
        assert_eq!(m.queue_profile(), &[1]);
    }

    #[test]
    fn global_or_detects_any_nonzero() {
        let mut m = BspMachine::new(5000);
        assert!(!m.global_or_step(0, 5000));
        Machine::poke(&mut m, 4321, 9);
        assert!(m.global_or_step(0, 5000));
    }

    #[test]
    fn alloc_and_release_behave_like_a_stack() {
        let mut m = BspMachine::new(8);
        let a = Machine::alloc(&mut m, 4);
        assert_eq!(a, 8);
        let b = Machine::alloc(&mut m, 2);
        assert_eq!(b, 12);
        Machine::release_to(&mut m, b);
        let c = Machine::alloc(&mut m, 3);
        assert_eq!(c, 12);
        assert!(Machine::dump(&m, c, 3).iter().all(|&v| v == EMPTY));
    }

    #[test]
    fn seq_step_reads_own_writes_and_advances_one_step() {
        let mut m = BspMachine::new(8);
        let observed = m.seq_step(|ctx| {
            ctx.write(3, 41);
            let fresh = ctx.read(3);
            ctx.write(3, fresh + 1);
            ctx.read(3)
        });
        assert_eq!(observed, 42);
        assert_eq!(Machine::peek(&m, 3), 42);
        assert_eq!(m.steps_executed, 1);
    }

    #[test]
    fn random_streams_match_the_simulator() {
        let mut bsp = BspMachine::with_seed(4, 77);
        let bsp_draws = bsp.par_map(64, |_p, ctx| ctx.random_index(1000));
        let seq = bsp.seq_step(|ctx| ctx.random_index(1 << 20));
        let mut sim = Pram::with_seed(4, 77);
        let sim_draws = Machine::par_map(&mut sim, 64, |_p, ctx| ctx.random_index(1000));
        let sim_seq = Machine::seq_step(&mut sim, |ctx| ctx.random_index(1 << 20));
        assert_eq!(bsp_draws, sim_draws);
        assert_eq!(seq, sim_seq);
    }

    #[test]
    fn outputs_are_bit_identical_at_every_thread_count() {
        let run = |threads: usize| {
            let mut m = BspMachine::with_threads(4096, 9, threads);
            let draws = m.par_map(5000, |_p, ctx| ctx.random_index(1 << 30));
            m.par_for(5000, |p, ctx| {
                let t = (p * 131) % 4096;
                ctx.write(t, p as u64);
            });
            (draws, m.dump(0, 4096), m.queue_profile().to_vec())
        };
        let baseline = run(1);
        for threads in [2, 5, 8] {
            assert_eq!(run(threads), baseline, "thread count {threads} diverged");
        }
    }

    #[test]
    fn cost_report_carries_measured_and_predicted_sides() {
        let mut m = BspMachine::with_components(128, 0, 1024);
        m.par_for(64, |p, ctx| {
            let v = ctx.read(p % 8); // queue of 8 on each of 8 cells
            ctx.write(8 + p, v);
        });
        let report = m.cost_report();
        assert_eq!(report.backend, "bsp");
        let bsp = report.bsp.expect("bsp backend must fill its cost section");
        assert_eq!(bsp.components, 1024);
        assert_eq!(bsp.max_queue, 8);
        assert_eq!(m.queue_profile(), &[8]);
        // one step, m = 2 ops... max(m, q) = 8; predicted = 8 · lg 1024
        assert_eq!(bsp.measured_cost, 8);
        assert_eq!(bsp.predicted_cost, 80);
        assert_eq!(bsp.headroom(), Some(10.0));
        // reads travel request + reply, writes once
        assert_eq!(bsp.messages, 2 * 64 + 64);
        assert_eq!(bsp.supersteps, 3);
        assert!(report.to_string().contains("measured=8 predicted=80"));
    }

    #[test]
    fn components_are_configurable_and_clamped() {
        let m = BspMachine::with_components(8, 0, 0);
        assert_eq!(m.components(), 2, "component count must clamp to ≥ 2");
        let m = BspMachine::with_components(8, 0, 4096);
        assert_eq!(m.components(), 4096);
    }

    #[test]
    fn empty_and_zero_width_steps_cost_nothing() {
        let mut m = BspMachine::new(4);
        let out: Vec<u64> = m.par_map(0, |_p, _ctx| 0u64);
        assert!(out.is_empty());
        assert_eq!(m.scan_step(0, 0), 0);
        assert!(!m.global_or_step(0, 0));
        let bsp = m.cost_report().bsp.unwrap();
        assert_eq!(bsp.measured_cost, 0);
        assert_eq!(m.queue_profile(), &[0, 0, 0]);
        assert_eq!(m.steps_executed, 3);
    }
}
