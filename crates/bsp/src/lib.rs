//! # qrqw-bsp — a batch-message BSP backend that *measures* Theorem 1.1
//!
//! Theorem 1.1 of the paper is its portability claim: a QRQW PRAM
//! algorithm running in time `t` can be emulated on a `p/lg p`-component
//! standard BSP machine in `O(t · lg p)` time, because a step whose maximum
//! contention is `k` costs the emulation only an *additive* `k` (the
//! realized message queues drain one message per cycle) rather than a
//! multiplicative penalty.  The simulator charges that bound by formula
//! ([`qrqw_sim::bsp_emulation_time`]); this crate **executes** the
//! emulation and measures it.
//!
//! [`BspMachine`] is the third [`qrqw_sim::Machine`] backend: every step
//! runs as BSP supersteps in which virtual processors buffer their
//! read/write/claim requests as messages, and a routing phase
//! ([`router`]) delivers them in batches keyed by destination cell.
//! Contention is *observed* — the realized max queue length per superstep —
//! instead of charged, and [`qrqw_sim::Machine::cost_report`] returns both
//! the measured superstep/message/queue totals and the Theorem 1.1
//! predicted bound side by side ([`qrqw_sim::BspCost`]), which is what the
//! `perf_report` harness prints as measured-vs-predicted.
//!
//! Because the router's processor-order delivery coincides with the
//! simulator's write arbitration, every algorithm in the repository runs
//! bit-identically on `BspMachine` and on the simulator for the same seed —
//! so the measured queues can be compared step-for-step against the charged
//! contention (`tests/theorem11.rs` pins measured ≤ charged for the whole
//! registry).

#![deny(missing_docs)]

pub mod machine;
pub mod router;

pub use machine::{BspMachine, COMPONENTS_ENV, DEFAULT_COMPONENTS};
