//! PRAM cost models.
//!
//! All models share the same *functional* semantics (arbitrary-winner
//! concurrent writes, reads see the state at the beginning of the step);
//! they differ only in how a step is charged and in which steps they
//! consider legal.  This mirrors Section 2 of the paper: the EREW, CREW,
//! QRQW, CRQW and CRCW PRAMs form a hierarchy
//! `EREW ≼ SIMD-QRQW ≼ QRQW ≼ CRQW ≼ CRCW` (Fact 2.1).

use crate::stats::StepStats;

/// The contention rule / cost metric under which a trace is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostModel {
    /// Exclusive-read exclusive-write: any step with contention above one is
    /// a *violation*; the step cost is the maximum per-processor operation
    /// count.
    Erew,
    /// Concurrent-read exclusive-write: unlimited read contention, write
    /// contention above one is a violation.
    Crew,
    /// Queue-read queue-write (the paper's model): step cost is
    /// `max(m, κ)` where `κ` is the maximum read or write contention.
    Qrqw,
    /// Concurrent-read queue-write: reads are free of contention charges,
    /// step cost is `max(m, κ_w)` with `κ_w` the maximum write contention.
    Crqw,
    /// Concurrent-read concurrent-write (arbitrary winner): contention is
    /// never charged; step cost is the maximum per-processor operation count.
    Crcw,
    /// SIMD-QRQW: the QRQW metric restricted to steps in which every
    /// processor performs at most one read, one compute and one write
    /// (`m = 1`); suits lock-step SIMD machines such as the MasPar MP-1.
    /// Steps with `m > 1` are flagged as violations but still charged
    /// `max(m, κ)`.
    SimdQrqw,
    /// SIMD-QRQW augmented with a unit-time scan (prefix-sums) primitive,
    /// used in Section 5.2 of the paper to model the MasPar's built-in scan
    /// library routines.
    ScanSimdQrqw,
}

impl CostModel {
    /// All models, in increasing order of power (Fact 2.1, with the two
    /// exclusive models and the scan variant interleaved where natural).
    pub const ALL: [CostModel; 7] = [
        CostModel::Erew,
        CostModel::Crew,
        CostModel::SimdQrqw,
        CostModel::ScanSimdQrqw,
        CostModel::Qrqw,
        CostModel::Crqw,
        CostModel::Crcw,
    ];

    /// Short lower-case name matching the paper's typography (`erew`,
    /// `qrqw`, ...).
    pub fn name(self) -> &'static str {
        match self {
            CostModel::Erew => "erew",
            CostModel::Crew => "crew",
            CostModel::Qrqw => "qrqw",
            CostModel::Crqw => "crqw",
            CostModel::Crcw => "crcw",
            CostModel::SimdQrqw => "simd-qrqw",
            CostModel::ScanSimdQrqw => "scan-simd-qrqw",
        }
    }

    /// The time charged to one step under this model (Definition 2.3 and its
    /// variants).
    pub fn step_time(self, s: &StepStats) -> u64 {
        if s.active_procs == 0 {
            // A step with no operations has maximum contention "one" by the
            // corner-case convention of Definition 2.1, and zero work; we
            // charge nothing so that empty bookkeeping steps are free.
            return 0;
        }
        let m = s.max_ops_per_proc.max(1);
        let kappa_rw = s.max_read_contention.max(s.max_write_contention).max(1);
        let kappa_w = s.max_write_contention.max(1);
        if s.is_scan {
            // A whole-array scan step: unit time on the scan model, a
            // logarithmic-depth binary-tree computation everywhere else.
            return match self {
                CostModel::ScanSimdQrqw => 1,
                _ => (64 - (s.scan_width.max(2) - 1).leading_zeros()) as u64,
            };
        }
        match self {
            CostModel::Erew | CostModel::Crew | CostModel::Crcw => m,
            CostModel::Qrqw | CostModel::SimdQrqw | CostModel::ScanSimdQrqw => m.max(kappa_rw),
            CostModel::Crqw => m.max(kappa_w),
        }
    }

    /// Whether this step violates the model's legality constraints
    /// (contention rules for the exclusive models, the one-op-per-processor
    /// restriction for the SIMD models).
    pub fn step_violates(self, s: &StepStats) -> bool {
        if s.active_procs == 0 || s.is_scan {
            return false;
        }
        match self {
            CostModel::Erew => s.max_read_contention > 1 || s.max_write_contention > 1,
            CostModel::Crew => s.max_write_contention > 1,
            CostModel::SimdQrqw | CostModel::ScanSimdQrqw => s.max_ops_per_proc > 1,
            CostModel::Qrqw | CostModel::Crqw | CostModel::Crcw => false,
        }
    }

    /// True for models that charge (some) contention, i.e. the queue models.
    pub fn charges_contention(self) -> bool {
        matches!(
            self,
            CostModel::Qrqw | CostModel::Crqw | CostModel::SimdQrqw | CostModel::ScanSimdQrqw
        )
    }
}

impl std::fmt::Display for CostModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(reads: u64, writes: u64, m: u64, rk: u64, wk: u64) -> StepStats {
        StepStats {
            active_procs: 4,
            total_reads: reads,
            total_writes: writes,
            total_computes: 0,
            max_ops_per_proc: m,
            max_read_contention: rk,
            max_write_contention: wk,
            is_scan: false,
            scan_width: 0,
        }
    }

    #[test]
    fn qrqw_charges_max_of_ops_and_contention() {
        let s = stats(8, 8, 2, 5, 3);
        assert_eq!(CostModel::Qrqw.step_time(&s), 5);
        assert_eq!(CostModel::Crqw.step_time(&s), 3);
        assert_eq!(CostModel::Crcw.step_time(&s), 2);
        assert_eq!(CostModel::Erew.step_time(&s), 2);
    }

    #[test]
    fn exclusive_models_flag_violations() {
        let s = stats(8, 8, 1, 5, 1);
        assert!(CostModel::Erew.step_violates(&s));
        assert!(!CostModel::Crew.step_violates(&s));
        let s = stats(8, 8, 1, 1, 4);
        assert!(CostModel::Erew.step_violates(&s));
        assert!(CostModel::Crew.step_violates(&s));
        assert!(!CostModel::Qrqw.step_violates(&s));
    }

    #[test]
    fn simd_models_flag_multi_op_processors() {
        let s = stats(8, 8, 3, 1, 1);
        assert!(CostModel::SimdQrqw.step_violates(&s));
        assert!(!CostModel::Qrqw.step_violates(&s));
    }

    #[test]
    fn empty_step_costs_nothing() {
        let s = StepStats {
            active_procs: 0,
            ..stats(0, 0, 0, 0, 0)
        };
        for m in CostModel::ALL {
            assert_eq!(m.step_time(&s), 0);
            assert!(!m.step_violates(&s));
        }
    }

    #[test]
    fn scan_step_is_unit_on_scan_model_and_log_elsewhere() {
        let s = StepStats {
            active_procs: 1024,
            total_reads: 1024,
            total_writes: 1024,
            total_computes: 1024,
            max_ops_per_proc: 1,
            max_read_contention: 1,
            max_write_contention: 1,
            is_scan: true,
            scan_width: 1024,
        };
        assert_eq!(CostModel::ScanSimdQrqw.step_time(&s), 1);
        assert_eq!(CostModel::SimdQrqw.step_time(&s), 10);
        assert_eq!(CostModel::Erew.step_time(&s), 10);
    }

    #[test]
    fn model_names_match_paper() {
        assert_eq!(CostModel::Qrqw.to_string(), "qrqw");
        assert_eq!(CostModel::ScanSimdQrqw.to_string(), "scan-simd-qrqw");
        assert_eq!(CostModel::ALL.len(), 7);
    }
}
