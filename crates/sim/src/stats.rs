//! Per-step statistics and whole-run traces.

use crate::model::CostModel;

/// Exact measurements for one synchronous PRAM step.
///
/// Contention is counted over *distinct processors* per location, matching
/// Definition 2.1 ("the number of processors reading x or the number of
/// processors writing x").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepStats {
    /// Number of virtual processors that issued at least one operation.
    pub active_procs: u64,
    /// Total shared-memory reads issued in the step.
    pub total_reads: u64,
    /// Total shared-memory writes issued in the step.
    pub total_writes: u64,
    /// Total local (compute) operations issued in the step.
    pub total_computes: u64,
    /// `m` — the maximum over processors of `max(r_i, c_i, w_i)`.
    pub max_ops_per_proc: u64,
    /// Maximum number of distinct processors reading any one location.
    pub max_read_contention: u64,
    /// Maximum number of distinct processors writing any one location.
    pub max_write_contention: u64,
    /// True if this step is a built-in whole-array scan (prefix sums),
    /// charged unit time only under [`CostModel::ScanSimdQrqw`].
    pub is_scan: bool,
    /// Width of the scanned region, when `is_scan` is set.
    pub scan_width: u64,
}

impl StepStats {
    /// The maximum contention `κ` of the step (reads or writes), with the
    /// Definition 2.1 corner-case convention that a step with no memory
    /// operations has contention one.
    pub fn max_contention(&self) -> u64 {
        self.max_read_contention
            .max(self.max_write_contention)
            .max(1)
    }

    /// Total operations (reads + computes + writes) — the step's work in the
    /// work–time presentation.
    pub fn ops(&self) -> u64 {
        self.total_reads + self.total_writes + self.total_computes
    }
}

/// The accumulated record of an algorithm execution: one [`StepStats`] per
/// step, in order.
///
/// All derived quantities — running time under any [`CostModel`], total
/// work, Brent-scheduled time, BSP emulation time — are computed from the
/// trace after the fact, so a single simulated execution can be evaluated
/// under every model simultaneously.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    steps: Vec<StepStats>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { steps: Vec::new() }
    }

    /// Appends one step's statistics.
    pub fn push(&mut self, stats: StepStats) {
        self.steps.push(stats);
    }

    /// The per-step statistics, in execution order.
    pub fn step_stats(&self) -> &[StepStats] {
        &self.steps
    }

    /// Number of parallel steps executed (the `t'` of Theorem 3.6).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Total work: the number of operations summed over all steps.
    pub fn work(&self) -> u64 {
        self.steps.iter().map(StepStats::ops).sum()
    }

    /// Running time under `model`: the sum over steps of the per-step cost.
    ///
    /// For the queue models this is exactly the work–time presentation time
    /// of the paper ("the sum over all steps of the maximum contention of
    /// the step", generalised to `max(m, κ)`).
    pub fn time(&self, model: CostModel) -> u64 {
        self.steps.iter().map(|s| model.step_time(s)).sum()
    }

    /// Number of steps that violate `model`'s legality constraints
    /// (e.g. contention > 1 under EREW).
    pub fn violations(&self, model: CostModel) -> u64 {
        self.steps.iter().filter(|s| model.step_violates(s)).count() as u64
    }

    /// The largest contention observed in any step of the run.
    pub fn max_contention(&self) -> u64 {
        self.steps
            .iter()
            .map(StepStats::max_contention)
            .max()
            .unwrap_or(1)
    }

    /// The per-step sequence of maximum contentions (useful for plotting the
    /// contention profile of an algorithm).
    pub fn contention_profile(&self) -> Vec<u64> {
        self.steps.iter().map(StepStats::max_contention).collect()
    }

    /// Brent-scheduled running time on `p` processors under `model`
    /// (Theorem 2.3): `work/p + time`, assuming processor allocation is
    /// free.
    pub fn brent_time(&self, p: u64, model: CostModel) -> u64 {
        assert!(p > 0, "Brent scheduling needs at least one processor");
        self.work().div_ceil(p) + self.time(model)
    }

    /// Time to emulate this algorithm on a `(p/lg p)`-component standard BSP
    /// machine (Theorem 1.1): `O(t · lg p)`; we report `t · ceil(lg p)`.
    pub fn bsp_time(&self, p: u64, model: CostModel) -> u64 {
        assert!(p > 1, "BSP emulation needs at least two components");
        let lg_p = 64 - (p - 1).leading_zeros() as u64;
        self.time(model) * lg_p.max(1)
    }

    /// Collapses the trace into a [`TraceSummary`] for reporting.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            steps: self.num_steps() as u64,
            work: self.work(),
            max_contention: self.max_contention(),
            time_erew: self.time(CostModel::Erew),
            time_qrqw: self.time(CostModel::Qrqw),
            time_crqw: self.time(CostModel::Crqw),
            time_crcw: self.time(CostModel::Crcw),
            time_simd_qrqw: self.time(CostModel::SimdQrqw),
            time_scan_simd_qrqw: self.time(CostModel::ScanSimdQrqw),
            erew_violations: self.violations(CostModel::Erew),
        }
    }

    /// Merges another trace's steps onto the end of this one (used when an
    /// algorithm is composed of independently-simulated phases).
    pub fn extend(&mut self, other: &Trace) {
        self.steps.extend_from_slice(&other.steps);
    }
}

/// A compact summary of a trace, convenient for table harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Number of parallel steps.
    pub steps: u64,
    /// Total operations.
    pub work: u64,
    /// Largest per-step contention.
    pub max_contention: u64,
    /// Time under the EREW metric (ignoring violations).
    pub time_erew: u64,
    /// Time under the QRQW metric.
    pub time_qrqw: u64,
    /// Time under the CRQW metric.
    pub time_crqw: u64,
    /// Time under the CRCW metric.
    pub time_crcw: u64,
    /// Time under the SIMD-QRQW metric.
    pub time_simd_qrqw: u64,
    /// Time under the scan-SIMD-QRQW metric.
    pub time_scan_simd_qrqw: u64,
    /// Number of steps that are illegal on an EREW PRAM.
    pub erew_violations: u64,
}

impl TraceSummary {
    /// Renders the summary as a compact single-line report.
    pub fn to_row(&self) -> String {
        format!(
            "steps={} work={} max_cont={} t_qrqw={} t_crqw={} t_crcw={} t_erew={} (erew_violations={})",
            self.steps,
            self.work,
            self.max_contention,
            self.time_qrqw,
            self.time_crqw,
            self.time_crcw,
            self.time_erew,
            self.erew_violations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(reads: u64, writes: u64, m: u64, rk: u64, wk: u64) -> StepStats {
        StepStats {
            active_procs: reads.max(writes).max(1),
            total_reads: reads,
            total_writes: writes,
            total_computes: 0,
            max_ops_per_proc: m,
            max_read_contention: rk,
            max_write_contention: wk,
            is_scan: false,
            scan_width: 0,
        }
    }

    #[test]
    fn work_and_time_accumulate() {
        let mut t = Trace::new();
        t.push(step(10, 10, 1, 1, 1));
        t.push(step(10, 0, 1, 5, 0));
        assert_eq!(t.work(), 30);
        assert_eq!(t.time(CostModel::Qrqw), 1 + 5);
        assert_eq!(t.time(CostModel::Crcw), 2);
        assert_eq!(t.violations(CostModel::Erew), 1);
        assert_eq!(t.max_contention(), 5);
        assert_eq!(t.contention_profile(), vec![1, 5]);
    }

    #[test]
    fn brent_time_matches_theorem_2_3() {
        let mut t = Trace::new();
        for _ in 0..4 {
            t.push(step(100, 100, 1, 2, 2));
        }
        // work = 800, qrqw time = 8
        assert_eq!(t.brent_time(100, CostModel::Qrqw), 8 + 8);
        assert_eq!(t.brent_time(1, CostModel::Qrqw), 800 + 8);
    }

    #[test]
    fn bsp_time_is_time_times_log_p() {
        let mut t = Trace::new();
        t.push(step(8, 8, 1, 1, 1));
        assert_eq!(t.time(CostModel::Qrqw), 1);
        assert_eq!(t.bsp_time(1024, CostModel::Qrqw), 10);
    }

    #[test]
    fn summary_reports_all_models() {
        let mut t = Trace::new();
        t.push(step(4, 4, 2, 3, 1));
        let s = t.summary();
        assert_eq!(s.steps, 1);
        assert_eq!(s.work, 8);
        assert_eq!(s.time_qrqw, 3);
        assert_eq!(s.time_crqw, 2);
        assert_eq!(s.time_crcw, 2);
        assert_eq!(s.erew_violations, 1);
        assert!(s.to_row().contains("work=8"));
    }

    #[test]
    fn extend_concatenates_traces() {
        let mut a = Trace::new();
        a.push(step(1, 1, 1, 1, 1));
        let mut b = Trace::new();
        b.push(step(2, 2, 1, 2, 2));
        a.extend(&b);
        assert_eq!(a.num_steps(), 2);
        assert_eq!(a.work(), 2 + 4);
    }

    #[test]
    fn empty_trace_has_unit_contention_and_zero_time() {
        let t = Trace::new();
        assert_eq!(t.max_contention(), 1);
        assert_eq!(t.work(), 0);
        assert_eq!(t.time(CostModel::Qrqw), 0);
    }
}
