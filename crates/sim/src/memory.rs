//! The shared memory of the simulated PRAM.
//!
//! Memory is a flat array of `u64` cells.  The PRAM algorithms in this
//! repository follow the standard convention that a cell holds `O(lg n)`
//! bits, so a `u64` cell is always wide enough for the problem sizes we
//! simulate; where an algorithm needs to store a small tuple (e.g. an index
//! plus a flag) it packs the fields into one word, exactly as one would on a
//! real machine.

/// Sentinel value denoting an *empty* (never written / cleared) cell.
///
/// The paper's algorithms frequently test whether a cell has been claimed by
/// any processor; `EMPTY` plays the role of the conventional "null" value.
pub const EMPTY: u64 = u64::MAX;

/// A flat, word-addressed shared memory.
///
/// The memory itself carries no synchronisation: reads and writes are issued
/// through [`crate::step::ProcCtx`] during a [`crate::pram::Pram::step`], and
/// the contention they induce is accounted for by the step machinery.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    cells: Vec<u64>,
}

impl SharedMemory {
    /// Creates a memory with `size` cells, all initialised to [`EMPTY`].
    pub fn new(size: usize) -> Self {
        SharedMemory {
            cells: vec![EMPTY; size],
        }
    }

    /// Creates a memory with `size` cells initialised to `value`.
    pub fn filled(size: usize, value: u64) -> Self {
        SharedMemory {
            cells: vec![value; size],
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the memory has zero cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Grows the memory to at least `size` cells (new cells are [`EMPTY`]).
    ///
    /// Several of the paper's algorithms allocate auxiliary arrays whose size
    /// depends on run-time quantities (e.g. the `Θ(n·2^√lg n)` dart-throwing
    /// array of Theorem 5.2); the driver uses this to extend the address
    /// space.  Growing never moves existing contents.
    pub fn ensure(&mut self, size: usize) {
        if self.cells.len() < size {
            self.cells.resize(size, EMPTY);
        }
    }

    /// Direct (un-accounted) read, for inspection by the test/bench harness.
    ///
    /// This does **not** go through the contention accounting and must not be
    /// used from inside an algorithm step.
    pub fn peek(&self, addr: usize) -> u64 {
        self.cells[addr]
    }

    /// Direct (un-accounted) write, for initialising inputs from the host.
    pub fn poke(&mut self, addr: usize, value: u64) {
        self.cells[addr] = value;
    }

    /// Copies a slice of host data into memory starting at `base`.
    pub fn load(&mut self, base: usize, values: &[u64]) {
        self.ensure(base + values.len());
        self.cells[base..base + values.len()].copy_from_slice(values);
    }

    /// Reads `len` cells starting at `base` into a host vector.
    pub fn dump(&self, base: usize, len: usize) -> Vec<u64> {
        self.cells[base..base + len].to_vec()
    }

    /// Resets a region to [`EMPTY`] without accounting (host-side helper for
    /// reusing scratch space between independent phases of a harness).
    pub fn clear_region(&mut self, base: usize, len: usize) {
        self.ensure(base + len);
        for c in &mut self.cells[base..base + len] {
            *c = EMPTY;
        }
    }

    /// Immutable view of the whole memory (used by the step machinery to
    /// provide the read-substep snapshot).
    pub(crate) fn as_slice(&self) -> &[u64] {
        &self.cells
    }

    /// Applies a buffered write (used by the step machinery).
    pub(crate) fn apply(&mut self, addr: usize, value: u64) {
        self.cells[addr] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_memory_is_empty_sentinel() {
        let m = SharedMemory::new(16);
        assert_eq!(m.len(), 16);
        assert!(!m.is_empty());
        assert!((0..16).all(|i| m.peek(i) == EMPTY));
    }

    #[test]
    fn filled_memory_has_value() {
        let m = SharedMemory::filled(8, 7);
        assert!((0..8).all(|i| m.peek(i) == 7));
    }

    #[test]
    fn load_and_dump_round_trip() {
        let mut m = SharedMemory::new(4);
        m.load(2, &[10, 11, 12]);
        assert_eq!(m.len(), 5);
        assert_eq!(m.dump(2, 3), vec![10, 11, 12]);
        assert_eq!(m.peek(0), EMPTY);
    }

    #[test]
    fn ensure_grows_without_clobbering() {
        let mut m = SharedMemory::new(2);
        m.poke(1, 42);
        m.ensure(10);
        assert_eq!(m.len(), 10);
        assert_eq!(m.peek(1), 42);
        assert_eq!(m.peek(9), EMPTY);
        // ensure with a smaller size is a no-op
        m.ensure(3);
        assert_eq!(m.len(), 10);
    }

    #[test]
    fn clear_region_resets_to_empty() {
        let mut m = SharedMemory::filled(6, 1);
        m.clear_region(2, 3);
        assert_eq!(m.dump(0, 6), vec![1, 1, EMPTY, EMPTY, EMPTY, 1]);
    }
}
