//! # qrqw-sim — a Queue-Read Queue-Write PRAM simulation substrate
//!
//! This crate implements the machine model underlying Gibbons, Matias and
//! Ramachandran, *"Efficient Low-Contention Parallel Algorithms"*
//! (SPAA 1994 / JCSS 1996): the **QRQW PRAM** and its relatives.
//!
//! A QRQW PRAM step consists of a read substep, a compute substep and a
//! write substep.  Concurrent reads and writes to the same shared-memory
//! location are *permitted*, but they are serviced one at a time, so the
//! time cost of a step is
//!
//! ```text
//! cost(step) = max(m, κ)
//! ```
//!
//! where `m` is the maximum number of operations issued by any single
//! processor in the step and `κ` is the *maximum contention*: the largest
//! number of processors reading any one location, or writing any one
//! location, during the step (Definitions 2.1–2.3 of the paper).
//!
//! The simulator executes algorithms written in the *work–time
//! presentation*: a sequence of synchronous steps, each of which may involve
//! any number of virtual processors.  Every step is measured exactly, and a
//! [`Trace`] accumulates per-step statistics from which the running time
//! under any of the supported cost models ([`CostModel`]) can be derived,
//! along with the total work, the Brent-scheduled `p`-processor time
//! (Theorem 2.3) and the BSP emulation cost (Theorem 1.1).
//!
//! ## Quick example
//!
//! ```
//! use qrqw_sim::{Pram, CostModel};
//!
//! // n processors each increment their own cell: an EREW-legal step.
//! let n = 1024;
//! let mut pram = Pram::new(n);
//! pram.memory_mut().load(0, &vec![0u64; n]);
//! pram.step(|s| {
//!     s.par_for(0..n, |p, ctx| {
//!         let v = ctx.read(p);
//!         ctx.write(p, v + 1);
//!     });
//! });
//! assert_eq!(pram.trace().violations(CostModel::Erew), 0);
//! assert_eq!(pram.trace().time(CostModel::Qrqw), 1);
//!
//! // all n processors read location 0: contention n under the queue rule.
//! pram.step(|s| {
//!     s.par_for(0..n, |_p, ctx| {
//!         let _ = ctx.read(0);
//!     });
//! });
//! assert_eq!(pram.trace().step_stats()[1].max_read_contention, n as u64);
//! assert_eq!(pram.trace().time(CostModel::Qrqw), 1 + n as u64);
//! // ... while a CRCW machine would charge a single unit of time.
//! assert_eq!(pram.trace().time(CostModel::Crcw), 2);
//! ```
//!
//! ## Crate layout
//!
//! * [`machine`] — the [`Machine`] backend trait: the work–time presentation
//!   as an API, implemented by [`Pram`] here and by the native
//!   rayon/atomics machine in `qrqw-exec`, so each algorithm is written once
//!   and runs on either substrate.
//! * [`memory`] — the flat shared memory and the `EMPTY` sentinel.
//! * [`step`] — [`StepCtx`] / [`ProcCtx`]: the per-step, per-processor API.
//! * [`stats`] — [`StepStats`] and [`Trace`].
//! * [`model`] — the [`CostModel`] enumeration and per-step cost functions.
//! * [`pram`] — the [`Pram`] driver tying everything together.
//! * [`rng`] — deterministic per-(seed, step, processor) random streams.
//! * [`schedule`] — Brent scheduling, BSP emulation cost, geometric-decaying
//!   and L-spawning processor-allocation bounds (Theorems 2.3, 2.4, 3.6).

#![deny(missing_docs)]

pub mod machine;
pub mod memory;
pub mod model;
pub mod pram;
pub mod rng;
pub mod schedule;
pub mod stats;
pub mod step;

pub use machine::{BspCost, ClaimMode, CostReport, Machine, MachineProc};
pub use memory::{SharedMemory, EMPTY};
pub use model::CostModel;
pub use pram::{ExecMode, Pram};
pub use rng::proc_rng;
pub use schedule::{
    brent_time, bsp_emulation_time, geometric_decaying_processors, l_spawning_processors,
    GeometricDecayCheck, SpawningProfile,
};
pub use stats::{StepStats, Trace, TraceSummary};
pub use step::{ProcCtx, StepCtx};
