//! The per-step, per-processor execution API.
//!
//! A PRAM step is expressed as a closure over a [`StepCtx`].  Inside the
//! closure the algorithm launches any number of *virtual processors* via
//! [`StepCtx::par_map`] / [`StepCtx::par_for`]; each virtual processor
//! receives a [`ProcCtx`] through which it reads the shared memory (as it
//! was at the *beginning* of the step), buffers writes (applied at the *end*
//! of the step, arbitrary winner), performs accounted local compute
//! operations, and draws deterministic random numbers.
//!
//! The split into read-substep / compute-substep / write-substep of
//! Definition 2.2 is therefore enforced structurally: reads can never
//! observe a write issued in the same step.

use rand::rngs::SmallRng;
use rand::Rng;
use rayon::prelude::*;

use crate::pram::ExecMode;
use crate::rng::proc_rng;
use crate::stats::StepStats;

/// The operation log of a single virtual processor within one step.
#[derive(Debug, Clone, Default)]
pub(crate) struct ProcLog {
    pub proc: u64,
    pub reads: Vec<usize>,
    pub writes: Vec<(usize, u64)>,
    pub computes: u64,
}

impl ProcLog {
    fn ops(&self) -> u64 {
        self.reads.len() as u64 + self.writes.len() as u64 + self.computes
    }

    fn max_substep_ops(&self) -> u64 {
        (self.reads.len() as u64)
            .max(self.writes.len() as u64)
            .max(self.computes)
    }
}

/// Handle given to each virtual processor for the duration of one step.
pub struct ProcCtx<'a> {
    snapshot: &'a [u64],
    log: ProcLog,
    seed: u64,
    step_idx: u64,
    rng: Option<SmallRng>,
}

impl<'a> ProcCtx<'a> {
    pub(crate) fn new(snapshot: &'a [u64], seed: u64, step_idx: u64, proc: u64) -> Self {
        ProcCtx {
            snapshot,
            log: ProcLog {
                proc,
                ..ProcLog::default()
            },
            seed,
            step_idx,
            rng: None,
        }
    }

    /// The virtual-processor id this context belongs to.
    pub fn proc_id(&self) -> u64 {
        self.log.proc
    }

    /// Reads shared-memory location `addr` (value as of the start of the
    /// step) and charges one read operation.
    pub fn read(&mut self, addr: usize) -> u64 {
        assert!(
            addr < self.snapshot.len(),
            "read of address {addr} outside shared memory of size {}",
            self.snapshot.len()
        );
        self.log.reads.push(addr);
        self.snapshot[addr]
    }

    /// Buffers a write of `value` to shared-memory location `addr` and
    /// charges one write operation.  If several processors write the same
    /// location in a step, the one with the smallest processor id wins
    /// (a deterministic instance of the paper's "arbitrary write succeeds"
    /// rule).
    pub fn write(&mut self, addr: usize, value: u64) {
        assert!(
            addr < self.snapshot.len(),
            "write of address {addr} outside shared memory of size {}",
            self.snapshot.len()
        );
        self.log.writes.push((addr, value));
    }

    /// Charges `ops` local RAM operations on the processor's private state.
    pub fn compute(&mut self, ops: u64) {
        self.log.computes += ops;
    }

    /// The processor's deterministic random stream for this step.
    pub fn rng(&mut self) -> &mut SmallRng {
        if self.rng.is_none() {
            self.rng = Some(proc_rng(self.seed, self.step_idx, self.log.proc));
        }
        self.rng.as_mut().unwrap()
    }

    /// Convenience: a uniform random index in `0..bound` (charges one
    /// compute operation for the random-number generation).
    pub fn random_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "random_index bound must be positive");
        self.log.computes += 1;
        self.rng().gen_range(0..bound)
    }

    pub(crate) fn into_log(self) -> ProcLog {
        self.log
    }
}

/// Handle for one synchronous PRAM step.
pub struct StepCtx<'a> {
    snapshot: &'a [u64],
    seed: u64,
    step_idx: u64,
    mode: ExecMode,
    logs: Vec<ProcLog>,
}

impl<'a> StepCtx<'a> {
    pub(crate) fn new(snapshot: &'a [u64], seed: u64, step_idx: u64, mode: ExecMode) -> Self {
        StepCtx {
            snapshot,
            seed,
            step_idx,
            mode,
            logs: Vec::new(),
        }
    }

    fn run_parallel(&self, len: usize) -> bool {
        match self.mode {
            ExecMode::Sequential => false,
            ExecMode::Parallel => true,
            ExecMode::Auto => len >= 4096,
        }
    }

    /// Launches one virtual processor per id in `procs`, returning their
    /// results in order.  Processor ids are arbitrary `u64`s, which lets an
    /// algorithm keep stable ids for "items" across steps.
    pub fn par_map_ids<T, F>(&mut self, procs: &[u64], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64, &mut ProcCtx<'_>) -> T + Sync,
    {
        let snapshot = self.snapshot;
        let seed = self.seed;
        let step_idx = self.step_idx;
        let run = |&p: &u64| {
            let mut ctx = ProcCtx::new(snapshot, seed, step_idx, p);
            let r = f(p, &mut ctx);
            (r, ctx.into_log())
        };
        let pairs: Vec<(T, ProcLog)> = if self.run_parallel(procs.len()) {
            procs.par_iter().map(run).collect()
        } else {
            procs.iter().map(run).collect()
        };
        let mut out = Vec::with_capacity(pairs.len());
        for (r, log) in pairs {
            out.push(r);
            self.logs.push(log);
        }
        out
    }

    /// Launches virtual processors `range.start .. range.end` and collects
    /// their results.
    pub fn par_map<T, F>(&mut self, range: std::ops::Range<usize>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut ProcCtx<'_>) -> T + Sync,
    {
        let snapshot = self.snapshot;
        let seed = self.seed;
        let step_idx = self.step_idx;
        let run = |p: usize| {
            let mut ctx = ProcCtx::new(snapshot, seed, step_idx, p as u64);
            let r = f(p, &mut ctx);
            (r, ctx.into_log())
        };
        let pairs: Vec<(T, ProcLog)> = if self.run_parallel(range.len()) {
            range.into_par_iter().map(run).collect()
        } else {
            range.map(run).collect()
        };
        let mut out = Vec::with_capacity(pairs.len());
        for (r, log) in pairs {
            out.push(r);
            self.logs.push(log);
        }
        out
    }

    /// Launches virtual processors `range.start .. range.end` for their side
    /// effects only.
    pub fn par_for<F>(&mut self, range: std::ops::Range<usize>, f: F)
    where
        F: Fn(usize, &mut ProcCtx<'_>) + Sync,
    {
        let _ = self.par_map(range, |p, ctx| f(p, ctx));
    }

    /// Launches one virtual processor per id in `procs` for side effects.
    pub fn par_for_ids<F>(&mut self, procs: &[u64], f: F)
    where
        F: Fn(u64, &mut ProcCtx<'_>) + Sync,
    {
        let _ = self.par_map_ids(procs, |p, ctx| f(p, ctx));
    }

    /// Finalises the step: computes the step statistics and the list of
    /// winning writes (lowest processor id per location).
    pub(crate) fn finish(self) -> (StepStats, Vec<(usize, u64)>) {
        let mut active = 0u64;
        let mut total_reads = 0u64;
        let mut total_writes = 0u64;
        let mut total_computes = 0u64;
        let mut max_ops = 0u64;

        // (addr, proc) pairs for contention counting over distinct procs.
        let mut read_pairs: Vec<(usize, u64)> = Vec::new();
        // (addr, proc, value) for writes: contention + arbitration.
        let mut write_recs: Vec<(usize, u64, u64)> = Vec::new();

        for log in &self.logs {
            if log.ops() == 0 {
                continue;
            }
            active += 1;
            total_reads += log.reads.len() as u64;
            total_writes += log.writes.len() as u64;
            total_computes += log.computes;
            max_ops = max_ops.max(log.max_substep_ops());
            for &a in &log.reads {
                read_pairs.push((a, log.proc));
            }
            for &(a, v) in &log.writes {
                write_recs.push((a, log.proc, v));
            }
        }

        read_pairs.sort_unstable();
        read_pairs.dedup();
        let max_read_contention = max_run_by_addr(read_pairs.iter().map(|&(a, _)| a));

        write_recs.sort_unstable_by_key(|&(a, p, _)| (a, p));
        // Distinct-processor write contention: dedup (addr, proc).
        let mut wp: Vec<(usize, u64)> = write_recs.iter().map(|&(a, p, _)| (a, p)).collect();
        wp.dedup();
        let max_write_contention = max_run_by_addr(wp.iter().map(|&(a, _)| a));

        // Winning writes: first record of each address run (lowest proc id).
        let mut winners: Vec<(usize, u64)> = Vec::new();
        let mut last_addr = usize::MAX;
        for &(a, _p, v) in &write_recs {
            if a != last_addr {
                winners.push((a, v));
                last_addr = a;
            }
        }

        let stats = StepStats {
            active_procs: active,
            total_reads,
            total_writes,
            total_computes,
            max_ops_per_proc: max_ops,
            max_read_contention,
            max_write_contention,
            is_scan: false,
            scan_width: 0,
        };
        (stats, winners)
    }
}

/// Given an address sequence sorted by address, returns the length of the
/// longest run of equal addresses (0 for an empty sequence).
fn max_run_by_addr<I: Iterator<Item = usize>>(addrs: I) -> u64 {
    let mut best = 0u64;
    let mut cur = 0u64;
    let mut last = usize::MAX;
    for a in addrs {
        if a == last {
            cur += 1;
        } else {
            cur = 1;
            last = a;
        }
        best = best.max(cur);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    #[test]
    fn reads_see_start_of_step_snapshot() {
        let mem = snapshot(8);
        let mut step = StepCtx::new(&mem, 0, 0, ExecMode::Sequential);
        let vals = step.par_map(0..8, |p, ctx| {
            ctx.write(p, 100);
            ctx.read(p)
        });
        assert_eq!(vals, (0..8).map(|x| x as u64).collect::<Vec<_>>());
    }

    #[test]
    fn contention_counts_distinct_processors_per_location() {
        let mem = snapshot(8);
        let mut step = StepCtx::new(&mem, 0, 0, ExecMode::Sequential);
        step.par_for(0..6, |p, ctx| {
            // everyone reads location 3; three processors write location 5
            let _ = ctx.read(3);
            let _ = ctx.read(3); // re-read by same proc: not extra contention
            if p < 3 {
                ctx.write(5, p as u64);
            }
        });
        let (stats, writes) = step.finish();
        assert_eq!(stats.max_read_contention, 6);
        assert_eq!(stats.max_write_contention, 3);
        assert_eq!(stats.active_procs, 6);
        assert_eq!(stats.total_reads, 12);
        assert_eq!(stats.total_writes, 3);
        // lowest processor id wins the concurrent write
        assert_eq!(writes, vec![(5, 0)]);
    }

    #[test]
    fn max_ops_per_proc_tracks_substep_maximum() {
        let mem = snapshot(16);
        let mut step = StepCtx::new(&mem, 0, 0, ExecMode::Sequential);
        step.par_for(0..2, |p, ctx| {
            if p == 0 {
                for i in 0..5 {
                    let _ = ctx.read(i);
                }
            } else {
                ctx.compute(3);
                ctx.write(0, 1);
            }
        });
        let (stats, _) = step.finish();
        assert_eq!(stats.max_ops_per_proc, 5);
    }

    #[test]
    fn par_map_ids_uses_given_processor_ids() {
        let mem = snapshot(4);
        let mut step = StepCtx::new(&mem, 7, 3, ExecMode::Sequential);
        let ids = vec![10u64, 20, 30];
        let got = step.par_map_ids(&ids, |p, ctx| {
            ctx.compute(1);
            p
        });
        assert_eq!(got, ids);
        let (stats, _) = step.finish();
        assert_eq!(stats.active_procs, 3);
        assert_eq!(stats.total_computes, 3);
    }

    #[test]
    fn parallel_and_sequential_execution_agree() {
        let mem = snapshot(10_000);
        let run = |mode| {
            let mut step = StepCtx::new(&mem, 42, 0, mode);
            let out = step.par_map(0..10_000, |p, ctx| {
                let v = ctx.read(p);
                let r = ctx.random_index(50);
                ctx.write((p + 1) % 10_000, v + r as u64);
                v + r as u64
            });
            let (stats, writes) = step.finish();
            (out, stats, writes)
        };
        let (o1, s1, w1) = run(ExecMode::Sequential);
        let (o2, s2, w2) = run(ExecMode::Parallel);
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
        assert_eq!(w1, w2);
    }

    #[test]
    fn idle_processors_are_not_counted_active() {
        let mem = snapshot(4);
        let mut step = StepCtx::new(&mem, 0, 0, ExecMode::Sequential);
        step.par_for(0..4, |p, ctx| {
            if p == 2 {
                ctx.write(0, 9);
            }
        });
        let (stats, _) = step.finish();
        assert_eq!(stats.active_procs, 1);
    }

    #[test]
    fn max_run_helper() {
        assert_eq!(max_run_by_addr([].into_iter()), 0);
        assert_eq!(max_run_by_addr([1, 1, 2, 3, 3, 3].into_iter()), 3);
    }

    #[test]
    #[should_panic(expected = "outside shared memory")]
    fn out_of_bounds_read_panics() {
        let mem = snapshot(4);
        let mut step = StepCtx::new(&mem, 0, 0, ExecMode::Sequential);
        step.par_for(0..1, |_p, ctx| {
            let _ = ctx.read(100);
        });
    }
}
