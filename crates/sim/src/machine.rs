//! The `Machine` backend API: one algorithm source, three machines.
//!
//! The paper evaluates its algorithms twice — analytically on the QRQW PRAM
//! cost model and empirically on a real machine (the MasPar Table II
//! experiment).  This module captures the *work–time presentation* those two
//! evaluations share as a trait, so an algorithm is written once and executed
//! on any substrate:
//!
//! * [`crate::Pram`] — the simulator: exact per-step traces, every cost
//!   model, deterministic write arbitration.
//! * `NativeMachine` (crate `qrqw-exec`) — real threads and atomics:
//!   wall-clock time and contended-CAS counts.
//! * `BspMachine` (crate `qrqw-bsp`) — batch-message BSP supersteps:
//!   requests routed by destination cell, contention measured as realized
//!   queue lengths next to the Theorem 1.1 predicted bound ([`BspCost`]).
//!
//! A [`Machine`] exposes synchronous data-parallel steps ([`Machine::par_map`]
//! / [`Machine::par_for`]), per-processor shared-memory access through
//! [`MachineProc`], the built-in scan and global-OR primitives of the MasPar
//! experiment, the cell-claiming protocol of Section 5.1 ([`Machine::claim`]),
//! a stack-style scratch allocator, and a [`CostReport`] summarising whatever
//! the backend can measure.
//!
//! # The backend contract
//!
//! Algorithms written against [`Machine`] may assume, and backends must
//! provide:
//!
//! 1. **Synchronous steps.**  All processors of a step complete before the
//!    next step begins.
//! 2. **Deterministic randomness.**  [`MachineProc::random_index`] draws from
//!    a stream derived from `(machine seed, step index, processor id)` via
//!    [`crate::rng::proc_rng`], identically on every backend.  Each
//!    [`Machine::par_map`] / [`Machine::par_for`] / [`Machine::seq_step`]
//!    call advances the step index by exactly 1, [`Machine::scan_step`] and
//!    [`Machine::global_or_step`] by 1, and [`Machine::claim`] by 6
//!    ([`ClaimMode::Exclusive`]) or 3 ([`ClaimMode::Occupy`]) — the length of
//!    the simulated claiming protocol.  Backends that keep this contract give
//!    *identical* random choices to the same algorithm, which is what makes
//!    the cross-backend parity tests exact.
//! 3. **Step race freedom.**  Within one step, a location written by one
//!    processor must not be read or written by any other processor.  The
//!    simulator tolerates such races (snapshot reads, deterministic write
//!    arbitration) and its trace exposes them as write contention; a native
//!    backend runs steps as real concurrent loops, so racing writes are
//!    scheduler-ordered.  Cross-processor races are expressed through
//!    [`Machine::claim`], whose outcome is well-defined on both backends.
//!    (Concurrent *reads* of a location no processor writes in the step are
//!    always fine — that is the Q in QRQW.)
//! 4. **Claim semantics.**  [`ClaimMode::Exclusive`] is fully deterministic:
//!    an attempt succeeds iff it is the only live claim on its cell, so
//!    algorithms built on exclusive claims (e.g. random permutation) produce
//!    bit-identical output on every backend.  [`ClaimMode::Occupy`] hands
//!    each contested cell to exactly one live claimant — the **lowest
//!    claimant index**, on every backend: the simulator through its
//!    lowest-processor-id write arbitration, the native machines through a
//!    `fetch_min` bidding pass.  (The paper's model only requires an
//!    *arbitrary* winner; pinning the arbitration is what keeps retry
//!    trajectories, step counts and contention totals bit-identical across
//!    backends, schedules and thread counts.)

use std::time::Duration;

use crate::memory::EMPTY;
use crate::pram::Pram;
use crate::step::ProcCtx;

/// Collision-resolution flavour for [`Machine::claim`] (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimMode {
    /// Simultaneous claimants all fail and the cell stays empty (required by
    /// the random-permutation dart throwers, where letting an arbitration
    /// winner through would bias the permutation).  Deterministic on every
    /// backend.
    Exclusive,
    /// Exactly one of the simultaneous claimants succeeds and the cell keeps
    /// its tag (the flavour used by multiple compaction and hashing).  The
    /// lowest claimant index wins, on every backend.
    Occupy,
}

/// What one processor can do inside one step of a [`Machine`].
///
/// Object-safe so that algorithm closures are written once as
/// `Fn(usize, &mut dyn MachineProc)` and monomorphise over the machine, not
/// over the per-processor context.
pub trait MachineProc {
    /// The processor id this context belongs to.
    fn proc_id(&self) -> u64;

    /// Reads shared-memory location `addr`.  On the simulator this observes
    /// the snapshot from the start of the step; on a native backend it is an
    /// atomic load.  Under the step-race-freedom contract both return the
    /// value the location held when the step began.
    fn read(&mut self, addr: usize) -> u64;

    /// Writes `value` to shared-memory location `addr` (simulator: buffered
    /// to the end of the step; native: an atomic store).
    fn write(&mut self, addr: usize, value: u64);

    /// Charges `ops` local compute operations (a cost-accounting no-op on
    /// native backends).
    fn compute(&mut self, ops: u64);

    /// A uniform random index in `0..bound` from the deterministic
    /// per-`(seed, step, proc)` stream shared by all backends.
    fn random_index(&mut self, bound: usize) -> usize;
}

impl MachineProc for ProcCtx<'_> {
    fn proc_id(&self) -> u64 {
        ProcCtx::proc_id(self)
    }

    fn read(&mut self, addr: usize) -> u64 {
        ProcCtx::read(self, addr)
    }

    fn write(&mut self, addr: usize, value: u64) {
        ProcCtx::write(self, addr, value)
    }

    fn compute(&mut self, ops: u64) {
        ProcCtx::compute(self, ops)
    }

    fn random_index(&mut self, bound: usize) -> usize {
        ProcCtx::random_index(self, bound)
    }
}

/// BSP-side measurements of a run, filled only by a batch-message BSP
/// backend (crate `qrqw-bsp`).
///
/// Theorem 1.1 of the paper bounds the cost of emulating a QRQW PRAM
/// algorithm of time `t` on a standard BSP machine by `O(t · lg p)` — the
/// repository's formula charge is [`crate::bsp_emulation_time`].  A BSP
/// backend *realizes* that emulation: every step becomes supersteps whose
/// read/write requests travel as messages, routed in batches keyed by
/// destination cell, and the contention actually paid is the longest
/// realized per-cell message queue — measured, not charged.  This struct
/// carries both sides so harnesses can print measured-vs-predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BspCost {
    /// Number of BSP components (`p` in the Theorem 1.1 bound).
    pub components: u64,
    /// Supersteps executed (each ends in a barrier; a step with reads costs
    /// a request and a reply superstep, one with writes a delivery
    /// superstep, and the built-in scan/OR primitives one per tree level).
    pub supersteps: u64,
    /// Messages routed (read requests count twice: request + reply).
    pub messages: u64,
    /// Longest realized per-cell message queue in any superstep.
    pub max_queue: u64,
    /// Largest number of messages routed through one component in any
    /// superstep — the `h` of the costliest realized h-relation.
    pub max_h_relation: u64,
    /// Realized emulation cost: the sum over supersteps of
    /// `max(local ops, realized max queue)` in h-relation units (barrier
    /// latency is visible in `supersteps`, not folded in here).
    pub measured_cost: u64,
    /// The Theorem 1.1 formula bound for the same run:
    /// `charged QRQW time · ⌈lg components⌉`.
    pub predicted_cost: u64,
}

impl BspCost {
    /// `predicted / measured` — how far the realized emulation stays below
    /// the worst-case formula charge (`None` when nothing was measured).
    pub fn headroom(&self) -> Option<f64> {
        (self.measured_cost > 0).then(|| self.predicted_cost as f64 / self.measured_cost as f64)
    }
}

/// What an execution cost on whichever backend ran it.
///
/// The simulator fills the model-side fields from its exact trace and leaves
/// wall-clock as host time; a native backend has no trace, so the model-side
/// fields are `None` and the measured fields are wall-clock time and
/// contended claims (its CAS-failure analogue of queue contention).  The
/// BSP backend additionally fills [`CostReport::bsp`] with its realized
/// superstep/message/queue measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostReport {
    /// Short backend name (`"sim"`, `"native"`, `"native-steal"`,
    /// `"bsp"`).
    pub backend: &'static str,
    /// Synchronous steps executed (identical across backends for the same
    /// algorithm, seed and input — see the backend contract).
    pub steps: u64,
    /// Host wall-clock time since the machine was created.
    pub wall: Duration,
    /// Live claim attempts submitted through [`Machine::claim`].
    pub claim_attempts: u64,
    /// Live claim attempts that failed because of a same-step collision —
    /// the cross-backend contention measure (simulator: collision-set
    /// members; native: lost or poisoned CAS claims).
    pub contended_claims: u64,
    /// Total accounted operations (simulator only).
    pub work: Option<u64>,
    /// Largest per-step contention (simulator only).
    pub max_contention: Option<u64>,
    /// Running time under the QRQW metric (simulator only).
    pub time_qrqw: Option<u64>,
    /// Measured BSP emulation quantities (BSP backend only).
    pub bsp: Option<BspCost>,
}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] steps={} wall={:.3}ms claims={} contended={}",
            self.backend,
            self.steps,
            self.wall.as_secs_f64() * 1e3,
            self.claim_attempts,
            self.contended_claims,
        )?;
        if let (Some(w), Some(k), Some(t)) = (self.work, self.max_contention, self.time_qrqw) {
            write!(f, " work={w} max_cont={k} t_qrqw={t}")?;
        }
        if let Some(b) = &self.bsp {
            write!(
                f,
                " supersteps={} msgs={} max_q={} max_h={} measured={} predicted={}",
                b.supersteps,
                b.messages,
                b.max_queue,
                b.max_h_relation,
                b.measured_cost,
                b.predicted_cost,
            )?;
        }
        Ok(())
    }
}

/// An execution substrate for algorithms in the work–time presentation.
///
/// See the [module documentation](self) for the contract backends must keep.
pub trait Machine {
    /// Creates a machine with `mem_size` cells of shared memory (all
    /// [`crate::EMPTY`]) and the given master random seed.
    fn with_seed(mem_size: usize, seed: u64) -> Self
    where
        Self: Sized;

    /// Short backend name (`"sim"`, `"native"`, `"native-steal"`,
    /// `"bsp"`).
    fn backend(&self) -> &'static str;

    /// The master random seed of this run.
    fn seed(&self) -> u64;

    /// Synchronous steps executed so far (the step index of the next step).
    fn steps_executed(&self) -> u64;

    /// Grows shared memory to at least `size` cells and moves the scratch
    /// allocator's high-water mark past them.
    fn ensure_memory(&mut self, size: usize);

    /// Allocates `len` fresh [`crate::EMPTY`]-initialised cells past every
    /// previous allocation and returns their base address (stack
    /// discipline; pair with [`Machine::release_to`]).
    fn alloc(&mut self, len: usize) -> usize;

    /// Releases every allocation made at or after `base`.
    fn release_to(&mut self, base: usize);

    /// The scratch allocator's current high-water mark.
    fn heap_top(&self) -> usize;

    /// Host-side bulk load of input data (un-accounted).
    fn load(&mut self, base: usize, values: &[u64]);

    /// Host-side bulk read-back of results (un-accounted).
    fn dump(&self, base: usize, len: usize) -> Vec<u64>;

    /// Host-side single-cell read (un-accounted).
    fn peek(&self, addr: usize) -> u64;

    /// Host-side single-cell write (un-accounted).
    fn poke(&mut self, addr: usize, value: u64);

    /// Host-side reset of a region to [`crate::EMPTY`] (un-accounted).
    fn clear_region(&mut self, base: usize, len: usize);

    /// Executes one synchronous step with processors `0..procs`, collecting
    /// each processor's result in processor order.
    fn par_map<T, F>(&mut self, procs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut dyn MachineProc) -> T + Sync;

    /// Executes one synchronous step with processors `0..procs` for side
    /// effects only.
    fn par_for<F>(&mut self, procs: usize, f: F)
    where
        F: Fn(usize, &mut dyn MachineProc) + Sync,
    {
        let _ = self.par_map(procs, |p, ctx| f(p, ctx));
    }

    /// Executes one *sequential* step: a single processor (id 0) runs `f`
    /// and — unlike inside [`Machine::par_map`], whose reads observe the
    /// memory as of the start of the step — its reads see its **own earlier
    /// writes within the same step** on every backend.
    ///
    /// This is the primitive for the sequential Las-Vegas clean-up passes
    /// (e.g. the dead-with-high-probability tails of the dart-throwing
    /// algorithms), which walk an array writing into free cells and must
    /// observe those writes immediately to stay correct.  Expressing them
    /// through `par_map(1, …)` used to be a latent sim-vs-native divergence:
    /// the simulator's snapshot reads would return stale values that a
    /// native thread sees fresh.
    ///
    /// Advances the step index by exactly 1; the processor draws from the
    /// same `(seed, step, 0)` random stream as processor 0 of a parallel
    /// step, so sequential steps preserve cross-backend RNG parity.
    fn seq_step<T, F>(&mut self, f: F) -> T
    where
        F: FnOnce(&mut dyn MachineProc) -> T;

    /// Built-in inclusive prefix sums over `[base, base+len)` ([`crate::EMPTY`]
    /// counts as zero), returning the total — the MasPar `enumerate`/`scan`
    /// primitive.  Advances the step index by 1.
    fn scan_step(&mut self, base: usize, len: usize) -> u64;

    /// Built-in global OR over `[base, base+len)` — the MasPar `globalor`
    /// primitive.  True iff any cell is non-zero and non-[`crate::EMPTY`].
    /// Advances the step index by 1.
    fn global_or_step(&mut self, base: usize, len: usize) -> bool;

    /// Compacts the non-[`crate::EMPTY`] cells of `[src, src+len)` to the
    /// front of `[dst, dst+len)` in their original order, returning how
    /// many there were.  `src` and `dst` must not overlap.  Memory is
    /// ensured up to `dst + count` (the survivor count), not `dst + len` —
    /// a caller that knows its survivor count may allocate exactly that.
    ///
    /// The default implementation is the canonical EREW-legal route — flag
    /// write, one [`Machine::scan_step`], rank gather — and is what the
    /// simulator charges; it advances the step index by exactly 3 and
    /// draws no randomness, and any override must do the same (the native
    /// backend fuses the passes into two block sweeps over reused scratch,
    /// with identical observable results).
    ///
    /// ```
    /// use qrqw_sim::{Machine, Pram, EMPTY};
    ///
    /// let mut m = Pram::with_seed(16, 0);
    /// // A sparse region: survivors 5 and 9 amid EMPTY cells.
    /// m.poke(1, 5);
    /// m.poke(3, 9);
    /// let count = m.compact_step(0, 8, 8);
    /// assert_eq!(count, 2);
    /// assert_eq!(m.dump(8, 2), vec![5, 9]); // original order preserved
    /// assert_eq!(m.steps_executed(), 3);    // the charged 3-step route
    /// ```
    fn compact_step(&mut self, src: usize, len: usize, dst: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        self.ensure_memory(src + len);
        let flags = self.alloc(len);
        self.par_for(len, |i, ctx| {
            let v = ctx.read(src + i);
            ctx.write(flags + i, (v != EMPTY) as u64);
        });
        // In-place inclusive scan: a surviving cell's destination is its
        // exclusive rank, i.e. the inclusive count one cell to the left
        // (0 for the first cell).  Each flag cell is read by exactly one
        // processor in the gather, so the pass stays EREW-legal.
        let count = self.scan_step(flags, len);
        self.ensure_memory(dst + count as usize);
        self.par_for(len, |i, ctx| {
            let v = ctx.read(src + i);
            if v != EMPTY {
                let pos = if i == 0 {
                    0
                } else {
                    ctx.read(flags + i - 1) as usize
                };
                ctx.write(dst + pos, v);
            }
        });
        self.release_to(flags);
        count
    }

    /// Executes the cell-claiming protocol of Section 5.1:
    /// `attempts[i] = (tag, target)` asks to claim cell `target` with the
    /// unique non-[`crate::EMPTY`] value `tag`; returns which attempts
    /// succeeded.  Successful claims leave their tag in the cell; in
    /// [`ClaimMode::Exclusive`] contested cells are restored to empty, in
    /// [`ClaimMode::Occupy`] exactly one contender keeps the cell.
    /// Advances the step index by 6 (Exclusive) or 3 (Occupy).
    ///
    /// ```
    /// use qrqw_sim::{ClaimMode, Machine, Pram, EMPTY};
    ///
    /// let mut m = Pram::with_seed(16, 0);
    /// // Two darts collide on cell 4; a third claims cell 6 alone.
    /// let ok = m.claim(&[(1, 4), (2, 4), (3, 6)], ClaimMode::Exclusive);
    /// assert_eq!(ok, vec![false, false, true]);
    /// assert_eq!(m.peek(4), EMPTY); // contested cell restored
    /// assert_eq!(m.peek(6), 3);     // uncontested tag sticks
    /// assert_eq!(m.steps_executed(), 6);
    ///
    /// // Occupy mode instead hands the contested cell to exactly one winner.
    /// let mut m = Pram::with_seed(16, 0);
    /// let ok = m.claim(&[(1, 4), (2, 4)], ClaimMode::Occupy);
    /// assert_eq!(ok.iter().filter(|&&won| won).count(), 1);
    /// assert_ne!(m.peek(4), EMPTY);
    /// ```
    fn claim(&mut self, attempts: &[(u64, usize)], mode: ClaimMode) -> Vec<bool>;

    /// Whatever this backend can measure about the run so far.
    fn cost_report(&self) -> CostReport;
}

impl Machine for Pram {
    fn with_seed(mem_size: usize, seed: u64) -> Self {
        Pram::with_seed(mem_size, seed)
    }

    fn backend(&self) -> &'static str {
        "sim"
    }

    fn seed(&self) -> u64 {
        Pram::seed(self)
    }

    fn steps_executed(&self) -> u64 {
        Pram::steps_executed(self)
    }

    fn ensure_memory(&mut self, size: usize) {
        Pram::ensure_memory(self, size)
    }

    fn alloc(&mut self, len: usize) -> usize {
        Pram::alloc(self, len)
    }

    fn release_to(&mut self, base: usize) {
        Pram::release_to(self, base)
    }

    fn heap_top(&self) -> usize {
        Pram::heap_top(self)
    }

    fn load(&mut self, base: usize, values: &[u64]) {
        self.memory_mut().load(base, values)
    }

    fn dump(&self, base: usize, len: usize) -> Vec<u64> {
        self.memory().dump(base, len)
    }

    fn peek(&self, addr: usize) -> u64 {
        self.memory().peek(addr)
    }

    fn poke(&mut self, addr: usize, value: u64) {
        self.memory_mut().poke(addr, value)
    }

    fn clear_region(&mut self, base: usize, len: usize) {
        self.memory_mut().clear_region(base, len)
    }

    fn par_map<T, F>(&mut self, procs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut dyn MachineProc) -> T + Sync,
    {
        self.step(|s| s.par_map(0..procs, |p, ctx| f(p, ctx)))
    }

    fn seq_step<T, F>(&mut self, f: F) -> T
    where
        F: FnOnce(&mut dyn MachineProc) -> T,
    {
        Pram::seq_step(self, f)
    }

    fn scan_step(&mut self, base: usize, len: usize) -> u64 {
        Pram::scan_step(self, base, len)
    }

    fn global_or_step(&mut self, base: usize, len: usize) -> bool {
        Pram::global_or_step(self, base, len)
    }

    fn claim(&mut self, attempts: &[(u64, usize)], mode: ClaimMode) -> Vec<bool> {
        let k = attempts.len();
        if k == 0 {
            return Vec::new();
        }
        debug_assert!(
            attempts.iter().all(|&(tag, _)| tag != EMPTY),
            "claim tags must differ from EMPTY"
        );
        if let Some(max_addr) = attempts.iter().map(|&(_, a)| a).max() {
            Pram::ensure_memory(self, max_addr + 1);
        }

        // S1: probe — an already-occupied cell rejects the claim outright.
        let live: Vec<bool> =
            self.step(|s| s.par_map(0..k, |i, ctx| ctx.read(attempts[i].1) == EMPTY));

        // S2: live claimants write their tag.
        self.step(|s| {
            s.par_for(0..k, |i, ctx| {
                if live[i] {
                    ctx.write(attempts[i].1, attempts[i].0);
                }
            });
        });

        // S3: live claimants read back; holding one's own tag makes one the
        // tentative winner of the cell.
        let tentative: Vec<bool> = self.step(|s| {
            s.par_map(0..k, |i, ctx| {
                live[i] && ctx.read(attempts[i].1) == attempts[i].0
            })
        });

        let success = match mode {
            ClaimMode::Occupy => tentative,
            ClaimMode::Exclusive => {
                // S4: the losers of a collision re-write their tag, poisoning
                // the cell so the tentative winner can detect contestation.
                self.step(|s| {
                    s.par_for(0..k, |i, ctx| {
                        if live[i] && !tentative[i] {
                            ctx.write(attempts[i].1, attempts[i].0);
                        }
                    });
                });
                // S5: tentative winners re-read; an unchanged cell means the
                // claim was uncontested.
                let success: Vec<bool> = self.step(|s| {
                    s.par_map(0..k, |i, ctx| {
                        tentative[i] && ctx.read(attempts[i].1) == attempts[i].0
                    })
                });
                // S6: contested cells are restored to empty.
                self.step(|s| {
                    s.par_for(0..k, |i, ctx| {
                        if live[i] && !success[i] {
                            ctx.write(attempts[i].1, EMPTY);
                        }
                    });
                });
                success
            }
        };

        let live_total = live.iter().filter(|&&l| l).count() as u64;
        let contended = live
            .iter()
            .zip(&success)
            .filter(|&(&l, &won)| l && !won)
            .count() as u64;
        self.note_claims(live_total, contended);
        success
    }

    fn cost_report(&self) -> CostReport {
        let (claim_attempts, contended_claims) = self.claim_stats();
        CostReport {
            backend: "sim",
            steps: Pram::steps_executed(self),
            wall: self.wall_elapsed(),
            claim_attempts,
            contended_claims,
            work: Some(self.trace().work()),
            max_contention: Some(self.trace().max_contention()),
            time_qrqw: Some(self.trace().time(crate::CostModel::Qrqw)),
            bsp: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;

    /// A tiny algorithm written only against the trait, exercised on the
    /// simulator backend.
    fn double_region<M: Machine>(m: &mut M, base: usize, len: usize) {
        m.par_for(len, |i, ctx| {
            let v = ctx.read(base + i);
            ctx.write(base + i, v * 2);
        });
    }

    #[test]
    fn pram_runs_trait_generic_code() {
        let mut m = Pram::with_seed(8, 0);
        Machine::load(&mut m, 0, &[1, 2, 3, 4]);
        double_region(&mut m, 0, 4);
        assert_eq!(Machine::dump(&m, 0, 4), vec![2, 4, 6, 8]);
        assert_eq!(m.backend(), "sim");
        assert_eq!(Machine::steps_executed(&m), 1);
    }

    #[test]
    fn trait_claim_matches_protocol_semantics() {
        let mut m = Pram::with_seed(16, 0);
        let ok = Machine::claim(&mut m, &[(1, 4), (2, 4), (3, 6)], ClaimMode::Exclusive);
        assert_eq!(ok, vec![false, false, true]);
        assert_eq!(Machine::peek(&m, 4), EMPTY);
        assert_eq!(Machine::peek(&m, 6), 3);
        // exclusive protocol = 6 steps
        assert_eq!(Machine::steps_executed(&m), 6);
        let report = m.cost_report();
        assert_eq!(report.claim_attempts, 3);
        assert_eq!(report.contended_claims, 2);
    }

    #[test]
    fn trait_occupy_claim_advances_three_steps() {
        let mut m = Pram::with_seed(16, 0);
        let ok = Machine::claim(&mut m, &[(1, 4), (2, 4)], ClaimMode::Occupy);
        assert_eq!(ok.iter().filter(|&&b| b).count(), 1);
        assert_eq!(Machine::steps_executed(&m), 3);
    }

    #[test]
    fn cost_report_exposes_trace_quantities() {
        let mut m = Pram::with_seed(8, 0);
        Machine::load(&mut m, 0, &[1, 2, 3, 4, 5, 6, 7, 8]);
        double_region(&mut m, 0, 8);
        let r = m.cost_report();
        assert_eq!(r.backend, "sim");
        assert_eq!(r.steps, 1);
        assert_eq!(r.work, Some(16));
        assert_eq!(r.time_qrqw, Some(m.trace().time(CostModel::Qrqw)));
        assert!(r.to_string().contains("[sim]"));
    }

    #[test]
    fn scan_and_global_or_through_trait() {
        let mut m = Pram::with_seed(8, 0);
        Machine::load(&mut m, 0, &[1, 2, 3]);
        assert_eq!(Machine::scan_step(&mut m, 0, 3), 6);
        assert!(Machine::global_or_step(&mut m, 0, 3));
    }
}
