//! The PRAM driver: shared memory + step execution + trace accumulation.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::machine::MachineProc;
use crate::memory::SharedMemory;
use crate::rng::proc_rng;
use crate::stats::{StepStats, Trace};
use crate::step::StepCtx;

/// How virtual processors inside a step are executed on the host.
///
/// This affects only simulation speed, never results: per-processor random
/// streams are derived from `(seed, step, proc)` and write arbitration is
/// deterministic, so sequential and parallel execution are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Run virtual processors on the calling thread.
    Sequential,
    /// Always fan virtual processors out over the rayon thread pool.
    Parallel,
    /// Use rayon only when a step launches at least a few thousand virtual
    /// processors (the default).
    #[default]
    Auto,
}

/// A simulated PRAM: shared memory, a master random seed, and the trace of
/// every step executed so far.
///
/// The same simulated execution can afterwards be costed under any
/// [`crate::CostModel`] via [`Pram::trace`].
#[derive(Debug)]
pub struct Pram {
    mem: SharedMemory,
    trace: Trace,
    seed: u64,
    mode: ExecMode,
    steps_executed: u64,
    heap_top: usize,
    created: std::time::Instant,
    claim_attempts: u64,
    claim_failures: u64,
}

impl Pram {
    /// Creates a PRAM with `mem_size` cells of shared memory (all
    /// [`crate::EMPTY`]) and seed 0.
    pub fn new(mem_size: usize) -> Self {
        Pram::with_seed(mem_size, 0)
    }

    /// Creates a PRAM with the given master random seed.
    pub fn with_seed(mem_size: usize, seed: u64) -> Self {
        Pram {
            mem: SharedMemory::new(mem_size),
            trace: Trace::new(),
            seed,
            mode: ExecMode::default(),
            steps_executed: 0,
            heap_top: mem_size,
            created: std::time::Instant::now(),
            claim_attempts: 0,
            claim_failures: 0,
        }
    }

    /// Host wall-clock time elapsed since this PRAM was created (reported by
    /// [`crate::machine::Machine::cost_report`] alongside the model-side
    /// quantities).
    pub fn wall_elapsed(&self) -> std::time::Duration {
        self.created.elapsed()
    }

    /// `(live attempts, collision failures)` recorded by
    /// [`crate::machine::Machine::claim`] so far.
    pub fn claim_stats(&self) -> (u64, u64) {
        (self.claim_attempts, self.claim_failures)
    }

    pub(crate) fn note_claims(&mut self, live: u64, contended: u64) {
        self.claim_attempts += live;
        self.claim_failures += contended;
    }

    /// Allocates `len` fresh [`crate::EMPTY`]-initialised cells past every
    /// previously allocated region and returns their base address.
    ///
    /// Allocation is a host-side bookkeeping convenience (PRAM algorithms
    /// are free to address any cell); it lets primitives obtain scratch
    /// space without clobbering their caller's arrays.  Paired with
    /// [`Pram::release_to`], it behaves as a stack allocator.
    pub fn alloc(&mut self, len: usize) -> usize {
        let base = self.heap_top;
        self.heap_top += len;
        self.mem.ensure(self.heap_top);
        self.mem.clear_region(base, len);
        base
    }

    /// Releases every allocation made at or after `base` (obtained from a
    /// previous [`Pram::alloc`]).  The cells remain addressable; only the
    /// allocator's high-water mark is rolled back so the space can be
    /// reused by later scratch allocations.
    pub fn release_to(&mut self, base: usize) {
        assert!(base <= self.heap_top, "release_to past the allocation top");
        self.heap_top = base;
    }

    /// The current allocation high-water mark.
    pub fn heap_top(&self) -> usize {
        self.heap_top
    }

    /// Sets the host execution mode (see [`ExecMode`]).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// The master random seed of this run.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Immutable access to the shared memory (host-side, un-accounted).
    pub fn memory(&self) -> &SharedMemory {
        &self.mem
    }

    /// Mutable access to the shared memory (host-side, un-accounted); used
    /// to load inputs and allocate auxiliary regions.
    pub fn memory_mut(&mut self) -> &mut SharedMemory {
        &mut self.mem
    }

    /// Grows shared memory to at least `size` cells and moves the allocator
    /// high-water mark past them, so later [`Pram::alloc`] calls never hand
    /// out addresses below `size`.
    pub fn ensure_memory(&mut self, size: usize) {
        self.mem.ensure(size);
        self.heap_top = self.heap_top.max(size);
    }

    /// The trace accumulated so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of synchronous steps executed so far.
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    /// Executes one synchronous PRAM step.
    ///
    /// Inside the closure, launch virtual processors with
    /// [`StepCtx::par_map`] / [`StepCtx::par_for`].  All reads observe the
    /// memory as it was when the step began; all writes take effect when the
    /// step ends (lowest-processor-id winner for concurrent writes).  The
    /// step's statistics are appended to the trace.
    pub fn step<R>(&mut self, f: impl FnOnce(&mut StepCtx<'_>) -> R) -> R {
        let step_idx = self.steps_executed;
        let mut ctx = StepCtx::new(self.mem.as_slice(), self.seed, step_idx, self.mode);
        let result = f(&mut ctx);
        let (stats, writes) = ctx.finish();
        for (addr, value) in writes {
            self.mem.apply(addr, value);
        }
        self.trace.push(stats);
        self.steps_executed += 1;
        result
    }

    /// Executes one *sequential* step (see [`crate::Machine::seq_step`]): a
    /// single processor (id 0) runs `f` with write-through memory semantics,
    /// so its reads observe its own earlier writes within the step — the
    /// behaviour a native thread gets for free and the snapshot-read
    /// [`Pram::step`] deliberately forbids.
    ///
    /// The step is charged as the serial computation it is: one active
    /// processor whose time equals its total operation count, contention 1.
    /// Advances the step index by 1; random draws come from the
    /// `(seed, step, 0)` stream, matching every other backend.
    pub fn seq_step<T>(&mut self, f: impl FnOnce(&mut dyn MachineProc) -> T) -> T {
        let step_idx = self.steps_executed;
        let mut ctx = SeqProc {
            mem: &mut self.mem,
            seed: self.seed,
            step_idx,
            rng: None,
            reads: 0,
            writes: 0,
            computes: 0,
        };
        let result = f(&mut ctx);
        let (reads, writes, computes) = (ctx.reads, ctx.writes, ctx.computes);
        let ops = reads + writes + computes;
        self.trace.push(StepStats {
            active_procs: (ops > 0) as u64,
            total_reads: reads,
            total_writes: writes,
            total_computes: computes,
            max_ops_per_proc: ops,
            max_read_contention: (reads > 0) as u64,
            max_write_contention: (writes > 0) as u64,
            is_scan: false,
            scan_width: 0,
        });
        self.steps_executed += 1;
        result
    }

    /// Executes a built-in inclusive prefix-sums (scan) step over the memory
    /// region `[base, base+len)`, returning the total sum.
    ///
    /// On the scan-SIMD-QRQW model this costs unit time; under every other
    /// model it is charged as the `⌈lg len⌉`-depth binary-tree computation it
    /// abbreviates (see [`crate::CostModel::step_time`]).  Cells equal to
    /// [`crate::EMPTY`] are treated as zero.
    pub fn scan_step(&mut self, base: usize, len: usize) -> u64 {
        self.mem.ensure(base + len);
        let mut acc = 0u64;
        for i in 0..len {
            let v = self.mem.peek(base + i);
            let v = if v == crate::memory::EMPTY { 0 } else { v };
            acc += v;
            self.mem.apply(base + i, acc);
        }
        self.trace.push(StepStats {
            active_procs: len as u64,
            total_reads: len as u64,
            total_writes: len as u64,
            total_computes: len as u64,
            max_ops_per_proc: 1,
            max_read_contention: 1,
            max_write_contention: 1,
            is_scan: true,
            scan_width: len as u64,
        });
        self.steps_executed += 1;
        acc
    }

    /// Executes a built-in global-OR step over `[base, base+len)` (the
    /// MasPar `globalor` routine): returns true iff any cell in the region
    /// is non-zero and non-[`crate::EMPTY`].  Charged like a scan.
    pub fn global_or_step(&mut self, base: usize, len: usize) -> bool {
        self.mem.ensure(base + len);
        let mut any = false;
        let mut examined = 0u64;
        for i in 0..len {
            examined += 1;
            let v = self.mem.peek(base + i);
            if v != 0 && v != crate::memory::EMPTY {
                any = true;
                break;
            }
        }
        // Work reflects the cells actually inspected before the
        // short-circuit; the *time* charge keeps `scan_width = len` because
        // the machine primitive is a reduction tree over the whole region
        // regardless of where the first non-zero value sits.
        self.trace.push(StepStats {
            active_procs: examined,
            total_reads: examined,
            total_writes: 0,
            total_computes: examined,
            max_ops_per_proc: 1,
            max_read_contention: 1,
            max_write_contention: 1,
            is_scan: true,
            scan_width: len as u64,
        });
        self.steps_executed += 1;
        any
    }

    /// Splits off the trace accumulated so far, resetting this PRAM's trace
    /// to empty (memory and step counter are preserved).  Useful for
    /// measuring individual phases of a larger algorithm.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }
}

/// The write-through per-processor context of [`Pram::seq_step`].
struct SeqProc<'a> {
    mem: &'a mut SharedMemory,
    seed: u64,
    step_idx: u64,
    rng: Option<SmallRng>,
    reads: u64,
    writes: u64,
    computes: u64,
}

impl MachineProc for SeqProc<'_> {
    fn proc_id(&self) -> u64 {
        0
    }

    fn read(&mut self, addr: usize) -> u64 {
        assert!(
            addr < self.mem.len(),
            "read of address {addr} outside shared memory of size {}",
            self.mem.len()
        );
        self.reads += 1;
        self.mem.peek(addr)
    }

    fn write(&mut self, addr: usize, value: u64) {
        assert!(
            addr < self.mem.len(),
            "write of address {addr} outside shared memory of size {}",
            self.mem.len()
        );
        self.writes += 1;
        self.mem.poke(addr, value);
    }

    fn compute(&mut self, ops: u64) {
        self.computes += ops;
    }

    fn random_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "random_index bound must be positive");
        self.computes += 1;
        if self.rng.is_none() {
            self.rng = Some(proc_rng(self.seed, self.step_idx, 0));
        }
        self.rng.as_mut().unwrap().gen_range(0..bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::EMPTY;
    use crate::model::CostModel;

    #[test]
    fn writes_apply_at_end_of_step_with_lowest_id_winner() {
        let mut pram = Pram::new(4);
        pram.step(|s| {
            s.par_for(0..4, |p, ctx| {
                ctx.write(0, 100 + p as u64);
            });
        });
        assert_eq!(pram.memory().peek(0), 100);
        assert_eq!(pram.trace().step_stats()[0].max_write_contention, 4);
    }

    #[test]
    fn trace_accumulates_across_steps() {
        let n = 256;
        let mut pram = Pram::new(n);
        for _ in 0..3 {
            pram.step(|s| {
                s.par_for(0..n, |p, ctx| {
                    let v = ctx.read(p);
                    ctx.write(p, if v == EMPTY { 1 } else { v + 1 });
                });
            });
        }
        assert_eq!(pram.steps_executed(), 3);
        assert_eq!(pram.trace().time(CostModel::Qrqw), 3);
        assert_eq!(pram.trace().work(), 3 * 2 * n as u64);
        assert_eq!(pram.memory().peek(17), 3);
    }

    #[test]
    fn scan_step_computes_inclusive_prefix_sums() {
        let mut pram = Pram::new(8);
        pram.memory_mut().load(0, &[1, 2, 3, 4]);
        let total = pram.scan_step(0, 4);
        assert_eq!(total, 10);
        assert_eq!(pram.memory().dump(0, 4), vec![1, 3, 6, 10]);
        assert_eq!(pram.trace().time(CostModel::ScanSimdQrqw), 1);
        assert_eq!(pram.trace().time(CostModel::Qrqw), 2); // ceil(lg 4)
    }

    #[test]
    fn scan_step_treats_empty_as_zero() {
        let mut pram = Pram::new(4);
        pram.memory_mut().poke(1, 5);
        let total = pram.scan_step(0, 4);
        assert_eq!(total, 5);
        assert_eq!(pram.memory().dump(0, 4), vec![0, 5, 5, 5]);
    }

    #[test]
    fn global_or_step_detects_any_nonzero() {
        let mut pram = Pram::new(8);
        assert!(!pram.global_or_step(0, 8));
        pram.memory_mut().poke(5, 1);
        assert!(pram.global_or_step(0, 8));
    }

    #[test]
    fn global_or_step_charges_only_examined_cells_as_work() {
        let mut pram = Pram::new(8);
        pram.memory_mut().poke(0, 1);
        assert!(pram.global_or_step(0, 8));
        let s = pram.trace().step_stats()[0];
        // short-circuits on the first cell: one read of work...
        assert_eq!(s.total_reads, 1);
        assert_eq!(s.active_procs, 1);
        // ...but still a full-width reduction for the time charge.
        assert_eq!(s.scan_width, 8);
        assert_eq!(pram.trace().time(CostModel::Qrqw), 3); // ceil(lg 8)

        // an all-empty region examines every cell
        let mut pram = Pram::new(8);
        assert!(!pram.global_or_step(0, 8));
        assert_eq!(pram.trace().step_stats()[0].total_reads, 8);
    }

    #[test]
    fn take_trace_resets_but_preserves_memory() {
        let mut pram = Pram::new(4);
        pram.step(|s| s.par_for(0..4, |p, ctx| ctx.write(p, p as u64)));
        let t = pram.take_trace();
        assert_eq!(t.num_steps(), 1);
        assert_eq!(pram.trace().num_steps(), 0);
        assert_eq!(pram.memory().peek(3), 3);
        assert_eq!(pram.steps_executed(), 1);
    }

    #[test]
    fn alloc_and_release_behave_like_a_stack() {
        let mut pram = Pram::new(8);
        let a = pram.alloc(4);
        assert_eq!(a, 8);
        let b = pram.alloc(2);
        assert_eq!(b, 12);
        assert_eq!(pram.heap_top(), 14);
        pram.release_to(b);
        let c = pram.alloc(3);
        assert_eq!(c, 12);
        // freshly allocated cells are EMPTY even when reused
        assert!(pram.memory().dump(c, 3).iter().all(|&v| v == EMPTY));
        pram.release_to(a);
        assert_eq!(pram.heap_top(), 8);
        // ensure_memory pushes the high-water mark
        pram.ensure_memory(32);
        assert_eq!(pram.alloc(1), 32);
    }

    #[test]
    fn seq_step_reads_own_writes_within_the_step() {
        let mut pram = Pram::new(8);
        let observed = pram.seq_step(|ctx| {
            ctx.write(3, 41);
            let fresh = ctx.read(3);
            ctx.write(3, fresh + 1);
            ctx.read(3)
        });
        assert_eq!(observed, 42, "sequential reads must see same-step writes");
        assert_eq!(pram.memory().peek(3), 42);
        assert_eq!(pram.steps_executed(), 1);
    }

    #[test]
    fn seq_step_is_charged_as_one_serial_processor() {
        let mut pram = Pram::new(8);
        pram.seq_step(|ctx| {
            for i in 0..4 {
                let v = ctx.read(i);
                ctx.write(i, v.wrapping_add(1));
            }
            ctx.compute(2);
        });
        let s = pram.trace().step_stats()[0];
        assert_eq!(s.active_procs, 1);
        assert_eq!(s.total_reads, 4);
        assert_eq!(s.total_writes, 4);
        assert_eq!(s.total_computes, 2);
        assert_eq!(s.max_ops_per_proc, 10);
        assert_eq!(s.max_read_contention, 1);
        assert_eq!(pram.trace().time(CostModel::Qrqw), 10);
    }

    #[test]
    fn seq_step_draws_from_the_processor_zero_stream() {
        // A seq_step at step index t must draw the same numbers as processor
        // 0 of a parallel step at index t (the cross-backend RNG contract).
        let mut a = Pram::with_seed(8, 9);
        let seq_draw = a.seq_step(|ctx| ctx.random_index(1_000_000));
        let mut b = Pram::with_seed(8, 9);
        let par_draw = b.step(|s| s.par_map(0..1, |_p, ctx| ctx.random_index(1_000_000)))[0];
        assert_eq!(seq_draw, par_draw);
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let run = |seed| {
            let mut pram = Pram::with_seed(64, seed);
            pram.step(|s| {
                s.par_for(0..64, |p, ctx| {
                    let target = ctx.random_index(64);
                    ctx.write(target, p as u64);
                });
            });
            pram.memory().dump(0, 64)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
