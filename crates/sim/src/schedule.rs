//! Processor allocation and machine-emulation cost helpers.
//!
//! These functions implement the *analytic* side of the paper's scheduling
//! results: Brent's principle as adapted to the QRQW work–time framework
//! (Theorem 2.3), the geometric-decaying allocation theorem (Theorem 2.4),
//! the L-spawning allocation theorem driven by load balancing
//! (Theorem 3.6 / Corollaries 3.7–3.8), and the BSP emulation of
//! Theorem 1.1.  The *operational* load-balancing algorithm that realises
//! these schedules lives in `qrqw-core::load_balancing`.

/// Brent-scheduled running time (Theorem 2.3): an algorithm in the QRQW
/// work–time presentation with `work` operations and `time` (sum of per-step
/// maximum contention) runs in at most `work/p + time` on `p` processors,
/// assuming processor allocation is free.
pub fn brent_time(work: u64, time: u64, p: u64) -> u64 {
    assert!(p > 0, "need at least one processor");
    work.div_ceil(p) + time
}

/// Emulation time of a `p`-processor QRQW PRAM algorithm running in time `t`
/// on a `(p / lg p)`-component standard BSP (Theorem 1.1): `O(t · lg p)`.
pub fn bsp_emulation_time(t: u64, p: u64) -> u64 {
    assert!(p > 1, "need at least two processors for the BSP emulation");
    let lg_p = (64 - (p - 1).leading_zeros()) as u64;
    t * lg_p.max(1)
}

/// `⌈lg x⌉` for `x ≥ 1` (0 for `x ≤ 1`), the integer log used throughout.
pub fn ceil_lg(x: u64) -> u64 {
    if x <= 1 {
        0
    } else {
        (64 - (x - 1).leading_zeros()) as u64
    }
}

/// `⌊√(lg n)⌋·`-style term used in the paper's bounds: returns
/// `⌈√(ceil_lg(n))⌉`, the `√lg n` factor coming from linear compaction.
pub fn sqrt_lg(n: u64) -> u64 {
    (ceil_lg(n) as f64).sqrt().ceil() as u64
}

/// `⌈lg lg x⌉` (0 for `x ≤ 2`).
pub fn lg_lg(x: u64) -> u64 {
    ceil_lg(ceil_lg(x).max(1))
}

/// The iterated logarithm `lg* x`.
pub fn log_star(mut x: u64) -> u64 {
    let mut i = 0;
    while x > 2 {
        x = ceil_lg(x);
        i += 1;
    }
    i
}

/// Result of checking whether a work-load sequence is geometric-decaying in
/// the sense of Theorem 2.4 (bounded above by a decreasing geometric
/// series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricDecayCheck {
    /// True if the sequence is bounded by `w_1 · ratio^{i-1}` for the fitted
    /// ratio below.
    pub is_geometric_decaying: bool,
    /// The smallest ratio `< 1` that upper-bounds successive quotients, or
    /// 1.0 if the sequence is not decaying.
    pub fitted_ratio: f64,
    /// Total work of the sequence.
    pub total_work: u64,
}

/// Checks the geometric-decay property of a per-step work-load sequence.
pub fn check_geometric_decay(workloads: &[u64]) -> GeometricDecayCheck {
    let total_work: u64 = workloads.iter().sum();
    if workloads.len() <= 1 {
        return GeometricDecayCheck {
            is_geometric_decaying: true,
            fitted_ratio: 0.5,
            total_work,
        };
    }
    let mut worst_ratio: f64 = 0.0;
    for w in workloads.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a == 0 {
            if b > 0 {
                worst_ratio = f64::INFINITY;
            }
            continue;
        }
        worst_ratio = worst_ratio.max(b as f64 / a as f64);
    }
    GeometricDecayCheck {
        is_geometric_decaying: worst_ratio < 1.0,
        fitted_ratio: if worst_ratio < 1.0 { worst_ratio } else { 1.0 },
        total_work,
    }
}

/// Number of processors on which a geometric-decaying algorithm with work
/// `n` and work–time `t` can be implemented in `O(n/p)` time w.h.p.
/// (Theorem 2.4): `p = Θ(n / (t + √(lg n)·lg lg n))`.
pub fn geometric_decaying_processors(n: u64, t: u64) -> u64 {
    let denom = t + sqrt_lg(n) * lg_lg(n).max(1);
    (n / denom.max(1)).max(1)
}

/// Description of an execution in the L-spawning model (Section 3.3): per
/// parallel step, the predicted work-load bound `n_i`, plus the spawning
/// factor `L`.
#[derive(Debug, Clone)]
pub struct SpawningProfile {
    /// Predicted per-step work-load bounds `n_i` (each task may spawn at
    /// most `L-1` new tasks per step, so `n_{i+1} ≤ L · n_i` must hold).
    pub predicted_loads: Vec<u64>,
    /// The spawning factor `L`.
    pub spawn_factor: u64,
}

impl SpawningProfile {
    /// Whether the profile is *predicted* in the sense of Section 3.3:
    /// `n_{i+1} ≤ L · n_i` for all steps.
    pub fn is_predicted(&self) -> bool {
        self.predicted_loads
            .windows(2)
            .all(|w| w[1] <= self.spawn_factor.saturating_mul(w[0].max(1)))
    }

    /// Total predicted work `Σ n_i`.
    pub fn total_work(&self) -> u64 {
        self.predicted_loads.iter().sum()
    }
}

/// Number of processors on which a *predicted* L-spawning algorithm with
/// work `n`, work–time `t` and `t'` parallel steps can be implemented in
/// `O(n/p)` time w.h.p. (Corollary 3.7):
/// `p = Θ(n / (t + t'·√(lg n)·lg lg L + t'·lg L))`.
pub fn l_spawning_processors(n: u64, t: u64, t_prime: u64, spawn_factor: u64) -> u64 {
    let lb = load_balancing_time_bound(n, spawn_factor);
    let denom = t + t_prime.saturating_mul(lb);
    (n / denom.max(1)).max(1)
}

/// The paper's load-balancing time bound `Θ(√(lg n)·lg lg L + lg L)`
/// (Theorem 3.4), used by the L-spawning schedule.
pub fn load_balancing_time_bound(n: u64, max_load: u64) -> u64 {
    sqrt_lg(n) * lg_lg(max_load).max(1) + ceil_lg(max_load)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brent_matches_work_over_p_plus_time() {
        assert_eq!(brent_time(1000, 10, 100), 20);
        assert_eq!(brent_time(1000, 10, 1), 1010);
        assert_eq!(brent_time(1001, 10, 100), 21);
    }

    #[test]
    fn bsp_is_t_log_p() {
        assert_eq!(bsp_emulation_time(5, 1024), 50);
        assert_eq!(bsp_emulation_time(1, 2), 1);
    }

    #[test]
    fn integer_log_helpers() {
        assert_eq!(ceil_lg(1), 0);
        assert_eq!(ceil_lg(2), 1);
        assert_eq!(ceil_lg(3), 2);
        assert_eq!(ceil_lg(1024), 10);
        assert_eq!(ceil_lg(1025), 11);
        assert_eq!(sqrt_lg(1 << 16), 4);
        assert_eq!(lg_lg(1 << 16), 4);
        assert_eq!(log_star(2), 0);
        assert_eq!(log_star(16), 2);
        assert_eq!(log_star(65536), 3);
        assert_eq!(log_star(u64::MAX), 4);
    }

    #[test]
    fn geometric_decay_detection() {
        let decaying = [1000u64, 400, 150, 60, 20];
        let check = check_geometric_decay(&decaying);
        assert!(check.is_geometric_decaying);
        assert!(check.fitted_ratio < 1.0);
        assert_eq!(check.total_work, 1630);

        let flat = [100u64, 100, 100];
        assert!(!check_geometric_decay(&flat).is_geometric_decaying);

        let growing = [10u64, 20];
        assert!(!check_geometric_decay(&growing).is_geometric_decaying);

        assert!(check_geometric_decay(&[]).is_geometric_decaying);
    }

    #[test]
    fn geometric_decaying_processor_bound_is_sublinear() {
        let n = 1 << 20;
        let p = geometric_decaying_processors(n, 10);
        assert!(p > 1);
        assert!(p < n);
    }

    #[test]
    fn spawning_profile_prediction() {
        let ok = SpawningProfile {
            predicted_loads: vec![8, 16, 32, 16],
            spawn_factor: 2,
        };
        assert!(ok.is_predicted());
        assert_eq!(ok.total_work(), 72);

        let bad = SpawningProfile {
            predicted_loads: vec![8, 32],
            spawn_factor: 2,
        };
        assert!(!bad.is_predicted());
    }

    #[test]
    fn l_spawning_processors_shrink_with_spawn_factor() {
        let n = 1 << 20;
        let p_small_l = l_spawning_processors(n, 32, 8, 2);
        let p_big_l = l_spawning_processors(n, 32, 8, 1 << 16);
        assert!(p_small_l >= p_big_l);
        assert!(p_big_l >= 1);
    }

    #[test]
    fn load_balancing_bound_grows_with_l() {
        let n = 1 << 16;
        assert!(load_balancing_time_bound(n, 4) < load_balancing_time_bound(n, 1 << 12));
    }
}
