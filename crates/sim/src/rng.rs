//! Deterministic per-processor randomness.
//!
//! Every virtual processor in every step gets its own random stream derived
//! from `(master seed, step index, processor id)` via a SplitMix64-style
//! mixer.  This makes simulated executions fully reproducible (and
//! insensitive to the order in which rayon schedules the virtual
//! processors), while still giving the independent random choices the
//! paper's "Las Vegas" analyses assume.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the deterministic random generator for processor `proc` in step
/// `step` of a run seeded with `seed`.
pub fn proc_rng(seed: u64, step: u64, proc: u64) -> SmallRng {
    let s0 = mix64(seed ^ mix64(step));
    let s1 = mix64(s0 ^ mix64(proc.wrapping_add(0xA5A5_A5A5_A5A5_A5A5)));
    SmallRng::seed_from_u64(s1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_coordinates_give_same_stream() {
        let mut a = proc_rng(1, 2, 3);
        let mut b = proc_rng(1, 2, 3);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_processors_give_different_streams() {
        let mut a = proc_rng(1, 2, 3);
        let mut b = proc_rng(1, 2, 4);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_steps_give_different_streams() {
        let mut a = proc_rng(1, 2, 3);
        let mut b = proc_rng(1, 3, 3);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn mix64_is_not_identity_and_spreads_small_inputs() {
        let outs: Vec<u64> = (0..64u64).map(mix64).collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "small inputs must not collide");
    }
}
