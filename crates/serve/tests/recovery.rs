//! Fault-tolerance integration tests: abnormal batcher death, admission
//! control (queue bound + deadlines), and the ticket timeout API — the
//! paths `tests/shutdown.rs` (graceful) and `tests/parity.rs`
//! (determinism) do not cover.

use std::time::Duration;

use qrqw_exec::StepPool;
use qrqw_serve::{BatchPolicy, Fault, Reply, Request, Server, ServiceConfig, ServiceError};

fn spawn(policy: BatchPolicy) -> Server {
    Server::spawn_with_pool(
        ServiceConfig {
            seed: 11,
            num_counters: 4,
            task_procs: 4,
            hash_capacity: 64,
        },
        policy,
        StepPool::with_threads(2),
    )
}

/// Generous bound for waits that must complete: long enough for any CI
/// machine, short enough that a wedged ticket fails the test rather than
/// hanging it.
const WEDGE: Duration = Duration::from_secs(30);

#[test]
fn a_crashed_batcher_answers_every_outstanding_ticket() {
    // A large batch cap and a long linger: the crash request and all its
    // companions ride one open batch, and more requests queue behind it,
    // so the batcher dies holding as much outstanding work as possible.
    let server = spawn(BatchPolicy::with_max_batch(64).linger(Duration::from_millis(300)));
    let handle = server.handle();
    let mut tickets = Vec::new();
    for key in 0..10u64 {
        tickets.push(handle.submit(Request::HashInsert { key }));
    }
    let crash = handle.submit(Request::Fault(Fault::Crash));
    for key in 10..20u64 {
        tickets.push(handle.submit(Request::HashInsert { key }));
    }
    // The thread dies abnormally; shutdown() would propagate the panic, so
    // drop the server (its Drop ignores the join error).
    drop(server);
    // The crash request always rides the dying batch: it must resolve to
    // the exit guard's answer, never wedge.
    assert_eq!(
        crash.wait_timeout(WEDGE),
        Some(Err(ServiceError::ServerGone)),
        "the crash ticket wedged or got a bogus reply"
    );
    // Every other ticket must resolve too — no client wedges on the dead
    // server.  (A ticket whose batch raced ahead of the crash may hold a
    // real reply; everything else is answered by an exit guard.)
    for (i, ticket) in tickets.into_iter().enumerate() {
        let resp = ticket
            .wait_timeout(WEDGE)
            .unwrap_or_else(|| panic!("ticket {i} wedged on the crashed batcher"));
        assert!(
            matches!(
                resp,
                Ok(Reply::Inserted(_))
                    | Err(ServiceError::ServerGone)
                    | Err(ServiceError::ShuttingDown)
            ),
            "ticket {i} got {resp:?} from a crashed server"
        );
    }
    // Late submits resolve immediately too.
    assert!(matches!(
        handle.call(Request::TaskSteal),
        Err(ServiceError::ServerGone) | Err(ServiceError::ShuttingDown)
    ));
}

#[test]
fn the_queue_bound_sheds_submits_past_the_limit() {
    // queue_max 2 with a long linger: the batcher parks the first request
    // in its open batch (still outstanding — the envelope lives until
    // application), so the 3rd..6th submits all find the queue full.
    let server = spawn(
        BatchPolicy::with_max_batch(100)
            .linger(Duration::from_millis(500))
            .queue_max(2),
    );
    let handle = server.handle();
    let admitted: Vec<_> = (0..2u64)
        .map(|key| handle.submit(Request::HashInsert { key }))
        .collect();
    let mut shed = Vec::new();
    for key in 2..6u64 {
        shed.push(handle.submit(Request::HashInsert { key }));
    }
    for (i, ticket) in shed.into_iter().enumerate() {
        assert_eq!(
            ticket.wait_timeout(WEDGE),
            Some(Err(ServiceError::Overloaded)),
            "over-bound submit {i} was not shed"
        );
    }
    for ticket in admitted {
        assert_eq!(ticket.wait_timeout(WEDGE), Some(Ok(Reply::Inserted(true))));
    }
    let (state, stats) = server.shutdown();
    assert_eq!(stats.overload_shed, 4);
    assert_eq!(stats.requests, 2);
    // Shed requests definitely did not take effect.
    assert_eq!(state.digest().hash_keys, vec![0, 1]);
}

#[test]
fn an_expired_deadline_is_answered_without_touching_the_machine() {
    // A long linger so the deadline (zero) is guaranteed stale by the time
    // the batcher applies the batch.
    let server = spawn(BatchPolicy::with_max_batch(8).linger(Duration::from_millis(50)));
    let handle = server.handle();
    let expired = handle.submit_with_deadline(Request::HashInsert { key: 1 }, Duration::ZERO);
    let fresh = handle.submit_with_deadline(Request::HashInsert { key: 2 }, WEDGE);
    let unbounded = handle.submit(Request::HashInsert { key: 3 });
    assert_eq!(
        expired.wait_timeout(WEDGE),
        Some(Err(ServiceError::DeadlineExceeded))
    );
    assert_eq!(fresh.wait_timeout(WEDGE), Some(Ok(Reply::Inserted(true))));
    assert_eq!(
        unbounded.wait_timeout(WEDGE),
        Some(Ok(Reply::Inserted(true)))
    );
    let (state, stats) = server.shutdown();
    assert_eq!(stats.deadline_shed, 1);
    // Only the undecayed requests reached the machine: the expired
    // insert's key is absent from the digest.
    assert_eq!(state.digest().hash_keys, vec![2, 3]);
    assert_eq!(stats.requests, 2);
}

#[test]
fn a_default_deadline_from_the_policy_applies_to_plain_submits() {
    // Policy-level deadline of zero microseconds is rejected by from_env,
    // but the builder allows it — and it expires every plain submit, which
    // is exactly what this test wants to observe deterministically.
    let server = spawn(
        BatchPolicy::with_max_batch(8)
            .linger(Duration::from_millis(20))
            .deadline(Duration::ZERO),
    );
    let handle = server.handle();
    assert_eq!(
        handle.call(Request::HashInsert { key: 9 }),
        Err(ServiceError::DeadlineExceeded)
    );
    // An explicit per-request deadline overrides the policy default.
    let t = handle.submit_with_deadline(Request::HashInsert { key: 9 }, WEDGE);
    assert_eq!(t.wait_timeout(WEDGE), Some(Ok(Reply::Inserted(true))));
    let (state, stats) = server.shutdown();
    assert_eq!(stats.deadline_shed, 1);
    assert_eq!(state.digest().hash_keys, vec![9]);
}

#[test]
fn wait_timeout_expires_while_the_batch_lingers_then_delivers() {
    // The batch lingers far longer than the client's patience: the first
    // wait times out, the ticket stays live, and a later wait delivers the
    // real response once the batch closes.
    let server = spawn(BatchPolicy::with_max_batch(100).linger(Duration::from_millis(200)));
    let handle = server.handle();
    let ticket = handle.submit(Request::CounterAdd {
        counter: 0,
        delta: 5,
    });
    assert_eq!(ticket.wait_timeout(Duration::from_millis(10)), None);
    assert_eq!(ticket.wait_timeout(WEDGE), Some(Ok(Reply::Counter(0))));
    let (state, _) = server.shutdown();
    assert_eq!(state.digest().counters[0], 5);
}

#[test]
fn recovery_keeps_serving_after_repeated_poisonings() {
    // Several poisoned batches in sequence: each is rolled back, bisected,
    // and the server keeps answering with correct state throughout.
    let server = spawn(BatchPolicy::with_max_batch(4).linger(Duration::from_millis(10)));
    let handle = server.handle();
    let mut expected_keys = Vec::new();
    for round in 0..3u64 {
        let key = 100 + round;
        let a = handle.submit(Request::HashInsert { key });
        let p = handle.submit(Request::Fault(Fault::Panic));
        assert_eq!(a.wait(), Ok(Reply::Inserted(true)));
        assert_eq!(p.wait(), Err(ServiceError::RequestPanicked));
        expected_keys.push(key);
    }
    let (state, stats) = server.shutdown();
    assert_eq!(stats.isolated_panics, 3);
    assert!(stats.panicked_batches >= 3);
    assert!(stats.snapshots >= stats.batches);
    assert_eq!(state.digest().hash_keys, expected_keys);
}
