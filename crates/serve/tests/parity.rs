//! Batch-vs-oneshot parity: the satellite that pins the service's
//! partition-invariance contract.
//!
//! A fixed request trace is (a) applied as **one** [`ServiceState`] batch
//! and (b) drained through a live [`Server`] under several batching
//! policies and machine thread counts.  Because replies are
//! trace-deterministic (see `qrqw_serve::state`), every configuration must
//! produce the identical response sequence, and the final [`StateDigest`]s
//! must be equal — which compares the counter region **bit-identically**
//! (raw dump, untouched cells still `EMPTY`), the task pool exactly, and
//! the hash table as its canonical sorted key set.  Hash *placement* cells
//! are the one observable allowed to differ (occupy-claim winners are
//! backend-defined), which is exactly why the digest canonicalizes them.

use std::time::Duration;

use qrqw_exec::StepPool;
use qrqw_serve::{
    BatchPolicy, Fault, Request, Response, Server, ServiceConfig, ServiceState, StateDigest,
    MAX_KEY,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn config() -> ServiceConfig {
    ServiceConfig {
        seed: 11,
        num_counters: 8,
        task_procs: 4,
        hash_capacity: 64, // small: the trace forces growth mid-stream
    }
}

/// A deterministic mixed trace: duplicate-heavy hash churn (inserts,
/// deletes, lookups over a small hot keyspace), hot counters, submit/steal
/// churn, invalid requests and injected (non-panic) faults.
fn trace(len: usize, seed: u64) -> Vec<Request> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| match rng.gen_range(0..13u64) {
            0..=2 => Request::HashInsert {
                key: rng.gen_range(0..300u64),
            },
            3..=4 => Request::HashLookup {
                key: rng.gen_range(0..300u64),
            },
            5 => Request::HashContains {
                key: rng.gen_range(0..300u64),
            },
            12 => Request::HashDelete {
                key: rng.gen_range(0..300u64),
            },
            6..=7 => Request::CounterAdd {
                counter: rng.gen_range(0..8u64) as usize,
                delta: rng.gen_range(1..10u64),
            },
            8 => Request::CounterRead {
                counter: rng.gen_range(0..8u64) as usize,
            },
            9 => Request::TaskSubmit {
                payload: rng.gen_range(0..1000u64),
            },
            10 => Request::TaskSteal,
            _ => match rng.gen_range(0..3u64) {
                0 => Request::HashInsert { key: MAX_KEY + 17 }, // out of range
                1 => Request::CounterAdd {
                    counter: 99,
                    delta: 1,
                },
                _ => Request::Fault(Fault::Error),
            },
        })
        .collect()
}

/// The whole trace as one batch on a directly-owned state.
fn oneshot(requests: &[Request], threads: usize) -> (Vec<Response>, StateDigest) {
    let mut state = ServiceState::with_pool(config(), StepPool::with_threads(threads));
    let (responses, _) = state.apply_batch(requests);
    (responses, state.digest())
}

/// The same trace drained through a live server: one submitter thread
/// preserves trace order in the queue, batch boundaries fall wherever the
/// policy cuts them.
fn served(requests: &[Request], batch_max: usize, threads: usize) -> (Vec<Response>, StateDigest) {
    let server = Server::spawn_with_pool(
        config(),
        BatchPolicy::with_max_batch(batch_max).linger(Duration::from_micros(50)),
        StepPool::with_threads(threads),
    );
    let handle = server.handle();
    let tickets: Vec<_> = requests.iter().map(|&r| handle.submit(r)).collect();
    let responses: Vec<Response> = tickets.into_iter().map(|t| t.wait()).collect();
    let (state, stats) = server.shutdown();
    assert_eq!(stats.requests, requests.len() as u64);
    assert!(stats.max_batch <= batch_max as u64, "policy cap violated");
    (responses, state.digest())
}

#[test]
fn every_batching_policy_matches_the_oneshot_reference() {
    let requests = trace(600, 42);
    let (want_resp, want_digest) = oneshot(&requests, 2);
    for batch_max in [1usize, 7, 64, 600] {
        let (resp, digest) = served(&requests, batch_max, 2);
        assert_eq!(
            resp, want_resp,
            "responses diverged at batch_max={batch_max}"
        );
        assert_eq!(
            digest, want_digest,
            "digest diverged at batch_max={batch_max}"
        );
    }
}

#[test]
fn thread_count_does_not_change_observables() {
    let requests = trace(400, 7);
    let (resp_1t, digest_1t) = oneshot(&requests, 1);
    let (resp_2t, digest_2t) = oneshot(&requests, 2);
    assert_eq!(resp_1t, resp_2t);
    assert_eq!(digest_1t, digest_2t);
    let (resp_srv, digest_srv) = served(&requests, 32, 1);
    assert_eq!(resp_srv, resp_1t);
    assert_eq!(digest_srv, digest_1t);
}

#[test]
fn recovery_parity_after_injected_panics_at_random_positions() {
    // The recovery-parity property: sprinkle `Fault::Panic` requests into a
    // mixed trace at seeded-random positions, drain it through live servers
    // across batch caps × thread counts, and the observables must equal the
    // oneshot application of the trace **with the panics removed** — bit
    // for bit in the counter region.  Rollback + bisection replay must make
    // a poisoned request literally indistinguishable from one that was
    // never submitted (apart from its own `RequestPanicked` reply).
    let mut requests = trace(500, 99);
    let mut rng = SmallRng::seed_from_u64(1234);
    let mut panic_at = std::collections::BTreeSet::new();
    while panic_at.len() < 12 {
        panic_at.insert(rng.gen_range(0..requests.len()));
    }
    for &i in &panic_at {
        requests[i] = Request::Fault(Fault::Panic);
    }
    let innocent: Vec<Request> = requests
        .iter()
        .copied()
        .filter(|r| *r != Request::Fault(Fault::Panic))
        .collect();
    let (want_resp, want_digest) = oneshot(&innocent, 2);
    for threads in [1usize, 2] {
        for batch_max in [1usize, 7, 64, 600] {
            let server = Server::spawn_with_pool(
                config(),
                BatchPolicy::with_max_batch(batch_max).linger(Duration::from_micros(50)),
                StepPool::with_threads(threads),
            );
            let handle = server.handle();
            let tickets: Vec<_> = requests.iter().map(|&r| handle.submit(r)).collect();
            let responses: Vec<Response> = tickets.into_iter().map(|t| t.wait()).collect();
            let (state, stats) = server.shutdown();
            // Exactly the injected panics were isolated; nothing else.
            assert_eq!(
                stats.isolated_panics,
                panic_at.len() as u64,
                "batch_max={batch_max} threads={threads}"
            );
            let mut innocent_resp = Vec::with_capacity(innocent.len());
            for (i, resp) in responses.into_iter().enumerate() {
                if panic_at.contains(&i) {
                    assert_eq!(
                        resp,
                        Err(qrqw_serve::ServiceError::RequestPanicked),
                        "panic at {i} got a non-panic reply (batch_max={batch_max})"
                    );
                } else {
                    innocent_resp.push(resp);
                }
            }
            assert_eq!(
                innocent_resp, want_resp,
                "innocent responses diverged at batch_max={batch_max} threads={threads}"
            );
            assert_eq!(
                state.digest(),
                want_digest,
                "digest diverged at batch_max={batch_max} threads={threads}"
            );
        }
    }
}

#[test]
fn counter_region_is_bit_identical_including_untouched_cells() {
    // Only counters 0 and 2 are touched: 1 and 3..8 must still read as the
    // machine's EMPTY in *both* digests — the raw-dump comparison is what
    // makes the parity claim about machine memory, not just about replies.
    let requests = vec![
        Request::CounterAdd {
            counter: 0,
            delta: 3,
        },
        Request::CounterRead { counter: 2 },
        Request::CounterAdd {
            counter: 0,
            delta: 4,
        },
    ];
    let (_, want) = oneshot(&requests, 2);
    let (_, got) = served(&requests, 1, 2);
    assert_eq!(got.counters, want.counters);
    assert_eq!(got.counters[0], 7);
    assert_eq!(got.counters[2], 0, "a read materializes its cell");
    assert_eq!(got.counters[1], qrqw_sim::EMPTY);
}

#[test]
fn delete_reinsert_churn_is_digest_identical_across_batch_boundaries() {
    // The tombstone regression pin: a delete-heavy cyclic churn trace
    // (every key is inserted, deleted, and reinserted repeatedly) must be
    // partition-invariant even though different batch cuts materialize
    // completely different tombstone histories on the machine — batch_max=1
    // writes a real tombstone for every delete, while one big batch nets
    // insert-delete pairs away into no machine op at all.
    let mut requests = Vec::new();
    for round in 0..6u64 {
        for key in 0..40u64 {
            requests.push(Request::HashInsert { key });
            if (key + round) % 3 != 0 {
                requests.push(Request::HashDelete { key });
            }
            requests.push(Request::HashLookup { key });
        }
    }
    let (want_resp, want_digest) = oneshot(&requests, 2);
    for batch_max in [1usize, 7, 64, requests.len()] {
        let (resp, digest) = served(&requests, batch_max, 2);
        assert_eq!(resp, want_resp, "replies diverged at batch_max={batch_max}");
        assert_eq!(
            digest, want_digest,
            "digest diverged at batch_max={batch_max}"
        );
    }
}

#[test]
fn sustained_deletes_purge_tombstones_via_growth() {
    // Long-running churn must not accumulate tombstones without bound: the
    // table's growth/purge rebuilds keep them bounded by a quarter of the
    // capacity (see `qrqw_core::open_table`).
    let mut state = ServiceState::with_pool(config(), StepPool::with_threads(2));
    for round in 0..20u64 {
        let batch: Vec<Request> = (0..50u64)
            .flat_map(|k| {
                let key = round * 50 + k;
                [Request::HashInsert { key }, Request::HashDelete { key }]
            })
            .chain((0..5u64).map(|k| Request::HashInsert {
                key: 10_000 + round * 5 + k,
            }))
            .collect();
        // Apply insert/delete pairs in separate batches so the deletes
        // issue real machine tombstone writes rather than netting away.
        for chunk in batch.chunks(50) {
            let _ = state.apply_batch(chunk);
        }
        assert!(
            4 * state.hash_tombstones() <= state.hash_capacity(),
            "tombstone load invariant broken at round {round}: {} tombstones, cap {}",
            state.hash_tombstones(),
            state.hash_capacity()
        );
    }
    assert_eq!(state.hash_len(), 100);
}
