//! Graceful shutdown and error-path behaviour: the batcher must survive
//! client disconnects and poisoned requests, and a draining shutdown must
//! answer everything already submitted.

use std::time::Duration;

use qrqw_exec::StepPool;
use qrqw_serve::{BatchPolicy, Fault, Reply, Request, Server, ServiceConfig, ServiceError};

fn spawn(batch_max: usize, linger: Duration) -> Server {
    Server::spawn_with_pool(
        ServiceConfig {
            seed: 3,
            num_counters: 8,
            task_procs: 4,
            hash_capacity: 64,
        },
        BatchPolicy::with_max_batch(batch_max).linger(linger),
        StepPool::with_threads(2),
    )
}

#[test]
fn dropped_tickets_do_not_wedge_the_batcher() {
    let server = spawn(4, Duration::from_micros(50));
    let handle = server.handle();
    // Clients that disconnect mid-batch: submit and immediately drop the
    // ticket.  The batcher completes into the abandoned slots harmlessly.
    for key in 0..20u64 {
        drop(handle.submit(Request::HashInsert { key }));
    }
    // The server is still serving.
    assert_eq!(
        handle.call(Request::HashLookup { key: 5 }),
        Ok(Reply::Found(true))
    );
    let (state, stats) = server.shutdown();
    assert_eq!(stats.requests, 21);
    assert_eq!(stats.panicked_batches, 0);
    assert_eq!(state.digest().hash_keys, (0..20).collect::<Vec<u64>>());
}

#[test]
fn an_injected_error_fails_only_its_own_request() {
    let server = spawn(8, Duration::from_millis(20));
    let handle = server.handle();
    // All three land in one batch (the linger is generous): the fault must
    // not leak into its batch-mates.
    let a = handle.submit(Request::HashInsert { key: 1 });
    let b = handle.submit(Request::Fault(Fault::Error));
    let c = handle.submit(Request::HashInsert { key: 2 });
    assert_eq!(a.wait(), Ok(Reply::Inserted(true)));
    assert_eq!(b.wait(), Err(ServiceError::Injected));
    assert_eq!(c.wait(), Ok(Reply::Inserted(true)));
    let (state, stats) = server.shutdown();
    assert_eq!(stats.panicked_batches, 0);
    assert_eq!(state.digest().hash_keys, vec![1, 2]);
}

#[test]
fn a_poisoned_batch_fails_only_the_poison_and_the_server_keeps_serving() {
    let server = spawn(8, Duration::from_millis(20));
    let handle = server.handle();
    let a = handle.submit(Request::HashInsert { key: 5 });
    let b = handle.submit(Request::Fault(Fault::Panic));
    let c = handle.submit(Request::CounterAdd {
        counter: 0,
        delta: 1,
    });
    // The batch is rolled back and re-applied by bisection: only the
    // poison fails, its batch-mates get their real answers...
    assert_eq!(a.wait(), Ok(Reply::Inserted(true)));
    assert_eq!(b.wait(), Err(ServiceError::RequestPanicked));
    assert_eq!(c.wait(), Ok(Reply::Counter(0)));
    // ...and the batcher is alive and consistent afterwards.
    assert_eq!(
        handle.call(Request::HashInsert { key: 7 }),
        Ok(Reply::Inserted(true))
    );
    let (state, stats) = server.shutdown();
    assert_eq!(stats.panicked_batches, 1);
    assert_eq!(stats.isolated_panics, 1);
    let digest = state.digest();
    // The innocents' effects survive; the panicked request's do not.
    assert_eq!(digest.hash_keys, vec![5, 7]);
    assert_eq!(digest.counters[0], 1);
}

#[test]
fn shutdown_drains_and_answers_everything_already_submitted() {
    // A tiny batch cap and a long linger: the queue backs up far beyond
    // what the batcher has started working on, then shutdown must drain
    // and answer all of it.
    let server = spawn(2, Duration::from_millis(200));
    let handle = server.handle();
    let tickets: Vec<_> = (0..30u64)
        .map(|key| handle.submit(Request::HashInsert { key }))
        .collect();
    let (state, stats) = server.shutdown();
    for (key, ticket) in tickets.into_iter().enumerate() {
        assert_eq!(
            ticket.wait(),
            Ok(Reply::Inserted(true)),
            "request {key} was not answered by the drain"
        );
    }
    assert_eq!(stats.requests, 30);
    assert_eq!(state.digest().hash_keys, (0..30).collect::<Vec<u64>>());
    // New submissions after shutdown resolve immediately with the error.
    assert_eq!(
        handle.call(Request::TaskSteal),
        Err(ServiceError::ShuttingDown)
    );
}

#[test]
fn a_panic_during_the_drain_does_not_stop_the_drain() {
    let server = spawn(3, Duration::from_millis(200));
    let handle = server.handle();
    let mut tickets = Vec::new();
    for key in 0..5u64 {
        tickets.push(handle.submit(Request::HashInsert { key }));
    }
    tickets.push(handle.submit(Request::Fault(Fault::Panic)));
    for key in 5..10u64 {
        tickets.push(handle.submit(Request::HashInsert { key }));
    }
    let (state, stats) = server.shutdown();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    // Every ticket resolved: the drain survived the poisoned batch.
    assert_eq!(responses.len(), 11);
    assert!(stats.panicked_batches >= 1);
    assert_eq!(stats.isolated_panics, 1);
    let ok = responses
        .iter()
        .filter(|r| **r == Ok(Reply::Inserted(true)))
        .count();
    let poisoned = responses
        .iter()
        .filter(|r| **r == Err(ServiceError::RequestPanicked))
        .count();
    // Bisection replay isolates the fault exactly: all 10 inserts succeed,
    // only the poison itself fails.
    assert_eq!(ok, 10, "an innocent insert was lost: {responses:?}");
    assert_eq!(poisoned, 1, "only the poison may fail: {responses:?}");
    assert_eq!(state.digest().hash_keys, (0..10).collect::<Vec<u64>>());
}
