//! The serving runtime: submission queue, batcher loop, oneshot slots.
//!
//! No async runtime exists in this workspace (and none may be added), so
//! the service is built from `std` threads and channels:
//!
//! * clients submit over a shared [`std::sync::mpsc`] channel (the
//!   **submission queue**);
//! * a single **batcher thread** owns the [`ServiceState`] and loops:
//!   block for the first request, keep pulling until the
//!   [`BatchPolicy`] closes the batch (size cap hit, or linger expired
//!   since the batch's first request), apply the batch, complete every
//!   request's slot;
//! * each request carries an `Arc`'d **oneshot slot** (mutex + condvar);
//!   the client half is a [`Ticket`] that blocks on [`Ticket::wait`].
//!
//! # Failure containment
//!
//! The batcher applies each batch under [`std::panic::catch_unwind`].  A
//! panicking batch ([`crate::request::Fault::Panic`], or any future bug in
//! decode) answers *every* request in the batch with
//! [`ServiceError::BatchPanicked`] and the loop keeps serving.  The
//! `AssertUnwindSafe` is justified by construction: [`ServiceState`] only
//! panics during the host-side decode walk, *before* any machine step
//! runs, so the machine arena is never torn mid-step (host-side task
//! bookkeeping from earlier requests in the panicked batch may persist —
//! exactly what `BatchPanicked`'s "may or may not have taken effect"
//! contract says).
//!
//! A client that drops its [`Ticket`] (disconnects mid-batch) is harmless:
//! completion writes into the shared slot and nobody reads it; the batcher
//! never blocks on clients.
//!
//! # Shutdown
//!
//! A shutdown message (`Msg::Shutdown`) makes the batcher drain the queue
//! — every request
//! already submitted is applied (in policy-sized batches) and answered —
//! then exit, returning the final state and cumulative stats to whoever
//! joins it (see `server.rs`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::metrics::ServiceStats;
use crate::policy::BatchPolicy;
use crate::request::{Request, Response, ServiceError};
use crate::state::ServiceState;

/// One-shot completion slot shared between a request's [`Ticket`] and the
/// batcher.
#[derive(Debug, Default)]
pub(crate) struct ResponseSlot {
    inner: Mutex<Option<Response>>,
    ready: Condvar,
}

impl ResponseSlot {
    pub(crate) fn complete(&self, response: Response) {
        let mut slot = self.inner.lock().unwrap();
        if slot.is_none() {
            *slot = Some(response);
        }
        self.ready.notify_all();
    }
}

/// The client half of a submitted request: blocks until the batcher
/// completes the request's slot.  Dropping a ticket abandons the response
/// without affecting the server.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    pub(crate) fn new(slot: Arc<ResponseSlot>) -> Self {
        Ticket { slot }
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> Response {
        let mut guard = self.slot.inner.lock().unwrap();
        loop {
            if let Some(resp) = guard.take() {
                return resp;
            }
            guard = self.slot.ready.wait(guard).unwrap();
        }
    }

    /// Non-blocking poll; `Some` once the batch carrying this request has
    /// been applied.
    pub fn try_wait(&self) -> Option<Response> {
        self.slot.inner.lock().unwrap().take()
    }
}

/// A request travelling the submission queue with its completion slot.
#[derive(Debug)]
pub(crate) struct Envelope {
    pub(crate) request: Request,
    pub(crate) slot: Arc<ResponseSlot>,
}

/// Submission-queue message.
#[derive(Debug)]
pub(crate) enum Msg {
    /// A client request.
    Submit(Envelope),
    /// Drain the queue, answer everything, and exit.
    Shutdown,
}

/// Runs the batcher loop to completion.  Returns the final state and the
/// cumulative stats; called on the dedicated batcher thread.
pub(crate) fn run_batcher(
    mut state: ServiceState,
    policy: BatchPolicy,
    rx: Receiver<Msg>,
) -> (ServiceState, ServiceStats) {
    let policy = policy.normalized();
    let mut stats = ServiceStats::default();
    'serve: loop {
        // Block for the batch's first request.
        let first = match rx.recv() {
            Ok(Msg::Submit(env)) => env,
            Ok(Msg::Shutdown) | Err(_) => break 'serve,
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + policy.linger;
        // Fill until the policy closes the batch.
        let mut shutting_down = false;
        while batch.len() < policy.max_batch {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match rx.recv_timeout(left) {
                Ok(Msg::Submit(env)) => batch.push(env),
                Ok(Msg::Shutdown) => {
                    shutting_down = true;
                    break;
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    shutting_down = true;
                    break;
                }
            }
        }
        apply_and_complete(&mut state, &mut stats, batch);
        if shutting_down {
            break 'serve;
        }
    }
    // Drain: answer everything already in the queue, then exit.
    let mut leftover = Vec::new();
    loop {
        match rx.try_recv() {
            Ok(Msg::Submit(env)) => {
                leftover.push(env);
                if leftover.len() == policy.max_batch {
                    apply_and_complete(&mut state, &mut stats, std::mem::take(&mut leftover));
                }
            }
            Ok(Msg::Shutdown) => {}
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
        }
    }
    if !leftover.is_empty() {
        apply_and_complete(&mut state, &mut stats, leftover);
    }
    (state, stats)
}

/// Applies one batch under panic containment and completes every slot.
fn apply_and_complete(state: &mut ServiceState, stats: &mut ServiceStats, batch: Vec<Envelope>) {
    let requests: Vec<Request> = batch.iter().map(|env| env.request).collect();
    match catch_unwind(AssertUnwindSafe(|| state.apply_batch(&requests))) {
        Ok((responses, cost)) => {
            stats.record_batch(batch.len(), cost);
            debug_assert_eq!(responses.len(), batch.len());
            for (env, resp) in batch.into_iter().zip(responses) {
                env.slot.complete(resp);
            }
        }
        Err(_) => {
            stats.panicked_batches += 1;
            stats.batches += 1;
            stats.requests += batch.len() as u64;
            for env in batch {
                env.slot.complete(Err(ServiceError::BatchPanicked));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_returns_a_completed_response() {
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket::new(Arc::clone(&slot));
        assert!(ticket.try_wait().is_none());
        slot.complete(Err(ServiceError::Injected));
        assert_eq!(ticket.wait(), Err(ServiceError::Injected));
    }

    #[test]
    fn first_completion_wins() {
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket::new(Arc::clone(&slot));
        slot.complete(Err(ServiceError::Injected));
        slot.complete(Err(ServiceError::ShuttingDown));
        assert_eq!(ticket.wait(), Err(ServiceError::Injected));
    }

    #[test]
    fn ticket_wait_blocks_until_completion() {
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket::new(Arc::clone(&slot));
        let completer = Arc::clone(&slot);
        let t = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        completer.complete(Err(ServiceError::Injected));
        assert_eq!(t.join().unwrap(), Err(ServiceError::Injected));
    }
}
