//! The serving runtime: submission queue, batcher loop, oneshot slots.
//!
//! No async runtime exists in this workspace (and none may be added), so
//! the service is built from `std` threads and channels:
//!
//! * clients submit over a shared [`std::sync::mpsc`] channel (the
//!   **submission queue**), bounded by the admission control in
//!   `server.rs` (see [`crate::BatchPolicy::queue_max`]);
//! * a single **batcher thread** owns the [`ServiceState`] and loops:
//!   block for the first request, keep pulling until the
//!   [`BatchPolicy`] closes the batch (size cap hit, or linger expired
//!   since the batch's first request), apply the batch, complete every
//!   request's slot;
//! * each request carries an `Arc`'d **oneshot slot** (mutex + condvar);
//!   the client half is a [`Ticket`] that blocks on [`Ticket::wait`]
//!   (or bounds its own latency with [`Ticket::wait_timeout`]).
//!
//! # Failure containment
//!
//! Before applying a batch, the batcher takes a [`ServiceCheckpoint`] —
//! a machine snapshot plus the host-side tables (see
//! [`ServiceState::checkpoint_into`]).  The batch then runs under
//! [`std::panic::catch_unwind`].  If it panics
//! ([`crate::request::Fault::Panic`], or any future bug in decode), the
//! batcher **rolls the state back** to the checkpoint and re-applies the
//! batch by **bisection replay**: halves are re-applied in submission
//! order (trace determinism makes sub-batch replies identical to the
//! original batch's would-have-been replies), recursing on any half that
//! panics until each poisoned request stands alone.  The poisoned
//! request(s) are answered [`ServiceError::RequestPanicked`] — and
//! *definitely did not* take effect — while every innocent request in the
//! batch receives its real answer, exactly as if the poison had never been
//! submitted.  The `AssertUnwindSafe` is justified by the rollback: a
//! torn `&mut ServiceState` is never observed, because the only thing done
//! with it after a panic is restoring the checkpoint.
//!
//! A client that drops its [`Ticket`] (disconnects mid-batch) is harmless:
//! completion writes into the shared slot and nobody reads it; the batcher
//! never blocks on clients.
//!
//! # Admission control
//!
//! A request whose deadline (see [`crate::BatchPolicy::deadline`] and
//! `ServiceHandle::submit_with_deadline`) has already expired when the
//! batcher reaches it is answered [`ServiceError::DeadlineExceeded`]
//! without touching the machine — it is not part of the applied trace.
//! Queue-bound shedding ([`ServiceError::Overloaded`]) happens earlier, at
//! submit time, in `server.rs`.
//!
//! # The exit guard
//!
//! If the batcher dies *outside* the containment above (abnormal death —
//! e.g. the injected [`crate::request::Fault::Crash`], which deliberately
//! panics before the checkpoint), every `Envelope` still alive (in the
//! dying batch, or queued behind it) is dropped during unwinding, and
//! `Envelope`'s `Drop` completes its slot with
//! [`ServiceError::ServerGone`].  No [`Ticket::wait`] ever wedges on a
//! dead server.
//!
//! # Shutdown
//!
//! A shutdown message (`Msg::Shutdown`) makes the batcher drain the queue
//! — every request
//! already submitted is applied (in policy-sized batches) and answered —
//! then exit, returning the final state and cumulative stats to whoever
//! joins it (see `server.rs`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use qrqw_exec::BatchCost;

use crate::metrics::ServiceStats;
use crate::policy::BatchPolicy;
use crate::request::{Fault, Request, Response, ServiceError};
use crate::state::{ServiceCheckpoint, ServiceState};

/// Completion state of a slot: the response (until the client takes it)
/// and a latch recording that *some* completion happened, so late
/// completers (e.g. the exit guard) can tell a consumed slot from a
/// never-completed one.
#[derive(Debug, Default)]
struct SlotState {
    response: Option<Response>,
    completed: bool,
}

/// One-shot completion slot shared between a request's [`Ticket`] and the
/// batcher.
#[derive(Debug, Default)]
pub(crate) struct ResponseSlot {
    inner: Mutex<SlotState>,
    ready: Condvar,
}

impl ResponseSlot {
    /// First completion wins; later calls (including the exit guard's
    /// `ServerGone`) are no-ops even after the client consumed the value.
    pub(crate) fn complete(&self, response: Response) {
        let mut slot = self.inner.lock().unwrap();
        if !slot.completed {
            slot.completed = true;
            slot.response = Some(response);
            self.ready.notify_all();
        }
    }
}

/// The client half of a submitted request: blocks until the batcher
/// completes the request's slot.  Dropping a ticket abandons the response
/// without affecting the server.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    pub(crate) fn new(slot: Arc<ResponseSlot>) -> Self {
        Ticket { slot }
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> Response {
        let mut guard = self.slot.inner.lock().unwrap();
        loop {
            if let Some(resp) = guard.response.take() {
                return resp;
            }
            guard = self.slot.ready.wait(guard).unwrap();
        }
    }

    /// Blocks for at most `timeout`: `Some` with the response if it
    /// arrived in time, `None` on timeout.  The ticket stays live — a
    /// client can time out, do something else, and wait again; the
    /// response is not lost.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Response> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.slot.inner.lock().unwrap();
        loop {
            if let Some(resp) = guard.response.take() {
                return Some(resp);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            guard = self.slot.ready.wait_timeout(guard, left).unwrap().0;
        }
    }

    /// Non-blocking poll; `Some` once the batch carrying this request has
    /// been applied.
    pub fn try_wait(&self) -> Option<Response> {
        self.slot.inner.lock().unwrap().response.take()
    }
}

/// A request travelling the submission queue with its completion slot, its
/// (optional) deadline, and its slot in the bounded queue.
///
/// The `Drop` impl is the **exit guard**: an envelope that dies unanswered
/// — the batcher panicked outside containment and unwinding dropped the
/// batch and the queue — resolves its client to
/// [`ServiceError::ServerGone`] instead of wedging [`Ticket::wait`]
/// forever.  On the normal path the slot was already completed, so the
/// guard is a no-op; either way the envelope releases the admission slot
/// it holds in the bounded queue.
#[derive(Debug)]
pub(crate) struct Envelope {
    pub(crate) request: Request,
    slot: Arc<ResponseSlot>,
    /// When the request entered the submission queue.  The batcher's
    /// linger window opens here, not when the batcher dequeues the
    /// request — a request that waited in the queue has already spent
    /// its linger budget.
    enqueued: Instant,
    deadline: Option<Instant>,
    depth: Option<Arc<AtomicUsize>>,
}

impl Envelope {
    #[cfg(test)]
    pub(crate) fn new(request: Request, slot: Arc<ResponseSlot>) -> Self {
        Envelope {
            request,
            slot,
            enqueued: Instant::now(),
            deadline: None,
            depth: None,
        }
    }

    pub(crate) fn with_admission(
        request: Request,
        slot: Arc<ResponseSlot>,
        deadline: Option<Instant>,
        depth: Arc<AtomicUsize>,
    ) -> Self {
        Envelope {
            request,
            slot,
            enqueued: Instant::now(),
            deadline,
            depth: Some(depth),
        }
    }

    /// Answers the request and releases its admission slot.  The release
    /// happens *before* the slot completion: a client that has its reply
    /// in hand must never observe its own request still counted as
    /// outstanding (the reply delivery synchronizes through the slot's
    /// mutex, so the decrement is visible to the woken client).
    pub(crate) fn complete(mut self, response: Response) {
        if let Some(depth) = self.depth.take() {
            depth.fetch_sub(1, Ordering::AcqRel);
        }
        self.slot.complete(response);
    }

    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

impl Drop for Envelope {
    fn drop(&mut self) {
        if let Some(depth) = self.depth.take() {
            depth.fetch_sub(1, Ordering::AcqRel);
        }
        self.slot.complete(Err(ServiceError::ServerGone));
    }
}

/// Submission-queue message.
#[derive(Debug)]
pub(crate) enum Msg {
    /// A client request.
    Submit(Envelope),
    /// Drain the queue, answer everything, and exit.
    Shutdown,
}

/// Runs the batcher loop to completion.  Returns the final state and the
/// cumulative stats; called on the dedicated batcher thread.
pub(crate) fn run_batcher(
    mut state: ServiceState,
    policy: BatchPolicy,
    rx: Receiver<Msg>,
) -> (ServiceState, ServiceStats) {
    let policy = policy.normalized();
    let mut stats = ServiceStats::default();
    // Reused across batches: the pre-batch checkpoint buffer.
    let mut ckpt = ServiceCheckpoint::default();
    'serve: loop {
        // Block for the batch's first request.
        let first = match rx.recv() {
            Ok(Msg::Submit(env)) => env,
            Ok(Msg::Shutdown) | Err(_) => break 'serve,
        };
        // The linger window opens when the batch's first request was
        // *enqueued*, not here: a request that already sat in the queue
        // (behind a long batch, or before the batcher woke) has spent its
        // linger budget and must not wait a second full window.
        let deadline = first.enqueued + policy.linger;
        let mut batch = vec![first];
        // Fill until the policy closes the batch.
        let mut shutting_down = false;
        while batch.len() < policy.max_batch {
            // Already-queued requests ride along without blocking, even
            // when the linger window has expired.
            match rx.try_recv() {
                Ok(Msg::Submit(env)) => {
                    batch.push(env);
                    continue;
                }
                Ok(Msg::Shutdown) | Err(TryRecvError::Disconnected) => {
                    shutting_down = true;
                    break;
                }
                Err(TryRecvError::Empty) => {}
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match rx.recv_timeout(left) {
                Ok(Msg::Submit(env)) => batch.push(env),
                Ok(Msg::Shutdown) => {
                    shutting_down = true;
                    break;
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    shutting_down = true;
                    break;
                }
            }
        }
        apply_and_complete(&mut state, &mut stats, &mut ckpt, batch);
        if shutting_down {
            break 'serve;
        }
    }
    // Drain: answer everything already in the queue, then exit.
    let mut leftover = Vec::new();
    loop {
        match rx.try_recv() {
            Ok(Msg::Submit(env)) => {
                leftover.push(env);
                if leftover.len() == policy.max_batch {
                    apply_and_complete(
                        &mut state,
                        &mut stats,
                        &mut ckpt,
                        std::mem::take(&mut leftover),
                    );
                }
            }
            Ok(Msg::Shutdown) => {}
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
        }
    }
    if !leftover.is_empty() {
        apply_and_complete(&mut state, &mut stats, &mut ckpt, leftover);
    }
    (state, stats)
}

/// Applies one batch — checkpoint, apply under panic containment, roll
/// back and bisect on panic — and completes every slot.
fn apply_and_complete(
    state: &mut ServiceState,
    stats: &mut ServiceStats,
    ckpt: &mut ServiceCheckpoint,
    batch: Vec<Envelope>,
) {
    // An injected crash kills the batcher thread *outside* the containment
    // below: it simulates abnormal server death, not a poisoned batch.
    // Unwinding drops this batch's envelopes and (when the thread closure
    // unwinds) the queue's — every exit guard answers `ServerGone`.
    if batch
        .iter()
        .any(|env| env.request == Request::Fault(Fault::Crash))
    {
        panic!("qrqw-serve: injected batcher crash");
    }
    // Deadline admission: expired requests are answered without touching
    // the machine and are not part of the applied trace.
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for env in batch {
        if env.expired(now) {
            stats.deadline_shed += 1;
            env.complete(Err(ServiceError::DeadlineExceeded));
        } else {
            live.push(env);
        }
    }
    if live.is_empty() {
        return;
    }
    let requests: Vec<Request> = live.iter().map(|env| env.request).collect();
    // Checkpoint first: the rollback substrate that turns "may or may not
    // have taken effect" into "definitely not".
    let snap_start = Instant::now();
    state.checkpoint_into(ckpt);
    stats.snapshots += 1;
    stats.snapshot_wall += snap_start.elapsed();
    match catch_unwind(AssertUnwindSafe(|| state.apply_batch(&requests))) {
        Ok((responses, cost)) => {
            stats.record_batch(live.len(), cost);
            debug_assert_eq!(responses.len(), live.len());
            for (env, resp) in live.into_iter().zip(responses) {
                env.complete(resp);
            }
        }
        Err(_) => {
            let recovery_start = Instant::now();
            stats.panicked_batches += 1;
            state.restore(ckpt);
            let mut responses = Vec::with_capacity(requests.len());
            let mut cost = BatchCost::default();
            isolate(state, stats, &requests, &mut responses, &mut cost);
            debug_assert_eq!(responses.len(), live.len());
            stats.record_batch(live.len(), cost);
            stats.recovery_wall += recovery_start.elapsed();
            for (env, resp) in live.into_iter().zip(responses) {
                env.complete(resp);
            }
        }
    }
}

/// Bisection replay.  Precondition: applying `requests` as one batch
/// panicked, and the state has been rolled back to just before that
/// attempt.  Splits the batch in submission order — trace determinism
/// makes sub-batch replies identical to the original batch's
/// would-have-been replies — recursing on any half that panics, until each
/// poisoned request stands alone and is answered
/// [`ServiceError::RequestPanicked`].  Every innocent request's response
/// and effect are exactly those of the trace with the poison removed.
fn isolate(
    state: &mut ServiceState,
    stats: &mut ServiceStats,
    requests: &[Request],
    responses: &mut Vec<Response>,
    cost: &mut BatchCost,
) {
    if requests.len() == 1 {
        stats.isolated_panics += 1;
        responses.push(Err(ServiceError::RequestPanicked));
        return;
    }
    let mid = requests.len() / 2;
    for half in [&requests[..mid], &requests[mid..]] {
        let ckpt = state.checkpoint();
        match catch_unwind(AssertUnwindSafe(|| state.apply_batch(half))) {
            Ok((resp, c)) => {
                *cost += c;
                responses.extend(resp);
            }
            Err(_) => {
                state.restore(&ckpt);
                isolate(state, stats, half, responses, cost);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_returns_a_completed_response() {
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket::new(Arc::clone(&slot));
        assert!(ticket.try_wait().is_none());
        slot.complete(Err(ServiceError::Injected));
        assert_eq!(ticket.wait(), Err(ServiceError::Injected));
    }

    #[test]
    fn first_completion_wins() {
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket::new(Arc::clone(&slot));
        slot.complete(Err(ServiceError::Injected));
        slot.complete(Err(ServiceError::ShuttingDown));
        assert_eq!(ticket.wait(), Err(ServiceError::Injected));
    }

    #[test]
    fn ticket_wait_blocks_until_completion() {
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket::new(Arc::clone(&slot));
        let completer = Arc::clone(&slot);
        let t = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        completer.complete(Err(ServiceError::Injected));
        assert_eq!(t.join().unwrap(), Err(ServiceError::Injected));
    }

    #[test]
    fn wait_timeout_times_out_then_still_receives() {
        // Timeout-then-complete ordering: an expired wait does not consume
        // or poison the slot; a later completion still reaches the client.
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket::new(Arc::clone(&slot));
        let started = Instant::now();
        assert_eq!(ticket.wait_timeout(Duration::from_millis(20)), None);
        assert!(started.elapsed() >= Duration::from_millis(20));
        slot.complete(Err(ServiceError::Injected));
        assert_eq!(
            ticket.wait_timeout(Duration::from_secs(5)),
            Some(Err(ServiceError::Injected))
        );
    }

    #[test]
    fn wait_timeout_returns_immediately_when_already_complete() {
        // Complete-then-wait ordering: no blocking, even with a zero
        // timeout.
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket::new(Arc::clone(&slot));
        slot.complete(Err(ServiceError::Injected));
        assert_eq!(
            ticket.wait_timeout(Duration::ZERO),
            Some(Err(ServiceError::Injected))
        );
        // Consumed: a second wait times out rather than double-delivering.
        assert_eq!(ticket.wait_timeout(Duration::ZERO), None);
    }

    #[test]
    fn dropped_envelope_answers_server_gone() {
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket::new(Arc::clone(&slot));
        let env = Envelope::new(Request::TaskSteal, Arc::clone(&slot));
        drop(env);
        assert_eq!(ticket.wait(), Err(ServiceError::ServerGone));
    }

    #[test]
    fn exit_guard_does_not_override_a_real_completion() {
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket::new(Arc::clone(&slot));
        let env = Envelope::new(Request::TaskSteal, Arc::clone(&slot));
        // `complete` consumes the envelope, so the exit guard fires right
        // behind the real answer: the completed latch must block it from
        // overwriting the slot with ServerGone.
        env.complete(Ok(crate::request::Reply::TaskStolen(None)));
        assert_eq!(
            ticket.try_wait(),
            Some(Ok(crate::request::Reply::TaskStolen(None)))
        );
        // A late guard-style completion on the consumed slot is also inert.
        slot.complete(Err(ServiceError::ServerGone));
        assert_eq!(ticket.try_wait(), None);
    }

    #[test]
    fn envelope_completion_releases_its_admission_slot_before_replying() {
        let depth = Arc::new(AtomicUsize::new(1));
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket::new(Arc::clone(&slot));
        let env = Envelope::with_admission(
            Request::TaskSteal,
            Arc::clone(&slot),
            None,
            Arc::clone(&depth),
        );
        env.complete(Err(ServiceError::Injected));
        // The client holds the reply; its request must no longer count as
        // outstanding.
        assert_eq!(ticket.wait(), Err(ServiceError::Injected));
        assert_eq!(depth.load(Ordering::Acquire), 0);
    }

    #[test]
    fn envelope_drop_releases_its_admission_slot() {
        let depth = Arc::new(AtomicUsize::new(1));
        let slot = Arc::new(ResponseSlot::default());
        let env = Envelope::with_admission(
            Request::TaskSteal,
            Arc::clone(&slot),
            None,
            Arc::clone(&depth),
        );
        drop(env);
        assert_eq!(depth.load(Ordering::Acquire), 0);
    }

    #[test]
    fn linger_window_opens_at_enqueue_not_at_batch_loop_entry() {
        use crate::policy::BatchPolicy;
        use crate::state::{ServiceConfig, ServiceState};
        use qrqw_exec::StepPool;
        use std::sync::mpsc::channel;

        let linger = Duration::from_millis(200);
        let policy = BatchPolicy::with_max_batch(8).linger(linger);
        let state = ServiceState::with_pool(
            ServiceConfig {
                num_counters: 4,
                task_procs: 4,
                hash_capacity: 64,
                seed: 7,
            },
            StepPool::with_threads(1),
        );
        let (tx, rx) = channel();
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket::new(Arc::clone(&slot));
        tx.send(Msg::Submit(Envelope::new(
            Request::CounterAdd {
                counter: 0,
                delta: 1,
            },
            slot,
        )))
        .unwrap();
        // Let the request outlive its whole linger window *in the queue*
        // before the batcher even starts.
        std::thread::sleep(linger + Duration::from_millis(50));
        let handle = std::thread::spawn(move || run_batcher(state, policy, rx));
        let start = Instant::now();
        let resp = ticket.wait();
        let waited = start.elapsed();
        assert!(resp.is_ok(), "expected a real reply, got {resp:?}");
        // The buggy clock (window re-opened at batch-loop entry) would
        // hold the reply for a second full linger window.
        assert!(
            waited < linger / 2,
            "reply took {waited:?}; the linger window must not re-open"
        );
        drop(tx);
        let (_state, stats) = handle.join().unwrap();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.requests, 1);
    }
}
