//! Latency histogram and service-level statistics.
//!
//! [`Histogram`] is an HDR-style log-linear histogram over `u64` values
//! (the harness records nanoseconds): values below [`Histogram::PRECISE`]
//! are counted exactly, one bucket per value; above that, each power-of-two
//! octave is split into [`Histogram::PRECISE`]`/2` linear sub-buckets, so
//! the relative quantization error is bounded by `2/PRECISE` everywhere.
//! That gives exact percentiles on small known inputs (what the unit smoke
//! asserts) and bounded error on real latency distributions, with O(1)
//! recording and no allocation after construction.

use std::time::Duration;

use qrqw_exec::BatchCost;

/// Log-linear histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

/// Number of low values recorded exactly (must be a power of two).
const PRECISE: u64 = 2048;
/// Sub-buckets per octave above the precise range (`PRECISE / 2`).
const SUB: u64 = PRECISE / 2;
/// Octaves above the precise range needed to cover all of `u64`.
const OCTAVES: usize = 54;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Values below this are recorded exactly (their own bucket).
    pub const PRECISE: u64 = PRECISE;

    /// Creates an empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; PRECISE as usize + OCTAVES * SUB as usize],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    fn index_of(value: u64) -> usize {
        if value < PRECISE {
            return value as usize;
        }
        // Value has bit length `bits` ≥ 12; shifting by `bits - 11` puts it
        // in `[SUB, 2·SUB)`; octave 0 is the first above the precise range.
        let bits = 64 - value.leading_zeros() as u64;
        let octave = bits - PRECISE.trailing_zeros() as u64; // ≥ 1
        let sub = (value >> octave) - SUB;
        (PRECISE + (octave - 1) * SUB + sub) as usize
    }

    /// The largest value that maps to the same bucket as `index` — the
    /// value percentiles report, so a reported percentile is always an
    /// upper bound on the true one within the bucket's width.
    fn value_of(index: usize) -> u64 {
        let index = index as u64;
        if index < PRECISE {
            return index;
        }
        let octave = (index - PRECISE) / SUB + 1;
        let sub = (index - PRECISE) % SUB;
        // The very top bucket's upper bound exceeds u64: saturate.
        let upper = ((sub + SUB + 1) as u128) << octave;
        u64::try_from(upper - 1).unwrap_or(u64::MAX)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_of(value)] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128;
    }

    /// Records a [`Duration`] in nanoseconds (saturating).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample, or `None` when empty.  The internal
    /// tracker starts at `u64::MAX`; exposing that (or a fake `0`) for an
    /// empty histogram would be indistinguishable from a real extreme
    /// sample, so emptiness is explicit.
    pub fn min(&self) -> Option<u64> {
        (self.total != 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.total != 0).then_some(self.max)
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the smallest bucket such that at
    /// least `⌈q · count⌉` samples are ≤ its upper bound.  Exact for values
    /// below [`Histogram::PRECISE`]; otherwise an upper bound within the
    /// bucket's `2/PRECISE` relative width.  Returns `None` on an empty
    /// histogram — like [`Histogram::min`]/[`Histogram::max`], a fabricated
    /// `0` would be indistinguishable from a real zero-latency sample, so
    /// emptiness is explicit.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::value_of(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

/// Cumulative service statistics, maintained by the batcher and returned
/// by `Server::shutdown`.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Batches applied.
    pub batches: u64,
    /// Requests served (every one received a response).
    pub requests: u64,
    /// Largest batch applied.
    pub max_batch: u64,
    /// Machine steps executed by batch application.
    pub steps: u64,
    /// Claim attempts issued by batch application.
    pub claim_attempts: u64,
    /// Claim attempts that lost to a same-step collision.
    pub contended_claims: u64,
    /// Total wall time spent inside batch application.
    pub apply_wall: Duration,
    /// Batches that panicked mid-application, were rolled back to their
    /// pre-batch checkpoint, and were re-applied by bisection.
    pub panicked_batches: u64,
    /// Requests isolated by bisection replay and answered
    /// [`crate::ServiceError::RequestPanicked`].
    pub isolated_panics: u64,
    /// Requests whose deadline expired in the queue, answered
    /// [`crate::ServiceError::DeadlineExceeded`] without touching the
    /// machine.
    pub deadline_shed: u64,
    /// Requests shed at admission with
    /// [`crate::ServiceError::Overloaded`] (counted by the handles; folded
    /// in at shutdown).
    pub overload_shed: u64,
    /// Pre-batch checkpoints taken (one per applied batch).
    pub snapshots: u64,
    /// Total wall time spent taking pre-batch checkpoints — the price of
    /// the rollback guarantee, measured so `chaos_bench` can report it.
    pub snapshot_wall: Duration,
    /// Total wall time spent in rollback + bisection replay after panics.
    pub recovery_wall: Duration,
}

impl ServiceStats {
    /// Mean requests per batch (0 when no batch ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Mean contended claims per batch — the service-level analogue of the
    /// per-step contention charge.
    pub fn contention_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.contended_claims as f64 / self.batches as f64
        }
    }

    /// Mean checkpoint cost per applied batch (zero when none were taken).
    pub fn mean_snapshot(&self) -> Duration {
        if self.snapshots == 0 {
            Duration::ZERO
        } else {
            self.snapshot_wall.div_f64(self.snapshots as f64)
        }
    }

    /// Mean recovery latency per rolled-back batch — restore plus bisection
    /// replay (zero when nothing panicked).
    pub fn mean_recovery(&self) -> Duration {
        if self.panicked_batches == 0 {
            Duration::ZERO
        } else {
            self.recovery_wall.div_f64(self.panicked_batches as f64)
        }
    }

    /// Folds one applied batch into the totals.
    pub fn record_batch(&mut self, batch_len: usize, cost: BatchCost) {
        self.batches += 1;
        self.requests += batch_len as u64;
        self.max_batch = self.max_batch.max(batch_len as u64);
        self.steps += cost.steps;
        self.claim_attempts += cost.claim_attempts;
        self.contended_claims += cost.contended_claims;
        self.apply_wall += cost.wall;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_on_small_known_inputs() {
        // The histogram satellite: fixed inputs, exact extraction.
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.value_at_quantile(0.50), Some(500));
        assert_eq!(h.value_at_quantile(0.99), Some(990));
        assert_eq!(h.value_at_quantile(0.999), Some(999));
        assert_eq!(h.value_at_quantile(1.0), Some(1000));
        assert_eq!(h.value_at_quantile(0.0), Some(1));
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn large_values_have_bounded_relative_error() {
        let mut h = Histogram::new();
        for &v in &[1_000_000u64, 5_000_000, 123_456_789, u64::MAX / 2] {
            h.record(v);
            let got = h.value_at_quantile(1.0).expect("non-empty histogram");
            assert!(got >= v, "reported percentile must be an upper bound");
            assert!(
                (got - v) as f64 <= v as f64 * (2.0 / Histogram::PRECISE as f64),
                "relative error too large: {v} -> {got}"
            );
        }
    }

    #[test]
    fn bucket_mapping_round_trips_at_boundaries() {
        for v in [0, 1, 2046, 2047, 2048, 2049, 4095, 4096, 1 << 20, u64::MAX] {
            let idx = Histogram::index_of(v);
            let upper = Histogram::value_of(idx);
            assert!(upper >= v, "upper bound {upper} below value {v}");
            if v < Histogram::PRECISE {
                assert_eq!(upper, v, "precise range must be exact");
            } else {
                assert_eq!(
                    Histogram::index_of(upper),
                    idx,
                    "upper bound must stay in its own bucket ({v})"
                );
            }
        }
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            whole.record(v * 3);
        }
        for v in 0..500u64 {
            b.record(v * 7 + 1);
            whole.record(v * 7 + 1);
        }
        a.merge(&b);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.value_at_quantile(q), whole.value_at_quantile(q));
        }
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn empty_histogram_reports_no_percentiles_and_no_extremes() {
        // The empty-snapshot satellite: before any sample, min is
        // internally u64::MAX — none of that may leak, and a percentile
        // must not fabricate a `0` sample either.  The mean stays defined
        // as 0; min/max and every quantile are None.
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.value_at_quantile(q), None);
        }
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        // Merging an empty histogram into an empty histogram stays empty.
        let mut a = Histogram::new();
        a.merge(&h);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
        assert_eq!(a.value_at_quantile(0.5), None);
        // One sample flips all three in lockstep.
        a.record(42);
        assert_eq!(
            (a.min(), a.max(), a.value_at_quantile(1.0)),
            (Some(42), Some(42), Some(42))
        );
    }

    #[test]
    fn stats_fold_batches() {
        let mut s = ServiceStats::default();
        s.record_batch(
            10,
            BatchCost {
                steps: 4,
                claim_attempts: 20,
                contended_claims: 6,
                wall: Duration::from_micros(50),
            },
        );
        s.record_batch(
            30,
            BatchCost {
                steps: 8,
                claim_attempts: 0,
                contended_claims: 0,
                wall: Duration::from_micros(10),
            },
        );
        assert_eq!(s.batches, 2);
        assert_eq!(s.requests, 40);
        assert_eq!(s.max_batch, 30);
        assert!((s.mean_batch() - 20.0).abs() < 1e-9);
        assert!((s.contention_per_batch() - 3.0).abs() < 1e-9);
        assert_eq!(s.apply_wall, Duration::from_micros(60));
    }
}
