//! The batching policy: when does the batcher close a batch?
//!
//! Two knobs, the classic throughput/latency trade:
//!
//! * **max batch size** — close as soon as this many requests have been
//!   collected.  Bigger batches amortize the per-step protocol (and, per
//!   the QRQW thesis, spread contention over more parallel slots) at the
//!   price of queueing latency.
//! * **max linger** — close an under-full batch this long after its first
//!   request arrived, so a trickle of traffic still gets served promptly.
//!
//! Both have environment overrides (`QRQW_BATCH_MAX`, `QRQW_LINGER_US`),
//! documented alongside `QRQW_THREADS` / `QRQW_SCHEDULE` in
//! `ARCHITECTURE.md`.

use std::time::Duration;

/// Environment variable overriding [`BatchPolicy::max_batch`].
pub const BATCH_MAX_ENV: &str = "QRQW_BATCH_MAX";

/// Environment variable overriding [`BatchPolicy::linger`] (microseconds).
pub const LINGER_US_ENV: &str = "QRQW_LINGER_US";

/// Default [`BatchPolicy::max_batch`].
pub const DEFAULT_BATCH_MAX: usize = 256;

/// Default [`BatchPolicy::linger`].
pub const DEFAULT_LINGER: Duration = Duration::from_micros(200);

/// When the batcher closes a batch: at `max_batch` requests, or `linger`
/// after the batch's first request arrived, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum requests per batch (≥ 1; 0 is clamped to 1).
    pub max_batch: usize,
    /// Maximum time an under-full batch waits for more requests.  Zero
    /// means "never wait": a batch is whatever is already queued.
    pub linger: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: DEFAULT_BATCH_MAX,
            linger: DEFAULT_LINGER,
        }
    }
}

impl BatchPolicy {
    /// A policy with the given batch cap and the default linger.
    pub fn with_max_batch(max_batch: usize) -> Self {
        BatchPolicy {
            max_batch: max_batch.max(1),
            ..Default::default()
        }
    }

    /// Builder: sets the linger time.
    pub fn linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Resolves the policy from the environment: `QRQW_BATCH_MAX` (requests)
    /// and `QRQW_LINGER_US` (microseconds), falling back to the defaults.
    /// Unparsable values are ignored, matching how the executor treats
    /// `QRQW_THREADS`.
    pub fn from_env() -> Self {
        let mut policy = BatchPolicy::default();
        if let Some(v) = read_env_usize(BATCH_MAX_ENV) {
            policy.max_batch = v.max(1);
        }
        if let Some(v) = read_env_usize(LINGER_US_ENV) {
            policy.linger = Duration::from_micros(v as u64);
        }
        policy
    }

    /// The policy with `max_batch` clamped to at least 1, as the batcher
    /// uses it.
    pub fn normalized(self) -> Self {
        BatchPolicy {
            max_batch: self.max_batch.max(1),
            linger: self.linger,
        }
    }
}

fn read_env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = BatchPolicy::default();
        assert!(p.max_batch >= 1);
        assert!(p.linger > Duration::ZERO);
    }

    #[test]
    fn zero_max_batch_is_clamped() {
        assert_eq!(BatchPolicy::with_max_batch(0).max_batch, 1);
        assert_eq!(
            BatchPolicy {
                max_batch: 0,
                linger: Duration::ZERO
            }
            .normalized()
            .max_batch,
            1
        );
    }

    #[test]
    fn builder_sets_linger() {
        let p = BatchPolicy::with_max_batch(8).linger(Duration::from_millis(5));
        assert_eq!(p.max_batch, 8);
        assert_eq!(p.linger, Duration::from_millis(5));
    }
}
