//! The batching policy: when does the batcher close a batch?
//!
//! Two knobs, the classic throughput/latency trade:
//!
//! * **max batch size** — close as soon as this many requests have been
//!   collected.  Bigger batches amortize the per-step protocol (and, per
//!   the QRQW thesis, spread contention over more parallel slots) at the
//!   price of queueing latency.
//! * **max linger** — close an under-full batch this long after its first
//!   request arrived, so a trickle of traffic still gets served promptly.
//!
//! Both have environment overrides (`QRQW_BATCH_MAX`, `QRQW_LINGER_US`),
//! documented alongside `QRQW_THREADS` / `QRQW_SCHEDULE` in
//! `ARCHITECTURE.md`.

use std::time::Duration;

/// Environment variable overriding [`BatchPolicy::max_batch`].
pub const BATCH_MAX_ENV: &str = "QRQW_BATCH_MAX";

/// Environment variable overriding [`BatchPolicy::linger`] (microseconds).
pub const LINGER_US_ENV: &str = "QRQW_LINGER_US";

/// Default [`BatchPolicy::max_batch`].
pub const DEFAULT_BATCH_MAX: usize = 256;

/// Default [`BatchPolicy::linger`].
pub const DEFAULT_LINGER: Duration = Duration::from_micros(200);

/// When the batcher closes a batch: at `max_batch` requests, or `linger`
/// after the batch's first request arrived, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum requests per batch (≥ 1; 0 is clamped to 1).
    pub max_batch: usize,
    /// Maximum time an under-full batch waits for more requests.  Zero
    /// means "never wait": a batch is whatever is already queued.
    pub linger: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: DEFAULT_BATCH_MAX,
            linger: DEFAULT_LINGER,
        }
    }
}

impl BatchPolicy {
    /// A policy with the given batch cap and the default linger.
    pub fn with_max_batch(max_batch: usize) -> Self {
        BatchPolicy {
            max_batch: max_batch.max(1),
            ..Default::default()
        }
    }

    /// Builder: sets the linger time.
    pub fn linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Resolves the policy from the environment: `QRQW_BATCH_MAX` (requests)
    /// and `QRQW_LINGER_US` (microseconds), falling back to the defaults
    /// when unset.
    ///
    /// A *set but invalid* value is a configuration error and panics with
    /// the offending variable and value, rather than being silently
    /// replaced — a typo'd `QRQW_BATCH_MAX` that falls back to the default
    /// batch cap looks exactly like a perf regression, and nobody debugs
    /// the environment first.  `QRQW_BATCH_MAX=0` is rejected too (the
    /// batcher needs at least one request per batch); `QRQW_LINGER_US=0`
    /// stays legal and means "never wait".
    ///
    /// # Panics
    ///
    /// If either variable is set to an unparseable value, or
    /// `QRQW_BATCH_MAX` is set to `0`.
    pub fn from_env() -> Self {
        match Self::from_env_values(
            std::env::var(BATCH_MAX_ENV).ok().as_deref(),
            std::env::var(LINGER_US_ENV).ok().as_deref(),
        ) {
            Ok(policy) => policy,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// The value-level core of [`BatchPolicy::from_env`]: `batch` and
    /// `linger` are the raw values of `QRQW_BATCH_MAX` / `QRQW_LINGER_US`
    /// (`None` = unset).  Split out so the rejection rules are testable
    /// without racing on process-global environment state.
    pub fn from_env_values(batch: Option<&str>, linger: Option<&str>) -> Result<Self, String> {
        let mut policy = BatchPolicy::default();
        if let Some(raw) = batch {
            let v: usize = raw
                .trim()
                .parse()
                .map_err(|_| format!("invalid {BATCH_MAX_ENV}={raw:?}: expected a positive integer (requests per batch)"))?;
            if v == 0 {
                return Err(format!(
                    "invalid {BATCH_MAX_ENV}=0: a batch must hold at least one request"
                ));
            }
            policy.max_batch = v;
        }
        if let Some(raw) = linger {
            let v: u64 = raw.trim().parse().map_err(|_| {
                format!("invalid {LINGER_US_ENV}={raw:?}: expected microseconds as a non-negative integer")
            })?;
            policy.linger = Duration::from_micros(v);
        }
        Ok(policy)
    }

    /// The policy with `max_batch` clamped to at least 1, as the batcher
    /// uses it.
    pub fn normalized(self) -> Self {
        BatchPolicy {
            max_batch: self.max_batch.max(1),
            linger: self.linger,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = BatchPolicy::default();
        assert!(p.max_batch >= 1);
        assert!(p.linger > Duration::ZERO);
    }

    #[test]
    fn zero_max_batch_is_clamped() {
        assert_eq!(BatchPolicy::with_max_batch(0).max_batch, 1);
        assert_eq!(
            BatchPolicy {
                max_batch: 0,
                linger: Duration::ZERO
            }
            .normalized()
            .max_batch,
            1
        );
    }

    #[test]
    fn env_values_resolve_or_reject_loudly() {
        // Unset → defaults.
        assert_eq!(
            BatchPolicy::from_env_values(None, None).unwrap(),
            BatchPolicy::default()
        );
        // Valid overrides (whitespace tolerated).
        let p = BatchPolicy::from_env_values(Some(" 64 "), Some("500")).unwrap();
        assert_eq!(p.max_batch, 64);
        assert_eq!(p.linger, Duration::from_micros(500));
        // Linger 0 is legal: "never wait".
        let p = BatchPolicy::from_env_values(None, Some("0")).unwrap();
        assert_eq!(p.linger, Duration::ZERO);
        // Batch 0 and unparseable values are configuration errors, not
        // silent fallbacks.
        let err = BatchPolicy::from_env_values(Some("0"), None).unwrap_err();
        assert!(err.contains("QRQW_BATCH_MAX=0"), "unhelpful error: {err}");
        let err = BatchPolicy::from_env_values(Some("lots"), None).unwrap_err();
        assert!(err.contains("QRQW_BATCH_MAX"), "unhelpful error: {err}");
        let err = BatchPolicy::from_env_values(None, Some("-3")).unwrap_err();
        assert!(err.contains("QRQW_LINGER_US"), "unhelpful error: {err}");
    }

    #[test]
    fn builder_sets_linger() {
        let p = BatchPolicy::with_max_batch(8).linger(Duration::from_millis(5));
        assert_eq!(p.max_batch, 8);
        assert_eq!(p.linger, Duration::from_millis(5));
    }
}
