//! The batching policy: when does the batcher close a batch, and what may
//! enter the queue at all?
//!
//! Two batching knobs, the classic throughput/latency trade:
//!
//! * **max batch size** — close as soon as this many requests have been
//!   collected.  Bigger batches amortize the per-step protocol (and, per
//!   the QRQW thesis, spread contention over more parallel slots) at the
//!   price of queueing latency.
//! * **max linger** — close an under-full batch this long after its first
//!   request arrived, so a trickle of traffic still gets served promptly.
//!
//! Two admission knobs, the overload story:
//!
//! * **queue bound** — at most this many requests may be outstanding
//!   (queued or riding the open batch) at once; a submit past the bound is
//!   shed immediately with [`crate::ServiceError::Overloaded`] instead of
//!   growing the queue without limit.
//! * **deadline** — the default per-request deadline: a request the
//!   batcher reaches after its deadline is answered
//!   [`crate::ServiceError::DeadlineExceeded`] without touching the
//!   machine ([`crate::ServiceHandle::submit_with_deadline`] overrides it
//!   per request).
//!
//! All four have environment overrides (`QRQW_BATCH_MAX`,
//! `QRQW_LINGER_US`, `QRQW_QUEUE_MAX`, `QRQW_DEADLINE_US`), documented
//! alongside `QRQW_THREADS` / `QRQW_SCHEDULE` in `ARCHITECTURE.md` and the
//! README knob table.

use std::time::Duration;

/// Environment variable overriding [`BatchPolicy::max_batch`].
pub const BATCH_MAX_ENV: &str = "QRQW_BATCH_MAX";

/// Environment variable overriding [`BatchPolicy::linger`] (microseconds).
pub const LINGER_US_ENV: &str = "QRQW_LINGER_US";

/// Environment variable overriding [`BatchPolicy::queue_max`] (requests;
/// unset means unbounded).
pub const QUEUE_MAX_ENV: &str = "QRQW_QUEUE_MAX";

/// Environment variable overriding [`BatchPolicy::deadline`] (microseconds;
/// unset means no deadline).
pub const DEADLINE_US_ENV: &str = "QRQW_DEADLINE_US";

/// Default [`BatchPolicy::max_batch`].
pub const DEFAULT_BATCH_MAX: usize = 256;

/// Default [`BatchPolicy::linger`].
pub const DEFAULT_LINGER: Duration = Duration::from_micros(200);

/// When the batcher closes a batch: at `max_batch` requests, or `linger`
/// after the batch's first request arrived, whichever comes first — plus
/// the admission bounds the handles enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum requests per batch (≥ 1; 0 is clamped to 1).
    pub max_batch: usize,
    /// Maximum time an under-full batch waits for more requests.  Zero
    /// means "never wait": a batch is whatever is already queued.
    pub linger: Duration,
    /// Maximum outstanding requests (queued or in the open batch) before
    /// submits are shed with [`crate::ServiceError::Overloaded`].
    /// `usize::MAX` (the default) means unbounded.
    pub queue_max: usize,
    /// Default per-request deadline, measured from submission.  `None`
    /// (the default) means requests never expire in the queue.
    pub deadline: Option<Duration>,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: DEFAULT_BATCH_MAX,
            linger: DEFAULT_LINGER,
            queue_max: usize::MAX,
            deadline: None,
        }
    }
}

impl BatchPolicy {
    /// A policy with the given batch cap and the default linger.
    pub fn with_max_batch(max_batch: usize) -> Self {
        BatchPolicy {
            max_batch: max_batch.max(1),
            ..Default::default()
        }
    }

    /// Builder: sets the linger time.
    pub fn linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Builder: bounds the outstanding-request count (admission control).
    pub fn queue_max(mut self, queue_max: usize) -> Self {
        self.queue_max = queue_max.max(1);
        self
    }

    /// Builder: sets the default per-request deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Resolves the policy from the environment: `QRQW_BATCH_MAX`
    /// (requests), `QRQW_LINGER_US` (microseconds), `QRQW_QUEUE_MAX`
    /// (outstanding requests) and `QRQW_DEADLINE_US` (microseconds),
    /// falling back to the defaults when unset.
    ///
    /// A *set but invalid* value is a configuration error and panics with
    /// the offending variable and value, rather than being silently
    /// replaced — a typo'd `QRQW_BATCH_MAX` that falls back to the default
    /// batch cap looks exactly like a perf regression, and nobody debugs
    /// the environment first.  `QRQW_BATCH_MAX=0` is rejected too (the
    /// batcher needs at least one request per batch); `QRQW_LINGER_US=0`
    /// stays legal and means "never wait".  `QRQW_QUEUE_MAX=0` is rejected
    /// (a queue that admits nothing serves nothing — unset the variable
    /// for an unbounded queue), as is `QRQW_DEADLINE_US=0` (it would
    /// expire every request on arrival — unset it for no deadline).
    ///
    /// # Panics
    ///
    /// If any variable is set to an unparseable value, or `QRQW_BATCH_MAX`,
    /// `QRQW_QUEUE_MAX`, or `QRQW_DEADLINE_US` is set to `0`.
    pub fn from_env() -> Self {
        match Self::from_env_values(
            std::env::var(BATCH_MAX_ENV).ok().as_deref(),
            std::env::var(LINGER_US_ENV).ok().as_deref(),
            std::env::var(QUEUE_MAX_ENV).ok().as_deref(),
            std::env::var(DEADLINE_US_ENV).ok().as_deref(),
        ) {
            Ok(policy) => policy,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// The value-level core of [`BatchPolicy::from_env`]: the arguments are
    /// the raw values of `QRQW_BATCH_MAX` / `QRQW_LINGER_US` /
    /// `QRQW_QUEUE_MAX` / `QRQW_DEADLINE_US` (`None` = unset).  Split out
    /// so the rejection rules are testable without racing on
    /// process-global environment state.
    pub fn from_env_values(
        batch: Option<&str>,
        linger: Option<&str>,
        queue: Option<&str>,
        deadline: Option<&str>,
    ) -> Result<Self, String> {
        let mut policy = BatchPolicy::default();
        if let Some(raw) = batch {
            let v: usize = raw
                .trim()
                .parse()
                .map_err(|_| format!("invalid {BATCH_MAX_ENV}={raw:?}: expected a positive integer (requests per batch)"))?;
            if v == 0 {
                return Err(format!(
                    "invalid {BATCH_MAX_ENV}=0: a batch must hold at least one request"
                ));
            }
            policy.max_batch = v;
        }
        if let Some(raw) = linger {
            let v: u64 = raw.trim().parse().map_err(|_| {
                format!("invalid {LINGER_US_ENV}={raw:?}: expected microseconds as a non-negative integer")
            })?;
            policy.linger = Duration::from_micros(v);
        }
        if let Some(raw) = queue {
            let v: usize = raw.trim().parse().map_err(|_| {
                format!("invalid {QUEUE_MAX_ENV}={raw:?}: expected a positive integer (max outstanding requests)")
            })?;
            if v == 0 {
                return Err(format!(
                    "invalid {QUEUE_MAX_ENV}=0: a queue that admits nothing serves nothing; \
                     unset the variable for an unbounded queue"
                ));
            }
            policy.queue_max = v;
        }
        if let Some(raw) = deadline {
            let v: u64 = raw.trim().parse().map_err(|_| {
                format!("invalid {DEADLINE_US_ENV}={raw:?}: expected microseconds as a positive integer")
            })?;
            if v == 0 {
                return Err(format!(
                    "invalid {DEADLINE_US_ENV}=0: a zero deadline expires every request on \
                     arrival; unset the variable for no deadline"
                ));
            }
            policy.deadline = Some(Duration::from_micros(v));
        }
        Ok(policy)
    }

    /// The policy with `max_batch` and `queue_max` clamped to at least 1,
    /// as the batcher uses it.
    pub fn normalized(self) -> Self {
        BatchPolicy {
            max_batch: self.max_batch.max(1),
            queue_max: self.queue_max.max(1),
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = BatchPolicy::default();
        assert!(p.max_batch >= 1);
        assert!(p.linger > Duration::ZERO);
    }

    #[test]
    fn zero_max_batch_is_clamped() {
        assert_eq!(BatchPolicy::with_max_batch(0).max_batch, 1);
        let p = BatchPolicy {
            max_batch: 0,
            queue_max: 0,
            ..Default::default()
        }
        .normalized();
        assert_eq!(p.max_batch, 1);
        assert_eq!(p.queue_max, 1);
    }

    #[test]
    fn env_values_resolve_or_reject_loudly() {
        // Unset → defaults.
        assert_eq!(
            BatchPolicy::from_env_values(None, None, None, None).unwrap(),
            BatchPolicy::default()
        );
        // Valid overrides (whitespace tolerated).
        let p = BatchPolicy::from_env_values(Some(" 64 "), Some("500"), Some("4096"), Some("2000"))
            .unwrap();
        assert_eq!(p.max_batch, 64);
        assert_eq!(p.linger, Duration::from_micros(500));
        assert_eq!(p.queue_max, 4096);
        assert_eq!(p.deadline, Some(Duration::from_micros(2000)));
        // Linger 0 is legal: "never wait".
        let p = BatchPolicy::from_env_values(None, Some("0"), None, None).unwrap();
        assert_eq!(p.linger, Duration::ZERO);
        // Zero bounds and unparseable values are configuration errors, not
        // silent fallbacks.
        let err = BatchPolicy::from_env_values(Some("0"), None, None, None).unwrap_err();
        assert!(err.contains("QRQW_BATCH_MAX=0"), "unhelpful error: {err}");
        let err = BatchPolicy::from_env_values(Some("lots"), None, None, None).unwrap_err();
        assert!(err.contains("QRQW_BATCH_MAX"), "unhelpful error: {err}");
        let err = BatchPolicy::from_env_values(None, Some("-3"), None, None).unwrap_err();
        assert!(err.contains("QRQW_LINGER_US"), "unhelpful error: {err}");
        let err = BatchPolicy::from_env_values(None, None, Some("0"), None).unwrap_err();
        assert!(err.contains("QRQW_QUEUE_MAX=0"), "unhelpful error: {err}");
        let err = BatchPolicy::from_env_values(None, None, Some("many"), None).unwrap_err();
        assert!(err.contains("QRQW_QUEUE_MAX"), "unhelpful error: {err}");
        let err = BatchPolicy::from_env_values(None, None, None, Some("0")).unwrap_err();
        assert!(err.contains("QRQW_DEADLINE_US=0"), "unhelpful error: {err}");
        let err = BatchPolicy::from_env_values(None, None, None, Some("soon")).unwrap_err();
        assert!(err.contains("QRQW_DEADLINE_US"), "unhelpful error: {err}");
    }

    #[test]
    fn builder_sets_linger_queue_and_deadline() {
        let p = BatchPolicy::with_max_batch(8)
            .linger(Duration::from_millis(5))
            .queue_max(128)
            .deadline(Duration::from_millis(50));
        assert_eq!(p.max_batch, 8);
        assert_eq!(p.linger, Duration::from_millis(5));
        assert_eq!(p.queue_max, 128);
        assert_eq!(p.deadline, Some(Duration::from_millis(50)));
        assert_eq!(BatchPolicy::default().queue_max(0).queue_max, 1);
    }
}
