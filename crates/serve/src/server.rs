//! [`Server`]: spawn/submit/shutdown around the batcher runtime.
//!
//! A [`Server`] owns the batcher thread; any number of [`ServiceHandle`]
//! clones (one per client thread, typically) submit requests into its
//! queue and wait on [`Ticket`]s.  [`Server::shutdown`] drains the queue —
//! every already-submitted request is applied and answered — and returns
//! the final [`ServiceState`] (so tests can digest it) plus the cumulative
//! [`ServiceStats`].
//!
//! Admission control lives here, at the submit edge: the handle counts
//! outstanding requests (submitted, envelope not yet dropped) against
//! [`BatchPolicy::queue_max`] and sheds over-bound submits immediately
//! with [`ServiceError::Overloaded`] — the shed request is never enqueued
//! and definitely did not take effect.  Per-request deadlines
//! ([`BatchPolicy::deadline`], or [`ServiceHandle::submit_with_deadline`])
//! are stamped here and enforced by the batcher when it reaches the
//! request.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qrqw_exec::StepPool;

use crate::metrics::ServiceStats;
use crate::policy::BatchPolicy;
use crate::request::{Request, Response, ServiceError};
use crate::runtime::{run_batcher, Envelope, Msg, ResponseSlot, Ticket};
use crate::state::{ServiceConfig, ServiceState};

/// A clonable client endpoint of a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    tx: Sender<Msg>,
    closed: Arc<AtomicBool>,
    /// Outstanding requests: incremented at admission, decremented by the
    /// envelope's drop (whether answered, shed, or orphaned).
    depth: Arc<AtomicUsize>,
    /// Submits shed with [`ServiceError::Overloaded`]; folded into
    /// [`ServiceStats::overload_shed`] at shutdown.
    shed: Arc<AtomicU64>,
    queue_max: usize,
    deadline: Option<Duration>,
}

impl ServiceHandle {
    /// Submits one request; returns immediately with a [`Ticket`] for the
    /// response.  The policy's default deadline (if any) applies.  After
    /// shutdown the ticket resolves at once to
    /// [`ServiceError::ShuttingDown`]; past the queue bound it resolves at
    /// once to [`ServiceError::Overloaded`].
    pub fn submit(&self, request: Request) -> Ticket {
        self.submit_inner(request, self.deadline)
    }

    /// Submits one request with an explicit deadline, overriding the
    /// policy default.  If the batcher does not reach the request within
    /// `timeout` of now, it is answered [`ServiceError::DeadlineExceeded`]
    /// without touching the machine.
    pub fn submit_with_deadline(&self, request: Request, timeout: Duration) -> Ticket {
        self.submit_inner(request, Some(timeout))
    }

    fn submit_inner(&self, request: Request, timeout: Option<Duration>) -> Ticket {
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket::new(Arc::clone(&slot));
        if self.closed.load(Ordering::Acquire) {
            slot.complete(Err(ServiceError::ShuttingDown));
            return ticket;
        }
        // Claim an admission slot before enqueueing; the envelope's drop
        // releases it, so "outstanding" spans queue + open batch +
        // in-flight application.
        if self.depth.fetch_add(1, Ordering::AcqRel) >= self.queue_max {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            self.shed.fetch_add(1, Ordering::Relaxed);
            slot.complete(Err(ServiceError::Overloaded));
            return ticket;
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        let env = Envelope::with_admission(
            request,
            Arc::clone(&slot),
            deadline,
            Arc::clone(&self.depth),
        );
        if let Err(send_err) = self.tx.send(Msg::Submit(env)) {
            // Racing a shutdown: recover the envelope and answer
            // ShuttingDown explicitly (its drop would otherwise claim
            // ServerGone, which is for abnormal death).
            let Msg::Submit(env) = send_err.0 else {
                unreachable!("submit sent a non-Submit message")
            };
            env.complete(Err(ServiceError::ShuttingDown));
        }
        ticket
    }

    /// Submits one request and blocks for its response.
    pub fn call(&self, request: Request) -> Response {
        self.submit(request).wait()
    }

    /// Requests currently outstanding (submitted, not yet resolved).
    pub fn outstanding(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }
}

/// A running batched service: one batcher thread owning a persistent
/// machine, fed by a submission queue.
#[derive(Debug)]
pub struct Server {
    handle: ServiceHandle,
    join: Option<JoinHandle<(ServiceState, ServiceStats)>>,
}

impl Server {
    /// Spawns a server whose machine resolves threads/schedule from the
    /// environment (`QRQW_THREADS`, `QRQW_SCHEDULE`).
    pub fn spawn(config: ServiceConfig, policy: BatchPolicy) -> Server {
        Self::spawn_with_pool(config, policy, StepPool::from_env())
    }

    /// Spawns a server with an explicit machine dispatch policy.
    pub fn spawn_with_pool(config: ServiceConfig, policy: BatchPolicy, pool: StepPool) -> Server {
        let policy = policy.normalized();
        let (tx, rx) = channel();
        let join = std::thread::Builder::new()
            .name("qrqw-serve-batcher".into())
            .spawn(move || run_batcher(ServiceState::with_pool(config, pool), policy, rx))
            .expect("failed to spawn the batcher thread");
        Server {
            handle: ServiceHandle {
                tx,
                closed: Arc::new(AtomicBool::new(false)),
                depth: Arc::new(AtomicUsize::new(0)),
                shed: Arc::new(AtomicU64::new(0)),
                queue_max: policy.queue_max,
                deadline: policy.deadline,
            },
            join: Some(join),
        }
    }

    /// A new client endpoint.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Graceful shutdown: stop accepting, drain and answer everything
    /// already submitted, and return the final state and stats.
    ///
    /// # Panics
    ///
    /// If the batcher thread died abnormally (e.g. an injected
    /// [`crate::request::Fault::Crash`]) — callers expecting that use
    /// `drop` instead.
    pub fn shutdown(mut self) -> (ServiceState, ServiceStats) {
        self.handle.closed.store(true, Ordering::Release);
        let _ = self.handle.tx.send(Msg::Shutdown);
        let (state, mut stats) = self
            .join
            .take()
            .expect("server already shut down")
            .join()
            .expect("batcher thread panicked outside a batch");
        stats.overload_shed = self.handle.shed.load(Ordering::Relaxed);
        (state, stats)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.handle.closed.store(true, Ordering::Release);
            let _ = self.handle.tx.send(Msg::Shutdown);
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Reply;

    fn tiny() -> Server {
        Server::spawn_with_pool(
            ServiceConfig {
                num_counters: 4,
                task_procs: 4,
                hash_capacity: 64,
                seed: 7,
            },
            BatchPolicy::with_max_batch(4),
            StepPool::with_threads(2),
        )
    }

    #[test]
    fn idle_batcher_blocks_and_performs_zero_snapshots() {
        use std::time::Duration;
        let linger = Duration::from_millis(5);
        let server = Server::spawn_with_pool(
            ServiceConfig {
                num_counters: 4,
                task_procs: 4,
                hash_capacity: 64,
                seed: 7,
            },
            BatchPolicy::with_max_batch(4).linger(linger),
            StepPool::with_threads(1),
        );
        // Many linger windows pass with no traffic; an idle batcher must
        // sit in `recv`, not spin through empty batches and checkpoints.
        std::thread::sleep(linger * 10);
        let (_state, stats) = server.shutdown();
        assert_eq!(stats.snapshots, 0);
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.requests, 0);
    }

    #[test]
    fn round_trip_through_the_live_server() {
        let server = tiny();
        let h = server.handle();
        assert_eq!(
            h.call(Request::HashInsert { key: 42 }),
            Ok(Reply::Inserted(true))
        );
        assert_eq!(
            h.call(Request::HashLookup { key: 42 }),
            Ok(Reply::Found(true))
        );
        assert_eq!(
            h.call(Request::CounterAdd {
                counter: 0,
                delta: 3
            }),
            Ok(Reply::Counter(0))
        );
        assert_eq!(h.outstanding(), 0);
        let (state, stats) = server.shutdown();
        assert_eq!(stats.requests, 3);
        assert!(stats.batches >= 1);
        assert_eq!(stats.overload_shed, 0);
        assert_eq!(state.digest().hash_keys, vec![42]);
    }

    #[test]
    fn concurrent_clients_each_get_their_own_response() {
        let server = tiny();
        let threads: Vec<_> = (0..4)
            .map(|c| {
                let h = server.handle();
                std::thread::spawn(move || {
                    let first = h.call(Request::CounterAdd {
                        counter: c % 2,
                        delta: 1,
                    });
                    let second = h.call(Request::CounterAdd {
                        counter: c % 2,
                        delta: 1,
                    });
                    (first, second)
                })
            })
            .collect();
        let mut olds = [Vec::new(), Vec::new()];
        for (c, t) in threads.into_iter().enumerate() {
            let (a, b) = t.join().unwrap();
            for r in [a, b] {
                match r {
                    Ok(Reply::Counter(v)) => olds[c % 2].push(v),
                    other => panic!("unexpected response {other:?}"),
                }
            }
        }
        // Each counter was fetch-added 4 times: the observed old values are
        // exactly {0, 1, 2, 3} in some arrival order.
        for per_counter in &mut olds {
            per_counter.sort_unstable();
            assert_eq!(per_counter, &[0, 1, 2, 3]);
        }
        let (state, _) = server.shutdown();
        let d = state.digest();
        assert_eq!(d.counters[0], 4);
        assert_eq!(d.counters[1], 4);
    }

    #[test]
    fn submit_after_shutdown_resolves_immediately() {
        let server = tiny();
        let h = server.handle();
        let (_, _) = server.shutdown();
        assert_eq!(
            h.call(Request::HashInsert { key: 1 }),
            Err(ServiceError::ShuttingDown)
        );
        // A post-shutdown submit holds no admission slot.
        assert_eq!(h.outstanding(), 0);
    }
}
