//! The service's live state and the batch-application step.
//!
//! [`ServiceState`] owns a persistent native machine plus the three
//! workload states living in (or mirrored against) its shared memory:
//!
//! * a machine-resident **hash set** ([`qrqw_core::OpenTable`]: open
//!   addressing, double-hash probe sequences; inserts are occupy-mode
//!   `Machine::claim`s, so a batch of inserts is exactly the paper's
//!   low-contention cell-claiming step; deletes tombstone their cell, and
//!   growth rebuilds purge the tombstones);
//! * a machine-resident **counter bank** (a batch of adds/reads is one
//!   emulated Fetch&Add step, Lemma 7.5);
//! * a **task pool** (host-side FIFO index; every batch with task traffic
//!   rebalances the pending tasks across virtual processors with the §3
//!   QRQW load-balancing algorithm).
//!
//! [`ServiceState::apply_batch`] is the *only* way state advances, and it
//! is shared verbatim by the live server and by the one-shot reference of
//! the parity tests: running a request trace through the batcher under any
//! batching policy must leave the same observable state as applying the
//! whole trace as one batch.
//!
//! # Batch semantics (the partition-invariance contract)
//!
//! Replies are **trace-deterministic**: each request observes exactly the
//! requests that precede it in submission order, regardless of where batch
//! boundaries fall.  Concretely, within a batch:
//!
//! * a hash lookup answers `true` iff the key is present *at its trace
//!   position*: some earlier request inserted it and no later-but-earlier
//!   request deleted it (earlier batch, or earlier position in this batch);
//! * a hash delete answers `true` iff the key was present at its trace
//!   position; insert-then-delete inside one batch nets to **no machine
//!   operation at all**, so machine work depends only on each batch's net
//!   key diff — which is what keeps partitions unobservable;
//! * a counter add/read observes the sum of all earlier deltas on its
//!   counter (the Fetch&Add serialization order within a batch is the
//!   batch order, because the emulation's radix sort is stable);
//! * a steal pops the globally oldest task that an earlier request
//!   submitted and no earlier request stole.
//!
//! The machine-visible *placement* of hash keys (which probe cell a key
//! won) is the one observable that may differ across batch partitions and
//! thread counts — occupy-claim winners are backend-defined — so
//! [`StateDigest`] canonicalizes the hash region to its sorted key set,
//! while the counter region is compared raw (bit-identical) and the task
//! pool by exact `(seq, payload)` content.

use std::collections::{BTreeMap, HashMap, HashSet};

use qrqw_core::{emulate_fetch_add_step, load_balance_qrqw, OpenTable, TableGeometry};
use qrqw_exec::{BatchCost, MachineSnapshot, PersistentMachine, StepPool};
use qrqw_sim::Machine;

use crate::request::{Fault, Reply, Request, Response, ServiceError, MAX_KEY};

/// Sizing and seeding of a [`ServiceState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Machine seed (all host-side structures are deterministic; the seed
    /// only feeds the machine's RNG contract).
    pub seed: u64,
    /// Number of counters in the bank.
    pub num_counters: usize,
    /// Virtual processors the task pool balances over.
    pub task_procs: usize,
    /// Initial hash-table capacity (rounded up to a power of two; the
    /// table grows whenever it would exceed half full).
    pub hash_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            seed: 0,
            num_counters: 1024,
            task_procs: 256,
            hash_capacity: 4096,
        }
    }
}

/// Canonical observable state, for batch-vs-oneshot parity comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDigest {
    /// Sorted keys present in the machine-resident hash set.
    pub hash_keys: Vec<u64>,
    /// Raw dump of the counter region (untouched counters stay
    /// [`qrqw_sim::EMPTY`]).
    pub counters: Vec<u64>,
    /// Pending tasks, oldest first.
    pub pending_tasks: Vec<(u64, u64)>,
    /// Next task sequence number to be assigned.
    pub next_seq: u64,
}

/// The machine-resident hash set plus its host mirror.
#[derive(Debug)]
struct HashSetState {
    /// The table itself ([`OpenTable`]: double-hash probes, occupy-claim
    /// insert rounds, tombstone deletes, growth-time tombstone purge).
    table: OpenTable,
    /// Host mirror of the present keys (bookkeeping only; the machine
    /// region is the measured artifact and the digest's source of truth).
    mirror: HashSet<u64>,
}

/// Host-side FIFO index of the task pool.
#[derive(Debug, Default)]
struct TaskPool {
    pending: BTreeMap<u64, u64>,
    next_seq: u64,
}

/// A point-in-time checkpoint of a [`ServiceState`]: the machine snapshot
/// plus every host-side table [`ServiceState::apply_batch`] mutates (hash
/// geometry and mirror, task pool, sequence counter).
///
/// The batcher takes one before each batch; restoring it rolls the service
/// back to exactly the pre-batch observable state (digest-identical), which
/// is what lets a panicked batch be re-applied by bisection with no trace
/// of the failed attempt.  `Default` is an empty checkpoint suitable only
/// as a reusable buffer for [`ServiceState::checkpoint_into`].
#[derive(Debug, Default)]
pub struct ServiceCheckpoint {
    machine: MachineSnapshot,
    hash_geo: TableGeometry,
    hash_mirror: HashSet<u64>,
    pending: BTreeMap<u64, u64>,
    next_seq: u64,
}

/// The live service state: persistent machine + workload structures.
#[derive(Debug)]
pub struct ServiceState {
    pm: PersistentMachine,
    config: ServiceConfig,
    counter_base: usize,
    hash: HashSetState,
    tasks: TaskPool,
}

/// Decoded per-request routing, produced by the in-order decode walk.
enum Routed {
    /// Response fully determined at decode time.
    Done(Response),
    /// Hash lookup: answered from the in-batch overlay when an earlier
    /// request in this batch changed the key's presence, else from the
    /// machine's pre-batch probe step.
    Lookup {
        /// Index into the batch's lookup-key vector.
        idx: usize,
        /// Presence as of this trace position, if an earlier request in
        /// this batch inserted or deleted the key.
        in_batch: Option<bool>,
        /// Expected pre-batch presence (host mirror), cross-checked against
        /// the machine's probe step.
        pre_present: bool,
    },
    /// Counter op: index into the batch's Fetch&Add request vector.
    Counter(usize),
}

impl ServiceState {
    /// Builds a fresh state on a machine resolved from the environment
    /// (`QRQW_THREADS`, `QRQW_SCHEDULE`).
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_pool(config, StepPool::from_env())
    }

    /// Builds a fresh state with an explicit dispatch policy.
    pub fn with_pool(config: ServiceConfig, pool: StepPool) -> Self {
        let mut pm = PersistentMachine::with_pool(16, config.seed, pool);
        let counter_base = pm.machine().alloc(config.num_counters.max(1));
        let hash = HashSetState {
            table: OpenTable::new(pm.machine(), config.hash_capacity),
            mirror: HashSet::new(),
        };
        ServiceState {
            pm,
            config,
            counter_base,
            hash,
            tasks: TaskPool::default(),
        }
    }

    /// The configuration this state was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of keys in the hash set.
    pub fn hash_len(&self) -> usize {
        self.hash.table.len()
    }

    /// Tombstoned cells currently in the hash table (deleted keys whose
    /// cells have not yet been purged by a rebuild).
    pub fn hash_tombstones(&self) -> usize {
        self.hash.table.tombstones()
    }

    /// Current hash-table capacity in cells.
    pub fn hash_capacity(&self) -> usize {
        self.hash.table.capacity()
    }

    /// Number of pending tasks.
    pub fn pending_tasks(&self) -> usize {
        self.tasks.pending.len()
    }

    /// Applies one batch in submission order and returns one response per
    /// request plus what the batch cost on the machine.
    ///
    /// Panics if the batch contains a [`Fault::Panic`] request (the server
    /// catches the unwind; direct callers see the panic).
    pub fn apply_batch(&mut self, batch: &[Request]) -> (Vec<Response>, BatchCost) {
        // ---- Decode walk (host-side, strictly in batch order). ----
        let mut routed: Vec<Routed> = Vec::with_capacity(batch.len());
        let mut lookup_keys: Vec<u64> = Vec::new();
        // Presence-as-of-trace-position for every key whose presence an
        // earlier request in this batch *changed*, plus the first-touch
        // order.  Machine operations are derived from `touched` (a Vec, in
        // batch order) — never from map iteration — because occupy-claim
        // winners are the lowest claimant *index*: the attempts vector must
        // be ordered identically on every backend and thread count.
        let mut overlay: HashMap<u64, bool> = HashMap::new();
        let mut touched: Vec<u64> = Vec::new();
        let mut fadd_reqs: Vec<(usize, u64)> = Vec::new();
        let mut task_ops = 0usize;
        for req in batch {
            let r = match *req {
                Request::HashInsert { key } => {
                    if key >= MAX_KEY {
                        Routed::Done(Err(ServiceError::KeyOutOfRange(key)))
                    } else {
                        let was = overlay
                            .get(&key)
                            .copied()
                            .unwrap_or_else(|| self.hash.mirror.contains(&key));
                        if !was {
                            if !overlay.contains_key(&key) {
                                touched.push(key);
                            }
                            overlay.insert(key, true);
                        }
                        Routed::Done(Ok(Reply::Inserted(!was)))
                    }
                }
                Request::HashDelete { key } => {
                    if key >= MAX_KEY {
                        Routed::Done(Err(ServiceError::KeyOutOfRange(key)))
                    } else {
                        let was = overlay
                            .get(&key)
                            .copied()
                            .unwrap_or_else(|| self.hash.mirror.contains(&key));
                        if was {
                            if !overlay.contains_key(&key) {
                                touched.push(key);
                            }
                            overlay.insert(key, false);
                        }
                        Routed::Done(Ok(Reply::Removed(was)))
                    }
                }
                Request::HashLookup { key } | Request::HashContains { key } => {
                    if key >= MAX_KEY {
                        Routed::Done(Err(ServiceError::KeyOutOfRange(key)))
                    } else {
                        lookup_keys.push(key);
                        Routed::Lookup {
                            idx: lookup_keys.len() - 1,
                            in_batch: overlay.get(&key).copied(),
                            pre_present: self.hash.mirror.contains(&key),
                        }
                    }
                }
                Request::CounterAdd { counter, delta } => {
                    if counter >= self.config.num_counters {
                        Routed::Done(Err(ServiceError::UnknownCounter(counter)))
                    } else {
                        fadd_reqs.push((self.counter_base + counter, delta));
                        Routed::Counter(fadd_reqs.len() - 1)
                    }
                }
                Request::CounterRead { counter } => {
                    if counter >= self.config.num_counters {
                        Routed::Done(Err(ServiceError::UnknownCounter(counter)))
                    } else {
                        // A read is a zero-delta Fetch&Add: it serializes
                        // with the batch's adds at its own batch position.
                        fadd_reqs.push((self.counter_base + counter, 0));
                        Routed::Counter(fadd_reqs.len() - 1)
                    }
                }
                Request::TaskSubmit { payload } => {
                    task_ops += 1;
                    let seq = self.tasks.next_seq;
                    self.tasks.next_seq += 1;
                    self.tasks.pending.insert(seq, payload);
                    Routed::Done(Ok(Reply::TaskQueued(seq)))
                }
                Request::TaskSteal => {
                    task_ops += 1;
                    let stolen = self.tasks.pending.pop_first();
                    Routed::Done(Ok(Reply::TaskStolen(stolen)))
                }
                Request::Fault(Fault::Error) => Routed::Done(Err(ServiceError::Injected)),
                Request::Fault(Fault::Panic) => {
                    panic!("qrqw-serve: injected panic while decoding a batch")
                }
                Request::Fault(Fault::Crash) => {
                    // The live batcher intercepts `Crash` before apply (it
                    // kills the thread, not the batch); a direct caller
                    // sees it as a decode panic like `Fault::Panic`.
                    panic!("qrqw-serve: injected crash reached batch application")
                }
            };
            routed.push(r);
        }

        // The batch's *net* key diff, in first-touch order: a key whose
        // presence ends where it started (insert-then-delete, or
        // delete-then-reinsert) needs no machine operation at all, which is
        // what keeps machine work a function of the trace rather than of
        // the batch partition.
        let mut new_keys: Vec<u64> = Vec::new();
        let mut dead_keys: Vec<u64> = Vec::new();
        for &key in &touched {
            let fin = overlay[&key];
            let was = self.hash.mirror.contains(&key);
            if fin && !was {
                new_keys.push(key);
            } else if !fin && was {
                dead_keys.push(key);
            }
        }

        // ---- Machine stage (fixed order: lookups against the pre-batch
        // table, then deletes, then inserts, then the Fetch&Add step, then
        // rebalancing).
        let task_procs = self.config.task_procs.max(1);
        let ServiceState {
            pm, hash, tasks, ..
        } = self;
        let run_balance = task_ops > 0 && !tasks.pending.is_empty();
        let ((lookup_found, olds), cost) = pm.batch(|m| {
            let found = if lookup_keys.is_empty() {
                Vec::new()
            } else {
                hash.table.lookup(m, &lookup_keys)
            };
            hash.table.remove_present(m, &dead_keys);
            hash.table.insert_new(m, &new_keys);
            let olds = if fadd_reqs.is_empty() {
                Vec::new()
            } else {
                emulate_fetch_add_step(m, &fadd_reqs)
            };
            if run_balance {
                // Rebalance the pending tasks across the virtual
                // processors (§3); the balanced assignment is the machine
                // work — FIFO steal order is decided by sequence number.
                let mut loads = vec![0u64; task_procs];
                for &seq in tasks.pending.keys() {
                    loads[(seq % task_procs as u64) as usize] += 1;
                }
                let res = load_balance_qrqw(m, &loads);
                debug_assert!(res.covers_exactly(&loads));
            }
            (found, olds)
        });

        // Commit the batch's net key diff to the host mirror.
        for &key in &dead_keys {
            hash.mirror.remove(&key);
        }
        hash.mirror.extend(new_keys.iter().copied());

        // ---- Assemble responses in batch order. ----
        let responses: Vec<Response> = routed
            .into_iter()
            .map(|r| match r {
                Routed::Done(resp) => resp,
                Routed::Lookup {
                    idx,
                    in_batch,
                    pre_present,
                } => {
                    debug_assert_eq!(
                        lookup_found[idx], pre_present,
                        "machine probe diverged from the host mirror"
                    );
                    Ok(Reply::Found(in_batch.unwrap_or(lookup_found[idx])))
                }
                Routed::Counter(idx) => Ok(Reply::Counter(olds[idx])),
            })
            .collect();
        (responses, cost)
    }

    /// The canonical observable state (see the module docs for what is
    /// compared bit-exactly vs. canonically).
    pub fn digest(&self) -> StateDigest {
        let m = self.pm.machine_ref();
        let mut hash_keys = self.hash.table.live_keys(m);
        hash_keys.sort_unstable();
        debug_assert_eq!(hash_keys.len(), self.hash.table.len());
        StateDigest {
            hash_keys,
            counters: m.dump(self.counter_base, self.config.num_counters.max(1)),
            pending_tasks: self.tasks.pending.iter().map(|(&s, &p)| (s, p)).collect(),
            next_seq: self.tasks.next_seq,
        }
    }

    /// Captures a checkpoint into `ck`, reusing its buffers — the
    /// allocation-light path the batcher uses before every batch.
    pub fn checkpoint_into(&self, ck: &mut ServiceCheckpoint) {
        self.pm.snapshot_into(&mut ck.machine);
        ck.hash_geo = self.hash.table.geometry();
        ck.hash_mirror.clone_from(&self.hash.mirror);
        ck.pending.clone_from(&self.tasks.pending);
        ck.next_seq = self.tasks.next_seq;
    }

    /// Captures a fresh [`ServiceCheckpoint`] of the current state.
    pub fn checkpoint(&self) -> ServiceCheckpoint {
        let mut ck = ServiceCheckpoint::default();
        self.checkpoint_into(&mut ck);
        ck
    }

    /// Rolls the service back to `ck`: machine memory, allocator, step and
    /// contention counters, hash geometry/mirror, and the task pool all
    /// rewind, so the digest (and every subsequent reply) is exactly what
    /// it was at checkpoint time.  Restoring a checkpoint taken from a
    /// *different* service is a logic error (and panics if the machine
    /// shapes disagree).
    pub fn restore(&mut self, ck: &ServiceCheckpoint) {
        self.pm.restore(&ck.machine);
        self.hash.table.restore_geometry(ck.hash_geo);
        self.hash.mirror.clone_from(&ck.hash_mirror);
        self.tasks.pending.clone_from(&ck.pending);
        self.tasks.next_seq = ck.next_seq;
    }

    /// Thread count of the underlying machine.
    pub fn threads(&self) -> usize {
        self.pm.machine_ref().threads()
    }

    /// The shape of the machine's sharded arena.  A long-lived service
    /// grows its hash table and allocator live across batches; the arena
    /// appends shards without moving cells, so growth mid-service never
    /// pays a realloc copy or a transient 2× footprint.
    pub fn arena_stats(&self) -> qrqw_exec::ArenaStats {
        self.pm.arena_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::EMPTY;

    fn state() -> ServiceState {
        ServiceState::with_pool(
            ServiceConfig {
                num_counters: 8,
                task_procs: 4,
                hash_capacity: 64,
                seed: 1,
            },
            StepPool::with_threads(2),
        )
    }

    #[test]
    fn hash_insert_lookup_contains_round_trip() {
        let mut s = state();
        let (resp, cost) = s.apply_batch(&[
            Request::HashLookup { key: 10 },
            Request::HashInsert { key: 10 },
            Request::HashInsert { key: 10 },
            Request::HashLookup { key: 10 },
            Request::HashContains { key: 11 },
        ]);
        assert_eq!(resp[0], Ok(Reply::Found(false)), "lookup before insert");
        assert_eq!(resp[1], Ok(Reply::Inserted(true)));
        assert_eq!(resp[2], Ok(Reply::Inserted(false)), "duplicate in batch");
        assert_eq!(resp[3], Ok(Reply::Found(true)), "lookup after insert");
        assert_eq!(resp[4], Ok(Reply::Found(false)));
        assert!(cost.claim_attempts >= 1, "insert must issue a claim");
        // A later batch sees the key via the machine table.
        let (resp, _) = s.apply_batch(&[Request::HashContains { key: 10 }]);
        assert_eq!(resp[0], Ok(Reply::Found(true)));
        assert_eq!(s.digest().hash_keys, vec![10]);
    }

    #[test]
    fn hash_delete_is_trace_deterministic_within_a_batch() {
        let mut s = state();
        let (resp, _) = s.apply_batch(&[
            Request::HashDelete { key: 10 },
            Request::HashInsert { key: 10 },
            Request::HashDelete { key: 10 },
            Request::HashLookup { key: 10 },
            Request::HashDelete { key: 10 },
            Request::HashInsert { key: 10 },
            Request::HashLookup { key: 10 },
        ]);
        assert_eq!(resp[0], Ok(Reply::Removed(false)), "delete before insert");
        assert_eq!(resp[1], Ok(Reply::Inserted(true)));
        assert_eq!(resp[2], Ok(Reply::Removed(true)));
        assert_eq!(resp[3], Ok(Reply::Found(false)), "lookup after delete");
        assert_eq!(resp[4], Ok(Reply::Removed(false)), "double delete");
        assert_eq!(resp[5], Ok(Reply::Inserted(true)), "reinsert after delete");
        assert_eq!(resp[6], Ok(Reply::Found(true)));
        assert_eq!(s.digest().hash_keys, vec![10]);
        // A later batch observes the delete of a key from an earlier batch.
        let (resp, _) = s.apply_batch(&[
            Request::HashDelete { key: 10 },
            Request::HashContains { key: 10 },
        ]);
        assert_eq!(resp[0], Ok(Reply::Removed(true)));
        assert_eq!(resp[1], Ok(Reply::Found(false)));
        assert!(s.digest().hash_keys.is_empty());
    }

    #[test]
    fn growth_purges_tombstones_and_reinserts_stay_findable() {
        let mut s = state(); // cap 64
        let inserts: Vec<Request> = (0..30).map(|k| Request::HashInsert { key: k }).collect();
        let _ = s.apply_batch(&inserts);
        let deletes: Vec<Request> = (0..10).map(|k| Request::HashDelete { key: k }).collect();
        let _ = s.apply_batch(&deletes);
        assert!(s.hash_tombstones() > 0, "deletes must leave tombstones");
        // Push past half full: the growth rebuild must purge every
        // tombstone while keeping all live keys findable.
        let more: Vec<Request> = (100..160).map(|k| Request::HashInsert { key: k }).collect();
        let _ = s.apply_batch(&more);
        assert_eq!(s.hash_tombstones(), 0, "growth must purge tombstones");
        assert_eq!(s.hash_len(), 80);
        let probes: Vec<Request> = (0..30)
            .chain(100..160)
            .map(|k| Request::HashLookup { key: k })
            .collect();
        let (resp, _) = s.apply_batch(&probes);
        for (i, r) in resp.iter().enumerate() {
            let expect = i >= 10; // keys 0..10 were deleted
            assert_eq!(*r, Ok(Reply::Found(expect)), "probe {i}");
        }
    }

    #[test]
    fn delete_heavy_churn_digest_is_batch_partition_invariant() {
        // The pinned delete-reinsert regression: a churn trace applied as
        // one batch and in small chunks must be digest-identical, even
        // though the chunked run issues real tombstone writes that the
        // one-shot run nets away entirely.
        let trace: Vec<Request> = (0..120)
            .flat_map(|k| {
                [
                    Request::HashInsert { key: k % 40 },
                    Request::HashDelete { key: (k + 7) % 40 },
                    Request::HashLookup { key: k % 13 },
                ]
            })
            .collect();
        let mut oneshot = state();
        let (oneshot_resp, _) = oneshot.apply_batch(&trace);
        let mut chunked = state();
        let mut chunked_resp = Vec::new();
        for chunk in trace.chunks(11) {
            chunked_resp.extend(chunked.apply_batch(chunk).0);
        }
        assert_eq!(oneshot_resp, chunked_resp);
        assert_eq!(oneshot.digest(), chunked.digest());
    }

    #[test]
    fn checkpoint_restore_rewinds_deletes_and_tombstones() {
        let mut s = state();
        let inserts: Vec<Request> = (0..20).map(|k| Request::HashInsert { key: k }).collect();
        let _ = s.apply_batch(&inserts);
        let before = s.digest();
        let ck = s.checkpoint();
        let deletes: Vec<Request> = (0..15).map(|k| Request::HashDelete { key: k }).collect();
        let _ = s.apply_batch(&deletes);
        assert_ne!(s.digest(), before);
        s.restore(&ck);
        assert_eq!(s.digest(), before);
        assert_eq!(s.hash_tombstones(), 0, "tombstone count rewinds");
        let (resp, _) = s.apply_batch(&[Request::HashLookup { key: 0 }]);
        assert_eq!(resp[0], Ok(Reply::Found(true)));
    }

    #[test]
    fn hash_table_grows_past_initial_capacity() {
        let mut s = state(); // cap 64 → grows beyond 32 keys
        let inserts: Vec<Request> = (0..200).map(|k| Request::HashInsert { key: k }).collect();
        let (resp, _) = s.apply_batch(&inserts);
        assert!(resp.iter().all(|r| *r == Ok(Reply::Inserted(true))));
        assert_eq!(s.hash_len(), 200);
        let digest = s.digest();
        assert_eq!(digest.hash_keys, (0..200).collect::<Vec<u64>>());
        // Lookups after growth still find everything.
        let lookups: Vec<Request> = (0..200).map(|k| Request::HashLookup { key: k }).collect();
        let (resp, _) = s.apply_batch(&lookups);
        assert!(resp.iter().all(|r| *r == Ok(Reply::Found(true))));
    }

    #[test]
    fn counters_serialize_in_batch_order() {
        let mut s = state();
        let (resp, _) = s.apply_batch(&[
            Request::CounterAdd {
                counter: 3,
                delta: 5,
            },
            Request::CounterRead { counter: 3 },
            Request::CounterAdd {
                counter: 3,
                delta: 2,
            },
            Request::CounterRead { counter: 3 },
            Request::CounterRead { counter: 7 },
        ]);
        assert_eq!(resp[0], Ok(Reply::Counter(0)));
        assert_eq!(resp[1], Ok(Reply::Counter(5)));
        assert_eq!(resp[2], Ok(Reply::Counter(5)));
        assert_eq!(resp[3], Ok(Reply::Counter(7)));
        assert_eq!(resp[4], Ok(Reply::Counter(0)));
        let d = s.digest();
        assert_eq!(d.counters[3], 7);
        // Counter 0 was never touched: still EMPTY in the raw region.
        assert_eq!(d.counters[0], EMPTY);
        assert_eq!(d.counters[7], 0, "a pure read materializes the cell");
    }

    #[test]
    fn tasks_are_fifo_across_batches() {
        let mut s = state();
        let (resp, _) = s.apply_batch(&[
            Request::TaskSteal,
            Request::TaskSubmit { payload: 70 },
            Request::TaskSubmit { payload: 71 },
        ]);
        assert_eq!(resp[0], Ok(Reply::TaskStolen(None)), "steal before submit");
        assert_eq!(resp[1], Ok(Reply::TaskQueued(0)));
        assert_eq!(resp[2], Ok(Reply::TaskQueued(1)));
        let (resp, _) = s.apply_batch(&[
            Request::TaskSubmit { payload: 72 },
            Request::TaskSteal,
            Request::TaskSteal,
        ]);
        assert_eq!(
            resp[1],
            Ok(Reply::TaskStolen(Some((0, 70)))),
            "oldest first"
        );
        assert_eq!(resp[2], Ok(Reply::TaskStolen(Some((1, 71)))));
        assert_eq!(s.digest().pending_tasks, vec![(2, 72)]);
        assert_eq!(s.pending_tasks(), 1);
    }

    #[test]
    fn growth_across_batches_spans_shards_and_keeps_oneshot_parity() {
        // A multi-shard service: the counter bank alone crosses a shard
        // boundary and ends just below the next one, so the hash table's
        // doubling growth across batches appends a third shard live.  The
        // digest must not care where batch boundaries fall even while the
        // arena is growing underneath the batches.
        let config = ServiceConfig {
            num_counters: 2 * qrqw_exec::SHARD_CELLS - 1500,
            task_procs: 4,
            hash_capacity: 64,
            seed: 1,
        };
        let trace: Vec<Request> = (0..300)
            .flat_map(|k| {
                [
                    Request::HashInsert { key: k * 3 },
                    Request::CounterAdd {
                        counter: (k as usize * 911) % config.num_counters,
                        delta: k + 1,
                    },
                ]
            })
            .collect();

        let mut oneshot = ServiceState::with_pool(config, StepPool::with_threads(2));
        let _ = oneshot.apply_batch(&trace);

        let mut batched = ServiceState::with_pool(config, StepPool::with_threads(2));
        let start_shards = batched.arena_stats().shards;
        assert!(start_shards >= 2, "counter bank must already span shards");
        for chunk in trace.chunks(37) {
            let _ = batched.apply_batch(chunk);
        }
        assert!(
            batched.arena_stats().shards > start_shards,
            "hash growth across batches must have appended shards"
        );
        assert_eq!(batched.digest(), oneshot.digest());
    }

    #[test]
    fn invalid_requests_fail_without_poisoning_the_batch() {
        let mut s = state();
        let (resp, _) = s.apply_batch(&[
            Request::HashInsert { key: MAX_KEY },
            Request::CounterAdd {
                counter: 99,
                delta: 1,
            },
            Request::Fault(Fault::Error),
            Request::HashInsert { key: 1 },
        ]);
        assert_eq!(resp[0], Err(ServiceError::KeyOutOfRange(MAX_KEY)));
        assert_eq!(resp[1], Err(ServiceError::UnknownCounter(99)));
        assert_eq!(resp[2], Err(ServiceError::Injected));
        assert_eq!(resp[3], Ok(Reply::Inserted(true)));
        assert_eq!(s.digest().hash_keys, vec![1]);
    }

    #[test]
    #[should_panic(expected = "injected panic")]
    fn fault_panic_unwinds_before_machine_state_changes() {
        let mut s = state();
        let _ = s.apply_batch(&[Request::HashInsert { key: 5 }, Request::Fault(Fault::Panic)]);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut s = state();
        let (resp, cost) = s.apply_batch(&[]);
        assert!(resp.is_empty());
        assert_eq!(cost.steps, 0);
    }

    #[test]
    fn checkpoint_restore_round_trips_the_digest_across_hash_growth() {
        let mut s = state(); // hash cap 64: 200 inserts force doubling
        let _ = s.apply_batch(&[
            Request::HashInsert { key: 3 },
            Request::CounterAdd {
                counter: 1,
                delta: 4,
            },
            Request::TaskSubmit { payload: 9 },
        ]);
        let before = s.digest();
        let ck = s.checkpoint();
        // Mutate everything the checkpoint must cover, including a table
        // reserve (base/cap move, old region abandoned) and task churn.
        let mut churn: Vec<Request> = (100..300).map(|k| Request::HashInsert { key: k }).collect();
        churn.push(Request::CounterAdd {
            counter: 1,
            delta: 11,
        });
        churn.push(Request::TaskSteal);
        churn.push(Request::TaskSubmit { payload: 10 });
        let _ = s.apply_batch(&churn);
        assert_ne!(s.digest(), before);
        s.restore(&ck);
        assert_eq!(s.digest(), before, "restore must be digest-identical");
        // The restored state still serves correctly: replay a subset and
        // get the same replies a never-diverged state would give.
        let (resp, _) = s.apply_batch(&[
            Request::HashLookup { key: 3 },
            Request::HashLookup { key: 100 },
            Request::CounterRead { counter: 1 },
            Request::TaskSteal,
        ]);
        assert_eq!(resp[0], Ok(Reply::Found(true)));
        assert_eq!(resp[1], Ok(Reply::Found(false)), "rolled-back key is gone");
        assert_eq!(resp[2], Ok(Reply::Counter(4)));
        assert_eq!(resp[3], Ok(Reply::TaskStolen(Some((0, 9)))));
    }

    #[test]
    fn restore_after_a_caught_panic_erases_partial_host_mutations() {
        // Fault::Panic fires during the decode walk, *after* earlier
        // requests in the batch have already mutated host-side task state —
        // exactly the torn half-applied state the checkpoint must erase.
        let mut s = state();
        let ck = s.checkpoint();
        let torn = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.apply_batch(&[
                Request::TaskSubmit { payload: 5 },
                Request::Fault(Fault::Panic),
            ])
        }));
        assert!(torn.is_err());
        assert_eq!(s.pending_tasks(), 1, "decode mutated before the panic");
        s.restore(&ck);
        assert_eq!(s.pending_tasks(), 0);
        // Replaying only the innocent request now observes a clean trace.
        let (resp, _) = s.apply_batch(&[Request::TaskSubmit { payload: 5 }]);
        assert_eq!(resp[0], Ok(Reply::TaskQueued(0)), "seq counter rewound");
    }

    #[test]
    fn checkpoint_into_reuses_buffers() {
        let mut s = state();
        let _ = s.apply_batch(&[Request::HashInsert { key: 1 }]);
        let mut ck = ServiceCheckpoint::default();
        s.checkpoint_into(&mut ck);
        let _ = s.apply_batch(&[Request::HashInsert { key: 2 }]);
        s.checkpoint_into(&mut ck);
        s.restore(&ck);
        assert_eq!(s.digest().hash_keys, vec![1, 2]);
    }
}
