//! # qrqw-serve — batched request serving on a persistent QRQW machine
//!
//! Everything else in this workspace is a one-shot harness: build a
//! machine, run one algorithm over a pre-materialized input, read the cost
//! report.  This crate closes the loop the paper's model actually
//! describes — *concurrent* accesses arriving independently and being
//! served in bulk-synchronous steps: a QRQW step processes whatever
//! requests have queued up, and the step's cost is its contention.  Here
//! that becomes a long-running service:
//!
//! * clients submit **individual** requests (hash-set inserts/lookups,
//!   counter fetch-adds, task submit/steal) through a [`ServiceHandle`];
//! * a batcher thread accumulates them under a [`BatchPolicy`] (size cap +
//!   linger) and drives each batch as machine steps on one persistent
//!   [`qrqw_exec::NativeMachine`] whose state lives across batches;
//! * each client blocks on a [`Ticket`] until its batch completes.
//!
//! The batch is the h-relation of the QRQW story: batch size is the
//! request load of a step, and the batch's contended claims are its
//! contention charge ([`ServiceStats::contention_per_batch`]).  The
//! throughput/latency trade of batching — bigger batches amortize the
//! step protocol, smaller ones answer sooner — is exactly what
//! `service_bench` / `BENCH_service.json` in `crates/bench` measure.
//!
//! Replies are trace-deterministic (see [`state`]): what a request
//! observes depends only on submission order, never on batch boundaries,
//! so draining any trace through the server leaves the same observable
//! state as applying it as one batch (`tests/parity.rs`).
//!
//! The service is **fault tolerant** (see [`runtime`]): every batch is
//! applied against a pre-batch [`ServiceCheckpoint`], a panicking batch is
//! rolled back and re-applied by bisection so only the poisoned request
//! fails ([`ServiceError::RequestPanicked`]), admission control bounds the
//! queue ([`BatchPolicy::queue_max`] / [`ServiceError::Overloaded`]) and
//! enforces per-request deadlines, and an envelope exit guard guarantees
//! no [`Ticket::wait`] ever wedges on a dead batcher
//! ([`ServiceError::ServerGone`]).  `chaos_bench` in `crates/bench` drives
//! all of this under a seeded fault plan and writes `BENCH_chaos.json`.

#![deny(missing_docs)]

pub mod metrics;
pub mod policy;
pub mod request;
pub mod runtime;
pub mod server;
pub mod state;

pub use metrics::{Histogram, ServiceStats};
pub use policy::{BatchPolicy, BATCH_MAX_ENV, DEADLINE_US_ENV, LINGER_US_ENV, QUEUE_MAX_ENV};
pub use request::{Fault, Reply, Request, Response, ServiceError, MAX_KEY};
pub use runtime::Ticket;
pub use server::{Server, ServiceHandle};
pub use state::{ServiceCheckpoint, ServiceConfig, ServiceState, StateDigest};
